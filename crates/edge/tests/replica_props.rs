//! Property test: under *any* interleaving of inserts, deletes and
//! range deletes, delta replay keeps every edge replica digest-identical
//! to the master, and queries over the replicas verify.

use proptest::prelude::*;
use std::sync::Arc;
use vbx_core::VbTreeConfig;
use vbx_crypto::signer::MockSigner;
use vbx_crypto::Acc256;
use vbx_edge::{CentralServer, EdgeClient, EdgeServer, KeyFreshnessPolicy, VbScheme};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Tuple, Value};

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Delete(u64),
    DeleteRange(u64, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..300).prop_map(Op::Insert),
        (0u64..300).prop_map(Op::Delete),
        (0u64..300, 0u64..40).prop_map(|(lo, span)| Op::DeleteRange(lo, lo + span)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn replicas_track_master_under_any_workload(
        ops in proptest::collection::vec(arb_op(), 1..30),
        fanout in 3usize..8,
    ) {
        let acc = Acc256::test_default();
        let signer = Arc::new(MockSigner::with_version(13, 1));
        let mut central: CentralServer<VbScheme<4>> =
            CentralServer::new(acc.clone(), signer, VbTreeConfig::with_fanout(fanout));
        central.create_table(
            WorkloadSpec {
                table: "items".into(),
                ..WorkloadSpec::new(100, 3, 8)
            }
            .build(),
        );
        let edge_a = EdgeServer::from_bundle(central.bundle());
        let edge_b = EdgeServer::from_bundle(central.bundle());
        let schema = central.tree("items").unwrap().schema().clone();

        let mut applied = 0usize;
        for op in &ops {
            let delta = match op {
                Op::Insert(k) => {
                    let t = Tuple::new(
                        &schema,
                        *k,
                        vec![
                            Value::from(format!("v{k}")),
                            Value::from("w"),
                            Value::from((*k % 97) as i64),
                        ],
                    )
                    .unwrap();
                    match central.insert("items", t) {
                        Ok(d) => d,
                        Err(_) => continue, // duplicate key: skipped
                    }
                }
                Op::Delete(k) => match central.delete("items", *k) {
                    Ok(d) => d,
                    Err(_) => continue, // missing key: skipped
                },
                Op::DeleteRange(lo, hi) => central.delete_range("items", *lo, *hi).unwrap(),
            };
            // Edge A applies immediately; edge B lags and catches up below.
            edge_a.apply_delta(&delta).unwrap();
            applied += 1;
        }

        // Edge B catches up from the log in one batch.
        for entry in central.deltas_since(edge_b.applied_seq()) {
            edge_b.apply_log_entry(&entry).unwrap();
        }
        prop_assert_eq!(edge_a.applied_seq(), applied as u64);
        prop_assert_eq!(edge_b.applied_seq(), applied as u64);

        // All three digest-identical.
        let master = central.tree("items").unwrap().root_digest().exp;
        prop_assert_eq!(edge_a.tree("items").unwrap().root_digest().exp, master);
        prop_assert_eq!(edge_b.tree("items").unwrap().root_digest().exp, master);

        // Structural integrity of the replicas.
        edge_a.tree("items").unwrap().check_integrity(None).unwrap();

        // And queries over the final state verify.
        let client = EdgeClient::new(edge_a.schemas(), acc);
        let sql = "SELECT * FROM items WHERE id BETWEEN 0 AND 400";
        let (_, resp) = edge_a.query_sql(sql).unwrap();
        let verified = client
            .verify(sql, &resp, central.registry(), KeyFreshnessPolicy::RequireCurrent)
            .unwrap();
        prop_assert_eq!(
            verified.rows.len() as u64,
            central.tree("items").unwrap().len()
        );
    }
}
