//! The group-commit write pipeline, end to end: batched commits at the
//! central server (one signing sweep + one stamp for `k` ops), the
//! opt-in coalescing queue, batch replay at the edge (one snapshot
//! clone + one swap + one cache invalidation), single-envelope cluster
//! fan-out with range placeholders, and — via the new generic
//! `SchemeClient::verify_range_fresh` — staleness detection for the
//! Naive and Merkle baselines, closing the "freshness is VB-tree-only"
//! gap.

use std::sync::Arc;
use vbx_baselines::{MerkleScheme, NaiveScheme};
use vbx_core::{
    decode_delta_batch, encode_delta_batch, encode_tree, AuthScheme, FreshnessPolicy, RangeQuery,
    VbScheme, VbTreeConfig, VerifyError,
};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::Acc256;
use vbx_edge::{
    CentralServer, ClusterConfig, ClusterCoordinator, EdgeServer, GroupCommitConfig,
    KeyFreshnessPolicy, SchemeClient, SchemeClientError, UpdateOp,
};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Schema, Table, Tuple, Value};

fn fresh_tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("new{key}")),
            Value::from("w"),
            Value::from((key % 97) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

fn items_table(rows: u64) -> Table {
    WorkloadSpec {
        table: "items".into(),
        ..WorkloadSpec::new(rows, 3, 8)
    }
    .build()
}

fn mixed_ops(schema: &Schema, n: usize) -> Vec<UpdateOp> {
    (0..n as u64)
        .map(|i| match i % 3 {
            0 => UpdateOp::Insert(fresh_tuple(schema, 5_000 + i)),
            1 => UpdateOp::Delete(2 * i + 1),
            _ => UpdateOp::DeleteRange(10 * i + 100, 10 * i + 102),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Central commit + edge apply
// ---------------------------------------------------------------------

#[test]
fn batched_commit_applies_at_the_edge_identically_to_per_op() {
    let signer = Arc::new(MockSigner::with_version(0x6C, 1));
    let acc = Acc256::test_default();
    let table = items_table(80);
    let schema = table.schema().clone();
    let ops = mixed_ops(&schema, 9);

    // Per-op reference pipeline.
    let mut per_op = CentralServer::new(acc.clone(), signer.clone(), VbTreeConfig::with_fanout(6));
    per_op.create_table(table.clone());
    let per_op_edge = EdgeServer::from_bundle(per_op.bundle());
    for op in ops.clone() {
        let delta = match op {
            UpdateOp::Insert(t) => per_op.insert("items", t),
            UpdateOp::Delete(k) => per_op.delete("items", k),
            UpdateOp::DeleteRange(lo, hi) => per_op.delete_range("items", lo, hi),
        }
        .expect("per-op commit");
        per_op_edge.apply_delta(&delta).expect("per-op replay");
    }

    // Group-commit pipeline: one batch, one edge apply.
    let mut grouped = CentralServer::new(acc.clone(), signer.clone(), VbTreeConfig::with_fanout(6));
    grouped.create_table(table);
    let grouped_edge = EdgeServer::from_bundle(grouped.bundle());
    let swaps_before = grouped_edge
        .service()
        .replica("items")
        .unwrap()
        .published_count();
    let batch = grouped
        .execute_update_batch("items", ops)
        .expect("batched commit");
    assert_eq!(batch.start_seq, 0);
    assert_eq!(batch.end_seq(), 9);
    grouped_edge
        .apply_delta_batch(&batch)
        .expect("batch replay");

    // Same sequence position, byte-identical replica trees.
    assert_eq!(grouped_edge.applied_seq(), per_op_edge.applied_seq());
    assert_eq!(
        encode_tree(&*grouped_edge.tree("items").unwrap()),
        encode_tree(&*per_op_edge.tree("items").unwrap()),
        "batched and per-op replicas must converge byte-identically"
    );
    // k ops → exactly one successor snapshot published.
    let swaps = grouped_edge
        .service()
        .replica("items")
        .unwrap()
        .published_count()
        - swaps_before;
    assert_eq!(swaps, 1, "a batch must cost one snapshot swap, not k");

    // The batch travels the wire intact and replays on a fresh replica.
    let bytes = encode_delta_batch(&batch);
    let decoded = decode_delta_batch(&bytes, &acc).expect("wire roundtrip");
    let wire_edge =
        EdgeServer::from_bundle_with_scheme(VbScheme::new(acc, VbTreeConfig::with_fanout(6)), {
            let mut fresh =
                CentralServer::new(Acc256::test_default(), signer, VbTreeConfig::with_fanout(6));
            fresh.create_table(items_table(80));
            fresh.bundle()
        });
    wire_edge.apply_delta_batch(&decoded).expect("wire replay");
    assert_eq!(
        encode_tree(&*wire_edge.tree("items").unwrap()),
        encode_tree(&*per_op_edge.tree("items").unwrap()),
    );
}

#[test]
fn batch_replays_on_a_wire_provisioned_replica() {
    // Regression: arena NodeIds are NOT canonical — `decode_tree`
    // renumbers nodes in postorder while bulk loads assign them level
    // by level — so a replica provisioned from the *serialized* bundle
    // (the bytes the central server actually ships) has different ids
    // than the central tree. The batch sweep must therefore walk in
    // structural order; an id-ordered sweep makes any batch touching
    // two non-nested paths fail as ReplicaDivergence on such a replica.
    let signer = Arc::new(MockSigner::with_version(0x75, 1));
    let mut central =
        CentralServer::new(Acc256::test_default(), signer, VbTreeConfig::with_fanout(6));
    central.create_table(items_table(80));
    let schema = central.tree("items").unwrap().schema().clone();
    let edge = EdgeServer::from_bundle(
        vbx_edge::EdgeBundle::from_bytes(&central.bundle().to_bytes(), central.accumulator())
            .expect("bundle wire roundtrip"),
    );

    // Two ops on widely separated keys: distinct leaves under the root.
    let batch = central
        .execute_update_batch(
            "items",
            vec![
                UpdateOp::Delete(0),
                UpdateOp::Delete(79),
                UpdateOp::Insert(fresh_tuple(&schema, 2_000)),
            ],
        )
        .expect("batched commit");
    edge.apply_delta_batch(&batch)
        .expect("wire-provisioned replica must replay an honest multi-path batch");
    assert_eq!(
        edge.tree("items").unwrap().root_digest().exp,
        central.tree("items").unwrap().root_digest().exp,
    );
    edge.tree("items").unwrap().check_integrity(None).unwrap();
}

#[test]
fn batch_out_of_order_and_empty_batches() {
    let signer = Arc::new(MockSigner::with_version(0x6D, 1));
    let mut central =
        CentralServer::new(Acc256::test_default(), signer, VbTreeConfig::with_fanout(6));
    central.create_table(items_table(40));
    let schema = central.tree("items").unwrap().schema().clone();
    let edge = EdgeServer::from_bundle(central.bundle());

    // An empty batch commits nothing, logs nothing, stamps nothing.
    let empty = central
        .execute_update_batch("items", Vec::new())
        .expect("empty batch is a no-op");
    assert!(empty.is_empty());
    assert_eq!(central.delta_log().next_seq(), 0);
    edge.apply_delta_batch(&empty).expect("no-op at the edge");
    assert_eq!(edge.applied_seq(), 0);

    // A replica refuses a batch that does not start at its position.
    let batch = central
        .execute_update_batch("items", vec![UpdateOp::Insert(fresh_tuple(&schema, 900))])
        .unwrap();
    edge.apply_delta_batch(&batch).expect("in-order batch");
    let err = edge.apply_delta_batch(&batch).unwrap_err();
    assert!(
        matches!(
            err,
            vbx_edge::EdgeError::OutOfOrder {
                expected: 1,
                got: 0
            }
        ),
        "replaying the same batch must be out of order, got {err}"
    );
}

// ---------------------------------------------------------------------
// The opt-in coalescing queue
// ---------------------------------------------------------------------

#[test]
fn failed_baseline_batch_restores_store_and_catalog() {
    // The plain per-op loop is not atomic on its own: the baselines
    // override `update_batch` with `update_batch_atomic` so a failing
    // op restores the pre-batch store — otherwise the never-logged
    // prefix would silently diverge the central store from its catalog
    // and every replica.
    let signer = Arc::new(MockSigner::with_version(0x76, 1));
    let table = WorkloadSpec {
        table: "n".into(),
        ..WorkloadSpec::new(30, 3, 8)
    }
    .build();
    let mut central =
        CentralServer::with_scheme(NaiveScheme::<4>::new(Acc256::test_default()), signer);
    central.create_table(table);
    let len_before = central.store("n").unwrap().len();

    // Delete(3) applies, then Delete(999_999) fails.
    let err = central
        .execute_update_batch("n", vec![UpdateOp::Delete(3), UpdateOp::Delete(999_999)])
        .unwrap_err();
    assert!(matches!(err, vbx_edge::CentralError::Scheme(_)));
    assert_eq!(
        central.store("n").unwrap().len(),
        len_before,
        "failed batch must not leave a half-applied store"
    );
    assert_eq!(central.delta_log().next_seq(), 0, "nothing may be logged");

    // The restored state commits cleanly afterwards.
    let batch = central
        .execute_update_batch("n", vec![UpdateOp::Delete(3)])
        .expect("restored store accepts the valid prefix again");
    assert_eq!(batch.len(), 1);
    assert_eq!(central.store("n").unwrap().len(), len_before - 1);
}

#[test]
fn group_commit_queue_coalesces_to_max_batch() {
    let signer = Arc::new(MockSigner::with_version(0x6E, 1));
    let mut central =
        CentralServer::new(Acc256::test_default(), signer, VbTreeConfig::with_fanout(6))
            .with_group_commit(GroupCommitConfig {
                max_batch: 4,
                commit_interval: u64::MAX,
            });
    central.create_table(items_table(40));
    let schema = central.tree("items").unwrap().schema().clone();
    let edge = EdgeServer::from_bundle(central.bundle());

    // Three enqueues: nothing commits yet.
    for i in 0..3u64 {
        let flushed = central
            .enqueue_update("items", UpdateOp::Insert(fresh_tuple(&schema, 700 + i)))
            .unwrap();
        assert!(flushed.is_empty(), "below max_batch nothing may commit");
    }
    assert_eq!(central.pending_commits(), 3);
    assert_eq!(central.delta_log().next_seq(), 0);

    // The fourth reaches max_batch: one 4-op batch commits.
    let flushed = central
        .enqueue_update("items", UpdateOp::Delete(7))
        .unwrap();
    let batches = flushed
        .batches()
        .expect("a single-table flush commits plain batches");
    assert_eq!(batches.len(), 1);
    assert_eq!(batches[0].len(), 4);
    let batch = batches[0].clone();
    assert_eq!(central.pending_commits(), 0);
    assert_eq!(central.delta_log().next_seq(), 4);
    edge.apply_delta_batch(&batch).unwrap();
    assert_eq!(edge.applied_seq(), 4);
    assert!(edge.tree("items").unwrap().get(700).is_some());
    assert!(edge.tree("items").unwrap().get(7).is_none());
}

#[test]
fn group_commit_flush_groups_multi_table_runs_into_one_txn() {
    let signer = Arc::new(MockSigner::with_version(0x6F, 1));
    let mut central =
        CentralServer::new(Acc256::test_default(), signer, VbTreeConfig::with_fanout(6))
            .with_group_commit(GroupCommitConfig {
                max_batch: 16,
                commit_interval: u64::MAX,
            });
    central.create_table(items_table(40));
    central.create_table({
        let mut spec = WorkloadSpec::new(40, 3, 8);
        spec.table = "other".into();
        spec.build()
    });
    let schema = central.tree("items").unwrap().schema().clone();
    let other_schema = central.tree("other").unwrap().schema().clone();

    // a a b b b a → three single-table runs, arrival order preserved.
    central
        .enqueue_update("items", UpdateOp::Insert(fresh_tuple(&schema, 800)))
        .unwrap();
    central
        .enqueue_update("items", UpdateOp::Insert(fresh_tuple(&schema, 801)))
        .unwrap();
    for i in 0..3u64 {
        central
            .enqueue_update(
                "other",
                UpdateOp::Insert(fresh_tuple(&other_schema, 810 + i)),
            )
            .unwrap();
    }
    central
        .enqueue_update("items", UpdateOp::Delete(5))
        .unwrap();
    let flushed = central.flush_group_commit().unwrap();
    let txn = flushed
        .txn()
        .expect("a multi-table flush commits one atomic txn");
    assert_eq!(
        txn.sections
            .iter()
            .map(|b| (b.table.as_str(), b.len(), b.start_seq))
            .collect::<Vec<_>>(),
        vec![("items", 2, 0), ("other", 3, 2), ("items", 1, 5)],
        "txn sections keep consecutive same-table runs in arrival order"
    );
    assert!(
        txn.is_contiguous(),
        "sections must chain seamlessly through the seq space"
    );
    assert_eq!(central.pending_commits(), 0);
    assert_eq!(central.delta_log().next_seq(), 6);
}

#[test]
fn group_commit_interval_flushes_aged_ops() {
    let signer = Arc::new(MockSigner::with_version(0x70, 1));
    let mut central =
        CentralServer::new(Acc256::test_default(), signer, VbTreeConfig::with_fanout(6))
            .with_group_commit(GroupCommitConfig {
                max_batch: 1_000,
                commit_interval: 2,
            });
    central.create_table(items_table(40));
    let schema = central.tree("items").unwrap().schema().clone();

    central
        .enqueue_update("items", UpdateOp::Insert(fresh_tuple(&schema, 820)))
        .unwrap();
    assert_eq!(central.pending_commits(), 1);
    // One clock tick is below the interval: the op stays queued.
    central.heartbeat();
    assert_eq!(central.pending_commits(), 1);
    // The second tick ages it past the interval and the heartbeat
    // itself flushes the run — a quiet queue no longer holds a pending
    // op hostage until the next enqueue arrives.
    central.heartbeat();
    assert_eq!(central.pending_commits(), 0);
    assert_eq!(central.delta_log().next_seq(), 1);

    // The enqueue-side trigger still works when the clock advances
    // through commits rather than heartbeats.
    central
        .enqueue_update("items", UpdateOp::Insert(fresh_tuple(&schema, 821)))
        .unwrap();
    central.heartbeat();
    central.heartbeat();
    assert_eq!(
        central.pending_commits(),
        0,
        "every aged run flushes without an enqueue"
    );
    assert_eq!(central.delta_log().next_seq(), 2);
}

#[test]
fn failed_multi_table_flush_drops_the_whole_txn() {
    let signer = Arc::new(MockSigner::with_version(0x74, 1));
    let mut central =
        CentralServer::new(Acc256::test_default(), signer, VbTreeConfig::with_fanout(6))
            .with_group_commit(GroupCommitConfig {
                max_batch: 16,
                commit_interval: u64::MAX,
            });
    central.create_table(items_table(40));
    let schema = central.tree("items").unwrap().schema().clone();
    let edge = EdgeServer::from_bundle(central.bundle());

    // Run 1 (items), run 2 (missing table), run 3 (items again): the
    // grouped flush is one atomic txn, so the bad middle run aborts
    // the *whole* thing — no partial-flush surface, no half-commit.
    central
        .enqueue_update("items", UpdateOp::Insert(fresh_tuple(&schema, 840)))
        .unwrap();
    central
        .enqueue_update("ghost", UpdateOp::Delete(1))
        .unwrap();
    central
        .enqueue_update("items", UpdateOp::Delete(7))
        .unwrap();
    let err = central.flush_group_commit().unwrap_err();
    assert!(
        err.committed.is_empty(),
        "a grouped flush commits all-or-nothing, got {} stray batches",
        err.committed.len()
    );
    assert!(matches!(
        err.error,
        vbx_edge::CentralError::UnknownTable(ref t) if t == "ghost"
    ));
    assert_eq!(central.delta_log().next_seq(), 0, "nothing may be logged");
    assert_eq!(
        central.pending_commits(),
        0,
        "the failed txn's ops are dropped as a unit, not re-queued"
    );

    // The untouched central accepts a clean commit afterwards, and the
    // dropped txn's insert never surfaces.
    central
        .enqueue_update("items", UpdateOp::Delete(7))
        .unwrap();
    let retried = central.flush_group_commit().unwrap();
    let batches = retried.batches().expect("single-table flush");
    assert_eq!(batches.len(), 1);
    edge.apply_delta_batch(&batches[0]).unwrap();
    assert!(edge.tree("items").unwrap().get(7).is_none());
    assert!(
        edge.tree("items").unwrap().get(840).is_none(),
        "an op from the aborted txn must never commit"
    );
    assert_eq!(edge.applied_seq(), central.delta_log().next_seq());
}

#[test]
fn enqueue_without_group_commit_commits_immediately() {
    let signer = Arc::new(MockSigner::with_version(0x71, 1));
    let mut central =
        CentralServer::new(Acc256::test_default(), signer, VbTreeConfig::with_fanout(6));
    central.create_table(items_table(40));
    let schema = central.tree("items").unwrap().schema().clone();
    let flushed = central
        .enqueue_update("items", UpdateOp::Insert(fresh_tuple(&schema, 830)))
        .unwrap();
    let batches = flushed.batches().expect("immediate commit");
    assert_eq!(batches.len(), 1);
    assert_eq!(batches[0].len(), 1);
    assert_eq!(central.delta_log().next_seq(), 1);
}

// ---------------------------------------------------------------------
// Cluster fan-out
// ---------------------------------------------------------------------

#[test]
fn cluster_fans_a_batch_out_as_one_envelope() {
    let signer = Arc::new(MockSigner::with_version(0x72, 1));
    let scheme = VbScheme::<4>::new(Acc256::test_default(), VbTreeConfig::with_fanout(6));
    let mut c = ClusterCoordinator::new(
        scheme,
        signer,
        ClusterConfig {
            edges: 3,
            retention: 64,
            ..ClusterConfig::default()
        },
    );
    for i in 0..3 {
        let spec = WorkloadSpec {
            table: format!("t{i}"),
            ..WorkloadSpec::new(40, 3, 8)
        };
        c.create_table(spec.build());
    }
    c.sync().unwrap();
    let schema = c.central().schema("t0").unwrap().clone();

    // An 8-op batch on t0: the owner's queue gets ONE envelope, every
    // other edge ONE range placeholder.
    let ops: Vec<UpdateOp> = (0..8u64)
        .map(|i| UpdateOp::Insert(fresh_tuple(&schema, 900 + i)))
        .collect();
    let batch = c.update_batch("t0", ops).unwrap();
    assert_eq!(batch.len(), 8);
    let lags = c.lag_report();
    assert!(
        lags.iter().all(|l| l.queued == 1),
        "one queue item per edge for an 8-op batch: {lags:?}"
    );
    assert!(lags.iter().all(|l| l.lag == 8));

    // Draining one item advances every edge by the whole range.
    for e in 0..3 {
        assert_eq!(c.drain_edge(e, usize::MAX).unwrap(), 1);
    }
    let lags = c.lag_report();
    assert!(lags.iter().all(|l| l.lag == 0), "{lags:?}");

    // The batch's single stamp attests the end seq: a strict client
    // accepts the owning edge right after the drain.
    let q = RangeQuery::select_all(898, 910);
    let routed = c.query("t0", &q).unwrap();
    let (owner_seq, owner_clock) = c.owner_position();
    let verifier = c
        .central()
        .registry()
        .verifier(routed.response.vo.key_version)
        .unwrap();
    let acc = c.central().accumulator().clone();
    vbx_core::ClientVerifier::new(&acc, &schema)
        .with_freshness(FreshnessPolicy::strict(), owner_seq, owner_clock)
        .verify(verifier.as_ref(), &q, &routed.response)
        .expect("drained edge with a batch stamp must verify strictly");
}

// ---------------------------------------------------------------------
// Baseline freshness: staleness detection is no longer VB-tree-only
// ---------------------------------------------------------------------

/// Generic staleness scenario: commit through the coordinator, query
/// before and after draining the lagging edge's queue, verifying with
/// the scheme-generic freshness client.
fn baseline_staleness_detected<S>(scheme: S, table: Table)
where
    S: AuthScheme + Clone,
    S::Store: Clone,
{
    let signer = Arc::new(MockSigner::with_version(0x73, 1));
    let mut c = ClusterCoordinator::new(
        scheme.clone(),
        signer.clone(),
        ClusterConfig {
            edges: 2,
            retention: 64,
            ..ClusterConfig::default()
        },
    );
    let name = table.schema().table.clone();
    let schema = table.schema().clone();
    c.create_table(table);
    c.sync().unwrap();

    let client = SchemeClient::new(
        scheme,
        [(name.clone(), schema.clone())].into_iter().collect(),
    );
    let q = RangeQuery::select_all(0, 30);
    let verify = |c: &ClusterCoordinator<S>| {
        let routed = c.query(&name, &q).expect("routed");
        let (owner_seq, owner_clock) = c.owner_position();
        client.verify_range_fresh(
            &name,
            &q,
            &routed.response,
            c.central().registry(),
            KeyFreshnessPolicy::RequireCurrent,
            FreshnessPolicy::strict(),
            owner_seq,
            owner_clock,
        )
    };

    // Fresh edge: strict policy passes for the baseline scheme.
    verify(&c).expect("fresh baseline edge must verify strictly");

    // Commit without draining: honest-but-stale, detected as Stale.
    c.central_mut()
        .execute_update_batch(&name, vec![UpdateOp::Delete(3), UpdateOp::Delete(5)])
        .expect("batched baseline commit");
    c.fan_out().unwrap();
    match verify(&c) {
        Err(SchemeClientError::Freshness(VerifyError::Stale { .. })) => {}
        other => panic!("lagging baseline edge must read as Stale, got {other:?}"),
    }

    // Drain: the same strict client accepts again, minus the deleted rows.
    let owner = c.route(&name).unwrap();
    c.drain_edge(owner, usize::MAX).unwrap();
    for e in 0..c.num_edges() {
        c.drain_edge(e, usize::MAX).unwrap();
    }
    let (batch, _) = verify(&c).expect("drained baseline edge verifies strictly again");
    assert!(batch.rows.iter().all(|r| r.key != 3 && r.key != 5));
}

#[test]
fn naive_scheme_staleness_detected() {
    let table = WorkloadSpec {
        table: "n0".into(),
        ..WorkloadSpec::new(40, 3, 8)
    }
    .build();
    baseline_staleness_detected(NaiveScheme::<4>::new(Acc256::test_default()), table);
}

#[test]
fn merkle_scheme_staleness_detected() {
    let table = WorkloadSpec {
        table: "m0".into(),
        ..WorkloadSpec::new(40, 3, 8)
    }
    .build();
    baseline_staleness_detected(MerkleScheme, table);
}

#[test]
fn vb_scheme_staleness_detected_via_generic_client() {
    // The same generic path also covers the VB-tree, so every scheme
    // shares one freshness pipeline.
    let table = items_table(40);
    baseline_staleness_detected(
        VbScheme::<4>::new(Acc256::test_default(), VbTreeConfig::with_fanout(6)),
        table,
    );
}
