//! Property test for the durability subsystem: for **any** mix of
//! single-op commits, group-committed batches and heartbeats, under any
//! checkpoint cadence, recovery is path-independent —
//!
//! `recover(latest checkpoint + WAL suffix)`
//!   ≡ `recover(post-DDL checkpoint + full WAL)`
//!   ≡ a never-crashed in-memory control,
//!
//! byte-for-byte on `encode_state()`, for all three authentication
//! schemes. `retain_wal` keeps every record so the full-history replay
//! stays possible; the second recovery path is forced by restoring the
//! crash image's checkpoint directory to its post-`create_table` state.

use proptest::prelude::*;
use std::sync::Arc;
use vbx_baselines::{MerkleScheme, NaiveScheme};
use vbx_core::{DurableScheme, VbScheme, VbTreeConfig};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::{Acc256, Signer};
use vbx_edge::{CentralServer, DurabilityConfig, UpdateOp};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{FailpointFs, MemVfs, Schema, Tuple, Value, Vfs};

const TABLE: &str = "t0";
const TABLE2: &str = "t1";

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Delete(u64),
    DeleteRange(u64, u64),
    Batch(Vec<u64>),
    Heartbeat,
    /// Atomic multi-table txn: each `(table_sel, key)` stages an insert
    /// on `t0` (even sel) or `t1` (odd sel) — one `CommitTxn` record.
    Txn(Vec<(u8, u64)>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..200).prop_map(Op::Insert),
        2 => (0u64..200).prop_map(Op::Delete),
        1 => (0u64..200, 0u64..30).prop_map(|(lo, span)| Op::DeleteRange(lo, lo + span)),
        2 => proptest::collection::vec(0u64..200, 1..4).prop_map(Op::Batch),
        1 => Just(Op::Heartbeat),
        2 => proptest::collection::vec((0u8..2, 0u64..200), 1..6).prop_map(Op::Txn),
    ]
}

fn tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("v{key:04}")),
            Value::from((key % 89) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

/// Apply one op; `Ok(false)` means the central rejected it (duplicate
/// key, missing key, duplicate inside a batch) and committed nothing.
fn apply<S: DurableScheme>(central: &mut CentralServer<S>, op: &Op) -> bool
where
    S::Store: Clone,
{
    let schema = central.schema(TABLE).expect("table exists").clone();
    match op {
        Op::Insert(k) => central.insert(TABLE, tuple(&schema, *k)).is_ok(),
        Op::Delete(k) => central.delete(TABLE, *k).is_ok(),
        Op::DeleteRange(lo, hi) => central.delete_range(TABLE, *lo, *hi).is_ok(),
        Op::Batch(keys) => central
            .execute_update_batch(
                TABLE,
                keys.iter()
                    .map(|k| UpdateOp::Insert(tuple(&schema, *k)))
                    .collect(),
            )
            .is_ok(),
        Op::Heartbeat => {
            central.heartbeat();
            true
        }
        Op::Txn(stages) => {
            let schema2 = central.schema(TABLE2).expect("table exists").clone();
            let mut txn = central.begin_txn();
            for (sel, k) in stages {
                let (name, schema) = if sel % 2 == 0 {
                    (TABLE, &schema)
                } else {
                    (TABLE2, &schema2)
                };
                txn.stage(name, UpdateOp::Insert(tuple(schema, *k)));
            }
            central.commit_txn(txn).is_ok()
        }
    }
}

fn check_scheme<S: DurableScheme + Clone>(scheme: S, ops: &[Op], checkpoint_every: u64)
where
    S::Store: Clone,
{
    let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(23));
    let config = DurabilityConfig {
        checkpoint_every,
        retain_wal: true,
        page_size: 256,
    };
    let fps = Arc::new(FailpointFs::new());
    let mut durable = CentralServer::with_scheme(scheme.clone(), signer.clone())
        .with_delta_retention(512)
        .with_durability(fps.clone(), config)
        .expect("durability init");
    durable.create_table(
        WorkloadSpec {
            table: TABLE.into(),
            ..WorkloadSpec::new(8, 2, 8)
        }
        .build(),
    );
    durable.create_table(
        WorkloadSpec {
            table: TABLE2.into(),
            ..WorkloadSpec::new(8, 2, 8)
        }
        .build(),
    );
    // The checkpoint directory right after DDL: WAL replay from here
    // covers the *entire* commit history.
    let post_ddl: Vec<(String, Vec<u8>)> = {
        let image = fps.crash_image();
        image
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.starts_with("ckpt-"))
            .map(|n| {
                let bytes = image.read(&n).unwrap().unwrap();
                (n, bytes)
            })
            .collect()
    };
    assert_eq!(post_ddl.len(), 1, "exactly one live checkpoint after DDL");

    let mut control =
        CentralServer::with_scheme(scheme.clone(), signer.clone()).with_delta_retention(512);
    control.create_table(
        WorkloadSpec {
            table: TABLE.into(),
            ..WorkloadSpec::new(8, 2, 8)
        }
        .build(),
    );
    control.create_table(
        WorkloadSpec {
            table: TABLE2.into(),
            ..WorkloadSpec::new(8, 2, 8)
        }
        .build(),
    );
    for op in ops {
        if apply(&mut durable, op) {
            assert!(apply(&mut control, op), "control rejected a committed op");
        }
    }
    fps.kill();
    let image = fps.crash_image();

    // Path 1: latest checkpoint + WAL suffix.
    let suffix = CentralServer::recover(
        scheme.clone(),
        signer.clone(),
        Arc::new(image.crash_image()) as Arc<dyn Vfs>,
        config,
    )
    .expect("checkpoint+suffix recovery");

    // Path 2: rewind the checkpoint directory to its post-DDL state so
    // recovery must replay the full WAL from seq 0.
    let full: MemVfs = image.crash_image();
    for name in full.list().unwrap() {
        if name.starts_with("ckpt-") {
            full.remove(&name).unwrap();
        }
    }
    for (name, bytes) in &post_ddl {
        full.set_durable(name, bytes.clone());
    }
    let replayed = CentralServer::recover(scheme, signer, Arc::new(full) as Arc<dyn Vfs>, config)
        .expect("full-WAL recovery");

    let want = control.encode_state();
    assert_eq!(
        suffix.encode_state(),
        want,
        "checkpoint+suffix recovery diverged from control"
    );
    assert_eq!(
        replayed.encode_state(),
        want,
        "full-WAL recovery diverged from control"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn recovery_is_path_independent(
        ops in proptest::collection::vec(arb_op(), 1..25),
        checkpoint_every in 1u64..8,
    ) {
        check_scheme(
            VbScheme::<4>::new(Acc256::test_default(), VbTreeConfig::with_fanout(6)),
            &ops,
            checkpoint_every,
        );
        check_scheme(NaiveScheme::<4>::new(Acc256::test_default()), &ops, checkpoint_every);
        check_scheme(MerkleScheme, &ops, checkpoint_every);
    }
}
