//! Networked-deployment conformance: the same seeded
//! query + update + tamper script runs over the in-process loopback
//! transport and over real TCP, and must produce **byte-identical**
//! response envelopes and identical client verdicts — including the
//! `Stale` rejection of an unreplicated edge and the tamper matrix.
//! Plus: the bounded subscription backlog (a lagging subscriber gets an
//! explicit error, never an unbounded queue) and graceful shutdown.

use std::sync::Arc;
use vbx_core::{
    decode_compact_response, decode_response, ClientVerifier, FreshnessPolicy, RangeQuery,
    VbScheme, VbTreeConfig,
};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_edge::net::{bootstrap_edge, replicate_once, sync_stamp, ChunkFetch};
use vbx_edge::{
    restore_table, CentralEndpoint, CentralServer, EdgeEndpoint, EdgeError, FrameEndpoint,
    LoopbackTransport, NetClient, NetError, NetServer, TamperMode, TcpTransport, Transport,
};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Schema, Tuple, Value};

const SEED_VERSION: u64 = 9;

fn central_fixture() -> (CentralServer<VbScheme<4>>, Arc<MockSigner>) {
    let signer = Arc::new(MockSigner::with_version(SEED_VERSION, 1));
    let scheme = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(6));
    let mut central = CentralServer::with_scheme(scheme, signer.clone()).with_delta_retention(64);
    central.create_table(
        WorkloadSpec {
            table: "t0".to_string(),
            ..WorkloadSpec::new(48, 3, 8)
        }
        .build(),
    );
    (central, signer)
}

fn fresh_tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("new{key}")),
            Value::from("w"),
            Value::from((key % 97) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

/// One transcript entry: a step label plus the bytes (a verbatim wire
/// envelope, or a rendered verdict) the step produced.
type Transcript = Vec<(String, Vec<u8>)>;

/// The seeded conformance script. Every byte it records — response
/// envelopes and rendered verify verdicts — must be identical whichever
/// transport carries the frames.
fn run_script(transport: &dyn Transport, central_addr: &str, edge_addr: &str) -> Transcript {
    let mut t: Transcript = Vec::new();
    let (central, signer) = central_fixture();
    let acc = Acc256::test_default();
    let schema = central.schema("t0").expect("seeded table").clone();
    let verifier = signer.verifier();

    // Trusted side on the wire.
    let central_ep = Arc::new(CentralEndpoint::new(central));
    let central_srv = NetServer::spawn(
        transport.listen(central_addr).expect("bind central"),
        central_ep.clone() as Arc<dyn FrameEndpoint>,
    );
    let mut feed = NetClient::connect(transport, central_srv.addr()).expect("dial central");

    // Provision the edge over the wire, then serve it on the wire too.
    let edge = Arc::new(bootstrap_edge(&mut feed, &acc).expect("bootstrap from bundle"));
    sync_stamp(&mut feed, &edge).expect("initial stamp");
    let edge_ep = Arc::new(EdgeEndpoint::new(edge.clone()).with_aggregator(verifier.clone()));
    let edge_srv = NetServer::spawn(
        transport.listen(edge_addr).expect("bind edge"),
        edge_ep.clone() as Arc<dyn FrameEndpoint>,
    );
    let mut reader = NetClient::connect(transport, edge_srv.addr()).expect("dial edge");

    let q = RangeQuery::select_all(5, 25);
    let owner = |ep: &CentralEndpoint<4>| ep.with_central(|c| c.owner_position());
    let verify = |bytes: &[u8], (seq, clock): (u64, u64)| -> Vec<u8> {
        let resp = decode_response(bytes, &acc).expect("envelope decodes");
        let verdict = ClientVerifier::new(&acc, &schema)
            .with_freshness(FreshnessPolicy::strict(), seq, clock)
            .verify(verifier.as_ref(), &q, &resp)
            .map(|v| v.rows);
        format!("{verdict:?}").into_bytes()
    };

    // 1. A fresh verified read of the seeded table.
    let bytes = reader.query_range("t0", &q).expect("range query");
    t.push(("q1.verdict".into(), verify(&bytes, owner(&central_ep))));
    t.push(("q1.bytes".into(), bytes));

    // 2. Commit updates at the central, replicate them over the wire,
    //    and read again: new rows visible, still verifiably fresh.
    central_ep.with_central(|c| {
        c.insert("t0", fresh_tuple(&schema, 500)).expect("insert");
        c.delete("t0", 3).expect("delete");
        c.heartbeat();
    });
    feed.subscribe(edge.applied_seq()).expect("subscribe");
    let applied = replicate_once(&mut feed, &edge, 64).expect("replicate");
    assert_eq!(applied, 2, "one DeltaOp frame per committed op");
    sync_stamp(&mut feed, &edge).expect("stamp after replication");
    let bytes = reader.query_range("t0", &q).expect("post-update query");
    t.push(("q2.verdict".into(), verify(&bytes, owner(&central_ep))));
    t.push(("q2.bytes".into(), bytes));

    // 3. A compact (VBX4) read with signature aggregation.
    let queries = [
        RangeQuery::select_all(5, 25),
        RangeQuery::select_all(30, 41),
    ];
    let bytes = reader
        .query_compact("t0", &queries, true)
        .expect("compact query");
    let compact = decode_compact_response(&bytes, &acc).expect("VBX4 decodes");
    let verdict = ClientVerifier::new(&acc, &schema)
        .verify_compact(verifier.as_ref(), &queries, &compact)
        .map(|v| v.rows);
    t.push(("q3.verdict".into(), format!("{verdict:?}").into_bytes()));
    t.push(("q3.bytes".into(), bytes));

    // 4. Commit without replicating: the edge's stamp ages out and a
    //    strict client must reject the read as Stale — same verdict,
    //    same bytes, on either transport.
    central_ep.with_central(|c| {
        c.insert("t0", fresh_tuple(&schema, 700)).expect("insert");
        c.heartbeat();
    });
    let bytes = reader
        .query_range("t0", &q)
        .expect("stale edge still serves");
    let verdict = verify(&bytes, owner(&central_ep));
    assert!(
        std::str::from_utf8(&verdict).unwrap().contains("Stale"),
        "unreplicated edge must verify as stale"
    );
    t.push(("q4.verdict".into(), verdict));
    t.push(("q4.bytes".into(), bytes));

    // 5. Catch up, then run the tamper matrix through the socket: a
    //    compromised edge is caught by verification, not by transport.
    feed.subscribe(edge.applied_seq()).expect("resubscribe");
    replicate_once(&mut feed, &edge, 64).expect("catch up");
    sync_stamp(&mut feed, &edge).expect("fresh stamp");
    for (name, mode) in [
        ("mutate", TamperMode::MutateValue),
        ("inject", TamperMode::InjectRow),
        ("drop", TamperMode::DropRow),
    ] {
        edge.set_tamper(mode);
        let bytes = reader.query_range("t0", &q).expect("tampered edge serves");
        let verdict = verify(&bytes, owner(&central_ep));
        assert!(
            std::str::from_utf8(&verdict).unwrap().starts_with("Err"),
            "{name}: tampering must be rejected"
        );
        t.push((format!("tamper.{name}.verdict"), verdict));
        t.push((format!("tamper.{name}.bytes"), bytes));
    }
    edge.set_tamper(TamperMode::None);

    // 6. Honest again: the final read verifies.
    let bytes = reader.query_range("t0", &q).expect("honest query");
    let verdict = verify(&bytes, owner(&central_ep));
    assert!(std::str::from_utf8(&verdict).unwrap().starts_with("Ok"));
    t.push(("q5.verdict".into(), verdict));
    t.push(("q5.bytes".into(), bytes));

    assert!(
        central_srv
            .stats()
            .frames
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    assert!(
        edge_srv
            .stats()
            .frames
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    edge_srv.shutdown();
    central_srv.shutdown();
    t
}

#[test]
fn loopback_and_tcp_transcripts_are_byte_identical() {
    let loopback = LoopbackTransport::new();
    let a = run_script(&loopback, "conf-central", "conf-edge");
    let tcp = TcpTransport;
    let b = run_script(&tcp, "127.0.0.1:0", "127.0.0.1:0");

    assert_eq!(a.len(), b.len(), "same script, same number of steps");
    for ((la, ba), (lb, bb)) in a.iter().zip(&b) {
        assert_eq!(la, lb, "step order diverged");
        assert_eq!(ba, bb, "step {la}: loopback and TCP bytes diverged");
    }
}

#[test]
fn lagging_subscriber_gets_explicit_error_not_unbounded_queue() {
    let (central, _signer) = central_fixture();
    let schema = central.schema("t0").unwrap().clone();
    let central_ep = Arc::new(CentralEndpoint::new(central).with_max_backlog(4));
    let transport = LoopbackTransport::new();
    let srv = NetServer::spawn(
        transport.listen("lag-central").unwrap(),
        central_ep.clone() as Arc<dyn FrameEndpoint>,
    );
    let mut client = NetClient::connect(&transport, srv.addr()).unwrap();

    client.subscribe(0).expect("subscribe at genesis");
    // Fall 6 entries behind a bound of 4.
    central_ep.with_central(|c| {
        for k in 0..6 {
            c.insert("t0", fresh_tuple(&schema, 900 + k)).unwrap();
        }
    });
    match client.poll_deltas(64) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, vbx_core::ErrorCode::Lagging),
        other => panic!("expected Lagging disconnect, got {other:?}"),
    }
    // The subscription is gone — polling again is a protocol error…
    match client.poll_deltas(64) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, vbx_core::ErrorCode::BadRequest),
        other => panic!("expected poll-before-subscribe, got {other:?}"),
    }
    // …until an explicit resubscribe at the head, which drains clean.
    let (head, _oldest) = client.subscribe(6).expect("resubscribe at head");
    assert_eq!(head, 6);
    let (entries, _, _) = client.poll_deltas(64).expect("healthy poll");
    assert!(entries.is_empty(), "caught-up subscriber has no backlog");
    srv.shutdown();
}

#[test]
fn tcp_shutdown_is_graceful_and_connections_drain() {
    let (central, _signer) = central_fixture();
    let central_ep = Arc::new(CentralEndpoint::new(central));
    let tcp = TcpTransport;
    let srv = NetServer::spawn(
        tcp.listen("127.0.0.1:0").unwrap(),
        central_ep as Arc<dyn FrameEndpoint>,
    );
    let addr = srv.addr().to_string();

    // A handful of concurrent clients, each mid-conversation.
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let mut c = NetClient::connect(&TcpTransport, &addr).unwrap();
                for _ in 0..3 {
                    c.ping().expect("server answers while up");
                }
            });
        }
    });
    let stats = srv.stats();
    assert!(stats.accepted.load(std::sync::atomic::Ordering::Relaxed) >= 4);
    assert_eq!(
        stats.frames.load(std::sync::atomic::Ordering::Relaxed),
        12,
        "every ping frame was served"
    );
    srv.shutdown(); // joins the accept loop and every connection thread

    // The endpoint is gone: a fresh dial must fail (refused) or find a
    // dead socket (EOF/timeout on the call) — never hang forever.
    if let Ok(mut c) = NetClient::connect(&TcpTransport, &addr) {
        assert!(c.ping().is_err(), "no one is serving after shutdown");
    }
}

// ---------------------------------------------------------------------
// Verified chunked state sync over the wire.
// ---------------------------------------------------------------------

/// Drive a full verified restore of `t0` over `transport`: record the
/// verbatim chunk bytes (the conformance transcript), rebuild through
/// [`restore_table`], and check the replica and the resume cursor.
fn run_restore(
    transport: &dyn Transport,
    addr: &str,
) -> (Vec<Vec<u8>>, vbx_edge::RestoredTable<4>) {
    let (central, signer) = central_fixture();
    let schema = central.schema("t0").expect("seeded table").clone();
    let central_ep = Arc::new(CentralEndpoint::new(central));
    let srv = NetServer::spawn(
        transport.listen(addr).expect("bind central"),
        central_ep.clone() as Arc<dyn FrameEndpoint>,
    );
    // Commit a couple of updates first, so the restored state is not
    // just the bulk-loaded seed and the log head is past genesis.
    central_ep.with_central(|c| {
        c.insert("t0", fresh_tuple(&schema, 800)).expect("insert");
        c.delete("t0", 7).expect("delete");
    });

    let mut client = NetClient::connect(transport, srv.addr()).expect("dial central");

    // Raw fetch loop — keeps the verbatim chunk bytes so the two
    // transports can be compared byte-for-byte.
    let mut raw: Vec<Vec<u8>> = Vec::new();
    loop {
        match client
            .fetch_chunk("t0", raw.len() as u32)
            .expect("fetch chunk")
        {
            ChunkFetch::Chunk(bytes) => raw.push(bytes),
            ChunkFetch::Done { chunks, head } => {
                assert_eq!(chunks as usize, raw.len(), "stream length is stable");
                assert_eq!(head, 2, "two committed ops ahead of the seed");
                break;
            }
        }
    }

    // The library path: restore, verifying every chunk as it ingests.
    let scheme = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(6));
    let restored =
        restore_table(&mut client, &scheme, signer.verifier(), "t0").expect("verified restore");

    // The restored replica matches the central's live store exactly and
    // passes a full audit, signatures included.
    let (len, version, root) = central_ep.with_central(|c| {
        let s = c.store("t0").expect("t0 lives");
        (s.len(), s.version(), s.root_digest().clone())
    });
    assert_eq!(restored.tree.len(), len);
    assert_eq!(restored.tree.version(), version);
    assert_eq!(*restored.tree.root_digest(), root);
    restored
        .tree
        .check_integrity(Some(signer.verifier().as_ref()))
        .expect("restored replica passes a full audit");

    // `head` is the exact cursor to subscribe from: no gap, no replay.
    let (h, _oldest) = client.subscribe(restored.head).expect("subscribe at head");
    assert_eq!(h, restored.head);
    let (entries, _, _) = client.poll_deltas(16).expect("healthy poll");
    assert!(
        entries.is_empty(),
        "restored-at-head replica has no backlog"
    );

    // Error surface: an unknown table is a remote error, and an index
    // past the end is the Done marker, not a failure.
    match client.fetch_chunk("nope", 0) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, vbx_core::ErrorCode::UnknownTable),
        other => panic!("expected UnknownTable, got {other:?}"),
    }
    match client.fetch_chunk("t0", 1_000).expect("past-end fetch") {
        ChunkFetch::Done { chunks, .. } => assert_eq!(chunks as usize, raw.len()),
        ChunkFetch::Chunk(_) => panic!("index past the end must answer Done"),
    }

    srv.shutdown();
    (raw, restored)
}

#[test]
fn chunk_streams_are_verified_and_byte_identical_across_transports() {
    let loopback = LoopbackTransport::new();
    let (raw_a, restored_a) = run_restore(&loopback, "restore-central");
    let (raw_b, restored_b) = run_restore(&TcpTransport, "127.0.0.1:0");

    assert_eq!(raw_a, raw_b, "loopback and TCP chunk streams diverged");
    assert_eq!(restored_a.chunks as usize, raw_a.len());
    assert_eq!(restored_a.head, restored_b.head);
    assert_eq!(
        restored_a.tree.root_digest(),
        restored_b.tree.root_digest(),
        "both transports restored the same tree"
    );
}

#[test]
fn a_tampered_chunk_off_the_wire_is_rejected_mid_restore() {
    let (central, signer) = central_fixture();
    let central_ep = Arc::new(CentralEndpoint::new(central));
    let transport = LoopbackTransport::new();
    let srv = NetServer::spawn(
        transport.listen("tamper-restore").unwrap(),
        central_ep.clone() as Arc<dyn FrameEndpoint>,
    );
    let mut client = NetClient::connect(&transport, srv.addr()).unwrap();

    let fetch = |client: &mut NetClient, i: u32| match client.fetch_chunk("t0", i).unwrap() {
        ChunkFetch::Chunk(bytes) => bytes,
        ChunkFetch::Done { .. } => panic!("chunk {i} exists"),
    };
    let skeleton = fetch(&mut client, 0);
    let mut leaves = fetch(&mut client, 1);

    // An on-path attacker flips one bit in a leaf run: the restorer
    // rejects the chunk the moment it ingests it — never at finish(),
    // never by installing the state.
    let mid = leaves.len() / 2;
    leaves[mid] ^= 0x08;
    let mut r = vbx_core::Restorer::new(Acc256::test_default(), signer.verifier());
    r.ingest(&skeleton).expect("honest skeleton");
    assert!(
        r.ingest(&leaves).is_err(),
        "a flipped bit in a wire chunk must be rejected as it ingests"
    );
    srv.shutdown();
}

#[test]
fn replicate_once_reports_typed_apply_failures_with_progress() {
    // Two tables; the edge's t1 replica is silently diverged (it
    // already holds key 999), so the second replicated entry must fail
    // with the *typed* apply error — not flattened into a protocol
    // error — and report how far the cursor advanced first.
    let (mut central, signer) = central_fixture();
    central.create_table(
        WorkloadSpec {
            table: "t1".to_string(),
            ..WorkloadSpec::new(30, 3, 8)
        }
        .build(),
    );
    let schema0 = central.schema("t0").unwrap().clone();
    let schema1 = central.schema("t1").unwrap().clone();
    let central_ep = Arc::new(CentralEndpoint::new(central));
    let transport = LoopbackTransport::new();
    let srv = NetServer::spawn(
        transport.listen("apply-central").unwrap(),
        central_ep.clone() as Arc<dyn FrameEndpoint>,
    );
    let mut feed = NetClient::connect(&transport, srv.addr()).unwrap();

    let acc = Acc256::test_default();
    let mut edge = bootstrap_edge(&mut feed, &acc).expect("bootstrap");

    // Diverge: pre-install a t1 replica that already contains key 999.
    let mut diverged = (*edge.store("t1").expect("t1 replica")).clone();
    diverged
        .insert(fresh_tuple(&schema1, 999), signer.as_ref())
        .expect("local divergence");
    edge.install_table("t1", schema1.clone(), diverged);

    // The central commits two ops; the first applies cleanly, the
    // second collides with the divergence.
    central_ep.with_central(|c| {
        c.insert("t0", fresh_tuple(&schema0, 800)).expect("t0 op");
        c.insert("t1", fresh_tuple(&schema1, 999)).expect("t1 op");
    });
    feed.subscribe(edge.applied_seq()).expect("subscribe");
    match replicate_once(&mut feed, &edge, 64) {
        Err(NetError::Apply {
            applied,
            source: EdgeError::Scheme(_),
        }) => assert_eq!(applied, 1, "the t0 op landed before the failure"),
        other => panic!("expected a typed Apply failure, got {other:?}"),
    }
    assert_eq!(
        edge.applied_seq(),
        1,
        "the cursor advanced exactly past the good op"
    );
    srv.shutdown();
}
