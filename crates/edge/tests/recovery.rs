//! Crash-matrix tests for the durable central: every fault-injection
//! point of [`FailpointFs`] is driven against a scripted update
//! workload, the victim's surviving disk image is recovered, and the
//! recovered server must be **byte-identical** (via `encode_state`) to
//! a never-crashed control that executed some prefix of the script —
//! a prefix containing at least every commit the victim acked before
//! the crash (append-before-ack: an acked commit is never lost).
//!
//! Also covered: clock monotonicity across restart (a recovered server
//! never issues a freshness stamp that rewinds `(seq, clock)`), key
//! rotation straddling a crash, torn-checkpoint fallback, and the
//! cluster's resubscription path — edges keep their cursors across a
//! central crash and observe no gaps or duplicate sequence numbers.

use std::sync::Arc;
use vbx_baselines::{MerkleScheme, NaiveScheme};
use vbx_core::{DurableScheme, VbScheme, VbTreeConfig};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::{Acc256, Signer};
use vbx_edge::{
    CentralError, CentralServer, ClusterCoordinator, ClusterError, DurabilityConfig, UpdateOp,
};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{FailPoint, FailpointFs, Schema, Tuple, Value, Vfs};

const TABLE: &str = "t0";
const TABLE2: &str = "t1";
const RETENTION: usize = 64;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        table: TABLE.into(),
        ..WorkloadSpec::new(8, 2, 8)
    }
}

fn spec2() -> WorkloadSpec {
    WorkloadSpec {
        table: TABLE2.into(),
        ..WorkloadSpec::new(8, 2, 8)
    }
}

fn vb() -> VbScheme<4> {
    VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(6))
}

fn tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("v{key:04}")),
            Value::from((key % 89) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

/// One deterministic workload step, identical for victim and control.
#[derive(Clone, Debug)]
enum Step {
    Insert(u64),
    Delete(u64),
    /// Group-committed inserts: one WAL record, one fsync for the run.
    Batch(Vec<u64>),
    RangeDelete(u64, u64),
    Heartbeat,
    /// Atomic multi-table txn: each `(table_sel, key)` stages an insert
    /// on `t0` (sel 0) or `t1` (sel 1); the whole list commits as ONE
    /// `CommitTxn` WAL record.
    Txn(Vec<(u8, u64)>),
}

fn script() -> Vec<Step> {
    use Step::*;
    vec![
        Insert(100),
        Insert(101),
        Heartbeat,
        Batch(vec![102, 103, 104]),
        Delete(100),
        Insert(105),
        Heartbeat,
        RangeDelete(0, 3),
        Batch(vec![106, 107]),
        Txn(vec![(0, 140), (1, 141), (0, 142), (1, 143)]),
        Insert(108),
        Delete(101),
        Txn(vec![(1, 150), (0, 151)]),
        Insert(109),
        Heartbeat,
        Insert(110),
    ]
}

fn run_step<S: DurableScheme>(
    central: &mut CentralServer<S>,
    step: &Step,
) -> Result<(), CentralError<S::Error>>
where
    S::Store: Clone,
{
    let schema = central.schema(TABLE).expect("table exists").clone();
    match step {
        Step::Insert(k) => central.insert(TABLE, tuple(&schema, *k)).map(drop),
        Step::Delete(k) => central.delete(TABLE, *k).map(drop),
        Step::Batch(keys) => central
            .execute_update_batch(
                TABLE,
                keys.iter()
                    .map(|k| UpdateOp::Insert(tuple(&schema, *k)))
                    .collect(),
            )
            .map(drop),
        Step::RangeDelete(lo, hi) => central.delete_range(TABLE, *lo, *hi).map(drop),
        Step::Heartbeat => {
            central.heartbeat();
            Ok(())
        }
        Step::Txn(stages) => {
            let schema2 = central.schema(TABLE2).expect("table exists").clone();
            let mut txn = central.begin_txn();
            for (sel, k) in stages {
                let (name, schema) = match sel {
                    0 => (TABLE, &schema),
                    _ => (TABLE2, &schema2),
                };
                txn.stage(name, UpdateOp::Insert(tuple(schema, *k)));
            }
            central.commit_txn(txn).map(drop)
        }
    }
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        checkpoint_every: 5,
        retain_wal: false,
        page_size: 256,
    }
}

/// Every fault-injection point the matrix drives, at several script
/// depths. `keep` values slice a WAL record's frame at the length
/// prefix (4), inside the checksum (6), and inside the payload (20).
fn matrix_points() -> Vec<FailPoint> {
    vec![
        FailPoint::BeforeAppend { file: "wal".into() },
        FailPoint::TornAppend {
            file: "wal".into(),
            keep: 0,
        },
        FailPoint::TornAppend {
            file: "wal".into(),
            keep: 4,
        },
        FailPoint::TornAppend {
            file: "wal".into(),
            keep: 6,
        },
        FailPoint::TornAppend {
            file: "wal".into(),
            keep: 20,
        },
        // Deep into a `CommitTxn` record's payload — between per-table
        // sections of the txn, proving a torn multi-table append never
        // recovers a table subset.
        FailPoint::TornAppend {
            file: "wal".into(),
            keep: 150,
        },
        FailPoint::AfterAppend { file: "wal".into() },
        FailPoint::BeforeSync { file: "wal".into() },
        FailPoint::TornAtomicWrite {
            file: "ckpt".into(),
            keep: 0,
            replace_with_garbage: false,
        },
        FailPoint::TornAtomicWrite {
            file: "ckpt".into(),
            keep: 40,
            replace_with_garbage: true,
        },
        FailPoint::BeforeTruncate { file: "wal".into() },
        FailPoint::BeforeTruncate {
            file: "ckpt".into(),
        },
    ]
}

/// Run one crash case: execute the script with `point` armed at step
/// `arm_at`, crash, recover from the surviving image, and check the
/// recovered state against a never-crashed control.
fn run_case<S: DurableScheme + Clone>(scheme: S, label: &str, arm_at: usize, point: &FailPoint)
where
    S::Store: Clone,
{
    let ctx = format!("[{label} {point:?} arm@{arm_at}]");
    let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(7));
    let fps = Arc::new(FailpointFs::new());
    let mut victim = CentralServer::with_scheme(scheme.clone(), signer.clone())
        .with_delta_retention(RETENTION)
        .with_durability(fps.clone(), config())
        .expect("durability init");
    victim.create_table(spec().build());
    victim.create_table(spec2().build());

    // Drive the script until the process dies or durability poisons.
    // `acked` tracks the owner position after each *delivered* ack — a
    // result that raced the crash was never delivered to anyone.
    let mut acked: Option<(usize, (u64, u64))> = None;
    for (i, step) in script().iter().enumerate() {
        if i == arm_at {
            fps.arm(point.clone());
        }
        let result = run_step(&mut victim, step);
        if fps.is_crashed() {
            break;
        }
        match result {
            Ok(()) => acked = Some((i, victim.owner_position())),
            Err(_) => break,
        }
    }
    fps.kill(); // if the point never tripped, die between steps
    drop(victim);

    // Recover from exactly what was durable.
    let image = Arc::new(fps.crash_image());
    let recovered = CentralServer::recover(
        scheme.clone(),
        signer.clone(),
        image.clone() as Arc<dyn Vfs>,
        config(),
    )
    .unwrap_or_else(|e| panic!("{ctx} recovery failed: {e}"));
    let target = recovered.encode_state();

    // The recovered state must equal a never-crashed control after
    // some script prefix…
    let mut control =
        CentralServer::with_scheme(scheme.clone(), signer.clone()).with_delta_retention(RETENTION);
    control.create_table(spec().build());
    control.create_table(spec2().build());
    let mut matched = (control.encode_state() == target).then_some(0usize);
    for (i, step) in script().iter().enumerate() {
        if matched.is_some() {
            break;
        }
        run_step(&mut control, step).expect("control never fails");
        if control.encode_state() == target {
            matched = Some(i + 1);
        }
    }
    let matched =
        matched.unwrap_or_else(|| panic!("{ctx} recovered state matches no script prefix"));

    // …and that prefix contains every acked commit (append-before-ack),
    // at a position that never rewinds below the last acked stamp.
    if let Some((last_idx, position)) = acked {
        assert!(
            matched > last_idx,
            "{ctx} acked step {last_idx} missing from recovered state (prefix {matched})"
        );
        assert!(
            recovered.owner_position() >= position,
            "{ctx} recovered position {:?} rewinds below acked {position:?}",
            recovered.owner_position()
        );
    }

    // The recovered server keeps committing durably: finish the script
    // on both sides and the states stay byte-identical.
    let mut recovered = recovered;
    for step in &script()[matched..] {
        run_step(&mut recovered, step).unwrap_or_else(|e| panic!("{ctx} post-recovery: {e}"));
        run_step(&mut control, step).expect("control never fails");
    }
    assert_eq!(
        recovered.encode_state(),
        control.encode_state(),
        "{ctx} post-recovery commits diverged from control"
    );

    // And a second crash right now loses nothing: everything the
    // recovered server acked is durable again.
    let twice = CentralServer::recover(
        scheme,
        signer,
        Arc::new(image.crash_image()) as Arc<dyn Vfs>,
        config(),
    )
    .unwrap_or_else(|e| panic!("{ctx} second recovery failed: {e}"));
    assert_eq!(
        twice.encode_state(),
        recovered.encode_state(),
        "{ctx} second crash+recovery diverged"
    );
}

fn crash_matrix<S: DurableScheme + Clone>(scheme: S, label: &str)
where
    S::Store: Clone,
{
    // Arm points cover plain ops (0, 3, 7) and both txn steps (9, 12),
    // so every fault fires at least once inside a `CommitTxn` append.
    for point in &matrix_points() {
        for arm_at in [0, 3, 7, 9, 12] {
            run_case(scheme.clone(), label, arm_at, point);
        }
    }
}

#[test]
fn crash_matrix_vb() {
    crash_matrix(vb(), "vb");
}

#[test]
fn crash_matrix_naive() {
    crash_matrix(NaiveScheme::<4>::new(Acc256::test_default()), "naive");
}

#[test]
fn crash_matrix_merkle() {
    crash_matrix(MerkleScheme, "merkle");
}

#[test]
fn clock_never_rewinds_across_recovery() {
    // Heartbeats advance only the clock; they are WAL-logged so a
    // restart cannot issue a stamp below one already handed out.
    let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(11));
    let fps = Arc::new(FailpointFs::new());
    let mut central = CentralServer::with_scheme(vb(), signer.clone())
        .with_delta_retention(RETENTION)
        .with_durability(fps.clone(), config())
        .expect("durability init");
    central.create_table(spec().build());
    let schema = central.schema(TABLE).unwrap().clone();
    central.insert(TABLE, tuple(&schema, 500)).unwrap();
    for _ in 0..5 {
        central.heartbeat();
    }
    let last = central.heartbeat();
    fps.kill();

    let mut recovered = CentralServer::recover(
        vb(),
        signer,
        Arc::new(fps.crash_image()) as Arc<dyn Vfs>,
        config(),
    )
    .expect("recovery");
    let (seq, clock) = recovered.owner_position();
    assert!(
        (seq, clock) >= (last.seq, last.clock),
        "recovered position ({seq}, {clock}) rewinds below issued stamp ({}, {})",
        last.seq,
        last.clock
    );
    let fresh = recovered.heartbeat();
    assert!(
        (fresh.seq, fresh.clock) > (last.seq, last.clock),
        "post-recovery stamp rewinds"
    );
}

#[test]
fn key_rotation_survives_recovery() {
    // rotate_key is DDL: it forces a checkpoint under the new key, so
    // recovery with the new signer reproduces the rotated state.
    let v1: Arc<dyn Signer> = Arc::new(MockSigner::with_version(13, 1));
    let v2: Arc<dyn Signer> = Arc::new(MockSigner::with_version(13, 2));
    let fps = Arc::new(FailpointFs::new());
    let mut central = CentralServer::with_scheme(vb(), v1.clone())
        .with_delta_retention(RETENTION)
        .with_durability(fps.clone(), config())
        .expect("durability init");
    central.create_table(spec().build());
    let schema = central.schema(TABLE).unwrap().clone();
    central.insert(TABLE, tuple(&schema, 300)).unwrap();
    central.rotate_key(v2.clone());
    central.insert(TABLE, tuple(&schema, 301)).unwrap();
    fps.kill();

    let recovered = CentralServer::recover(
        vb(),
        v2.clone(),
        Arc::new(fps.crash_image()) as Arc<dyn Vfs>,
        config(),
    )
    .expect("recovery under rotated key");
    let mut control = CentralServer::with_scheme(vb(), v1).with_delta_retention(RETENTION);
    control.create_table(spec().build());
    control.insert(TABLE, tuple(&schema, 300)).unwrap();
    control.rotate_key(v2.clone());
    control.insert(TABLE, tuple(&schema, 301)).unwrap();
    assert_eq!(recovered.encode_state(), control.encode_state());

    // The old signer cannot recover the rotated state.
    let wrong: Arc<dyn Signer> = Arc::new(MockSigner::with_version(13, 1));
    assert!(CentralServer::<VbScheme<4>>::recover(
        vb(),
        wrong,
        Arc::new(fps.crash_image()) as Arc<dyn Vfs>,
        config(),
    )
    .is_err());
}

#[test]
fn cluster_resubscribes_without_gaps_or_duplicates() {
    // Crash the central *between commit and fan-out*: the commit is
    // durable (WAL) but no edge ever saw it. After recovery the edges
    // keep their cursors (adopt_central) and the resumed subscription
    // delivers exactly the missing range — no gap, no re-delivery.
    let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(17));
    let fps = Arc::new(FailpointFs::new());
    let central = CentralServer::with_scheme(vb(), signer.clone())
        .with_delta_retention(RETENTION)
        .with_durability(fps.clone(), config())
        .expect("durability init");
    let mut cluster = ClusterCoordinator::from_central(central, 2);
    cluster.create_table(spec().build());
    let schema = cluster.central().schema(TABLE).unwrap().clone();

    for k in [200, 201, 202] {
        cluster.insert(TABLE, tuple(&schema, k)).unwrap();
    }
    cluster
        .update_batch(
            TABLE,
            vec![
                UpdateOp::Insert(tuple(&schema, 203)),
                UpdateOp::Insert(tuple(&schema, 204)),
            ],
        )
        .unwrap();
    cluster.sync().expect("edges drain");
    let before = cluster.lag_report();
    assert!(before.iter().all(|l| l.lag == 0));

    // Commit at the central only — the fan-out never happens.
    cluster
        .central_mut()
        .insert(TABLE, tuple(&schema, 205))
        .unwrap();
    let head_before_crash = cluster.central().delta_log().next_seq();
    fps.kill();

    let recovered = CentralServer::recover(
        vb(),
        signer.clone(),
        Arc::new(fps.crash_image()) as Arc<dyn Vfs>,
        config(),
    )
    .expect("recovery");
    assert_eq!(
        recovered.delta_log().next_seq(),
        head_before_crash,
        "durable commit missing after recovery"
    );

    cluster.adopt_central(recovered).expect("cursors intact");
    cluster.sync().expect("resubscription drains cleanly");
    let after = cluster.lag_report();
    for lag in &after {
        assert_eq!(lag.lag, 0, "edge {} not caught up", lag.edge);
        assert_eq!(
            lag.applied_seq, head_before_crash,
            "edge {} position wrong after resubscription",
            lag.edge
        );
    }
    // An out-of-order or duplicate delta would have tripped the edge's
    // replay guard (`OutOfOrder`) during sync — a clean drain plus the
    // exact head position is the no-gap/no-duplicate proof.

    // Adopting a central whose history rolled back must be refused.
    let mut stale = CentralServer::with_scheme(vb(), signer).with_delta_retention(RETENTION);
    stale.create_table(spec().build());
    assert!(matches!(
        cluster.adopt_central(stale),
        Err(ClusterError::RolledBack { .. })
    ));
}

#[test]
fn torn_commit_txn_never_recovers_a_table_subset() {
    // Direct all-or-nothing proof: a txn touching t0 AND t1 whose
    // single `CommitTxn` append tears at any offset — before, inside
    // the checksum, inside section one, between sections, or at the
    // very end — recovers either with BOTH tables advanced or with
    // NEITHER. A recovered image holding the t0 keys without the t1
    // keys (or vice versa) would be exactly the partial-flush bug the
    // txn protocol exists to kill.
    for keep in [0usize, 4, 6, 20, 80, 150, 300] {
        let ctx = format!("[torn txn keep={keep}]");
        let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(29));
        let fps = Arc::new(FailpointFs::new());
        let mut central = CentralServer::with_scheme(vb(), signer.clone())
            .with_delta_retention(RETENTION)
            .with_durability(fps.clone(), config())
            .expect("durability init");
        central.create_table(spec().build());
        central.create_table(spec2().build());
        let s0 = central.schema(TABLE).unwrap().clone();
        let s1 = central.schema(TABLE2).unwrap().clone();

        // A fully durable baseline txn first, so recovery has a real
        // committed txn to replay in front of the torn one.
        let mut base = central.begin_txn();
        base.stage(TABLE, UpdateOp::Insert(tuple(&s0, 400)))
            .stage(TABLE2, UpdateOp::Insert(tuple(&s1, 401)));
        central.commit_txn(base).expect("baseline txn");

        fps.arm(FailPoint::TornAppend {
            file: "wal".into(),
            keep,
        });
        let mut doomed = central.begin_txn();
        doomed
            .stage(TABLE, UpdateOp::Insert(tuple(&s0, 410)))
            .stage(TABLE2, UpdateOp::Insert(tuple(&s1, 411)))
            .stage(TABLE, UpdateOp::Insert(tuple(&s0, 412)));
        let _ = central.commit_txn(doomed); // dies at the append
        drop(central);

        let recovered = CentralServer::recover(
            vb(),
            signer,
            Arc::new(fps.crash_image()) as Arc<dyn Vfs>,
            config(),
        )
        .unwrap_or_else(|e| panic!("{ctx} recovery failed: {e}"));

        // The baseline txn is acked and fully durable on both tables.
        let t0 = recovered.store(TABLE).unwrap();
        let t1 = recovered.store(TABLE2).unwrap();
        assert!(t0.get(400).is_some(), "{ctx} baseline t0 key lost");
        assert!(t1.get(401).is_some(), "{ctx} baseline t1 key lost");

        // The torn txn is all-or-nothing across tables.
        let t0_in = t0.get(410).is_some() && t0.get(412).is_some();
        let t1_in = t1.get(411).is_some();
        assert_eq!(
            t0_in, t1_in,
            "{ctx} recovered a table subset of the torn txn (t0={t0_in}, t1={t1_in})"
        );
        // And the log position agrees with whichever side survived.
        let expect_seq = if t0_in { 5 } else { 2 };
        assert_eq!(
            recovered.delta_log().next_seq(),
            expect_seq,
            "{ctx} log head disagrees with recovered stores"
        );
    }
}
