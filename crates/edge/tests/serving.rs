//! Concurrent serving stress tests: readers must always verify against
//! a consistent snapshot while a writer streams deltas in, and the
//! response cache must be invisible to clients (hits byte-identical to
//! cold executions).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use vbx_core::{decode_compact_response, encode_response, CostMeter, RangeQuery, VbTreeConfig};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::{Acc256, KeyRegistry, Signer};
use vbx_edge::{CentralServer, EdgeServer, KeyFreshnessPolicy, SchemeClient, VbScheme};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Tuple, Value};

fn setup(rows: u64) -> (CentralServer<VbScheme<4>>, EdgeServer<VbScheme<4>>) {
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(42, 1));
    let mut central = CentralServer::new(acc, signer, VbTreeConfig::with_fanout(8));
    central.create_table(
        WorkloadSpec {
            table: "items".into(),
            ..WorkloadSpec::new(rows, 3, 8)
        }
        .build(),
    );
    let edge = EdgeServer::from_bundle(central.bundle());
    (central, edge)
}

/// 4 reader threads hammering the range pipeline (a mix of hot and
/// rotating ranges, so both cache hits and cold executions race the
/// writer) while the writer applies 100 signed deltas. Every response
/// must verify: a reader sees either the pre-delta or the post-delta
/// snapshot, never a half-applied store.
#[test]
fn readers_verify_while_writer_applies_100_deltas() {
    let rows = 300u64;
    let (mut central, edge) = setup(rows);
    let schema = central.tree("items").unwrap().schema().clone();
    let scheme = edge.scheme().clone();
    let client = SchemeClient::new(scheme, edge.schemas());

    // The clients' copy of the key directory (no rotation here).
    let mut registry = KeyRegistry::new();
    registry.publish(MockSigner::with_version(42, 1).verifier(), 0);

    let stop = AtomicBool::new(false);
    let verified = AtomicU64::new(0);
    let failures = AtomicU64::new(0);

    // Warm the hot range so the very first delta invalidates a live
    // entry even under unlucky scheduling.
    edge.query_range("items", &RangeQuery::select_all(10, 60))
        .unwrap();

    std::thread::scope(|s| {
        let edge = &edge;
        let client = &client;
        let registry = &registry;
        let stop = &stop;
        let verified = &verified;
        let failures = &failures;
        let central = &mut central;

        for reader in 0..4u64 {
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) || i < 20 {
                    // Hot range (cache-friendly) and a rotating window.
                    let q = if i % 3 == 0 {
                        RangeQuery::select_all(10, 60)
                    } else {
                        let lo = (reader * 31 + i * 7) % rows;
                        RangeQuery::select_all(lo, lo + 25)
                    };
                    let resp = edge.query_range("items", &q).unwrap();
                    match client.verify_range(
                        "items",
                        &q,
                        &resp,
                        registry,
                        KeyFreshnessPolicy::RequireCurrent,
                    ) {
                        Ok(_) => verified.fetch_add(1, Ordering::Relaxed),
                        Err(_) => failures.fetch_add(1, Ordering::Relaxed),
                    };
                    i += 1;
                }
            });
        }

        s.spawn(move || {
            for i in 0..100u64 {
                let delta = if i % 2 == 0 {
                    let key = 10_000 + i;
                    let t = Tuple::new(
                        &schema,
                        key,
                        vec![
                            Value::from(format!("new{key}")),
                            Value::from("w"),
                            Value::from((i % 97) as i64),
                        ],
                    )
                    .unwrap();
                    central.insert("items", t).unwrap()
                } else {
                    central.delete("items", i).unwrap()
                };
                edge.apply_delta(&delta).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "every concurrently-served response must verify"
    );
    assert!(
        verified.load(Ordering::Relaxed) >= 80,
        "readers actually ran"
    );
    assert_eq!(edge.applied_seq(), 100);
    // The replica converged to the master.
    assert_eq!(
        edge.tree("items").unwrap().root_digest().exp,
        central.tree("items").unwrap().root_digest().exp
    );
    // The writer raced real cached entries: the hot range must have hit.
    let stats = edge.service().cache_stats();
    assert!(stats.hits > 0, "hot range should produce cache hits");
    assert!(
        stats.invalidated > 0,
        "deltas must invalidate cached entries"
    );
}

/// A cache hit must be indistinguishable from a cold execution on the
/// wire, and a delta must invalidate — never serve — stale entries.
#[test]
fn cache_hits_byte_identical_and_invalidated_on_delta() {
    let (mut central, edge) = setup(120);
    let sql = "SELECT a0, a2 FROM items WHERE id BETWEEN 10 AND 80 AND a2 >= 0";

    let (_, cold) = edge.query_sql(sql).unwrap();
    let after_cold = edge.service().cache_stats();
    assert_eq!(after_cold.hits, 0);
    assert_eq!(after_cold.misses, 1);

    let (_, hot) = edge.query_sql(sql).unwrap();
    let after_hot = edge.service().cache_stats();
    assert_eq!(after_hot.hits, 1);
    assert_eq!(
        encode_response(&cold),
        encode_response(&hot),
        "cache hit must be byte-identical to the cold execution"
    );

    // Same range, different residual: its own slot, not a false hit.
    let (_, other) = edge
        .query_sql("SELECT a0, a2 FROM items WHERE id BETWEEN 10 AND 80 AND a2 >= 90")
        .unwrap();
    assert!(other.rows.len() < hot.rows.len());

    // A delta on the table invalidates: the next query re-executes
    // against the new snapshot and reflects the deletion.
    assert!(hot.rows.iter().any(|r| r.key == 40));
    let delta = central.delete("items", 40).unwrap();
    edge.apply_delta(&delta).unwrap();
    let (_, fresh) = edge.query_sql(sql).unwrap();
    assert!(fresh.rows.iter().all(|r| r.key != 40));
    assert!(edge.service().cache_stats().invalidated >= 1);
}

/// The compact (`VBX4`) pipeline under the same contract: hits are
/// byte-identical to cold executions, the cached prefix never replays a
/// stale freshness suffix, and a delta invalidates the prefix cache.
#[test]
fn compact_cache_hits_byte_identical_with_live_freshness() {
    let (mut central, edge) = setup(120);
    let verifier = MockSigner::with_version(42, 1).verifier();
    let acc = Acc256::test_default();
    let schema = edge.schemas().get("items").unwrap().clone();
    let queries = vec![
        RangeQuery::select_all(10, 61),
        RangeQuery::select_all(50, 101),
    ];

    let cold = edge
        .query_compact("items", &queries, Some(&*verifier))
        .unwrap();
    let after_cold = edge.service().compact_cache_stats();
    assert_eq!((after_cold.hits, after_cold.misses), (0, 1));

    let hot = edge
        .query_compact("items", &queries, Some(&*verifier))
        .unwrap();
    assert_eq!(edge.service().compact_cache_stats().hits, 1);
    assert_eq!(
        cold, hot,
        "compact cache hit must be byte-identical to the cold execution"
    );
    let resp = decode_compact_response(&hot, &acc).unwrap();
    let mut meter = CostMeter::default();
    let batch = edge
        .scheme()
        .verify_compact(&schema, &*verifier, &queries, &resp, &mut meter)
        .expect("cached compact response verifies");
    assert_eq!(batch.signatures_checked, 1, "one condensed sweep");

    // Aggregated and per-signature encodings of the same ranges must
    // occupy different cache slots — a false hit would hand a client
    // expecting individual signatures a bare-digest stream.
    let plain = edge.query_compact("items", &queries, None).unwrap();
    assert_ne!(plain, hot);
    assert_eq!(edge.service().compact_cache_stats().misses, 2);

    // Advancing the replication position without touching the table
    // (foreign-table deltas) keeps the prefix cached but must re-stamp
    // the suffix: cached VO bytes never replay a stale position.
    edge.service().skip_deltas(0, 5).unwrap();
    let restamped = edge
        .query_compact("items", &queries, Some(&*verifier))
        .unwrap();
    assert_ne!(restamped, hot, "freshness suffix must move");
    let resp = decode_compact_response(&restamped, &acc).unwrap();
    assert_eq!(resp.freshness.applied_seq, 5);
    assert_eq!(
        edge.service().compact_cache_stats().hits,
        2,
        "the prefix itself was served from cache"
    );

    // A delta on the table invalidates the prefix cache; the next
    // compact response reflects the deletion.
    assert!(resp
        .parts
        .iter()
        .any(|p| p.rows.iter().any(|r| r.key == 40)));
    let delta = central.delete("items", 40).unwrap();
    // The edge skipped ahead of the central's sequence above, so align
    // the delta's position with the edge's.
    let delta = vbx_edge::SignedDelta { seq: 5, ..delta };
    edge.apply_delta(&delta).unwrap();
    let fresh = edge
        .query_compact("items", &queries, Some(&*verifier))
        .unwrap();
    let resp = decode_compact_response(&fresh, &acc).unwrap();
    assert!(resp
        .parts
        .iter()
        .all(|p| p.rows.iter().all(|r| r.key != 40)));
    assert!(edge.service().compact_cache_stats().invalidated >= 1);
    let mut meter = CostMeter::default();
    edge.scheme()
        .verify_compact(&schema, &*verifier, &queries, &resp, &mut meter)
        .expect("post-delta compact response verifies");
}

/// Tampered compact responses must be detected through the same
/// pipeline — and must never come from (or land in) the prefix cache.
#[test]
fn compact_tamper_bypasses_cache_and_is_detected() {
    let (_central, edge) = setup(80);
    let verifier = MockSigner::with_version(42, 1).verifier();
    let acc = Acc256::test_default();
    let schema = edge.schemas().get("items").unwrap().clone();
    let queries = vec![RangeQuery::select_all(5, 63)];

    // Warm the cache honestly.
    let honest = edge
        .query_compact("items", &queries, Some(&*verifier))
        .unwrap();
    let mut meter = CostMeter::default();
    edge.scheme()
        .verify_compact(
            &schema,
            &*verifier,
            &queries,
            &decode_compact_response(&honest, &acc).unwrap(),
            &mut meter,
        )
        .expect("honest response verifies");

    for mode in [
        vbx_edge::TamperMode::MutateValue,
        vbx_edge::TamperMode::InjectRow,
        vbx_edge::TamperMode::DropRow,
    ] {
        edge.set_tamper(mode.clone());
        let bytes = edge
            .query_compact("items", &queries, Some(&*verifier))
            .unwrap();
        assert_ne!(bytes, honest, "tampering must change the wire bytes");
        let resp = decode_compact_response(&bytes, &acc).unwrap();
        let mut meter = CostMeter::default();
        let verdict = edge
            .scheme()
            .verify_compact(&schema, &*verifier, &queries, &resp, &mut meter);
        assert!(verdict.is_err(), "{mode:?} must be detected");
    }

    // The VB-tree's documented completeness boundary (§3.1): a
    // reclassification drop balances the VO on both encodings — it
    // verifies, but the victim is silently gone.
    edge.set_tamper(vbx_edge::TamperMode::DropAndReclassify { key: 30 });
    let bytes = edge
        .query_compact("items", &queries, Some(&*verifier))
        .unwrap();
    let resp = decode_compact_response(&bytes, &acc).unwrap();
    let mut meter = CostMeter::default();
    let batch = edge
        .scheme()
        .verify_compact(&schema, &*verifier, &queries, &resp, &mut meter)
        .expect("reclassification drop is outside the detection boundary");
    assert!(batch.rows.iter().all(|r| r.key != 30));
    edge.set_tamper(vbx_edge::TamperMode::None);

    // The tampered round-trips polluted nothing: the honest bytes are
    // still what the cache serves.
    let again = edge
        .query_compact("items", &queries, Some(&*verifier))
        .unwrap();
    assert_eq!(again, honest);
}
