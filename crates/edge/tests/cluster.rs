//! Cluster regression tests: sharded fan-out, freshness-verified reads
//! (a lagging edge is rejected under a tight policy and accepted once
//! its subscription queue drains), the tamper matrix re-run through the
//! coordinator's routed-query path, and the bounded `DeltaLog` cursor
//! API.

use std::sync::Arc;
use vbx_baselines::{MerkleScheme, NaiveScheme};
use vbx_core::{
    AuthScheme, ClientVerifier, FreshnessPolicy, RangeQuery, TamperMode, VbScheme, VbTreeConfig,
    VerifyError,
};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_edge::{
    ClusterConfig, ClusterCoordinator, ClusterError, DeltaLog, KeyFreshnessPolicy, SchemeClient,
    SignedDelta, UpdateOp,
};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Schema, Tuple, Value};

const SEED_VERSION: u64 = 9;

fn cluster(tables: usize, rows: u64, edges: usize) -> ClusterCoordinator<VbScheme<4>> {
    let signer = Arc::new(MockSigner::with_version(SEED_VERSION, 1));
    let scheme = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(6));
    let mut c = ClusterCoordinator::new(
        scheme,
        signer,
        ClusterConfig {
            edges,
            retention: 64,
            ..ClusterConfig::default()
        },
    );
    for i in 0..tables {
        let spec = WorkloadSpec {
            table: format!("t{i}"),
            ..WorkloadSpec::new(rows, 3, 8)
        };
        c.create_table(spec.build());
    }
    c
}

fn fresh_tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("new{key}")),
            Value::from("w"),
            Value::from((key % 97) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

/// Verify a routed response against the owner position under `policy`.
fn verify_routed(
    c: &ClusterCoordinator<VbScheme<4>>,
    table: &str,
    q: &RangeQuery,
    policy: FreshnessPolicy,
) -> Result<usize, VerifyError> {
    let routed = c.query(table, q).expect("route + serve");
    let schema = c.central().schema(table).expect("base table").clone();
    let acc = c.central().accumulator().clone();
    let (owner_seq, owner_clock) = c.owner_position();
    let verifier = c
        .central()
        .registry()
        .verifier(routed.response.vo.key_version)
        .expect("published key");
    ClientVerifier::new(&acc, &schema)
        .with_freshness(policy, owner_seq, owner_clock)
        .verify(verifier.as_ref(), q, &routed.response)
        .map(|r| r.rows)
}

#[test]
fn sharding_distributes_tables_and_routes_queries() {
    let mut c = cluster(5, 40, 3);
    c.sync().unwrap(); // deliver the initial owner stamp to every edge
    let map = c.shard_map();
    assert_eq!(map.num_tables(), 5);
    // Least-loaded assignment: no edge owns more than ceil(5/3) tables.
    let loads: Vec<usize> = (0..3).map(|e| map.tables_of(e).len()).collect();
    assert_eq!(loads.iter().sum::<usize>(), 5);
    assert!(
        loads.iter().all(|&l| l <= 2),
        "unbalanced shard map {loads:?}"
    );
    // Queries land on the owning edge and verify as fresh.
    for i in 0..5 {
        let table = format!("t{i}");
        let owner = c.route(&table).unwrap();
        assert_eq!(map.owner(&table), Some(owner));
        let rows = verify_routed(
            &c,
            &table,
            &RangeQuery::select_all(5, 25),
            FreshnessPolicy::strict(),
        )
        .expect("fresh edge must verify");
        assert_eq!(rows, 21);
    }
}

#[test]
fn lagging_edge_rejected_then_accepted_after_drain() {
    let mut c = cluster(3, 50, 3);
    let victim_table = "t0".to_string();
    let owner = c.route(&victim_table).unwrap();
    let schema = c.central().tree(&victim_table).unwrap().schema().clone();

    // Start from a fully-synced cluster so the edge holds a stamp.
    c.sync().unwrap();

    // Commit updates; fan-out enqueues them but the owner edge is never
    // drained — an honest replica that simply fell behind.
    for k in 0..4u64 {
        c.insert(&victim_table, fresh_tuple(&schema, 1_000 + k))
            .unwrap();
    }
    let lag = c.lag_report()[owner];
    assert_eq!(lag.lag, 4, "edge {owner} should lag 4 deltas: {lag:?}");
    assert_eq!(lag.queued, 4);

    // A tight policy rejects the stale (but honest!) response as
    // Stale — distinct from any tampering error.
    let q = RangeQuery::select_all(0, 2_000);
    let err = verify_routed(&c, &victim_table, &q, FreshnessPolicy::max_lag(0)).unwrap_err();
    assert!(
        matches!(err, VerifyError::Stale { lag: Some(4), .. }),
        "expected Stale with lag 4, got {err:?}"
    );
    // A lenient policy accepts the same response.
    verify_routed(&c, &victim_table, &q, FreshnessPolicy::max_lag(4))
        .expect("policy with slack accepts the lagging edge");

    // Draining the subscription queue catches the edge up; the strict
    // policy accepts and the new rows are visible + verified.
    c.drain_edge(owner, usize::MAX).unwrap();
    assert_eq!(c.lag_report()[owner].lag, 0);
    let rows = verify_routed(&c, &victim_table, &q, FreshnessPolicy::strict())
        .expect("caught-up edge must verify strictly");
    assert_eq!(rows, 54);
}

#[test]
fn missing_stamp_is_stale_under_policy() {
    // A freshly-provisioned cluster that never synced has no owner
    // stamps at the edges: verification without a policy passes, with a
    // policy it reports Stale { None, None }.
    let c = cluster(1, 30, 3);
    let q = RangeQuery::select_all(0, 10);
    let routed = c.query("t0", &q).unwrap();
    assert!(routed.response.freshness.stamp.is_none());
    let err = verify_routed(&c, "t0", &q, FreshnessPolicy::default()).unwrap_err();
    assert_eq!(
        err,
        VerifyError::Stale {
            lag: None,
            age: None
        }
    );
}

#[test]
fn heartbeats_bound_stamp_age() {
    let mut c = cluster(2, 40, 3);
    c.sync().unwrap();
    c.broadcast_heartbeat().unwrap();
    let q = RangeQuery::select_all(0, 20);
    verify_routed(&c, "t0", &q, FreshnessPolicy::strict()).expect("just heartbeated");

    // The owner's clock advances twice without the edges hearing about
    // it (a partition): zero delta lag, but the stamp ages out.
    c.central_mut().heartbeat();
    c.central_mut().heartbeat();
    let err = verify_routed(&c, "t0", &q, FreshnessPolicy::max_age(1)).unwrap_err();
    assert!(
        matches!(err, VerifyError::Stale { age: Some(2), .. }),
        "expected Stale with age 2, got {err:?}"
    );
    // Contact restored: the broadcast delivers the fresh stamp.
    c.broadcast_heartbeat().unwrap();
    verify_routed(&c, "t0", &q, FreshnessPolicy::max_age(0)).expect("stamp refreshed");
}

#[test]
fn rotation_reads_as_stale_not_tampering() {
    // After a key rotation, an edge still serving old-key VOs holds a
    // stamp from the *new* key generation: that stamp cannot prove
    // freshness for the old-key response, and the client must report
    // Stale — never BadSignature (which would read as tampering by an
    // honest replica).
    let mut c = cluster(1, 30, 3);
    c.sync().unwrap();
    let q = RangeQuery::select_all(0, 10);
    verify_routed(&c, "t0", &q, FreshnessPolicy::strict()).expect("fresh before rotation");

    c.central_mut()
        .rotate_key(Arc::new(MockSigner::with_version(SEED_VERSION, 2)));
    let owner = c.route("t0").unwrap();
    // The subscription delivers the new-generation stamp, but the
    // edge's replica tree (and hence its VOs) is still v1 — it has not
    // been re-bundled yet.
    c.drain_edge(owner, usize::MAX).unwrap();
    let routed = c.query("t0", &q).unwrap();
    assert_eq!(routed.response.vo.key_version, 1);
    assert_eq!(
        routed
            .response
            .freshness
            .stamp
            .as_ref()
            .unwrap()
            .key_version,
        2
    );
    let err = verify_routed(&c, "t0", &q, FreshnessPolicy::default()).unwrap_err();
    assert_eq!(
        err,
        VerifyError::Stale {
            lag: None,
            age: None
        },
        "cross-generation stamp must read as stale, not forged"
    );
}

#[test]
fn foreign_deltas_skip_but_keep_positions_contiguous() {
    let mut c = cluster(2, 30, 2);
    let schema0 = c.central().tree("t0").unwrap().schema().clone();
    let owner0 = c.route("t0").unwrap();
    let other = 1 - owner0;

    c.insert("t0", fresh_tuple(&schema0, 500)).unwrap();
    c.sync().unwrap();
    // The non-owner consumed the delta as a placeholder: position
    // advanced, replica untouched, strict freshness still verifies.
    assert_eq!(c.edge(other).unwrap().applied_seq(), 1);
    let t1 = c.shard_map().tables_of(other)[0].to_string();
    verify_routed(
        &c,
        &t1,
        &RangeQuery::select_all(0, 10),
        FreshnessPolicy::strict(),
    )
    .expect("non-owner stays fresh after skipping a foreign delta");
}

#[test]
fn scatter_gather_serves_multi_table_joins() {
    let mut c = cluster(4, 40, 3);
    c.sync().unwrap();
    let legs = vec![
        ("t0".to_string(), RangeQuery::select_all(5, 15)),
        ("t1".to_string(), RangeQuery::select_all(5, 15)),
        ("t3".to_string(), RangeQuery::select_all(20, 30)),
    ];
    let responses = c.scatter_gather(&legs).unwrap();
    assert_eq!(responses.len(), 3);
    // Legs land on their owning edges (t0 and t3 share an owner only if
    // the shard map says so) and every leg verifies independently.
    for (routed, (table, q)) in responses.iter().zip(&legs) {
        assert_eq!(routed.edge, c.route(table).unwrap());
        let rows = verify_routed(&c, table, q, FreshnessPolicy::strict()).unwrap();
        assert_eq!(rows, routed.response.rows.len());
        assert_eq!(rows, 11);
    }
    // An unassigned table is a routing error, not a panic.
    assert!(matches!(
        c.scatter_gather(&[("nope".into(), RangeQuery::select_all(0, 1))]),
        Err(ClusterError::UnknownTable(_))
    ));
}

/// The tamper matrix re-run through the coordinator's routed path: the
/// detection verdicts must be exactly those of the direct
/// `tamper_matrix` pipeline.
fn detected_via_cluster<S>(scheme: S, mode: TamperMode) -> bool
where
    S: AuthScheme + Clone,
    S::Store: Clone,
{
    let signer = Arc::new(MockSigner::with_version(77, 1));
    let mut c = ClusterCoordinator::new(
        scheme.clone(),
        signer,
        ClusterConfig {
            edges: 3,
            retention: 64,
            ..ClusterConfig::default()
        },
    );
    let spec = WorkloadSpec::new(60, 4, 10);
    let name = spec.table.clone();
    c.create_table(spec.build());

    // Exercise replication through the fan-out path before tampering.
    let schema = c.central().schema(&name).expect("created").clone();
    let tuple = Tuple::new(
        &schema,
        500,
        vec![
            Value::from("late"),
            Value::from("x"),
            Value::from("y"),
            Value::from(9i64),
        ],
    )
    .unwrap();
    c.insert(&name, tuple).unwrap();
    c.sync().unwrap();

    let owner = c.route(&name).unwrap();
    c.edge_mut(owner).unwrap().set_tamper(mode);
    let query = RangeQuery::select_all(5, 45);
    let routed = c.query(&name, &query).unwrap();

    let client = SchemeClient::new(scheme, c.edge(owner).unwrap().schemas());
    client
        .verify_range(
            &name,
            &query,
            &routed.response,
            c.central().registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .is_err()
}

#[test]
fn tamper_matrix_holds_through_the_coordinator() {
    let acc = Acc256::test_default();
    let modes = [
        TamperMode::MutateValue,
        TamperMode::InjectRow,
        TamperMode::DropRow,
        TamperMode::DropAndReclassify { key: 20 },
    ];
    let expectations: [(&str, [bool; 4]); 3] = [
        ("vb-tree", [true, true, true, false]),
        ("naive", [true, true, false, false]),
        ("merkle", [true, true, true, true]),
    ];
    for (scheme_name, expected) in expectations {
        for (mode, want) in modes.iter().zip(expected) {
            let got = match scheme_name {
                "vb-tree" => detected_via_cluster(
                    VbScheme::new(acc.clone(), VbTreeConfig::with_fanout(6)),
                    mode.clone(),
                ),
                "naive" => detected_via_cluster(NaiveScheme::<4>::new(acc.clone()), mode.clone()),
                _ => detected_via_cluster(MerkleScheme, mode.clone()),
            };
            assert_eq!(
                got, want,
                "{scheme_name} × {mode:?} through the coordinator: expected detected={want}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// DeltaLog: bounded retention + cursors
// ---------------------------------------------------------------------

fn unit_delta(seq: u64) -> SignedDelta<()> {
    SignedDelta {
        seq,
        table: "t".into(),
        op: UpdateOp::Delete(seq),
        payload: (),
        key_version: 1,
    }
}

#[test]
fn delta_log_retention_evicts_and_reports_truncation() {
    let mut log: DeltaLog<()> = DeltaLog::new(3);
    for seq in 0..5 {
        log.push(unit_delta(seq)).unwrap();
    }
    assert_eq!(log.len(), 3);
    assert_eq!(log.oldest_seq(), 2);
    assert_eq!(log.next_seq(), 5);

    // A cursor inside the window clones only the tail.
    let tail = log.collect_since(3).unwrap();
    assert_eq!(
        tail.iter().map(|e| e.start_seq()).collect::<Vec<_>>(),
        vec![3, 4]
    );
    // At the head: empty, not an error.
    assert!(log.collect_since(5).unwrap().is_empty());
    // Beyond the head (replica restored from a newer snapshot): empty.
    assert!(log.collect_since(9).unwrap().is_empty());
    // Behind the window: explicit truncation, never a silent gap.
    assert!(matches!(
        log.collect_since(1),
        Err(vbx_edge::DeltaLogError::Truncated {
            requested: 1,
            oldest: 2
        })
    ));
}

#[test]
fn delta_log_rejects_gaps() {
    // Non-contiguous appends are a structured error, not a panic: the
    // recovery path replays WAL records through `push`/`push_batch` and
    // must surface a gap as corruption instead of aborting the process.
    let mut log: DeltaLog<()> = DeltaLog::new(8);
    log.push(unit_delta(0)).unwrap();
    assert_eq!(
        log.push(unit_delta(2)),
        Err(vbx_edge::DeltaLogError::NonContiguous {
            expected: 1,
            got: 2
        })
    );
    // A rejected push leaves the log untouched…
    assert_eq!(log.next_seq(), 1);
    // …and the same holds for batches: gaps and empties are rejected.
    assert!(matches!(
        log.push_batch(unit_batch(5, 2)),
        Err(vbx_edge::DeltaLogError::NonContiguous {
            expected: 1,
            got: 5
        })
    ));
    assert!(matches!(
        log.push_batch(unit_batch(1, 0)),
        Err(vbx_edge::DeltaLogError::EmptyBatch)
    ));
    log.push(unit_delta(1)).unwrap();
    assert_eq!(log.next_seq(), 2);
}

fn unit_batch(start_seq: u64, k: u64) -> vbx_edge::DeltaBatch<()> {
    vbx_edge::DeltaBatch {
        start_seq,
        table: "t".into(),
        ops: (start_seq..start_seq + k).map(UpdateOp::Delete).collect(),
        payloads: vec![()],
        key_version: 1,
        stamp: None,
    }
}

#[test]
fn delta_log_batches_occupy_ranges_and_evict_as_units() {
    // Retention counts ops: a 3-op batch + 2 singles = 5 ops in a
    // window of 4 evicts the whole batch (entries leave as the unit
    // they arrived as).
    let mut log: DeltaLog<()> = DeltaLog::new(4);
    log.push_batch(unit_batch(0, 3)).unwrap();
    log.push(unit_delta(3)).unwrap();
    log.push(unit_delta(4)).unwrap();
    assert_eq!(log.len(), 2);
    assert_eq!(log.oldest_seq(), 3);
    assert_eq!(log.next_seq(), 5);

    // Cursors on batch boundaries: a batch spans [5, 9).
    log.push_batch(unit_batch(5, 4)).unwrap();
    assert_eq!(log.next_seq(), 9);
    let tail = log.collect_since(5).unwrap();
    assert_eq!(tail.len(), 1);
    assert_eq!((tail[0].start_seq(), tail[0].end_seq()), (5, 9));
    assert_eq!(tail[0].ops(), 4);
    // A cursor inside the batch's range still surfaces the batch (a
    // subscriber can only land there by breaking the end_seq rule, and
    // re-delivery beats a silent gap)…
    let mid = log.collect_since(7).unwrap();
    assert_eq!(mid[0].start_seq(), 5);
    // …and a cursor at the batch's end sees nothing new.
    assert!(log.collect_since(9).unwrap().is_empty());

    // The newest entry is always kept, even when it alone exceeds the
    // retention window.
    let mut log: DeltaLog<()> = DeltaLog::new(2);
    log.push_batch(unit_batch(0, 5)).unwrap();
    assert_eq!(log.len(), 5);
    assert_eq!(log.next_seq(), 5);
    log.push(unit_delta(5)).unwrap();
    assert_eq!(log.oldest_seq(), 5, "oversized batch evicted as a unit");
}

#[test]
fn coordinator_surfaces_truncated_subscriptions() {
    // Retention 2: an edge that missed more than 2 deltas cannot
    // resubscribe and the coordinator says so explicitly.
    let signer = Arc::new(MockSigner::with_version(SEED_VERSION, 1));
    let scheme = VbScheme::<4>::new(Acc256::test_default(), VbTreeConfig::with_fanout(6));
    let mut c = ClusterCoordinator::new(
        scheme,
        signer,
        ClusterConfig {
            edges: 2,
            retention: 2,
            ..ClusterConfig::default()
        },
    );
    let spec = WorkloadSpec {
        table: "t0".into(),
        ..WorkloadSpec::new(30, 3, 8)
    };
    c.create_table(spec.build());
    let schema = c.central().tree("t0").unwrap().schema().clone();
    // Three commits without fan-out: the first falls out of the window.
    for k in 0..3u64 {
        c.central_mut()
            .insert("t0", fresh_tuple(&schema, 600 + k))
            .unwrap();
    }
    assert!(matches!(
        c.fan_out(),
        Err(ClusterError::Truncated(
            vbx_edge::DeltaLogError::Truncated { .. }
        ))
    ));
}

#[test]
fn slow_edge_trips_queue_bound_and_recovers_by_resubscribing() {
    let signer = Arc::new(MockSigner::with_version(SEED_VERSION, 1));
    let scheme = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(6));
    let mut c = ClusterCoordinator::new(
        scheme,
        signer,
        ClusterConfig {
            edges: 2,
            retention: 64,
            max_queue: 3,
        },
    );
    let spec = WorkloadSpec {
        table: "t0".to_string(),
        ..WorkloadSpec::new(40, 3, 8)
    };
    c.create_table(spec.build());
    c.sync().unwrap();
    let owner = c.route("t0").unwrap();
    let other_edge = 1 - owner;
    let schema = c.central().schema("t0").unwrap().clone();

    // Commit past the bound while only the *other* replica keeps up:
    // the owner's bounded queue trips (placeholders and deltas alike
    // count), the backlog is dropped, and the edge is marked
    // disconnected — the writer itself never blocks or errors.
    for k in 0..6u64 {
        c.insert("t0", fresh_tuple(&schema, 2_000 + k)).unwrap();
        c.fan_out().unwrap();
        c.drain_edge(other_edge, usize::MAX).unwrap();
    }
    let lag = c.lag_report()[owner];
    assert!(lag.disconnected, "queue bound of 3 must trip on 6 deltas");
    assert_eq!(lag.queued, 0, "a disconnected edge buffers nothing");

    // Explicit error instead of silent growth: draining reports the
    // disconnect, and further commits skip the edge entirely.
    match c.drain_edge(owner, usize::MAX) {
        Err(ClusterError::Disconnected { edge, bound, .. }) => {
            assert_eq!(edge, owner);
            assert_eq!(bound, 3);
        }
        other => panic!("expected Disconnected, got {other:?}"),
    }
    c.insert("t0", fresh_tuple(&schema, 2_100)).unwrap();
    assert_eq!(
        c.sync().unwrap(),
        1,
        "sync serves the healthy edge, leaves the dead one alone"
    );
    assert_eq!(c.lag_report()[owner].queued, 0);

    // The healthy edge kept replicating throughout.
    assert!(!c.lag_report()[other_edge].disconnected);
    assert_eq!(c.lag_report()[other_edge].lag, 0);

    // Resubscribing re-provisions from the central's current state:
    // cursor at head, fresh stores, strict verification green again.
    c.resubscribe_edge(owner).unwrap();
    let lag = c.lag_report()[owner];
    assert!(!lag.disconnected);
    assert_eq!(lag.lag, 0, "resubscribed edge snaps to the head");
    let q = RangeQuery::select_all(0, 3_000);
    let rows = verify_routed(&c, "t0", &q, FreshnessPolicy::strict())
        .expect("resubscribed edge must verify strictly");
    assert_eq!(rows, 47, "40 seeded + 7 inserted rows");
}

// ---------------------------------------------------------------------
// Verified sync + failover (shard-map mutation, promotion, dropped
// tables)
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "at least one edge")]
fn shard_map_with_zero_edges_panics_instead_of_clamping() {
    let _ = vbx_edge::ShardMap::new(0);
}

#[test]
fn shard_map_mutations_bump_version_and_keep_load_counts() {
    let mut m = vbx_edge::ShardMap::new(3);
    assert_eq!(m.version(), 0);
    assert_eq!(m.assign("a"), 0);
    assert_eq!(m.assign("b"), 1);
    assert_eq!(m.assign("c"), 2);
    assert_eq!(m.assign("d"), 0);
    let v_after_assign = m.version();
    assert_eq!(v_after_assign, 4, "every fresh assignment bumps");
    assert_eq!(m.assign("a"), 0, "re-assign is a no-op");
    assert_eq!(m.version(), v_after_assign);

    // Reassign moves load with the table.
    assert_eq!(m.reassign("d", 1), Some(0));
    assert_eq!(m.version(), v_after_assign + 1);
    assert_eq!(m.tables_of(0), vec!["a"]);
    assert_eq!(m.tables_of(1), vec!["b", "d"]);
    assert_eq!(m.reassign("nope", 1), None, "unknown table");
    assert_eq!(m.reassign("a", 99), None, "owner out of range");
    assert_eq!(
        m.version(),
        v_after_assign + 1,
        "failed reassigns do not bump"
    );

    // Promote moves everything the dead edge owned.
    let moved = m.promote_replica(1, 2);
    assert_eq!(moved, vec!["b".to_string(), "d".to_string()]);
    assert!(m.tables_of(1).is_empty());
    assert_eq!(m.tables_of(2), vec!["b", "c", "d"]);
    assert_eq!(m.version(), v_after_assign + 2);
    assert!(
        m.promote_replica(1, 1).is_empty(),
        "self-promotion is a no-op"
    );

    // Remove shrinks the owner's load so later assignments rebalance.
    assert_eq!(m.remove_table("c"), Some(2));
    assert_eq!(m.remove_table("c"), None);
    assert_eq!(m.num_tables(), 3);
    assert_eq!(m.version(), v_after_assign + 3);
}

#[test]
fn killing_an_edge_under_load_promotes_a_verified_standby() {
    let mut c = cluster(2, 40, 3);
    c.sync().unwrap();
    let schema0 = c.central().schema("t0").unwrap().clone();
    let schema1 = c.central().schema("t1").unwrap().clone();
    let dead = c.route("t0").unwrap();
    let standby = 2usize;
    assert_ne!(dead, standby, "t0/t1 land on edges 0/1, standby is 2");

    // Load phase: commits land while replication is in flight (the
    // queues are deliberately not fully drained).
    for k in 0..8u64 {
        c.insert("t0", fresh_tuple(&schema0, 3_000 + k)).unwrap();
        c.insert("t1", fresh_tuple(&schema1, 3_000 + k)).unwrap();
        if k % 2 == 0 {
            c.sync().unwrap();
        }
    }

    // Kill the owner of t0 mid-stream and fail over to the standby.
    let shard_version_before = c.shard_map().version();
    let moved = c.promote_replica(dead, standby).unwrap();
    assert_eq!(moved, vec!["t0".to_string()]);
    assert_eq!(c.route("t0").unwrap(), standby, "queries reroute at once");
    assert!(
        c.shard_map().version() > shard_version_before,
        "promotion must bump the shard map version"
    );
    assert!(c.lag_report()[dead].disconnected);

    // The promoted standby serves fresh, fully verified responses —
    // zero unverified rows cross a client (a response that fails
    // verification is rejected wholesale, so a strict-policy success
    // here means every row was authenticated).
    let q = RangeQuery::select_all(0, 5_000);
    let rows = verify_routed(&c, "t0", &q, FreshnessPolicy::strict())
        .expect("promoted standby must serve verifiable responses");
    assert_eq!(rows, 48, "40 seeded + 8 inserted");

    // Replication continues over the standby's existing cursor
    // subscription: later commits flow to it as the new owner.
    for k in 0..4u64 {
        c.insert("t0", fresh_tuple(&schema0, 4_000 + k)).unwrap();
    }
    c.sync().unwrap();
    let rows = verify_routed(&c, "t0", &q, FreshnessPolicy::strict())
        .expect("post-failover replication must keep verifying");
    assert_eq!(rows, 52);
    assert_eq!(c.lag_report()[standby].lag, 0);

    // t1's owner is untouched by the failover.
    let rows = verify_routed(&c, "t1", &q, FreshnessPolicy::strict()).unwrap();
    assert_eq!(rows, 48);
}

#[test]
fn promotion_of_a_disconnected_standby_reprovisions_it_verified() {
    let signer = Arc::new(MockSigner::with_version(SEED_VERSION, 1));
    let scheme = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(6));
    let mut c = ClusterCoordinator::new(
        scheme,
        signer,
        ClusterConfig {
            edges: 2,
            retention: 64,
            max_queue: 2,
        },
    );
    let spec = WorkloadSpec {
        table: "t0".to_string(),
        ..WorkloadSpec::new(30, 3, 8)
    };
    c.create_table(spec.build());
    c.sync().unwrap();
    let owner = c.route("t0").unwrap();
    let standby = 1 - owner;
    let schema = c.central().schema("t0").unwrap().clone();

    // Trip the standby's bounded queue so it is itself disconnected,
    // then kill the owner: promotion must rebuild the standby through
    // the verified resubscribe path.
    for k in 0..5u64 {
        c.insert("t0", fresh_tuple(&schema, 6_000 + k)).unwrap();
        c.fan_out().unwrap();
        c.drain_edge(owner, usize::MAX).unwrap();
    }
    assert!(c.lag_report()[standby].disconnected);

    let moved = c.promote_replica(owner, standby).unwrap();
    assert_eq!(moved, vec!["t0".to_string()]);
    let lag = c.lag_report()[standby];
    assert!(!lag.disconnected);
    assert_eq!(lag.lag, 0);
    let q = RangeQuery::select_all(0, 7_000);
    let rows = verify_routed(&c, "t0", &q, FreshnessPolicy::strict()).unwrap();
    assert_eq!(rows, 35);
}

#[test]
fn promote_replica_rejects_bad_edge_ids() {
    let mut c = cluster(1, 10, 2);
    assert!(matches!(
        c.promote_replica(7, 0),
        Err(ClusterError::UnknownEdge(7))
    ));
    assert!(matches!(
        c.promote_replica(0, 7),
        Err(ClusterError::UnknownEdge(7))
    ));
    assert!(matches!(
        c.promote_replica(1, 1),
        Err(ClusterError::UnknownEdge(1))
    ));
}

#[test]
fn resubscribe_after_dropped_table_removes_the_stale_assignment() {
    let mut c = cluster(2, 20, 1);
    c.sync().unwrap();
    assert_eq!(c.shard_map().num_tables(), 2);

    // Drop t1 from the central catalog while the shard map still
    // assigns it, then force the edge through resubscription. The old
    // code panicked on the missing schema; now the stale assignment is
    // removed and the load count shrinks.
    assert!(c.central_mut().drop_table("t1"));
    assert!(!c.central_mut().drop_table("t1"), "second drop is a no-op");
    let version_before = c.shard_map().version();
    c.resubscribe_edge(0).unwrap();
    assert_eq!(c.shard_map().num_tables(), 1);
    assert_eq!(c.shard_map().owner("t1"), None);
    assert!(c.shard_map().version() > version_before);

    // The surviving table still serves verified reads, and the freed
    // load slot is reused by the next assignment.
    let q = RangeQuery::select_all(0, 1_000);
    let rows = verify_routed(&c, "t0", &q, FreshnessPolicy::strict()).unwrap();
    assert_eq!(rows, 20);
    let spec = WorkloadSpec {
        table: "t2".to_string(),
        ..WorkloadSpec::new(10, 3, 8)
    };
    c.create_table(spec.build());
    assert_eq!(c.shard_map().num_tables(), 2);
}

#[test]
fn clone_verified_reproduces_the_store_and_rejects_a_foreign_key() {
    let c = cluster(1, 50, 1);
    let scheme = c.central().scheme().clone();
    let source = c.central().store("t0").unwrap();
    let copy = vbx_edge::clone_verified(&scheme, source, c.central().verifier()).unwrap();
    assert_eq!(copy.len(), source.len());
    assert_eq!(copy.version(), source.version());
    assert_eq!(copy.root_digest().exp, source.root_digest().exp);

    // A verifier holding a different public key refuses the stream on
    // the first chunk — nothing unverified is ever installed.
    let stranger = MockSigner::new(4_242);
    match vbx_edge::clone_verified(&scheme, source, stranger.verifier()) {
        Err(vbx_core::SyncError::BadSignature(_)) => {}
        Err(other) => panic!("expected BadSignature, got {other}"),
        Ok(_) => panic!("a foreign key must not verify the stream"),
    }
}

#[test]
fn killing_an_edge_mid_txn_never_exposes_cross_table_skew() {
    // Atomic multi-table txns under failover: every edge owning a txn
    // table receives the WHOLE atom and applies it all-or-none, so no
    // replica — and no scatter-gather reader — ever observes t0 at the
    // txn's end seq while t1 is still behind (or vice versa).
    let mut c = cluster(2, 40, 4);
    c.sync().unwrap();
    let schema0 = c.central().schema("t0").unwrap().clone();
    let schema1 = c.central().schema("t1").unwrap().clone();
    let (own0, own1) = (c.route("t0").unwrap(), c.route("t1").unwrap());
    assert_ne!(own0, own1, "t0/t1 land on distinct owners");

    // Txn 1: inserts on both tables, one envelope. Drain only t1's
    // owner — t0's owner holds the atom in its queue, "mid-txn".
    let mut txn = c.begin_txn();
    txn.stage("t0", UpdateOp::Insert(fresh_tuple(&schema0, 9_000)))
        .stage("t1", UpdateOp::Insert(fresh_tuple(&schema1, 9_001)));
    let committed = c.commit_txn(txn).expect("txn commit");
    assert_eq!(committed.sections.len(), 2);
    c.drain_edge(own1, usize::MAX).unwrap();

    // The drained owner applied the whole atom: its served table shows
    // the txn key and its position covers the txn's end seq (the t0
    // section advanced it as a placeholder). The undrained owner
    // applied nothing: no txn key, position still before the txn — so
    // a strict freshness check flags that leg as stale rather than
    // ever serving one table of the txn without the other.
    let end_seq = committed.end_seq();
    let drained = c.edge(own1).unwrap();
    assert!(drained.tree("t1").unwrap().get(9_001).is_some());
    assert_eq!(drained.applied_seq(), end_seq);
    let undrained = c.edge(own0).unwrap();
    assert!(undrained.tree("t0").unwrap().get(9_000).is_none());
    assert!(undrained.applied_seq() < committed.start_seq() + 1);

    // Kill t0's owner with the atom still queued and fail over to a
    // standby: the promoted replica rebuilds from the central's
    // post-txn state through verified chunk sync.
    let standby = (0..c.num_edges())
        .find(|e| *e != own0 && *e != own1)
        .unwrap();
    c.mark_edge_dead(own0).unwrap();
    let moved = c.promote_replica(own0, standby).unwrap();
    assert_eq!(moved, vec!["t0".to_string()]);

    // Txn 2 lands after the failover and flows to the new owner.
    let mut txn = c.begin_txn();
    txn.stage("t0", UpdateOp::Insert(fresh_tuple(&schema0, 9_100)))
        .stage("t1", UpdateOp::Insert(fresh_tuple(&schema1, 9_101)))
        .stage("t0", UpdateOp::Delete(3));
    c.commit_txn(txn).expect("post-failover txn");
    c.sync().unwrap();

    // Scatter-gather both tables and verify each leg strictly against
    // the owner position: a leg lagging behind the txn would fail as
    // Stale, so two strict passes prove the reader saw NO skew.
    let q = RangeQuery::select_all(0, 10_000);
    let legs = vec![("t0".to_string(), q.clone()), ("t1".to_string(), q.clone())];
    let acc = c.central().accumulator().clone();
    let (owner_seq, owner_clock) = c.owner_position();
    for routed in c.scatter_gather(&legs).expect("scatter-gather") {
        let schema = c.central().schema(&routed.table).unwrap().clone();
        let verifier = c
            .central()
            .registry()
            .verifier(routed.response.vo.key_version)
            .expect("published key");
        let report = ClientVerifier::new(&acc, &schema)
            .with_freshness(FreshnessPolicy::strict(), owner_seq, owner_clock)
            .verify(verifier.as_ref(), &q, &routed.response)
            .unwrap_or_else(|e| panic!("leg {} failed strict verify: {e}", routed.table));
        // t0: 40 seeded + 2 inserts - 1 delete; t1: 40 seeded + 2 inserts.
        let want = if routed.table == "t0" { 41 } else { 42 };
        assert_eq!(report.rows, want, "leg {} row count", routed.table);
    }

    // Both txns are fully visible on the serving edges, never a subset.
    for (edge, table, key) in [
        (standby, "t0", 9_000),
        (standby, "t0", 9_100),
        (own1, "t1", 9_001),
        (own1, "t1", 9_101),
    ] {
        assert!(
            c.edge(edge)
                .unwrap()
                .tree(table)
                .unwrap()
                .get(key)
                .is_some(),
            "edge {edge} missing {table}/{key} after failover"
        );
    }
}
