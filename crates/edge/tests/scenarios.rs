//! End-to-end edge-computing scenarios (Figure 2): distribution, query
//! verification, update propagation via signed deltas, tampering, key
//! rotation and stale-replay detection.

use std::sync::Arc;
use vbx_core::VbTreeConfig;
use vbx_crypto::signer::MockSigner;
use vbx_crypto::Acc256;
use vbx_edge::{
    CentralServer, ClientError, EdgeClient, EdgeServer, KeyFreshnessPolicy, TamperMode, VbScheme,
};
use vbx_query::EngineError;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Tuple, Value};

fn setup(
    rows: u64,
) -> (
    CentralServer<VbScheme<4>>,
    EdgeServer<VbScheme<4>>,
    EdgeClient<4>,
) {
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(77, 1));
    let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::with_fanout(6));
    let table = WorkloadSpec {
        table: "items".into(),
        ..WorkloadSpec::new(rows, 4, 10)
    }
    .build();
    central.create_table(table);
    let edge = EdgeServer::from_bundle(central.bundle());
    let client = EdgeClient::new(edge.schemas(), acc);
    (central, edge, client)
}

#[test]
fn distribute_query_verify() {
    let (central, edge, client) = setup(60);
    let sql = "SELECT * FROM items WHERE id BETWEEN 10 AND 30";
    let (_, resp) = edge.query_sql(sql).unwrap();
    let rows = client
        .verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
    assert_eq!(rows.rows.len(), 21);
}

#[test]
fn multiple_edges_agree() {
    let (central, edge1, client) = setup(40);
    let edge2 = EdgeServer::from_bundle(central.bundle());
    let sql = "SELECT a0 FROM items WHERE id < 15";
    let (_, r1) = edge1.query_sql(sql).unwrap();
    let (_, r2) = edge2.query_sql(sql).unwrap();
    let v1 = client
        .verify(
            sql,
            &r1,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
    let v2 = client
        .verify(
            sql,
            &r2,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
    assert_eq!(v1.rows.len(), v2.rows.len());
}

#[test]
fn update_deltas_keep_replicas_identical() {
    let (mut central, edge, client) = setup(50);
    let schema = central.tree("items").unwrap().schema().clone();

    // A mix of inserts and deletes, propagated one by one.
    for k in [200u64, 201, 305] {
        let t = Tuple::new(
            &schema,
            k,
            vec![
                Value::from(format!("new{k}")),
                Value::from("x"),
                Value::from("y"),
                Value::from((k % 100) as i64),
            ],
        )
        .unwrap();
        let delta = central.insert("items", t).unwrap();
        edge.apply_delta(&delta).unwrap();
    }
    for k in [5u64, 17] {
        let delta = central.delete("items", k).unwrap();
        edge.apply_delta(&delta).unwrap();
    }
    let delta = central.delete_range("items", 30, 40).unwrap();
    edge.apply_delta(&delta).unwrap();

    // Replica must now be digest-identical to the master.
    assert_eq!(
        central.tree("items").unwrap().root_digest().exp,
        edge.tree("items").unwrap().root_digest().exp
    );

    // Queries over the updated replica verify, including the new keys.
    let sql = "SELECT * FROM items WHERE id BETWEEN 195 AND 310";
    let (_, resp) = edge.query_sql(sql).unwrap();
    let rows = client
        .verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
    assert_eq!(rows.rows.len(), 3);

    // Deleted keys are gone.
    let sql2 = "SELECT * FROM items WHERE id BETWEEN 30 AND 40";
    let (_, resp2) = edge.query_sql(sql2).unwrap();
    assert!(resp2.rows.is_empty());
    client
        .verify(
            sql2,
            &resp2,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
}

#[test]
fn out_of_order_delta_rejected() {
    let (mut central, edge, _) = setup(20);
    let schema = central.tree("items").unwrap().schema().clone();
    let t1 = Tuple::new(
        &schema,
        100,
        vec![
            Value::from("a"),
            Value::from("b"),
            Value::from("c"),
            Value::from(1i64),
        ],
    )
    .unwrap();
    let mut t2 = t1.clone();
    t2.key = 101;
    let d1 = central.insert("items", t1).unwrap();
    let d2 = central.insert("items", t2).unwrap();
    // Skipping d1 must fail.
    assert!(edge.apply_delta(&d2).is_err());
    edge.apply_delta(&d1).unwrap();
    edge.apply_delta(&d2).unwrap();
}

#[test]
fn forged_delta_rejected() {
    let (mut central, edge, _) = setup(20);
    let schema = central.tree("items").unwrap().schema().clone();
    let t = Tuple::new(
        &schema,
        100,
        vec![
            Value::from("a"),
            Value::from("b"),
            Value::from("c"),
            Value::from(1i64),
        ],
    )
    .unwrap();
    let mut delta = central.insert("items", t).unwrap();
    // A man-in-the-middle alters the inserted tuple but cannot re-sign.
    if let vbx_edge::UpdateOp::Insert(tuple) = &mut delta.op {
        tuple.values[0] = Value::from("evil");
    }
    let err = edge.apply_delta(&delta).unwrap_err();
    assert!(matches!(
        err,
        vbx_edge::EdgeError::Scheme(vbx_core::VbSchemeError::Core(
            vbx_core::CoreError::ReplicaDivergence(_)
        ))
    ));
}

#[test]
fn tamper_modes_detected() {
    let (central, edge, client) = setup(60);
    let sql = "SELECT * FROM items WHERE id BETWEEN 5 AND 45";
    for mode in [
        TamperMode::MutateValue,
        TamperMode::InjectRow,
        TamperMode::DropRow,
    ] {
        edge.set_tamper(mode.clone());
        let (_, resp) = edge.query_sql(sql).unwrap();
        let err = client
            .verify(
                sql,
                &resp,
                central.registry(),
                KeyFreshnessPolicy::RequireCurrent,
            )
            .unwrap_err();
        assert!(
            matches!(err, ClientError::Engine(EngineError::Verify(_))),
            "mode {mode:?} must be detected, got {err:?}"
        );
    }
    // Honest mode passes again.
    edge.set_tamper(TamperMode::None);
    let (_, resp) = edge.query_sql(sql).unwrap();
    client
        .verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
}

#[test]
fn reclassification_drop_is_the_documented_boundary() {
    // §3.1's trust model: edges don't maliciously drop qualifying
    // tuples. If a hacked edge does — moving the dropped tuple's signed
    // digest into D_S — the VO still balances.
    let (central, edge, client) = setup(60);
    let sql = "SELECT * FROM items WHERE id BETWEEN 5 AND 45";
    edge.set_tamper(TamperMode::DropAndReclassify { key: 20 });
    let (_, resp) = edge.query_sql(sql).unwrap();
    assert!(resp.rows.iter().all(|r| r.key != 20));
    client
        .verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
}

#[test]
fn key_rotation_detects_stale_replay() {
    let (mut central, stale_edge, client) = setup(30);

    // The world moves on: an update plus a key rotation.
    let schema = central.tree("items").unwrap().schema().clone();
    let t = Tuple::new(
        &schema,
        500,
        vec![
            Value::from("post-rotation"),
            Value::from("x"),
            Value::from("y"),
            Value::from(9i64),
        ],
    )
    .unwrap();
    central.insert("items", t).unwrap();
    central.rotate_key(Arc::new(MockSigner::with_version(77, 2)));

    // A fresh edge from the new bundle answers under key v2.
    let fresh_edge = EdgeServer::from_bundle(central.bundle());
    let sql = "SELECT * FROM items WHERE id < 10";
    let (_, fresh_resp) = fresh_edge.query_sql(sql).unwrap();
    assert_eq!(fresh_resp.vo.key_version, 2);
    client
        .verify(
            sql,
            &fresh_resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();

    // The stale edge still answers under key v1: rejected as stale.
    let (_, stale_resp) = stale_edge.query_sql(sql).unwrap();
    assert_eq!(stale_resp.vo.key_version, 1);
    let err = client
        .verify(
            sql,
            &stale_resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap_err();
    assert!(matches!(err, ClientError::StaleKey { version: 1 }));

    // Historical reads may still accept the old key within its window.
    client
        .verify(
            sql,
            &stale_resp,
            central.registry(),
            KeyFreshnessPolicy::AcceptAsOf(0),
        )
        .unwrap();
}

#[test]
fn unknown_key_version_rejected() {
    let (central, edge, client) = setup(10);
    let sql = "SELECT * FROM items";
    let (_, mut resp) = edge.query_sql(sql).unwrap();
    resp.vo.key_version = 42;
    let err = client
        .verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap_err();
    assert!(matches!(err, ClientError::UnknownKeyVersion(42)));
}

#[test]
fn join_view_distribution_and_refresh() {
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(9, 1));
    let mut central: CentralServer<VbScheme<4>> =
        CentralServer::new(acc.clone(), signer, VbTreeConfig::with_fanout(6));
    central.create_table(
        WorkloadSpec {
            table: "orders".into(),
            ..WorkloadSpec::new(25, 3, 8)
        }
        .build(),
    );
    central.create_table(
        WorkloadSpec {
            table: "parts".into(),
            seed: 4242,
            ..WorkloadSpec::new(25, 3, 8)
        }
        .build(),
    );
    let view_name = central
        .materialize_join("orders", "parts", "a2", "a2")
        .unwrap();
    assert!(central.tree(&view_name).is_some());

    let mut edge = EdgeServer::from_bundle(central.bundle());
    let client = EdgeClient::new(edge.schemas(), acc.clone());
    let sql = "SELECT * FROM orders JOIN parts ON orders.a2 = parts.a2";
    let (_, resp) = edge.query_sql(sql).unwrap();
    let before = client
        .verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();

    // Update a base table; view refreshes at the central server; the
    // edge applies the delta and pulls the refreshed view.
    let delta = central.delete("orders", 0).unwrap();
    edge.apply_delta(&delta).unwrap();
    edge.refresh_views(central.view_trees());

    let (_, resp2) = edge.query_sql(sql).unwrap();
    let client2 = EdgeClient::new(edge.schemas(), acc.clone());
    let after = client2
        .verify(
            sql,
            &resp2,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
    assert!(after.rows.len() <= before.rows.len());
    assert_eq!(
        central.tree(&view_name).unwrap().root_digest().exp,
        edge.tree(&view_name).unwrap().root_digest().exp
    );
}

#[test]
fn lock_protocol_exercised_by_updates() {
    let (mut central, _, _) = setup(40);
    let schema = central.tree("items").unwrap().schema().clone();
    let before = central.lock_stats();
    let t = Tuple::new(
        &schema,
        999,
        vec![
            Value::from("a"),
            Value::from("b"),
            Value::from("c"),
            Value::from(0i64),
        ],
    )
    .unwrap();
    central.insert("items", t).unwrap();
    central.delete("items", 999).unwrap();
    let after = central.lock_stats();
    // Both transactions acquired (and released) path locks.
    assert!(after.acquired > before.acquired);
    assert_eq!(after.conflicts, before.conflicts);
    assert!(after.released >= before.released + 2);
}

#[test]
fn bundle_crosses_process_boundary_as_bytes() {
    // Distribution as it would actually happen: the bundle is
    // serialized, shipped, decoded, and the edge stood up from bytes.
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(55, 1));
    let mut central: CentralServer<VbScheme<4>> =
        CentralServer::new(acc.clone(), signer, VbTreeConfig::with_fanout(8));
    central.create_table(
        WorkloadSpec {
            table: "items".into(),
            ..WorkloadSpec::new(120, 3, 8)
        }
        .build(),
    );
    central.create_table(
        WorkloadSpec {
            table: "extra".into(),
            seed: 2,
            ..WorkloadSpec::new(60, 3, 8)
        }
        .build(),
    );
    central
        .materialize_join("items", "extra", "a2", "a2")
        .unwrap();

    let bytes = central.bundle().to_bytes();
    let received = vbx_edge::EdgeBundle::from_bytes(&bytes, &acc).unwrap();
    assert_eq!(received.trees.len(), 3);
    assert_eq!(received.views.len(), 1);

    let edge = EdgeServer::from_bundle(received);
    let client = EdgeClient::new(edge.schemas(), acc.clone());
    let sql = "SELECT * FROM items WHERE id BETWEEN 10 AND 50";
    let (_, resp) = edge.query_sql(sql).unwrap();
    client
        .verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();

    // Corrupt bundles are rejected, never served.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    assert!(
        vbx_edge::EdgeBundle::<4>::from_bytes(&bad, &acc).is_err()
            || vbx_edge::EdgeBundle::<4>::from_bytes(&bad, &acc)
                .map(|b| b.trees.values().all(|t| t.check_integrity(None).is_ok()))
                .unwrap_or(false)
    );
}
