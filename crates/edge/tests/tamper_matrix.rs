//! The detection matrix: every [`TamperMode`] exercised against all
//! three authentication schemes through the one generic
//! central → edge → client pipeline, asserting exactly which scheme
//! detects which attack — the paper's qualitative comparison
//! (Section 2 and §3.1's trust-model boundary), executable.
//!
//! | attack              | VB-tree | Naive | Merkle |
//! |---------------------|---------|-------|--------|
//! | `MutateValue`       | ✓       | ✓     | ✓      |
//! | `InjectRow`         | ✓       | ✓     | ✓      |
//! | `DropRow`           | ✓       | ✗     | ✓      |
//! | `DropAndReclassify` | ✗ (§3.1)| ✗     | ✓      |
//!
//! The VB-tree misses the reclassification drop by design (the paper's
//! documented completeness boundary); Naive misses every silent drop
//! (it has no completeness material at all); the Merkle tree's range
//! proof catches both, the advantage it buys by exposing boundary
//! tuples.

use std::sync::Arc;
use vbx_baselines::{MerkleScheme, NaiveScheme};
use vbx_core::{AuthScheme, RangeQuery, TamperMode, VbScheme, VbTreeConfig};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::Acc256;
use vbx_edge::{CentralServer, EdgeServer, KeyFreshnessPolicy, SchemeClient};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Tuple, Value};

const ROWS: u64 = 60;
const VICTIM: u64 = 20;

/// Stand up the full generic pipeline for one scheme, propagate one
/// update so replication is exercised too, then report whether `mode`
/// is detected by client verification.
fn detected<S>(scheme: S, mode: TamperMode) -> bool
where
    S: AuthScheme + Clone,
    S::Store: Clone,
{
    let table = WorkloadSpec::new(ROWS, 4, 10).build();
    let name = table.schema().table.clone();
    let schema = table.schema().clone();
    let signer = Arc::new(MockSigner::with_version(77, 1));

    let mut central = CentralServer::with_scheme(scheme.clone(), signer);
    central.create_table(table);

    // The edge replica: built from the same (distributed) table, then
    // kept in sync through a signed delta.
    let edge_signer = MockSigner::with_version(77, 1);
    let replica_table = WorkloadSpec::new(ROWS, 4, 10).build();
    let mut edge = EdgeServer::new(scheme.clone());
    edge.install_table(
        name.clone(),
        schema.clone(),
        scheme.build(&replica_table, &edge_signer),
    );

    let tuple = Tuple::new(
        &schema,
        500,
        vec![
            Value::from("late"),
            Value::from("x"),
            Value::from("y"),
            Value::from(9i64),
        ],
    )
    .unwrap();
    let delta = central.insert(&name, tuple).unwrap();
    edge.apply_delta(&delta).unwrap();

    edge.set_tamper(mode);
    let query = RangeQuery::select_all(5, 45);
    let resp = edge.query_range(&name, &query).unwrap();

    let client = SchemeClient::new(scheme, edge.schemas());
    client
        .verify_range(
            &name,
            &query,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .is_err()
}

fn modes() -> [TamperMode; 4] {
    [
        TamperMode::MutateValue,
        TamperMode::InjectRow,
        TamperMode::DropRow,
        TamperMode::DropAndReclassify { key: VICTIM },
    ]
}

#[test]
fn honest_responses_verify_for_all_schemes() {
    let acc = Acc256::test_default();
    assert!(!detected(
        VbScheme::new(acc.clone(), VbTreeConfig::with_fanout(6)),
        TamperMode::None
    ));
    assert!(!detected(NaiveScheme::new(acc), TamperMode::None));
    assert!(!detected(MerkleScheme, TamperMode::None));
}

#[test]
fn vbtree_detects_all_but_the_documented_reclassification() {
    let acc = Acc256::test_default();
    let expected = [true, true, true, false];
    for (mode, want) in modes().into_iter().zip(expected) {
        let scheme = VbScheme::new(acc.clone(), VbTreeConfig::with_fanout(6));
        assert_eq!(
            detected(scheme, mode.clone()),
            want,
            "vb-tree × {mode:?}: expected detected={want}"
        );
    }
}

#[test]
fn naive_misses_every_silent_drop() {
    let acc = Acc256::test_default();
    let expected = [true, true, false, false];
    for (mode, want) in modes().into_iter().zip(expected) {
        let scheme = NaiveScheme::<4>::new(acc.clone());
        assert_eq!(
            detected(scheme, mode.clone()),
            want,
            "naive × {mode:?}: expected detected={want}"
        );
    }
}

#[test]
fn merkle_detects_everything_including_reclassification() {
    let expected = [true, true, true, true];
    for (mode, want) in modes().into_iter().zip(expected) {
        assert_eq!(
            detected(MerkleScheme, mode.clone()),
            want,
            "merkle × {mode:?}: expected detected={want}"
        );
    }
}
