//! The trusted central DBMS, generic over the authentication scheme.
//!
//! Owns the master database, the private signing key, and the
//! authoritative authenticated stores (VB-trees, Naive digest tables, or
//! Merkle trees — anything implementing
//! [`AuthScheme`](vbx_core::scheme::AuthScheme)). Executes update
//! transactions under the Section 3.4 locking protocol, records **signed
//! update deltas** for edge replicas (which cannot sign anything
//! themselves), refreshes materialised join views, and manages key
//! rotation with validity windows for the delayed-propagation mode.

use crate::locks::{LockManager, LockMode};
use std::collections::BTreeMap;
use std::sync::Arc;
use vbx_core::scheme::{AuthScheme, SignedDelta, UpdateOp, VbScheme};
use vbx_core::{CoreError, VbTree, VbTreeConfig};
use vbx_crypto::accum::{Accumulator, SignedDigest};
use vbx_crypto::{KeyRegistry, Signer};
use vbx_query::{build_view_table, JoinViewDef};
use vbx_storage::{Catalog, StorageError, Table, Tuple};

/// A VB-tree update delta, as shipped to edge servers (compatibility
/// alias for the generic [`SignedDelta`] envelope).
pub type UpdateDelta<const L: usize> = SignedDelta<Vec<SignedDigest<L>>>;

/// Initial distribution bundle for a new edge server: full replicas of
/// every tree (base tables and views). VB-tree specific — the wire
/// format serialises signed tree nodes.
#[derive(Clone)]
pub struct EdgeBundle<const L: usize> {
    /// Tree replicas by name.
    pub trees: BTreeMap<String, VbTree<L>>,
    /// View definitions.
    pub views: Vec<JoinViewDef>,
    /// Sequence number the bundle reflects.
    pub as_of_seq: u64,
}

impl<const L: usize> EdgeBundle<L> {
    /// Serialize the bundle — the bytes the central server actually
    /// ships to a new edge site.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(b"VBB1");
        out.extend_from_slice(&self.as_of_seq.to_be_bytes());
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        out.extend_from_slice(&(self.views.len() as u32).to_be_bytes());
        for v in &self.views {
            put_str(&mut out, &v.name);
            put_str(&mut out, &v.left_table);
            put_str(&mut out, &v.right_table);
            put_str(&mut out, &v.left_col);
            put_str(&mut out, &v.right_col);
        }
        out.extend_from_slice(&(self.trees.len() as u32).to_be_bytes());
        for (name, tree) in &self.trees {
            put_str(&mut out, name);
            let tree_bytes = vbx_core::encode_tree(tree);
            out.extend_from_slice(&(tree_bytes.len() as u64).to_be_bytes());
            out.extend_from_slice(&tree_bytes);
        }
        out
    }

    /// Decode a bundle, structurally validating every tree.
    pub fn from_bytes(bytes: &[u8], acc: &Accumulator<L>) -> Result<Self, CoreError> {
        let corrupt = |m: &str| CoreError::Wire(m.to_string());
        let mut buf = bytes;
        let take = |buf: &mut &[u8], n: usize| -> Result<Vec<u8>, CoreError> {
            if buf.len() < n {
                return Err(corrupt("bundle truncated"));
            }
            let out = buf[..n].to_vec();
            *buf = &buf[n..];
            Ok(out)
        };
        let get_str = |buf: &mut &[u8]| -> Result<String, CoreError> {
            let len = u32::from_be_bytes(take(buf, 4)?.try_into().unwrap()) as usize;
            String::from_utf8(take(buf, len)?).map_err(|_| corrupt("bundle string not UTF-8"))
        };

        if take(&mut buf, 4)? != b"VBB1" {
            return Err(corrupt("bad bundle magic"));
        }
        let as_of_seq = u64::from_be_bytes(take(&mut buf, 8)?.try_into().unwrap());
        let n_views = u32::from_be_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        let mut views = Vec::with_capacity(n_views.min(1024));
        for _ in 0..n_views {
            let name = get_str(&mut buf)?;
            let left_table = get_str(&mut buf)?;
            let right_table = get_str(&mut buf)?;
            let left_col = get_str(&mut buf)?;
            let right_col = get_str(&mut buf)?;
            views.push(JoinViewDef {
                name,
                left_table,
                right_table,
                left_col,
                right_col,
            });
        }
        let n_trees = u32::from_be_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        let mut trees = BTreeMap::new();
        for _ in 0..n_trees {
            let name = get_str(&mut buf)?;
            let tree_len = u64::from_be_bytes(take(&mut buf, 8)?.try_into().unwrap()) as usize;
            let tree_bytes = take(&mut buf, tree_len)?;
            let tree = vbx_core::decode_tree(&tree_bytes, acc.clone())?;
            trees.insert(name, tree);
        }
        if !buf.is_empty() {
            return Err(corrupt("trailing bytes in bundle"));
        }
        Ok(Self {
            trees,
            views,
            as_of_seq,
        })
    }
}

/// Errors from central-server operations, parameterised by the scheme's
/// own error type.
#[derive(Debug)]
pub enum CentralError<E> {
    /// Storage-level failure.
    Storage(StorageError),
    /// Scheme-level failure (tree/digest/signing).
    Scheme(E),
    /// Unknown table.
    UnknownTable(String),
}

impl<E: core::fmt::Display> core::fmt::Display for CentralError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CentralError::Storage(e) => write!(f, "{e}"),
            CentralError::Scheme(e) => write!(f, "{e}"),
            CentralError::UnknownTable(t) => write!(f, "unknown table {t}"),
        }
    }
}

impl<E: std::error::Error> std::error::Error for CentralError<E> {}

impl<E> From<StorageError> for CentralError<E> {
    fn from(e: StorageError) -> Self {
        CentralError::Storage(e)
    }
}

/// The trusted central DBMS, generic over the authentication scheme.
pub struct CentralServer<S: AuthScheme> {
    scheme: S,
    signer: Arc<dyn Signer>,
    registry: KeyRegistry,
    catalog: Catalog,
    stores: BTreeMap<String, S::Store>,
    views: Vec<JoinViewDef>,
    locks: LockManager,
    log: Vec<SignedDelta<S::Delta>>,
    clock: u64,
}

impl<S: AuthScheme> CentralServer<S> {
    /// Create a central server for a scheme and publish the initial key
    /// version.
    pub fn with_scheme(scheme: S, signer: Arc<dyn Signer>) -> Self {
        let mut registry = KeyRegistry::new();
        registry.publish(signer.verifier(), 0);
        Self {
            scheme,
            signer,
            registry,
            catalog: Catalog::new(),
            stores: BTreeMap::new(),
            views: Vec::new(),
            locks: LockManager::new(),
            log: Vec::new(),
            clock: 0,
        }
    }

    /// The scheme descriptor (public parameters).
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The public key registry (clients consult it for freshness).
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// Logical clock (advances with every committed update).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Lock statistics (tests).
    pub fn lock_stats(&self) -> crate::locks::LockStats {
        self.locks.stats()
    }

    /// Register a base table: builds and signs its authenticated store.
    pub fn create_table(&mut self, table: Table) {
        let store = self.scheme.build(&table, self.signer.as_ref());
        self.stores.insert(table.schema().table.clone(), store);
        self.catalog.put(table);
    }

    /// Authoritative store lookup.
    pub fn store(&self, name: &str) -> Option<&S::Store> {
        self.stores.get(name)
    }

    /// Materialise an equijoin view and build its authenticated store
    /// (Section 3.3's join strategy — works for every scheme, since a
    /// view is just another table). Returns the canonical view name.
    pub fn materialize_join(
        &mut self,
        left: &str,
        right: &str,
        left_col: &str,
        right_col: &str,
    ) -> Result<String, CentralError<S::Error>> {
        let lt = self
            .catalog
            .get(left)
            .ok_or_else(|| CentralError::UnknownTable(left.into()))?;
        let rt = self
            .catalog
            .get(right)
            .ok_or_else(|| CentralError::UnknownTable(right.into()))?;
        let def = JoinViewDef::new(left, right, left_col, right_col);
        let view_table = build_view_table(&def, lt, rt)?;
        let store = self.scheme.build(&view_table, self.signer.as_ref());
        let name = def.name.clone();
        self.stores.insert(name.clone(), store);
        self.views.push(def);
        Ok(name)
    }

    /// Registered view definitions.
    pub fn views(&self) -> &[JoinViewDef] {
        &self.views
    }

    /// Deltas after `seq` (edge servers pull these to catch up). A
    /// `seq` beyond the log — a replica ahead of this server, e.g.
    /// restored from a newer snapshot — yields an empty batch rather
    /// than panicking the trusted side on untrusted input.
    pub fn deltas_since(&self, seq: u64) -> Vec<SignedDelta<S::Delta>> {
        self.log
            .get(seq as usize..)
            .map(<[SignedDelta<S::Delta>]>::to_vec)
            .unwrap_or_default()
    }

    /// Insert a tuple (the paper's insert transaction: X-lock the
    /// scheme's lock targets, apply, re-sign).
    pub fn insert(
        &mut self,
        table: &str,
        tuple: Tuple,
    ) -> Result<SignedDelta<S::Delta>, CentralError<S::Error>> {
        self.apply_op(table, UpdateOp::Insert(tuple))
    }

    /// Delete a tuple (X-lock the path, recompute digests bottom-up).
    pub fn delete(
        &mut self,
        table: &str,
        key: u64,
    ) -> Result<SignedDelta<S::Delta>, CentralError<S::Error>> {
        self.apply_op(table, UpdateOp::Delete(key))
    }

    /// Batch range delete (equation (12)'s transaction).
    pub fn delete_range(
        &mut self,
        table: &str,
        lo: u64,
        hi: u64,
    ) -> Result<SignedDelta<S::Delta>, CentralError<S::Error>> {
        self.apply_op(table, UpdateOp::DeleteRange(lo, hi))
    }

    /// One update transaction: lock the scheme's targets exclusively,
    /// apply to the authenticated store and the catalog, release, then
    /// refresh affected views and log the signed delta.
    fn apply_op(
        &mut self,
        table: &str,
        op: UpdateOp,
    ) -> Result<SignedDelta<S::Delta>, CentralError<S::Error>> {
        let txn = self.next_txn();
        let targets = {
            let store = self
                .stores
                .get(table)
                .ok_or_else(|| CentralError::UnknownTable(table.into()))?;
            self.scheme.lock_targets(store, &op)
        };
        let resources: Vec<_> = targets
            .into_iter()
            .map(|n| (table.to_string(), n))
            .collect();
        self.locks
            .try_acquire_all(txn, &resources, LockMode::Exclusive)
            .expect("single-threaded central server cannot conflict with itself");

        let result = (|| {
            let store = self.stores.get_mut(table).expect("checked above");
            let payload = self
                .scheme
                .update(store, &op, self.signer.as_ref())
                .map_err(CentralError::Scheme)?;
            let cat = self.catalog.get_mut(table).expect("catalog mirrors stores");
            match &op {
                UpdateOp::Insert(tuple) => {
                    cat.insert(tuple.clone())?;
                }
                UpdateOp::Delete(key) => {
                    cat.delete(*key)?;
                }
                UpdateOp::DeleteRange(lo, hi) => {
                    let doomed: Vec<u64> = cat.range(*lo, *hi).map(|t| t.key).collect();
                    for k in doomed {
                        cat.delete(k)?;
                    }
                }
            }
            Ok::<_, CentralError<S::Error>>(payload)
        })();
        self.locks.release_all(txn);
        let payload = result?;

        self.refresh_views_for(table)?;
        self.clock += 1;
        let delta = SignedDelta {
            seq: self.log.len() as u64,
            table: table.to_string(),
            op,
            payload,
            key_version: self.signer.key_version(),
        };
        self.log.push(delta.clone());
        Ok(delta)
    }

    /// Rotate the signing key: re-sign every store under the new key and
    /// publish the new version with a validity window starting now
    /// (Section 3.4's defence for delayed propagation).
    pub fn rotate_key(&mut self, new_signer: Arc<dyn Signer>) {
        self.signer = new_signer;
        self.registry.publish(self.signer.verifier(), self.clock);
        // Rebuild (re-sign) every base-table store under the new key.
        let names: Vec<String> = self.stores.keys().cloned().collect();
        for name in names {
            if let Some(table) = self.catalog.get(&name) {
                let store = self.scheme.build(table, self.signer.as_ref());
                self.stores.insert(name, store);
            }
        }
        // Views are derived; refresh them too.
        let defs = self.views.clone();
        for def in defs {
            let (Some(lt), Some(rt)) = (
                self.catalog.get(&def.left_table),
                self.catalog.get(&def.right_table),
            ) else {
                continue;
            };
            if let Ok(view_table) = build_view_table(&def, lt, rt) {
                let store = self.scheme.build(&view_table, self.signer.as_ref());
                self.stores.insert(def.name.clone(), store);
            }
        }
    }

    fn refresh_views_for(&mut self, table: &str) -> Result<(), CentralError<S::Error>> {
        let affected: Vec<JoinViewDef> = self
            .views
            .iter()
            .filter(|d| d.left_table == table || d.right_table == table)
            .cloned()
            .collect();
        for def in affected {
            let lt = self
                .catalog
                .get(&def.left_table)
                .ok_or_else(|| CentralError::UnknownTable(def.left_table.clone()))?;
            let rt = self
                .catalog
                .get(&def.right_table)
                .ok_or_else(|| CentralError::UnknownTable(def.right_table.clone()))?;
            let view_table = build_view_table(&def, lt, rt)?;
            let store = self.scheme.build(&view_table, self.signer.as_ref());
            self.stores.insert(def.name.clone(), store);
        }
        Ok(())
    }

    fn next_txn(&self) -> u64 {
        self.clock + 1_000_000 * (self.log.len() as u64 + 1)
    }
}

/// VB-tree specific surface: the compatibility constructor and the tree
/// distribution bundle (its wire format serialises signed tree nodes).
impl<const L: usize> CentralServer<VbScheme<L>> {
    /// Create a VB-tree central server from accumulator parameters and
    /// tree geometry.
    pub fn new(acc: Accumulator<L>, signer: Arc<dyn Signer>, config: VbTreeConfig) -> Self {
        Self::with_scheme(VbScheme::new(acc, config), signer)
    }

    /// The digest algebra (public parameters).
    pub fn accumulator(&self) -> &Accumulator<L> {
        &self.scheme.acc
    }

    /// Authoritative tree lookup.
    pub fn tree(&self, name: &str) -> Option<&VbTree<L>> {
        self.stores.get(name)
    }

    /// Snapshot everything for a new edge server.
    pub fn bundle(&self) -> EdgeBundle<L> {
        EdgeBundle {
            trees: self.stores.clone(),
            views: self.views.clone(),
            as_of_seq: self.log.len() as u64,
        }
    }

    /// Rebuilt view trees (edges re-fetch these after applying deltas;
    /// views are refreshed wholesale because their rowids shift).
    pub fn view_trees(&self) -> BTreeMap<String, VbTree<L>> {
        self.views
            .iter()
            .filter_map(|d| {
                self.stores
                    .get(&d.name)
                    .map(|t| (d.name.clone(), t.clone()))
            })
            .collect()
    }
}
