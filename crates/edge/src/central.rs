//! The trusted central DBMS, generic over the authentication scheme.
//!
//! Owns the master database, the private signing key, and the
//! authoritative authenticated stores (VB-trees, Naive digest tables, or
//! Merkle trees — anything implementing
//! [`AuthScheme`](vbx_core::scheme::AuthScheme)). Executes update
//! transactions under the Section 3.4 locking protocol, records **signed
//! update deltas** for edge replicas (which cannot sign anything
//! themselves), refreshes materialised join views, and manages key
//! rotation with validity windows for the delayed-propagation mode.

use crate::locks::{LockManager, LockMode};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use vbx_core::scheme::{AuthScheme, DeltaBatch, SignedDelta, TxnBatch, UpdateOp, VbScheme};
use vbx_core::{CoreError, FreshnessStamp, VbTree, VbTreeConfig};
use vbx_crypto::accum::{Accumulator, SignedDigest};
use vbx_crypto::{KeyRegistry, Signer};
use vbx_query::{build_view_table, JoinViewDef};
use vbx_storage::{Catalog, StorageError, Table, Tuple};

/// Cursor and append errors from the [`DeltaLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaLogError {
    /// The requested cursor points before the retention window — the
    /// subscriber fell too far behind and must re-bundle.
    Truncated {
        /// Sequence number the subscriber asked for.
        requested: u64,
        /// Oldest sequence number still retained.
        oldest: u64,
    },
    /// An appended entry's sequence number is not exactly the log's
    /// next: the log is the authoritative contiguous history, and
    /// recovery replay depends on gap-free seq ranges.
    NonContiguous {
        /// The sequence number the log expected next.
        expected: u64,
        /// The sequence number the entry actually carried.
        got: u64,
    },
    /// An empty batch was pushed (batches must carry at least one op to
    /// occupy a sequence range).
    EmptyBatch,
}

impl core::fmt::Display for DeltaLogError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeltaLogError::Truncated { requested, oldest } => write!(
                f,
                "delta {requested} evicted from the retention window (oldest retained: {oldest})"
            ),
            DeltaLogError::NonContiguous { expected, got } => {
                write!(f, "non-contiguous delta seq {got} (log expects {expected})")
            }
            DeltaLogError::EmptyBatch => write!(f, "empty delta batch"),
        }
    }
}

impl std::error::Error for DeltaLogError {}

/// One retained unit of the signed-delta log: a single-op
/// [`SignedDelta`], a group-committed [`DeltaBatch`] occupying a whole
/// sequence *range*, or an atomic multi-table [`TxnBatch`]. Batches and
/// txns are shared out as `Arc`s so fanning one out to N subscribers
/// clones a pointer, not `k` ops and payloads.
#[derive(Clone, Debug)]
pub enum LogEntry<P> {
    /// One update op under its own signed payload.
    Op(SignedDelta<P>),
    /// `k` ops group-committed under one payload stream + stamp.
    Batch(Arc<DeltaBatch<P>>),
    /// An atomic multi-table transaction: its sections were committed
    /// as one unit and travel (and are applied, skipped, or evicted
    /// downstream) as one unit.
    Txn(Arc<TxnBatch<P>>),
}

impl<P> LogEntry<P> {
    /// First sequence number the entry covers.
    pub fn start_seq(&self) -> u64 {
        match self {
            LogEntry::Op(d) => d.seq,
            LogEntry::Batch(b) => b.start_seq,
            LogEntry::Txn(t) => t.start_seq(),
        }
    }

    /// One past the last sequence number the entry covers.
    pub fn end_seq(&self) -> u64 {
        match self {
            LogEntry::Op(d) => d.seq + 1,
            LogEntry::Batch(b) => b.end_seq(),
            LogEntry::Txn(t) => t.end_seq(),
        }
    }

    /// Number of update ops the entry carries.
    pub fn ops(&self) -> usize {
        match self {
            LogEntry::Op(_) => 1,
            LogEntry::Batch(b) => b.len(),
            LogEntry::Txn(t) => t.ops() as usize,
        }
    }

    /// Table the entry's ops apply to; `None` for a multi-table txn
    /// (use [`tables`](Self::tables)).
    pub fn table(&self) -> Option<&str> {
        match self {
            LogEntry::Op(d) => Some(&d.table),
            LogEntry::Batch(b) => Some(&b.table),
            LogEntry::Txn(_) => None,
        }
    }

    /// Every table the entry touches: one for `Op`/`Batch`, each
    /// section's table (in commit order, repeats possible) for a `Txn`.
    pub fn tables(&self) -> Box<dyn Iterator<Item = &str> + '_> {
        match self {
            LogEntry::Op(d) => Box::new(core::iter::once(d.table.as_str())),
            LogEntry::Batch(b) => Box::new(core::iter::once(b.table.as_str())),
            LogEntry::Txn(t) => Box::new(t.tables()),
        }
    }
}

/// The central server's signed-delta log with a **bounded retention
/// window** and a cursor API.
///
/// Before PR 4, `deltas_since` cloned the full remaining `Vec` on every
/// poll, making fan-out to N subscribing edges O(edges × history). The
/// log now retains only the newest `retention` *ops* (older entries are
/// evicted — a subscriber that far behind re-bundles instead), and
/// [`since`](Self::since) hands out a borrowing iterator so pollers
/// clone exactly the entries they still need. Since PR 5 an entry is a
/// [`LogEntry`] — a single op or a whole group-committed batch — and
/// cursors work on the underlying *sequence numbers*, so a batch of `k`
/// ops advances a subscriber's cursor by `k` in one hop.
#[derive(Clone, Debug)]
pub struct DeltaLog<P> {
    entries: VecDeque<LogEntry<P>>,
    /// Sequence number of the first retained entry's first op.
    start_seq: u64,
    /// Ops (not entries) currently retained.
    retained_ops: usize,
    retention: usize,
}

impl<P: Clone> DeltaLog<P> {
    /// An empty log retaining at most `retention` ops (min 1).
    pub fn new(retention: usize) -> Self {
        Self {
            entries: VecDeque::new(),
            start_seq: 0,
            retained_ops: 0,
            retention: retention.max(1),
        }
    }

    /// An empty log that never evicts (the pre-cluster behaviour).
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Sequence number the next pushed op must carry.
    pub fn next_seq(&self) -> u64 {
        self.start_seq + self.retained_ops as u64
    }

    /// Oldest sequence number still retained.
    pub fn oldest_seq(&self) -> u64 {
        self.start_seq
    }

    /// Number of retained ops (a batch of `k` counts `k`).
    pub fn len(&self) -> usize {
        self.retained_ops
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append the next single-op delta, evicting past the retention
    /// window. Rejects any `delta.seq` that is not exactly
    /// [`next_seq`](Self::next_seq) — the log is the authoritative
    /// contiguous history, and silently accepting a gap would poison
    /// every cursor and recovery replay downstream.
    pub fn push(&mut self, delta: SignedDelta<P>) -> Result<(), DeltaLogError> {
        if delta.seq != self.next_seq() {
            return Err(DeltaLogError::NonContiguous {
                expected: self.next_seq(),
                got: delta.seq,
            });
        }
        self.push_entry(LogEntry::Op(delta));
        Ok(())
    }

    /// Append a group-committed batch covering `[start_seq, end_seq())`,
    /// evicting past the retention window. Returns the shared handle
    /// also kept in the log (for immediate fan-out without a re-read).
    /// Rejects empty batches and any `batch.start_seq` that is not
    /// exactly [`next_seq`](Self::next_seq).
    pub fn push_batch(
        &mut self,
        batch: DeltaBatch<P>,
    ) -> Result<Arc<DeltaBatch<P>>, DeltaLogError> {
        if batch.is_empty() {
            return Err(DeltaLogError::EmptyBatch);
        }
        if batch.start_seq != self.next_seq() {
            return Err(DeltaLogError::NonContiguous {
                expected: self.next_seq(),
                got: batch.start_seq,
            });
        }
        let shared = Arc::new(batch);
        self.push_entry(LogEntry::Batch(shared.clone()));
        Ok(shared)
    }

    /// Append an atomic multi-table transaction covering
    /// `[txn.start_seq(), txn.end_seq())`, evicting past the retention
    /// window (a txn is evicted as the single unit it arrived as, like
    /// every entry). Returns the shared handle also kept in the log.
    /// Rejects txns with no (or empty) sections, and any section chain
    /// that does not start exactly at [`next_seq`](Self::next_seq) and
    /// stay gap-free section to section.
    pub fn push_txn(&mut self, txn: TxnBatch<P>) -> Result<Arc<TxnBatch<P>>, DeltaLogError> {
        if txn.sections.is_empty() || txn.sections.iter().any(|s| s.is_empty()) {
            return Err(DeltaLogError::EmptyBatch);
        }
        let mut next = self.next_seq();
        for section in &txn.sections {
            if section.start_seq != next {
                return Err(DeltaLogError::NonContiguous {
                    expected: next,
                    got: section.start_seq,
                });
            }
            next = section.end_seq();
        }
        let shared = Arc::new(txn);
        self.push_entry(LogEntry::Txn(shared.clone()));
        Ok(shared)
    }

    /// Rebuild a log from checkpointed parts (durability recovery).
    pub(crate) fn from_parts(
        entries: VecDeque<LogEntry<P>>,
        start_seq: u64,
        retention: usize,
    ) -> Self {
        let retained_ops = entries.iter().map(LogEntry::ops).sum();
        Self {
            entries,
            start_seq,
            retained_ops,
            retention: retention.max(1),
        }
    }

    /// The retention window in ops.
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Every retained entry in seq order (checkpoints persist these).
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry<P>> {
        self.entries.iter()
    }

    fn push_entry(&mut self, entry: LogEntry<P>) {
        self.retained_ops += entry.ops();
        self.entries.push_back(entry);
        // Evict whole entries (a batch leaves as the unit it arrived
        // as), always keeping the newest entry even if it alone exceeds
        // the window.
        while self.retained_ops > self.retention && self.entries.len() > 1 {
            let evicted = self.entries.pop_front().expect("len > 1");
            self.retained_ops -= evicted.ops();
            self.start_seq = evicted.end_seq();
        }
    }

    /// Borrowing iterator over every retained entry covering any `seq >=
    /// cursor`. A cursor at (or past) the head yields an empty
    /// iterator; a cursor before the retention window is an error (the
    /// subscriber must re-bundle). Subscribers advance their cursor to
    /// each entry's [`end_seq`](LogEntry::end_seq), so a cursor always
    /// lands on an entry boundary; a cursor *inside* a batch (possible
    /// only for a subscriber that did not follow that rule) receives the
    /// whole batch again.
    pub fn since(
        &self,
        cursor: u64,
    ) -> Result<impl Iterator<Item = &LogEntry<P>> + '_, DeltaLogError> {
        if cursor < self.start_seq {
            return Err(DeltaLogError::Truncated {
                requested: cursor,
                oldest: self.start_seq,
            });
        }
        // Entries are ordered by seq range: skip everything fully
        // consumed by the cursor.
        let lo = self.entries.partition_point(|e| e.end_seq() <= cursor);
        Ok(self.entries.range(lo..))
    }

    /// Owned clone of every retained entry covering any `seq >= cursor`
    /// (clones only the tail the subscriber still needs; batch entries
    /// clone an `Arc`).
    pub fn collect_since(&self, cursor: u64) -> Result<Vec<LogEntry<P>>, DeltaLogError> {
        Ok(self.since(cursor)?.cloned().collect())
    }
}

/// A VB-tree update delta, as shipped to edge servers (compatibility
/// alias for the generic [`SignedDelta`] envelope).
pub type UpdateDelta<const L: usize> = SignedDelta<Vec<SignedDigest<L>>>;

/// Initial distribution bundle for a new edge server: full replicas of
/// every tree (base tables and views). VB-tree specific — the wire
/// format serialises signed tree nodes.
#[derive(Clone)]
pub struct EdgeBundle<const L: usize> {
    /// Tree replicas by name.
    pub trees: BTreeMap<String, VbTree<L>>,
    /// View definitions.
    pub views: Vec<JoinViewDef>,
    /// Sequence number the bundle reflects.
    pub as_of_seq: u64,
}

impl<const L: usize> EdgeBundle<L> {
    /// Serialize the bundle — the bytes the central server actually
    /// ships to a new edge site.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(b"VBB1");
        out.extend_from_slice(&self.as_of_seq.to_be_bytes());
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        out.extend_from_slice(&(self.views.len() as u32).to_be_bytes());
        for v in &self.views {
            put_str(&mut out, &v.name);
            put_str(&mut out, &v.left_table);
            put_str(&mut out, &v.right_table);
            put_str(&mut out, &v.left_col);
            put_str(&mut out, &v.right_col);
        }
        out.extend_from_slice(&(self.trees.len() as u32).to_be_bytes());
        for (name, tree) in &self.trees {
            put_str(&mut out, name);
            let tree_bytes = vbx_core::encode_tree(tree);
            out.extend_from_slice(&(tree_bytes.len() as u64).to_be_bytes());
            out.extend_from_slice(&tree_bytes);
        }
        out
    }

    /// Decode a bundle, structurally validating every tree.
    pub fn from_bytes(bytes: &[u8], acc: &Accumulator<L>) -> Result<Self, CoreError> {
        let corrupt = |m: &str| CoreError::Wire(m.to_string());
        let mut buf = bytes;
        let take = |buf: &mut &[u8], n: usize| -> Result<Vec<u8>, CoreError> {
            if buf.len() < n {
                return Err(corrupt("bundle truncated"));
            }
            let out = buf[..n].to_vec();
            *buf = &buf[n..];
            Ok(out)
        };
        let get_str = |buf: &mut &[u8]| -> Result<String, CoreError> {
            let len = u32::from_be_bytes(take(buf, 4)?.try_into().unwrap()) as usize;
            String::from_utf8(take(buf, len)?).map_err(|_| corrupt("bundle string not UTF-8"))
        };

        if take(&mut buf, 4)? != b"VBB1" {
            return Err(corrupt("bad bundle magic"));
        }
        let as_of_seq = u64::from_be_bytes(take(&mut buf, 8)?.try_into().unwrap());
        let n_views = u32::from_be_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        let mut views = Vec::with_capacity(n_views.min(1024));
        for _ in 0..n_views {
            let name = get_str(&mut buf)?;
            let left_table = get_str(&mut buf)?;
            let right_table = get_str(&mut buf)?;
            let left_col = get_str(&mut buf)?;
            let right_col = get_str(&mut buf)?;
            views.push(JoinViewDef {
                name,
                left_table,
                right_table,
                left_col,
                right_col,
            });
        }
        let n_trees = u32::from_be_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        let mut trees = BTreeMap::new();
        for _ in 0..n_trees {
            let name = get_str(&mut buf)?;
            let tree_len = u64::from_be_bytes(take(&mut buf, 8)?.try_into().unwrap()) as usize;
            let tree_bytes = take(&mut buf, tree_len)?;
            let tree = vbx_core::decode_tree(&tree_bytes, acc.clone())?;
            trees.insert(name, tree);
        }
        if !buf.is_empty() {
            return Err(corrupt("trailing bytes in bundle"));
        }
        Ok(Self {
            trees,
            views,
            as_of_seq,
        })
    }
}

/// Errors from central-server operations, parameterised by the scheme's
/// own error type.
#[derive(Debug)]
pub enum CentralError<E> {
    /// Storage-level failure.
    Storage(StorageError),
    /// Scheme-level failure (tree/digest/signing).
    Scheme(E),
    /// Unknown table.
    UnknownTable(String),
    /// The write-ahead log or a checkpoint could not be made durable.
    /// The in-memory commit may be ahead of disk: the server refuses
    /// further commits until replaced via recovery, so no state that
    /// was acked to a caller can be silently lost in a later crash.
    Durability(StorageError),
}

impl<E: core::fmt::Display> core::fmt::Display for CentralError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CentralError::Storage(e) => write!(f, "{e}"),
            CentralError::Scheme(e) => write!(f, "{e}"),
            CentralError::UnknownTable(t) => write!(f, "unknown table {t}"),
            CentralError::Durability(e) => write!(f, "durability failure: {e}"),
        }
    }
}

impl<E: std::error::Error> std::error::Error for CentralError<E> {}

impl<E> From<StorageError> for CentralError<E> {
    fn from(e: StorageError) -> Self {
        CentralError::Storage(e)
    }
}

/// Newest per-commit stamps kept for lagging subscribers (see
/// [`CentralServer::stamp_for_seq`]). An edge further behind keeps its
/// old stamp until it catches up — conservative, never unsound.
const STAMP_RETENTION: usize = 1_024;

/// Knobs of the opt-in group-commit queue
/// ([`CentralServer::with_group_commit`]): independent single-op
/// transactions enqueued via [`CentralServer::enqueue_update`] coalesce
/// into [`DeltaBatch`] commits, amortising the per-commit signature,
/// stamp, snapshot swap, and fan-out message over up to `max_batch`
/// ops. The price is commit latency: an enqueued op is not visible to
/// replicas until its batch flushes.
#[derive(Clone, Copy, Debug)]
pub struct GroupCommitConfig {
    /// Flush once this many ops are pending (≥ 1).
    pub max_batch: usize,
    /// Flush at the first enqueue after the oldest pending op has
    /// waited this many logical-clock ticks (commits and heartbeats
    /// advance the clock). `0` keeps ops pending only until the next
    /// flush trigger; `u64::MAX` disables the age trigger.
    pub commit_interval: u64,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            commit_interval: 4,
        }
    }
}

/// Batches committed by one group-commit flush (shared handles into the
/// [`DeltaLog`], ready for immediate fan-out or edge replay).
pub type CommittedBatches<S> = Vec<Arc<DeltaBatch<<S as AuthScheme>::Delta>>>;

/// A group-commit flush that stopped early, carrying everything the
/// caller must not lose: the batches runs *before* the failure already
/// committed — they are in the [`DeltaLog`] and must still be applied /
/// fanned out as usual — plus the failing run's error. Runs not yet
/// attempted went back into the queue; the failing run's own ops are
/// dropped with the error, exactly like a failed single-op commit.
pub struct FlushError<S: AuthScheme> {
    /// Batches committed by this flush before the failure.
    pub committed: CommittedBatches<S>,
    /// The failing run's error.
    pub error: CentralError<S::Error>,
}

impl<S: AuthScheme> core::fmt::Debug for FlushError<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FlushError")
            .field("committed", &self.committed.len())
            .field("error", &self.error)
            .finish()
    }
}

impl<S: AuthScheme> core::fmt::Display for FlushError<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "group-commit flush failed after committing {} batch(es): {}",
            self.committed.len(),
            self.error
        )
    }
}

impl<S: AuthScheme> std::error::Error for FlushError<S> {}

/// A staged multi-table update transaction (see
/// [`CentralServer::begin_txn`]). Ops buffer in arrival order; nothing
/// locks, signs, logs, or hits the WAL until
/// [`CentralServer::commit_txn`] — staging is free, and a dropped `Txn`
/// simply never happened.
#[derive(Clone, Debug, Default)]
pub struct Txn {
    staged: Vec<(String, UpdateOp)>,
}

impl Txn {
    /// Stage one update against `table`.
    pub fn stage(&mut self, table: impl Into<String>, op: UpdateOp) -> &mut Self {
        self.staged.push((table.into(), op));
        self
    }

    /// Number of staged ops.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }
}

/// What one group-commit flush committed: per-table batches through the
/// legacy single-table path, or — when the pending queue spanned more
/// than one table — a single atomic [`TxnBatch`] through
/// [`CentralServer::commit_txn`], which cannot partially flush.
pub enum Flushed<S: AuthScheme> {
    /// Batches committed by the legacy per-table path (the pending
    /// queue held at most one table).
    Batches(CommittedBatches<S>),
    /// One atomic multi-table transaction covering every pending run.
    Txn(Arc<TxnBatch<S::Delta>>),
}

impl<S: AuthScheme> Flushed<S> {
    /// True when this call committed nothing.
    pub fn is_empty(&self) -> bool {
        match self {
            Flushed::Batches(batches) => batches.is_empty(),
            Flushed::Txn(txn) => txn.sections.is_empty(),
        }
    }

    /// Total update ops committed by this call.
    pub fn ops(&self) -> u64 {
        match self {
            Flushed::Batches(batches) => batches.iter().map(|b| b.len() as u64).sum(),
            Flushed::Txn(txn) => txn.ops(),
        }
    }

    /// The committed per-table batches, when this flush stayed on the
    /// legacy single-table path.
    pub fn batches(&self) -> Option<&CommittedBatches<S>> {
        match self {
            Flushed::Batches(batches) => Some(batches),
            Flushed::Txn(_) => None,
        }
    }

    /// The committed txn, when this flush rerouted through
    /// [`CentralServer::commit_txn`].
    pub fn txn(&self) -> Option<&Arc<TxnBatch<S::Delta>>> {
        match self {
            Flushed::Batches(_) => None,
            Flushed::Txn(txn) => Some(txn),
        }
    }
}

impl<S: AuthScheme> core::fmt::Debug for Flushed<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Flushed::Batches(batches) => f
                .debug_struct("Flushed::Batches")
                .field("batches", &batches.len())
                .finish(),
            Flushed::Txn(txn) => f
                .debug_struct("Flushed::Txn")
                .field("sections", &txn.sections.len())
                .finish(),
        }
    }
}

/// The trusted central DBMS, generic over the authentication scheme.
pub struct CentralServer<S: AuthScheme> {
    pub(crate) scheme: S,
    pub(crate) signer: Arc<dyn Signer>,
    pub(crate) registry: KeyRegistry,
    pub(crate) catalog: Catalog,
    pub(crate) stores: BTreeMap<String, S::Store>,
    pub(crate) views: Vec<JoinViewDef>,
    pub(crate) locks: LockManager,
    pub(crate) log: DeltaLog<S::Delta>,
    /// Owner stamps per attested seq, pruned to the log's retention
    /// window and capped at [`STAMP_RETENTION`] (the newest stamp is
    /// always kept).
    pub(crate) stamps: BTreeMap<u64, FreshnessStamp>,
    /// Sign a fresh stamp on every commit. Enabled by
    /// [`with_delta_retention`](Self::with_delta_retention) (cluster
    /// deployments); standalone servers skip the per-commit signature
    /// — with an RSA signer that is a full extra signing operation per
    /// update — and attest only on [`heartbeat`](Self::heartbeat).
    pub(crate) stamp_commits: bool,
    /// Group-commit knobs; `None` = every update commits individually.
    pub(crate) group_commit: Option<GroupCommitConfig>,
    /// Ops waiting for the next group-commit flush, in arrival order.
    /// Queued-not-yet-committed: these are *not* WAL-protected — an op
    /// is durable only once its batch commits (and is acked as such).
    pub(crate) pending: Vec<(String, UpdateOp)>,
    /// Clock value when the oldest pending op was enqueued.
    pub(crate) pending_since_clock: u64,
    pub(crate) clock: u64,
    /// Write-ahead durability engine; `None` = in-memory only (the
    /// pre-durability behaviour, still the default).
    pub(crate) durability: Option<crate::durability::DurabilityEngine<S>>,
}

impl<S: AuthScheme> CentralServer<S> {
    /// Create a central server for a scheme and publish the initial key
    /// version.
    pub fn with_scheme(scheme: S, signer: Arc<dyn Signer>) -> Self {
        let mut registry = KeyRegistry::new();
        registry.publish(signer.verifier(), 0);
        let mut stamps = BTreeMap::new();
        stamps.insert(0, FreshnessStamp::sign(signer.as_ref(), 0, 0));
        Self {
            scheme,
            signer,
            registry,
            catalog: Catalog::new(),
            stores: BTreeMap::new(),
            views: Vec::new(),
            locks: LockManager::new(),
            log: DeltaLog::unbounded(),
            stamps,
            stamp_commits: false,
            group_commit: None,
            pending: Vec::new(),
            pending_since_clock: 0,
            clock: 0,
            durability: None,
        }
    }

    /// Bound the delta log's retention window (see [`DeltaLog`]) and
    /// enable per-commit freshness stamps (the cluster subscription
    /// mode). Subscribers further behind than `retention` deltas get
    /// [`DeltaLogError::Truncated`] and must re-bundle.
    pub fn with_delta_retention(mut self, retention: usize) -> Self {
        self.log = DeltaLog::new(retention);
        self.stamp_commits = true;
        self
    }

    /// Enable the group-commit queue (see [`GroupCommitConfig`]):
    /// [`enqueue_update`](Self::enqueue_update) coalesces independent
    /// single-op transactions into [`DeltaBatch`] commits instead of
    /// committing each op individually.
    pub fn with_group_commit(mut self, config: GroupCommitConfig) -> Self {
        self.group_commit = Some(GroupCommitConfig {
            max_batch: config.max_batch.max(1),
            ..config
        });
        self
    }

    /// The scheme descriptor (public parameters).
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The public key registry (clients consult it for freshness).
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// Verifier for the *current* signing key. [`rotate_key`]
    /// (Self::rotate_key) re-signs every store under the new key, so
    /// this verifier always authenticates the central's live state —
    /// the anchor a restoring edge checks chunk proofs against.
    pub fn verifier(&self) -> Arc<dyn vbx_crypto::SigVerifier> {
        self.signer.verifier()
    }

    /// Logical clock (advances with every committed update).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Lock statistics (tests).
    pub fn lock_stats(&self) -> crate::locks::LockStats {
        self.locks.stats()
    }

    /// Register a base table: builds and signs its authenticated store.
    /// With durability enabled this is DDL and forces a checkpoint (the
    /// WAL carries only update deltas, so schema changes must land in a
    /// full snapshot).
    pub fn create_table(&mut self, table: Table) {
        let store = self.scheme.build(&table, self.signer.as_ref());
        self.stores.insert(table.schema().table.clone(), store);
        self.catalog.put(table);
        self.durability_mark_ddl();
    }

    /// Drop a base table from the catalog and discard its store.
    /// Returns `false` when no such table exists. DDL, like
    /// [`create_table`](Self::create_table): forces a checkpoint so the
    /// drop lands in a durable snapshot. Edges that still hold an
    /// assignment for the table discover the drop on their next
    /// (re)subscription and remove the stale replica.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let existed = self.catalog.remove(name).is_some();
        self.stores.remove(name);
        if existed {
            self.durability_mark_ddl();
        }
        existed
    }

    /// Authoritative store lookup.
    pub fn store(&self, name: &str) -> Option<&S::Store> {
        self.stores.get(name)
    }

    /// Schema of a base table (scheme-independent metadata clients and
    /// the cluster coordinator share).
    pub fn schema(&self, name: &str) -> Option<&vbx_storage::Schema> {
        self.catalog.get(name).map(Table::schema)
    }

    /// Materialise an equijoin view and build its authenticated store
    /// (Section 3.3's join strategy — works for every scheme, since a
    /// view is just another table). Returns the canonical view name.
    pub fn materialize_join(
        &mut self,
        left: &str,
        right: &str,
        left_col: &str,
        right_col: &str,
    ) -> Result<String, CentralError<S::Error>> {
        let lt = self
            .catalog
            .get(left)
            .ok_or_else(|| CentralError::UnknownTable(left.into()))?;
        let rt = self
            .catalog
            .get(right)
            .ok_or_else(|| CentralError::UnknownTable(right.into()))?;
        let def = JoinViewDef::new(left, right, left_col, right_col);
        let view_table = build_view_table(&def, lt, rt)?;
        let store = self.scheme.build(&view_table, self.signer.as_ref());
        let name = def.name.clone();
        self.stores.insert(name.clone(), store);
        self.views.push(def);
        self.durability_mark_ddl();
        Ok(name)
    }

    /// Registered view definitions.
    pub fn views(&self) -> &[JoinViewDef] {
        &self.views
    }

    /// Log entries after `seq` (edge servers pull these to catch up —
    /// single-op deltas and group-committed batches alike). A `seq`
    /// beyond the log — a replica ahead of this server, e.g. restored
    /// from a newer snapshot — yields an empty batch rather than
    /// panicking the trusted side on untrusted input. A `seq` before
    /// the retention window yields the retained suffix; the resulting
    /// gap surfaces as `OutOfOrder` at the replica, which must then
    /// re-bundle. Prefer the cursor API on
    /// [`delta_log`](Self::delta_log), which reports truncation
    /// explicitly and clones only the needed tail.
    pub fn deltas_since(&self, seq: u64) -> Vec<LogEntry<S::Delta>> {
        self.log
            .collect_since(seq.max(self.log.oldest_seq()))
            .expect("cursor clamped into the retention window")
    }

    /// The signed-delta log (bounded retention + cursor API).
    pub fn delta_log(&self) -> &DeltaLog<S::Delta> {
        &self.log
    }

    /// The newest owner freshness stamp.
    pub fn freshness_stamp(&self) -> FreshnessStamp {
        self.stamps
            .values()
            .next_back()
            .expect("a stamp is signed at construction")
            .clone()
    }

    /// The owner stamp attesting exactly `seq` committed deltas, if
    /// still retained. Subscribers install this on an edge replica once
    /// the replica has applied through `seq`.
    pub fn stamp_for_seq(&self, seq: u64) -> Option<FreshnessStamp> {
        self.stamps.get(&seq).cloned()
    }

    /// The owner position `(next_seq, clock)` a trusted client measures
    /// staleness against.
    pub fn owner_position(&self) -> (u64, u64) {
        (self.log.next_seq(), self.clock)
    }

    /// Advance the logical clock and re-sign the current position — the
    /// owner's liveness heartbeat. Edges that receive (via their
    /// subscription) this stamp prove recent contact; a partitioned
    /// edge keeps an aging stamp and trips `FreshnessPolicy::max_age`.
    ///
    /// The heartbeat also **flushes aged group-commit runs**: the
    /// enqueue-side age trigger only fires on the *next* enqueue, so a
    /// queue that goes quiet would otherwise hold its pending ops
    /// hostage indefinitely. The heartbeat — the one event guaranteed
    /// to keep happening — commits any run whose oldest op has waited
    /// past `commit_interval`. A failing flush follows
    /// [`flush_group_commit`](Self::flush_group_commit)'s documented
    /// semantics (the failing ops are dropped; anything committed is in
    /// the delta log for the next fan-out; a durability failure poisons
    /// the engine and resurfaces on the next commit), and the stamp
    /// signed below attests the *post-flush* position.
    pub fn heartbeat(&mut self) -> FreshnessStamp
    where
        S::Store: Clone,
    {
        self.clock += 1;
        if let Some(config) = self.group_commit {
            let aged = !self.pending.is_empty()
                && self.clock.saturating_sub(self.pending_since_clock) >= config.commit_interval;
            if aged {
                let _ = self.flush_group_commit();
            }
        }
        let stamp = FreshnessStamp::sign(self.signer.as_ref(), self.log.next_seq(), self.clock);
        self.stamps.insert(self.log.next_seq(), stamp.clone());
        self.prune_stamps();
        // Persist the clock advance so recovery never rewinds below a
        // handed-out stamp's `(seq, clock)`. A WAL failure here poisons
        // the engine: subsequent commits fail instead of acking state
        // that could rewind past this stamp after a crash.
        self.durability_heartbeat(&stamp);
        stamp
    }

    /// Drop stamps no subscriber can land on anymore: below the delta
    /// log's retention window, and beyond the [`STAMP_RETENTION`] cap
    /// (oldest first — the newest stamp is always kept).
    pub(crate) fn prune_stamps(&mut self) {
        let oldest = self.log.oldest_seq();
        self.stamps.retain(|&seq, _| seq >= oldest);
        while self.stamps.len() > STAMP_RETENTION {
            self.stamps.pop_first();
        }
    }

    /// Insert a tuple (the paper's insert transaction: X-lock the
    /// scheme's lock targets, apply, re-sign).
    pub fn insert(
        &mut self,
        table: &str,
        tuple: Tuple,
    ) -> Result<SignedDelta<S::Delta>, CentralError<S::Error>> {
        self.apply_op(table, UpdateOp::Insert(tuple))
    }

    /// Delete a tuple (X-lock the path, recompute digests bottom-up).
    pub fn delete(
        &mut self,
        table: &str,
        key: u64,
    ) -> Result<SignedDelta<S::Delta>, CentralError<S::Error>> {
        self.apply_op(table, UpdateOp::Delete(key))
    }

    /// Batch range delete (equation (12)'s transaction).
    pub fn delete_range(
        &mut self,
        table: &str,
        lo: u64,
        hi: u64,
    ) -> Result<SignedDelta<S::Delta>, CentralError<S::Error>> {
        self.apply_op(table, UpdateOp::DeleteRange(lo, hi))
    }

    /// One update transaction: lock the scheme's targets exclusively,
    /// apply to the authenticated store and the catalog, release, then
    /// refresh affected views and log the signed delta.
    fn apply_op(
        &mut self,
        table: &str,
        op: UpdateOp,
    ) -> Result<SignedDelta<S::Delta>, CentralError<S::Error>> {
        let txn = self.next_txn();
        let targets = {
            let store = self
                .stores
                .get(table)
                .ok_or_else(|| CentralError::UnknownTable(table.into()))?;
            self.scheme.lock_targets(store, &op)
        };
        let resources: Vec<_> = targets
            .into_iter()
            .map(|n| (table.to_string(), n))
            .collect();
        self.locks
            .try_acquire_all(txn, &resources, LockMode::Exclusive)
            .expect("single-threaded central server cannot conflict with itself");

        let result = (|| {
            let store = self.stores.get_mut(table).expect("checked above");
            let payload = self
                .scheme
                .update(store, &op, self.signer.as_ref())
                .map_err(CentralError::Scheme)?;
            let cat = self.catalog.get_mut(table).expect("catalog mirrors stores");
            match &op {
                UpdateOp::Insert(tuple) => {
                    cat.insert(tuple.clone())?;
                }
                UpdateOp::Delete(key) => {
                    cat.delete(*key)?;
                }
                UpdateOp::DeleteRange(lo, hi) => {
                    let doomed: Vec<u64> = cat.range(*lo, *hi).map(|t| t.key).collect();
                    for k in doomed {
                        cat.delete(k)?;
                    }
                }
            }
            Ok::<_, CentralError<S::Error>>(payload)
        })();
        self.locks.release_all(txn);
        let payload = result?;

        self.refresh_views_for(table)?;
        self.clock += 1;
        let delta = SignedDelta {
            seq: self.log.next_seq(),
            table: table.to_string(),
            op,
            payload,
            key_version: self.signer.key_version(),
        };
        self.log
            .push(delta.clone())
            .expect("commit path issues contiguous seqs");
        // In cluster mode, attest the new position and prune stamps
        // that fell out of the retention windows (newest always kept).
        let stamp = if self.stamp_commits {
            let attested = self.log.next_seq();
            let stamp = FreshnessStamp::sign(self.signer.as_ref(), attested, self.clock);
            self.stamps.insert(attested, stamp.clone());
            self.prune_stamps();
            Some(stamp)
        } else {
            None
        };
        // Append-before-ack: the WAL record (and its fsync) must land
        // before this commit is returned to the caller.
        self.durability_commit_op(stamp.as_ref(), &delta)?;
        Ok(delta)
    }

    /// One group-commit transaction: X-lock the union of every op's
    /// lock targets, apply the whole batch to the authenticated store
    /// through [`AuthScheme::update_batch`] (for the VB-tree: one
    /// deferred signing sweep over the dirty nodes instead of per-op
    /// path re-signs), mirror the ops into the catalog, release,
    /// refresh affected views **once**, and log one [`DeltaBatch`]
    /// covering the ops' whole sequence range — with **one** freshness
    /// stamp attesting the batch's end position (in cluster mode)
    /// instead of one per op. `k` ops thus cost ~1 signature sweep, ~1
    /// stamp, and ~1 fan-out message.
    ///
    /// An empty `ops` is a no-op: nothing locks, commits, or logs.
    pub fn execute_update_batch(
        &mut self,
        table: &str,
        ops: Vec<UpdateOp>,
    ) -> Result<Arc<DeltaBatch<S::Delta>>, CentralError<S::Error>> {
        if ops.is_empty() {
            return Ok(Arc::new(DeltaBatch {
                start_seq: self.log.next_seq(),
                table: table.to_string(),
                ops,
                payloads: Vec::new(),
                key_version: self.signer.key_version(),
                stamp: None,
            }));
        }
        let txn = self.next_txn();
        let resources: Vec<_> = {
            let store = self
                .stores
                .get(table)
                .ok_or_else(|| CentralError::UnknownTable(table.into()))?;
            let mut targets: Vec<usize> = ops
                .iter()
                .flat_map(|op| self.scheme.lock_targets(store, op))
                .collect();
            targets.sort_unstable();
            targets.dedup();
            targets
                .into_iter()
                .map(|n| (table.to_string(), n))
                .collect()
        };
        self.locks
            .try_acquire_all(txn, &resources, LockMode::Exclusive)
            .expect("single-threaded central server cannot conflict with itself");

        let result = (|| {
            let store = self.stores.get_mut(table).expect("checked above");
            let payloads = self
                .scheme
                .update_batch(store, &ops, self.signer.as_ref())
                .map_err(CentralError::Scheme)?;
            let cat = self.catalog.get_mut(table).expect("catalog mirrors stores");
            for op in &ops {
                match op {
                    UpdateOp::Insert(tuple) => {
                        cat.insert(tuple.clone())?;
                    }
                    UpdateOp::Delete(key) => {
                        cat.delete(*key)?;
                    }
                    UpdateOp::DeleteRange(lo, hi) => {
                        let doomed: Vec<u64> = cat.range(*lo, *hi).map(|t| t.key).collect();
                        for k in doomed {
                            cat.delete(k)?;
                        }
                    }
                }
            }
            Ok::<_, CentralError<S::Error>>(payloads)
        })();
        self.locks.release_all(txn);
        let payloads = result?;

        self.refresh_views_for(table)?;
        self.clock += 1;
        let start_seq = self.log.next_seq();
        let end_seq = start_seq + ops.len() as u64;
        // One stamp for the whole batch, attesting its end position.
        let stamp = self.stamp_commits.then(|| {
            let stamp = FreshnessStamp::sign(self.signer.as_ref(), end_seq, self.clock);
            self.stamps.insert(end_seq, stamp.clone());
            stamp
        });
        let batch = self
            .log
            .push_batch(DeltaBatch {
                start_seq,
                table: table.to_string(),
                ops,
                payloads,
                key_version: self.signer.key_version(),
                stamp,
            })
            .expect("commit path issues contiguous seqs");
        if self.stamp_commits {
            self.prune_stamps();
        }
        // Append-before-ack: one WAL record (and one fsync) covers the
        // whole batch — the durable analogue of the group-commit
        // signing sweep.
        self.durability_commit_batch(&batch)?;
        Ok(batch)
    }

    /// Begin staging an atomic multi-table transaction. Stage ops with
    /// [`Txn::stage`], then commit the whole set with
    /// [`commit_txn`](Self::commit_txn).
    pub fn begin_txn(&self) -> Txn {
        Txn::default()
    }

    /// Commit a staged multi-table transaction **atomically**: X-lock
    /// the union of every touched table's lock targets, mirror every op
    /// into staged clones of the catalog tables (validating conflicts
    /// before anything mutates), run every per-table
    /// [`AuthScheme::update_batch`] signing sweep, then log one
    /// [`TxnBatch`] and append **one** checksummed `CommitTxn` WAL
    /// record — fsync'd before *any* table's state is acked.
    ///
    /// All-or-nothing: on any failure — an unknown table, a catalog
    /// conflict, a failing sweep, a WAL append — no store, catalog
    /// table, log entry, or durable record changes at all. Stores
    /// already swept when a later run fails are restored from snapshots
    /// taken under the txn's locks. (A WAL failure additionally poisons
    /// the durability engine, exactly like every other commit path.)
    ///
    /// Consecutive same-table runs become the txn's sections, chained
    /// over one contiguous sequence range in arrival order, and one
    /// freshness stamp attests the txn's end position (cluster mode).
    /// Committing an empty txn is a no-op returning a sectionless
    /// `TxnBatch`.
    pub fn commit_txn(
        &mut self,
        txn: Txn,
    ) -> Result<Arc<TxnBatch<S::Delta>>, CentralError<S::Error>>
    where
        S::Store: Clone,
    {
        if txn.staged.is_empty() {
            return Ok(Arc::new(TxnBatch {
                sections: Vec::new(),
                stamp: None,
            }));
        }
        // Group staged ops into consecutive same-table runs — the
        // txn's sections, committing in arrival order.
        let mut runs: Vec<(String, Vec<UpdateOp>)> = Vec::new();
        for (table, op) in txn.staged {
            match runs.last_mut() {
                Some((t, run)) if *t == table => run.push(op),
                _ => runs.push((table, vec![op])),
            }
        }
        // Validate every table before anything mutates.
        for (table, _) in &runs {
            if !self.stores.contains_key(table) {
                return Err(CentralError::UnknownTable(table.clone()));
            }
        }
        // Union of every run's lock targets across all touched tables.
        let lock_txn = self.next_txn();
        let mut resources: Vec<(String, usize)> = Vec::new();
        for (table, ops) in &runs {
            let store = self.stores.get(table).expect("validated above");
            for op in ops {
                for target in self.scheme.lock_targets(store, op) {
                    resources.push((table.clone(), target));
                }
            }
        }
        resources.sort_unstable();
        resources.dedup();
        self.locks
            .try_acquire_all(lock_txn, &resources, LockMode::Exclusive)
            .expect("single-threaded central server cannot conflict with itself");

        let result = (|| {
            // 1. Mirror every op into clones of the touched catalog
            //    tables: catalog-level conflicts (duplicate keys,
            //    missing keys) surface here, before any store mutates.
            let mut staged_cat: BTreeMap<String, Table> = BTreeMap::new();
            for (table, ops) in &runs {
                if !staged_cat.contains_key(table) {
                    let cat = self
                        .catalog
                        .get(table)
                        .expect("catalog mirrors stores")
                        .clone();
                    staged_cat.insert(table.clone(), cat);
                }
                let cat = staged_cat.get_mut(table).expect("inserted above");
                for op in ops {
                    match op {
                        UpdateOp::Insert(tuple) => {
                            cat.insert(tuple.clone())?;
                        }
                        UpdateOp::Delete(key) => {
                            cat.delete(*key)?;
                        }
                        UpdateOp::DeleteRange(lo, hi) => {
                            let doomed: Vec<u64> = cat.range(*lo, *hi).map(|t| t.key).collect();
                            for k in doomed {
                                cat.delete(k)?;
                            }
                        }
                    }
                }
            }
            // 2. Every per-table signing sweep, with undo snapshots so
            //    a failing run rolls the whole txn back — never a table
            //    subset.
            let mut undo: BTreeMap<String, S::Store> = BTreeMap::new();
            let mut run_payloads: Vec<Vec<S::Delta>> = Vec::with_capacity(runs.len());
            for (table, ops) in &runs {
                if !undo.contains_key(table) {
                    let snapshot = self.stores.get(table).expect("validated above").clone();
                    undo.insert(table.clone(), snapshot);
                }
                let store = self.stores.get_mut(table).expect("validated above");
                match self.scheme.update_batch(store, ops, self.signer.as_ref()) {
                    Ok(payloads) => run_payloads.push(payloads),
                    Err(e) => {
                        for (t, snapshot) in undo {
                            self.stores.insert(t, snapshot);
                        }
                        return Err(CentralError::Scheme(e));
                    }
                }
            }
            // 3. Install the staged catalog tables (infallible).
            for (_, table) in staged_cat {
                self.catalog.put(table);
            }
            Ok(run_payloads)
        })();
        self.locks.release_all(lock_txn);
        let run_payloads = result?;

        let mut touched: Vec<String> = runs.iter().map(|(t, _)| t.clone()).collect();
        touched.sort_unstable();
        touched.dedup();
        for table in &touched {
            self.refresh_views_for(table)?;
        }
        self.clock += 1;
        let key_version = self.signer.key_version();
        let mut seq = self.log.next_seq();
        let mut sections = Vec::with_capacity(runs.len());
        for ((table, ops), payloads) in runs.into_iter().zip(run_payloads) {
            let start_seq = seq;
            seq += ops.len() as u64;
            sections.push(DeltaBatch {
                start_seq,
                table,
                ops,
                payloads,
                key_version,
                // The txn-level stamp covers the whole envelope; the
                // sections carry none of their own.
                stamp: None,
            });
        }
        let end_seq = seq;
        // One stamp for the whole txn, attesting its end position.
        let stamp = self.stamp_commits.then(|| {
            let stamp = FreshnessStamp::sign(self.signer.as_ref(), end_seq, self.clock);
            self.stamps.insert(end_seq, stamp.clone());
            stamp
        });
        let committed = self
            .log
            .push_txn(TxnBatch { sections, stamp })
            .expect("commit path issues contiguous seqs");
        if self.stamp_commits {
            self.prune_stamps();
        }
        // Append-before-ack: one CommitTxn WAL record (and one fsync)
        // covers every table's sweep — no table's state is acked before
        // the whole txn is durable.
        self.durability_commit_txn(&committed)?;
        Ok(committed)
    }

    /// Enqueue one update into the group-commit queue, committing
    /// whatever the queue's flush rules say is due: without
    /// [`with_group_commit`](Self::with_group_commit) the op commits
    /// immediately as a batch of one; with it, ops coalesce until
    /// `max_batch` are pending or the oldest has waited
    /// `commit_interval` clock ticks. Returns what *this* call
    /// committed (often nothing — the op just joined the queue).
    ///
    /// Per-table conflict handling is preserved: a flush groups
    /// **consecutive same-table runs**, so commit order across tables
    /// is exactly arrival order and every run takes the Section 3.4
    /// locks for its own table's ops. A flush whose pending queue spans
    /// more than one table commits as one atomic
    /// [`commit_txn`](Self::commit_txn) — see
    /// [`flush_group_commit`](Self::flush_group_commit).
    pub fn enqueue_update(&mut self, table: &str, op: UpdateOp) -> Result<Flushed<S>, FlushError<S>>
    where
        S::Store: Clone,
    {
        let Some(config) = self.group_commit else {
            return match self.execute_update_batch(table, vec![op]) {
                Ok(batch) => Ok(Flushed::Batches(vec![batch])),
                Err(error) => Err(FlushError {
                    committed: Vec::new(),
                    error,
                }),
            };
        };
        if self.pending.is_empty() {
            self.pending_since_clock = self.clock;
        }
        self.pending.push((table.to_string(), op));
        let due = self.pending.len() >= config.max_batch
            || self.clock.saturating_sub(self.pending_since_clock) >= config.commit_interval;
        if due {
            self.flush_group_commit()
        } else {
            Ok(Flushed::Batches(Vec::new()))
        }
    }

    /// Commit every pending group-commit op now. Call this to bound
    /// commit latency when the enqueue-side triggers have not fired.
    ///
    /// A pending queue that touches **more than one table** reroutes
    /// through [`commit_txn`](Self::commit_txn): every consecutive
    /// same-table run becomes a section of one atomic [`TxnBatch`] —
    /// one WAL record, one stamp, all-or-nothing. The partial-flush
    /// surface is gone for grouped runs: on failure *nothing* commits,
    /// the whole txn's ops are dropped with the error (the atomic
    /// analogue of dropping a failing run), and
    /// [`FlushError::committed`] is empty.
    ///
    /// A **single-table** queue keeps the legacy per-table path: it
    /// commits as one [`DeltaBatch`] through
    /// [`execute_update_batch`](Self::execute_update_batch), and a
    /// failure drops that run's ops with the error, exactly like a
    /// failed single-op commit.
    pub fn flush_group_commit(&mut self) -> Result<Flushed<S>, FlushError<S>>
    where
        S::Store: Clone,
    {
        let multi_table = self.pending.windows(2).any(|w| w[0].0 != w[1].0);
        if multi_table {
            let txn = Txn {
                staged: std::mem::take(&mut self.pending),
            };
            return match self.commit_txn(txn) {
                Ok(txn) => Ok(Flushed::Txn(txn)),
                Err(error) => Err(FlushError {
                    committed: Vec::new(),
                    error,
                }),
            };
        }
        let mut runs: Vec<(String, Vec<UpdateOp>)> = Vec::new();
        for (table, op) in std::mem::take(&mut self.pending) {
            match runs.last_mut() {
                Some((t, run)) if *t == table => run.push(op),
                _ => runs.push((table, vec![op])),
            }
        }
        let mut batches = Vec::new();
        let mut runs = runs.into_iter();
        for (table, run) in runs.by_ref() {
            match self.execute_update_batch(&table, run) {
                Ok(batch) => batches.push(batch),
                Err(error) => {
                    self.pending = runs
                        .flat_map(|(t, ops)| ops.into_iter().map(move |op| (t.clone(), op)))
                        .collect();
                    self.pending_since_clock = self.clock;
                    return Err(FlushError {
                        committed: batches,
                        error,
                    });
                }
            }
        }
        Ok(Flushed::Batches(batches))
    }

    /// Ops waiting in the group-commit queue.
    pub fn pending_commits(&self) -> usize {
        self.pending.len()
    }

    /// Rotate the signing key: re-sign every store under the new key and
    /// publish the new version with a validity window starting now
    /// (Section 3.4's defence for delayed propagation).
    pub fn rotate_key(&mut self, new_signer: Arc<dyn Signer>) {
        self.signer = new_signer;
        self.registry.publish(self.signer.verifier(), self.clock);
        // Stamps signed under the retired key would fail against the
        // new verifier; re-attest the current position under the new
        // key.
        self.stamps.clear();
        self.stamps.insert(
            self.log.next_seq(),
            FreshnessStamp::sign(self.signer.as_ref(), self.log.next_seq(), self.clock),
        );
        // Rebuild (re-sign) every base-table store under the new key.
        let names: Vec<String> = self.stores.keys().cloned().collect();
        for name in names {
            if let Some(table) = self.catalog.get(&name) {
                let store = self.scheme.build(table, self.signer.as_ref());
                self.stores.insert(name, store);
            }
        }
        // Views are derived; refresh them too.
        let defs = self.views.clone();
        for def in defs {
            let (Some(lt), Some(rt)) = (
                self.catalog.get(&def.left_table),
                self.catalog.get(&def.right_table),
            ) else {
                continue;
            };
            if let Ok(view_table) = build_view_table(&def, lt, rt) {
                let store = self.scheme.build(&view_table, self.signer.as_ref());
                self.stores.insert(def.name.clone(), store);
            }
        }
        // A key rotation invalidates every checkpointed signature:
        // force a fresh checkpoint under the new key.
        self.durability_mark_ddl();
    }

    pub(crate) fn refresh_views_for(&mut self, table: &str) -> Result<(), CentralError<S::Error>> {
        let affected: Vec<JoinViewDef> = self
            .views
            .iter()
            .filter(|d| d.left_table == table || d.right_table == table)
            .cloned()
            .collect();
        for def in affected {
            let lt = self
                .catalog
                .get(&def.left_table)
                .ok_or_else(|| CentralError::UnknownTable(def.left_table.clone()))?;
            let rt = self
                .catalog
                .get(&def.right_table)
                .ok_or_else(|| CentralError::UnknownTable(def.right_table.clone()))?;
            let view_table = build_view_table(&def, lt, rt)?;
            let store = self.scheme.build(&view_table, self.signer.as_ref());
            self.stores.insert(def.name.clone(), store);
        }
        Ok(())
    }

    fn next_txn(&self) -> u64 {
        self.clock + 1_000_000 * (self.log.next_seq() + 1)
    }
}

/// VB-tree specific surface: the compatibility constructor and the tree
/// distribution bundle (its wire format serialises signed tree nodes).
impl<const L: usize> CentralServer<VbScheme<L>> {
    /// Create a VB-tree central server from accumulator parameters and
    /// tree geometry.
    pub fn new(acc: Accumulator<L>, signer: Arc<dyn Signer>, config: VbTreeConfig) -> Self {
        Self::with_scheme(VbScheme::new(acc, config), signer)
    }

    /// The digest algebra (public parameters).
    pub fn accumulator(&self) -> &Accumulator<L> {
        &self.scheme.acc
    }

    /// Authoritative tree lookup.
    pub fn tree(&self, name: &str) -> Option<&VbTree<L>> {
        self.stores.get(name)
    }

    /// Snapshot everything for a new edge server.
    pub fn bundle(&self) -> EdgeBundle<L> {
        EdgeBundle {
            trees: self.stores.clone(),
            views: self.views.clone(),
            as_of_seq: self.log.next_seq(),
        }
    }

    /// Rebuilt view trees (edges re-fetch these after applying deltas;
    /// views are refreshed wholesale because their rowids shift).
    pub fn view_trees(&self) -> BTreeMap<String, VbTree<L>> {
        self.views
            .iter()
            .filter_map(|d| {
                self.stores
                    .get(&d.name)
                    .map(|t| (d.name.clone(), t.clone()))
            })
            .collect()
    }
}
