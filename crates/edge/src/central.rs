//! The trusted central DBMS.
//!
//! Owns the master database, the private signing key, and the
//! authoritative VB-trees. Executes update transactions under the
//! Section 3.4 locking protocol, records **signed update deltas** for
//! edge replicas (which cannot sign anything themselves), refreshes
//! materialised join views, and manages key rotation with validity
//! windows for the delayed-propagation mode.

use crate::locks::{LockManager, LockMode};
use std::collections::BTreeMap;
use std::sync::Arc;
use vbx_core::{Capture, CoreError, VbTree, VbTreeConfig};
use vbx_crypto::accum::{Accumulator, SignedDigest};
use vbx_crypto::{KeyRegistry, Signer};
use vbx_query::{build_view_table, JoinViewDef};
use vbx_storage::{Catalog, StorageError, Table, Tuple};

/// One update operation, as shipped to edge servers.
#[derive(Clone, Debug)]
pub enum UpdateOp {
    /// Insert a tuple.
    Insert(Tuple),
    /// Delete by key.
    Delete(u64),
    /// Batch range delete (inclusive bounds).
    DeleteRange(u64, u64),
}

/// A signed update delta: the operation plus every signed digest the
/// replica will need, in deterministic issue order.
#[derive(Clone, Debug)]
pub struct UpdateDelta<const L: usize> {
    /// Sequence number (contiguous per central server).
    pub seq: u64,
    /// Table the update applies to.
    pub table: String,
    /// The operation.
    pub op: UpdateOp,
    /// Pre-signed digests in replay order.
    pub digests: Vec<SignedDigest<L>>,
    /// Key version the digests were signed under.
    pub key_version: u32,
}

/// Initial distribution bundle for a new edge server: full replicas of
/// every tree (base tables and views).
#[derive(Clone)]
pub struct EdgeBundle<const L: usize> {
    /// Tree replicas by name.
    pub trees: BTreeMap<String, VbTree<L>>,
    /// View definitions.
    pub views: Vec<JoinViewDef>,
    /// Sequence number the bundle reflects.
    pub as_of_seq: u64,
}

impl<const L: usize> EdgeBundle<L> {
    /// Serialize the bundle — the bytes the central server actually
    /// ships to a new edge site.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(b"VBB1");
        out.extend_from_slice(&self.as_of_seq.to_be_bytes());
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        out.extend_from_slice(&(self.views.len() as u32).to_be_bytes());
        for v in &self.views {
            put_str(&mut out, &v.name);
            put_str(&mut out, &v.left_table);
            put_str(&mut out, &v.right_table);
            put_str(&mut out, &v.left_col);
            put_str(&mut out, &v.right_col);
        }
        out.extend_from_slice(&(self.trees.len() as u32).to_be_bytes());
        for (name, tree) in &self.trees {
            put_str(&mut out, name);
            let tree_bytes = vbx_core::encode_tree(tree);
            out.extend_from_slice(&(tree_bytes.len() as u64).to_be_bytes());
            out.extend_from_slice(&tree_bytes);
        }
        out
    }

    /// Decode a bundle, structurally validating every tree.
    pub fn from_bytes(bytes: &[u8], acc: &Accumulator<L>) -> Result<Self, CoreError> {
        let corrupt = |m: &str| CoreError::Wire(m.to_string());
        let mut buf = bytes;
        let take =
            |buf: &mut &[u8], n: usize| -> Result<Vec<u8>, CoreError> {
                if buf.len() < n {
                    return Err(corrupt("bundle truncated"));
                }
                let out = buf[..n].to_vec();
                *buf = &buf[n..];
                Ok(out)
            };
        let get_str = |buf: &mut &[u8]| -> Result<String, CoreError> {
            let len = u32::from_be_bytes(take(buf, 4)?.try_into().unwrap()) as usize;
            String::from_utf8(take(buf, len)?).map_err(|_| corrupt("bundle string not UTF-8"))
        };

        if take(&mut buf, 4)? != b"VBB1" {
            return Err(corrupt("bad bundle magic"));
        }
        let as_of_seq = u64::from_be_bytes(take(&mut buf, 8)?.try_into().unwrap());
        let n_views = u32::from_be_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        let mut views = Vec::with_capacity(n_views.min(1024));
        for _ in 0..n_views {
            let name = get_str(&mut buf)?;
            let left_table = get_str(&mut buf)?;
            let right_table = get_str(&mut buf)?;
            let left_col = get_str(&mut buf)?;
            let right_col = get_str(&mut buf)?;
            views.push(JoinViewDef {
                name,
                left_table,
                right_table,
                left_col,
                right_col,
            });
        }
        let n_trees = u32::from_be_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        let mut trees = BTreeMap::new();
        for _ in 0..n_trees {
            let name = get_str(&mut buf)?;
            let tree_len = u64::from_be_bytes(take(&mut buf, 8)?.try_into().unwrap()) as usize;
            let tree_bytes = take(&mut buf, tree_len)?;
            let tree = vbx_core::decode_tree(&tree_bytes, acc.clone())?;
            trees.insert(name, tree);
        }
        if !buf.is_empty() {
            return Err(corrupt("trailing bytes in bundle"));
        }
        Ok(Self {
            trees,
            views,
            as_of_seq,
        })
    }
}

/// Errors from central-server operations.
#[derive(Debug)]
pub enum CentralError {
    /// Storage-level failure.
    Storage(StorageError),
    /// Tree-level failure.
    Core(CoreError),
    /// Unknown table.
    UnknownTable(String),
}

impl core::fmt::Display for CentralError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CentralError::Storage(e) => write!(f, "{e}"),
            CentralError::Core(e) => write!(f, "{e}"),
            CentralError::UnknownTable(t) => write!(f, "unknown table {t}"),
        }
    }
}

impl std::error::Error for CentralError {}

impl From<StorageError> for CentralError {
    fn from(e: StorageError) -> Self {
        CentralError::Storage(e)
    }
}

impl From<CoreError> for CentralError {
    fn from(e: CoreError) -> Self {
        CentralError::Core(e)
    }
}

/// The trusted central DBMS.
pub struct CentralServer<const L: usize> {
    acc: Accumulator<L>,
    signer: Arc<dyn Signer>,
    registry: KeyRegistry,
    config: VbTreeConfig,
    catalog: Catalog,
    trees: BTreeMap<String, VbTree<L>>,
    views: Vec<JoinViewDef>,
    locks: LockManager,
    log: Vec<UpdateDelta<L>>,
    clock: u64,
}

impl<const L: usize> CentralServer<L> {
    /// Create a central server and publish the initial key version.
    pub fn new(acc: Accumulator<L>, signer: Arc<dyn Signer>, config: VbTreeConfig) -> Self {
        let mut registry = KeyRegistry::new();
        registry.publish(signer.verifier(), 0);
        Self {
            acc,
            signer,
            registry,
            config,
            catalog: Catalog::new(),
            trees: BTreeMap::new(),
            views: Vec::new(),
            locks: LockManager::new(),
            log: Vec::new(),
            clock: 0,
        }
    }

    /// The public key registry (clients consult it for freshness).
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// Logical clock (advances with every committed update).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The digest algebra (public parameters).
    pub fn accumulator(&self) -> &Accumulator<L> {
        &self.acc
    }

    /// Lock statistics (tests).
    pub fn lock_stats(&self) -> crate::locks::LockStats {
        self.locks.stats()
    }

    /// Register a base table: builds and signs its VB-tree.
    pub fn create_table(&mut self, table: Table) {
        let tree = VbTree::bulk_load(
            &table,
            self.config.clone(),
            self.acc.clone(),
            self.signer.as_ref(),
        );
        self.trees.insert(table.schema().table.clone(), tree);
        self.catalog.put(table);
    }

    /// Materialise an equijoin view and build its VB-tree (Section 3.3's
    /// join strategy). Returns the canonical view name.
    pub fn materialize_join(
        &mut self,
        left: &str,
        right: &str,
        left_col: &str,
        right_col: &str,
    ) -> Result<String, CentralError> {
        let lt = self
            .catalog
            .get(left)
            .ok_or_else(|| CentralError::UnknownTable(left.into()))?;
        let rt = self
            .catalog
            .get(right)
            .ok_or_else(|| CentralError::UnknownTable(right.into()))?;
        let def = JoinViewDef::new(left, right, left_col, right_col);
        let view_table = build_view_table(&def, lt, rt)?;
        let tree = VbTree::bulk_load(
            &view_table,
            self.config.clone(),
            self.acc.clone(),
            self.signer.as_ref(),
        );
        let name = def.name.clone();
        self.trees.insert(name.clone(), tree);
        self.views.push(def);
        Ok(name)
    }

    /// Authoritative tree lookup.
    pub fn tree(&self, name: &str) -> Option<&VbTree<L>> {
        self.trees.get(name)
    }

    /// Registered view definitions.
    pub fn views(&self) -> &[JoinViewDef] {
        &self.views
    }

    /// Snapshot everything for a new edge server.
    pub fn bundle(&self) -> EdgeBundle<L> {
        EdgeBundle {
            trees: self.trees.clone(),
            views: self.views.clone(),
            as_of_seq: self.log.len() as u64,
        }
    }

    /// Deltas after `seq` (edge servers pull these to catch up), plus
    /// fresh snapshots of any views refreshed in that window.
    pub fn deltas_since(&self, seq: u64) -> Vec<UpdateDelta<L>> {
        self.log[seq as usize..].to_vec()
    }

    /// Rebuilt view trees (edges re-fetch these after applying deltas;
    /// views are refreshed wholesale because their rowids shift).
    pub fn view_trees(&self) -> BTreeMap<String, VbTree<L>> {
        self.views
            .iter()
            .filter_map(|d| {
                self.trees
                    .get(&d.name)
                    .map(|t| (d.name.clone(), t.clone()))
            })
            .collect()
    }

    /// Insert a tuple (the paper's insert transaction: X-lock each path
    /// digest in turn, absorb the tuple exponent, re-sign).
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<UpdateDelta<L>, CentralError> {
        let txn = self.next_txn();
        // Lock the path digests (plus the parent on splits — we lock the
        // whole path which subsumes it).
        let path = {
            let tree = self
                .trees
                .get(table)
                .ok_or_else(|| CentralError::UnknownTable(table.into()))?;
            tree.path_node_ids(tuple.key)
        };
        let resources: Vec<_> = path.into_iter().map(|n| (table.to_string(), n)).collect();
        self.locks
            .try_acquire_all(txn, &resources, LockMode::Exclusive)
            .expect("single-threaded central server cannot conflict with itself");

        let result = (|| {
            let mut capture = Capture::new(self.signer.as_ref());
            let tree = self.trees.get_mut(table).expect("checked above");
            tree.insert_with_source(tuple.clone(), &mut capture)?;
            self.catalog
                .get_mut(table)
                .expect("catalog mirrors trees")
                .insert(tuple.clone())?;
            Ok::<_, CentralError>(capture.into_digests())
        })();
        self.locks.release_all(txn);
        let digests = result?;

        self.refresh_views_for(table)?;
        self.clock += 1;
        let delta = UpdateDelta {
            seq: self.log.len() as u64,
            table: table.to_string(),
            op: UpdateOp::Insert(tuple),
            digests,
            key_version: self.signer.key_version(),
        };
        self.log.push(delta.clone());
        Ok(delta)
    }

    /// Delete a tuple (X-lock the whole path up front, then recompute
    /// digests bottom-up — the paper's delete transaction).
    pub fn delete(&mut self, table: &str, key: u64) -> Result<UpdateDelta<L>, CentralError> {
        let txn = self.next_txn();
        let path = {
            let tree = self
                .trees
                .get(table)
                .ok_or_else(|| CentralError::UnknownTable(table.into()))?;
            tree.path_node_ids(key)
        };
        let resources: Vec<_> = path.into_iter().map(|n| (table.to_string(), n)).collect();
        self.locks
            .try_acquire_all(txn, &resources, LockMode::Exclusive)
            .expect("single-threaded central server cannot conflict with itself");

        let result = (|| {
            let mut capture = Capture::new(self.signer.as_ref());
            let tree = self.trees.get_mut(table).expect("checked above");
            tree.delete_with_source(key, &mut capture)?;
            self.catalog
                .get_mut(table)
                .expect("catalog mirrors trees")
                .delete(key)?;
            Ok::<_, CentralError>(capture.into_digests())
        })();
        self.locks.release_all(txn);
        let digests = result?;

        self.refresh_views_for(table)?;
        self.clock += 1;
        let delta = UpdateDelta {
            seq: self.log.len() as u64,
            table: table.to_string(),
            op: UpdateOp::Delete(key),
            digests,
            key_version: self.signer.key_version(),
        };
        self.log.push(delta.clone());
        Ok(delta)
    }

    /// Batch range delete (equation (12)'s transaction).
    pub fn delete_range(
        &mut self,
        table: &str,
        lo: u64,
        hi: u64,
    ) -> Result<UpdateDelta<L>, CentralError> {
        let txn = self.next_txn();
        let envelope = {
            let tree = self
                .trees
                .get(table)
                .ok_or_else(|| CentralError::UnknownTable(table.into()))?;
            tree.envelope_node_ids(lo, hi)
        };
        let resources: Vec<_> = envelope
            .into_iter()
            .map(|n| (table.to_string(), n))
            .collect();
        self.locks
            .try_acquire_all(txn, &resources, LockMode::Exclusive)
            .expect("single-threaded central server cannot conflict with itself");

        let result = (|| {
            let mut capture = Capture::new(self.signer.as_ref());
            let tree = self.trees.get_mut(table).expect("checked above");
            let removed = tree.delete_range_with_source(lo, hi, &mut capture)?;
            let cat = self.catalog.get_mut(table).expect("catalog mirrors trees");
            for t in &removed {
                cat.delete(t.key)?;
            }
            Ok::<_, CentralError>(capture.into_digests())
        })();
        self.locks.release_all(txn);
        let digests = result?;

        self.refresh_views_for(table)?;
        self.clock += 1;
        let delta = UpdateDelta {
            seq: self.log.len() as u64,
            table: table.to_string(),
            op: UpdateOp::DeleteRange(lo, hi),
            digests,
            key_version: self.signer.key_version(),
        };
        self.log.push(delta.clone());
        Ok(delta)
    }

    /// Rotate the signing key: re-sign every tree under the new key and
    /// publish the new version with a validity window starting now
    /// (Section 3.4's defence for delayed propagation).
    pub fn rotate_key(&mut self, new_signer: Arc<dyn Signer>) {
        self.signer = new_signer;
        self.registry.publish(self.signer.verifier(), self.clock);
        // Rebuild (re-sign) every tree under the new key.
        let names: Vec<String> = self.trees.keys().cloned().collect();
        for name in names {
            if let Some(table) = self.catalog.get(&name) {
                let tree = VbTree::bulk_load(
                    table,
                    self.config.clone(),
                    self.acc.clone(),
                    self.signer.as_ref(),
                );
                self.trees.insert(name, tree);
            }
        }
        // Views are derived; refresh them too.
        let defs = self.views.clone();
        for def in defs {
            let (Some(lt), Some(rt)) = (
                self.catalog.get(&def.left_table),
                self.catalog.get(&def.right_table),
            ) else {
                continue;
            };
            if let Ok(view_table) = build_view_table(&def, lt, rt) {
                let tree = VbTree::bulk_load(
                    &view_table,
                    self.config.clone(),
                    self.acc.clone(),
                    self.signer.as_ref(),
                );
                self.trees.insert(def.name.clone(), tree);
            }
        }
    }

    fn refresh_views_for(&mut self, table: &str) -> Result<(), CentralError> {
        let affected: Vec<JoinViewDef> = self
            .views
            .iter()
            .filter(|d| d.left_table == table || d.right_table == table)
            .cloned()
            .collect();
        for def in affected {
            let lt = self
                .catalog
                .get(&def.left_table)
                .ok_or_else(|| CentralError::UnknownTable(def.left_table.clone()))?;
            let rt = self
                .catalog
                .get(&def.right_table)
                .ok_or_else(|| CentralError::UnknownTable(def.right_table.clone()))?;
            let view_table = build_view_table(&def, lt, rt)?;
            let tree = VbTree::bulk_load(
                &view_table,
                self.config.clone(),
                self.acc.clone(),
                self.signer.as_ref(),
            );
            self.trees.insert(def.name.clone(), tree);
        }
        Ok(())
    }

    fn next_txn(&self) -> u64 {
        self.clock + 1_000_000 * (self.log.len() as u64 + 1)
    }
}
