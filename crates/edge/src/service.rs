//! The concurrent serving subsystem: snapshot replicas + VO cache.
//!
//! [`EdgeService`] is the `&self`-everywhere (hence `Sync`) engine an
//! edge site actually runs: every table is a [`ServingReplica`] (an
//! atomically swappable snapshot, so readers never block), queries take
//! the Section 3.4 **shared** locks on their enveloping subtree and
//! updates take **exclusive** locks on the affected path digests through
//! one [`LockManager`] — conflicting paths retry, non-overlapping ones
//! proceed concurrently, exactly as the paper prescribes — and a
//! response/VO cache keyed by `(table, range, residual fingerprint)`
//! lets repeated hot-range queries skip both re-execution and VO
//! assembly entirely. The cache is invalidated per table whenever a
//! delta lands on (or a new snapshot is published for) that table;
//! other tables' entries survive.
//!
//! [`crate::EdgeServer`] is a thin façade over this type that adds the
//! VB-tree SQL surface and the test-only tamper modes.

use crate::central::LogEntry;
use crate::locks::{LockManager, LockMode, LockStats, Resource};
use crate::snapshot::ServingReplica;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vbx_core::scheme::{AuthScheme, DeltaBatch, SignedDelta, TxnBatch};
use vbx_core::{FreshnessStamp, RangeQuery, ResponseFreshness};
use vbx_storage::Schema;

/// Edge-side failures: replication and query lookup, parameterised by
/// the scheme's own error type.
#[derive(Debug)]
pub enum EdgeError<E> {
    /// No replica of the named table.
    UnknownTable(String),
    /// A delta arrived out of order.
    OutOfOrder {
        /// Sequence number the replica expected next.
        expected: u64,
        /// Sequence number that arrived.
        got: u64,
    },
    /// Scheme-level failure (divergence, forged delta, ...).
    Scheme(E),
}

impl<E: core::fmt::Display> core::fmt::Display for EdgeError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EdgeError::UnknownTable(t) => write!(f, "no replica of {t}"),
            EdgeError::OutOfOrder { expected, got } => {
                write!(f, "delta {got} applied out of order (expected {expected})")
            }
            EdgeError::Scheme(e) => write!(f, "{e}"),
        }
    }
}

impl<E: std::error::Error> std::error::Error for EdgeError<E> {}

/// Cache key: the physical query identity. Two requests share an entry
/// exactly when they run the same range + projection over the same
/// table with the same residual predicate (captured by the planner's
/// stable fingerprint — 0 for "no residual").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    table: String,
    lo: u64,
    hi: u64,
    projection: Option<Vec<usize>>,
    residual_fp: u64,
}

impl CacheKey {
    fn new(table: &str, query: &RangeQuery, residual_fp: u64) -> Self {
        Self {
            table: table.to_string(),
            lo: query.lo,
            hi: query.hi,
            projection: query.projection.clone(),
            residual_fp,
        }
    }

    /// Key for a compact (multi-range) request: the first range gives
    /// the structural fields, every further range and the aggregation
    /// mode are folded into the fingerprint. Two batches share an entry
    /// exactly when their full range lists, projections, residual and
    /// aggregation mode all match.
    fn for_batch(table: &str, queries: &[RangeQuery], residual_fp: u64, agg_tag: u64) -> Self {
        let first = &queries[0];
        // 0x5642_5834 = ASCII "VBX4": domain-separates compact entries
        // from flat ones that share a first range and residual.
        let mut fp = fnv_fold(
            fnv_fold(0x5642_5834_u64 ^ residual_fp, agg_tag),
            queries.len() as u64,
        );
        for q in queries {
            fp = fnv_fold(fnv_fold(fp, q.lo), q.hi);
            match &q.projection {
                None => fp = fnv_fold(fp, u64::MAX),
                Some(cols) => {
                    fp = fnv_fold(fp, cols.len() as u64);
                    for &c in cols {
                        fp = fnv_fold(fp, c as u64);
                    }
                }
            }
        }
        Self {
            table: table.to_string(),
            lo: first.lo,
            hi: first.hi,
            projection: first.projection.clone(),
            residual_fp: fp,
        }
    }
}

/// One FNV-1a step over a 64-bit word (byte-wise).
fn fnv_fold(mut hash: u64, word: u64) -> u64 {
    if hash == 0 {
        hash = 0xcbf2_9ce4_8422_2325;
    }
    for b in word.to_be_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Cache effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Responses served straight from the cache.
    pub hits: u64,
    /// Responses that had to be executed.
    pub misses: u64,
    /// Entries dropped by per-table invalidation.
    pub invalidated: u64,
    /// Entries dropped by capacity eviction (FIFO).
    pub evicted: u64,
    /// Inserts rejected because the table was invalidated past the
    /// snapshot the response was computed from (a delta landed while
    /// the query executed — caching the result would resurrect
    /// pre-delta data).
    pub stale_skips: u64,
}

struct CacheInner<R> {
    map: HashMap<CacheKey, Arc<R>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
    /// Per-table version floor: an insert stamped with a snapshot
    /// version below the floor raced an invalidation and is rejected.
    /// The floor check and the invalidation both run under the cache
    /// mutex, so "invalidate, then accept an older result" cannot
    /// happen in either interleaving.
    floors: HashMap<String, u64>,
    stats: CacheStats,
}

/// A bounded response/VO cache. Entries are whole responses (result
/// rows *and* verification object), shared out as `Arc`s so hits copy
/// nothing.
pub struct ResponseCache<R> {
    inner: Mutex<CacheInner<R>>,
    capacity: usize,
}

/// Default number of cached responses per edge service.
pub const DEFAULT_CACHE_CAPACITY: usize = 1_024;

impl<R> ResponseCache<R> {
    /// A cache bounded at `capacity` entries (FIFO eviction).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                floors: HashMap::new(),
                stats: CacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: &CacheKey) -> Option<Arc<R>> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).cloned() {
            Some(hit) => {
                inner.stats.hits += 1;
                Some(hit)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a response computed from the table snapshot stamped
    /// `snapshot_version`. Rejected (counted as a stale skip) when the
    /// table has since been invalidated past that version: the response
    /// reflects a superseded snapshot and caching it would serve
    /// pre-delta data forever.
    fn insert(&self, key: CacheKey, resp: Arc<R>, snapshot_version: u64) {
        let mut inner = self.inner.lock();
        if snapshot_version < inner.floors.get(&key.table).copied().unwrap_or(0) {
            inner.stats.stale_skips += 1;
            return;
        }
        // Replacing an existing entry does not grow the map — evict only
        // when the insert actually would.
        if !inner.map.contains_key(&key) {
            while inner.map.len() >= self.capacity {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                if inner.map.remove(&oldest).is_some() {
                    inner.stats.evicted += 1;
                }
            }
        }
        if inner.map.insert(key.clone(), resp).is_none() {
            inner.order.push_back(key);
        }
    }

    /// Drop every entry for `table` — the invalidation rule: a delta on
    /// a table invalidates that table's responses and nothing else —
    /// and raise the table's floor to `min_version` (the replica's
    /// publish count after the new snapshot), so in-flight executions
    /// over older snapshots cannot re-populate the cache afterwards.
    fn invalidate_table(&self, table: &str, min_version: u64) {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        inner.map.retain(|k, _| k.table != table);
        let dropped = (before - inner.map.len()) as u64;
        inner.stats.invalidated += dropped;
        if dropped > 0 {
            let live: std::collections::HashSet<_> = inner.map.keys().cloned().collect();
            inner.order.retain(|k| live.contains(k));
        }
        let floor = inner.floors.entry(table.to_string()).or_insert(0);
        *floor = (*floor).max(min_version);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The concurrent edge serving engine (see module docs). Share it by
/// reference (or in an `Arc`) across reader and writer threads; every
/// method takes `&self`.
pub struct EdgeService<S: AuthScheme> {
    scheme: S,
    schemas: parking_lot::RwLock<BTreeMap<String, Schema>>,
    replicas: parking_lot::RwLock<BTreeMap<String, Arc<ServingReplica<S>>>>,
    locks: LockManager,
    cache: ResponseCache<S::Response>,
    /// Compact (`VBX4`) responses are cached as their encoded **prefix**
    /// bytes — everything up to (not including) the freshness suffix —
    /// so a hit appends the edge's *current* replication position
    /// instead of replaying a stale one.
    compact_cache: ResponseCache<Vec<u8>>,
    /// Next delta sequence number; the guard also serialises writers so
    /// the order check and the apply are atomic.
    applied_seq: Mutex<u64>,
    /// Newest owner freshness stamp received over the subscription
    /// (republished with every response so clients can bound staleness).
    stamp: parking_lot::RwLock<Option<FreshnessStamp>>,
    /// Lock-manager transaction ids for queries/updates.
    next_txn: AtomicU64,
}

impl<S: AuthScheme> EdgeService<S> {
    /// An empty service for a scheme.
    pub fn new(scheme: S) -> Self {
        Self::with_seq(scheme, 0)
    }

    /// An empty service whose replicas reflect deltas `< seq` (bundle
    /// restores).
    pub fn with_seq(scheme: S, seq: u64) -> Self {
        Self {
            scheme,
            schemas: parking_lot::RwLock::new(BTreeMap::new()),
            replicas: parking_lot::RwLock::new(BTreeMap::new()),
            locks: LockManager::new(),
            cache: ResponseCache::new(DEFAULT_CACHE_CAPACITY),
            compact_cache: ResponseCache::new(DEFAULT_CACHE_CAPACITY),
            applied_seq: Mutex::new(seq),
            stamp: parking_lot::RwLock::new(None),
            next_txn: AtomicU64::new(1),
        }
    }

    /// The scheme descriptor.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Install (or replace) a table replica. Replacing an existing
    /// replica publishes the new store and invalidates the table's
    /// cached responses.
    pub fn install_table(&self, name: impl Into<String>, schema: Schema, store: S::Store) {
        let name = name.into();
        self.schemas.write().insert(name.clone(), schema);
        // Check-and-insert atomically under the write lock: two racing
        // installs of a new table must converge on one replica (the
        // loser publishes into the winner's), never two.
        let replica = {
            let mut replicas = self.replicas.write();
            match replicas.get(&name) {
                Some(replica) => {
                    let replica = replica.clone();
                    drop(replicas);
                    replica.publish(store);
                    replica
                }
                None => {
                    let replica = Arc::new(ServingReplica::new(store));
                    replicas.insert(name.clone(), replica.clone());
                    replica
                }
            }
        };
        let floor = replica.published_count();
        self.cache.invalidate_table(&name, floor);
        self.compact_cache.invalidate_table(&name, floor);
    }

    /// Schemas of everything replicated (public metadata clients also
    /// hold).
    pub fn schemas(&self) -> BTreeMap<String, Schema> {
        self.schemas.read().clone()
    }

    /// The named replica.
    pub fn replica(&self, table: &str) -> Option<Arc<ServingReplica<S>>> {
        self.replicas.read().get(table).cloned()
    }

    /// The current snapshot of a table's store.
    pub fn snapshot(&self, table: &str) -> Option<Arc<S::Store>> {
        self.replica(table).map(|r| r.snapshot())
    }

    /// Last applied delta sequence number.
    pub fn applied_seq(&self) -> u64 {
        *self.applied_seq.lock()
    }

    /// Install the newest owner freshness stamp (delivered over the
    /// delta subscription or a heartbeat). Older stamps are ignored —
    /// stamps only ever move forward.
    pub fn set_freshness_stamp(&self, stamp: FreshnessStamp) {
        let mut slot = self.stamp.write();
        let newer = slot
            .as_ref()
            .is_none_or(|s| (stamp.seq, stamp.clock) >= (s.seq, s.clock));
        if newer {
            *slot = Some(stamp);
        }
    }

    /// Newest owner stamp held, if any.
    pub fn freshness_stamp(&self) -> Option<FreshnessStamp> {
        self.stamp.read().clone()
    }

    /// The replication position this edge would republish with a
    /// response right now.
    pub fn current_freshness(&self) -> ResponseFreshness {
        ResponseFreshness {
            applied_seq: self.applied_seq(),
            stamp: self.freshness_stamp(),
        }
    }

    /// Consume (without applying) one delta for a table this edge does
    /// not replicate — sharded deployments deliver every table's deltas
    /// in one global sequence, and an edge must advance past foreign
    /// tables' entries to keep its position contiguous.
    pub fn skip_delta(&self, seq: u64) -> Result<(), EdgeError<S::Error>> {
        self.skip_deltas(seq, 1)
    }

    /// Consume (without applying) a whole foreign sequence range
    /// `[start_seq, start_seq + count)` — the placeholder for a
    /// group-committed batch on a table this edge does not replicate.
    pub fn skip_deltas(&self, start_seq: u64, count: u64) -> Result<(), EdgeError<S::Error>> {
        let mut applied = self.applied_seq.lock();
        if start_seq != *applied {
            return Err(EdgeError::OutOfOrder {
                expected: *applied,
                got: start_seq,
            });
        }
        *applied += count;
        Ok(())
    }

    /// Lock-protocol counters.
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Response-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Spin until the Section 3.4 try-lock protocol admits the batch:
    /// all-or-nothing acquisition means no deadlock is possible, so a
    /// conflicting path simply retries until the holder's short critical
    /// section ends.
    fn acquire_with_retry(&self, txn: u64, resources: &[Resource], mode: LockMode) {
        let mut spins = 0u32;
        while self.locks.try_acquire_all(txn, resources, mode).is_err() {
            spins += 1;
            if spins % 64 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(20));
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Serve a query: cache lookup, else snapshot + S-lock the
    /// enveloping subtree + execute + cache. `residual_fp` is the
    /// planner's stable fingerprint of any residual predicate `exec`
    /// applies (0 for none) — it keeps semantically different
    /// executions over the same key range in different cache slots.
    pub fn serve<F>(
        &self,
        table: &str,
        query: &RangeQuery,
        residual_fp: u64,
        exec: F,
    ) -> Result<Arc<S::Response>, EdgeError<S::Error>>
    where
        F: FnOnce(&S::Store) -> S::Response,
    {
        let key = CacheKey::new(table, query, residual_fp);
        if let Some(hit) = self.cache.get(&key) {
            return Ok(hit);
        }
        let replica = self
            .replica(table)
            .ok_or_else(|| EdgeError::UnknownTable(table.into()))?;
        let (snap, snap_version) = replica.versioned_snapshot();
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        let resources: Vec<Resource> = self
            .scheme
            .query_lock_targets(&snap, query)
            .into_iter()
            .map(|n| (table.to_string(), n))
            .collect();
        self.acquire_with_retry(txn, &resources, LockMode::Shared);
        let resp = Arc::new(exec(&snap));
        self.locks.release_all(txn);
        // The version stamp keeps this insert from resurrecting
        // pre-delta data if a delta (and its invalidation) landed while
        // we executed against the old snapshot.
        self.cache.insert(key, resp.clone(), snap_version);
        Ok(resp)
    }

    /// Serve a compact (`VBX4`) request as encoded prefix bytes:
    /// cache lookup, else snapshot + S-lock the union of every range's
    /// enveloping subtree + `exec` + cache. The prefix excludes the
    /// freshness suffix, so the caller appends the edge's *current*
    /// position per response (`vbx_core::compact_response_bytes`) —
    /// cached VO bytes never replay a stale replication stamp.
    ///
    /// `agg_tag` keys the aggregation mode into the cache (0 for plain
    /// signatures; the aggregator's key version + 1 otherwise) so
    /// aggregated and per-digest encodings of the same ranges occupy
    /// different slots.
    pub fn serve_compact_bytes<F>(
        &self,
        table: &str,
        queries: &[RangeQuery],
        residual_fp: u64,
        agg_tag: u64,
        exec: F,
    ) -> Result<Arc<Vec<u8>>, EdgeError<S::Error>>
    where
        F: FnOnce(&S::Store) -> Vec<u8>,
    {
        assert!(!queries.is_empty(), "at least one range");
        let key = CacheKey::for_batch(table, queries, residual_fp, agg_tag);
        if let Some(hit) = self.compact_cache.get(&key) {
            return Ok(hit);
        }
        let replica = self
            .replica(table)
            .ok_or_else(|| EdgeError::UnknownTable(table.into()))?;
        let (snap, snap_version) = replica.versioned_snapshot();
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        let mut targets: Vec<usize> = queries
            .iter()
            .flat_map(|q| self.scheme.query_lock_targets(&snap, q))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let resources: Vec<Resource> = targets
            .into_iter()
            .map(|n| (table.to_string(), n))
            .collect();
        self.acquire_with_retry(txn, &resources, LockMode::Shared);
        let prefix = Arc::new(exec(&snap));
        self.locks.release_all(txn);
        self.compact_cache.insert(key, prefix.clone(), snap_version);
        Ok(prefix)
    }

    /// Compact-prefix cache counters.
    pub fn compact_cache_stats(&self) -> CacheStats {
        self.compact_cache.stats()
    }

    /// Answer a range query through the cache + snapshot pipeline.
    pub fn query_range(
        &self,
        table: &str,
        query: &RangeQuery,
    ) -> Result<Arc<S::Response>, EdgeError<S::Error>> {
        self.serve(table, query, 0, |store| {
            self.scheme.range_query(store, query)
        })
    }

    /// Apply one signed update delta: verify order, X-lock the affected
    /// digests (retrying against in-flight queries), build the successor
    /// snapshot off to the side, swap, invalidate the table's cache.
    pub fn apply_delta(&self, delta: &SignedDelta<S::Delta>) -> Result<(), EdgeError<S::Error>>
    where
        S::Store: Clone,
    {
        let mut seq = self.applied_seq.lock();
        if delta.seq != *seq {
            return Err(EdgeError::OutOfOrder {
                expected: *seq,
                got: delta.seq,
            });
        }
        let replica = self
            .replica(&delta.table)
            .ok_or_else(|| EdgeError::UnknownTable(delta.table.clone()))?;
        let snap = replica.snapshot();
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        let resources: Vec<Resource> = self
            .scheme
            .lock_targets(&snap, &delta.op)
            .into_iter()
            .map(|n| (delta.table.clone(), n))
            .collect();
        self.acquire_with_retry(txn, &resources, LockMode::Exclusive);
        let result = replica.update_with(|store| {
            self.scheme
                .apply_delta(store, &delta.op, &delta.payload, delta.key_version)
        });
        self.locks.release_all(txn);
        result.map_err(EdgeError::Scheme)?;
        let floor = replica.published_count();
        self.cache.invalidate_table(&delta.table, floor);
        self.compact_cache.invalidate_table(&delta.table, floor);
        *seq += 1;
        Ok(())
    }

    /// Apply one group-committed batch: verify the batch starts at this
    /// replica's position, X-lock the union of every op's affected
    /// digests, then pay the per-delta overhead **once** for all `k`
    /// ops — one snapshot clone, `k` structural replays inside it, one
    /// swap, one cache invalidation — where the per-op path pays each
    /// of those `k` times. Installs the batch's owner stamp (if any)
    /// after the swap, so a reader never sees the new attestation
    /// paired with the old snapshot.
    pub fn apply_delta_batch(&self, batch: &DeltaBatch<S::Delta>) -> Result<(), EdgeError<S::Error>>
    where
        S::Store: Clone,
    {
        if batch.is_empty() {
            return Ok(());
        }
        let mut seq = self.applied_seq.lock();
        if batch.start_seq != *seq {
            return Err(EdgeError::OutOfOrder {
                expected: *seq,
                got: batch.start_seq,
            });
        }
        let replica = self
            .replica(&batch.table)
            .ok_or_else(|| EdgeError::UnknownTable(batch.table.clone()))?;
        let snap = replica.snapshot();
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        let mut targets: Vec<usize> = batch
            .ops
            .iter()
            .flat_map(|op| self.scheme.lock_targets(&snap, op))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let resources: Vec<Resource> = targets
            .into_iter()
            .map(|n| (batch.table.clone(), n))
            .collect();
        self.acquire_with_retry(txn, &resources, LockMode::Exclusive);
        let result = replica.update_with(|store| {
            self.scheme
                .apply_delta_batch(store, &batch.ops, &batch.payloads, batch.key_version)
        });
        self.locks.release_all(txn);
        result.map_err(EdgeError::Scheme)?;
        let floor = replica.published_count();
        self.cache.invalidate_table(&batch.table, floor);
        self.compact_cache.invalidate_table(&batch.table, floor);
        *seq += batch.len() as u64;
        drop(seq);
        if let Some(stamp) = &batch.stamp {
            self.set_freshness_stamp(stamp.clone());
        }
        Ok(())
    }

    /// Apply one atomic multi-table transaction **all-or-none**: verify
    /// the txn starts at this replica's position, X-lock the union of
    /// every section's affected digests across all served tables, build
    /// every table's successor snapshot off to the side, and only when
    /// *every* section replayed cleanly swap them all in and invalidate
    /// each touched table's cache once. On any divergence nothing is
    /// published and the position does not advance — a reader scanning
    /// two tables of the txn never observes table A at seq n+1 with
    /// table B still at seq n. Installs the txn's owner stamp (if any)
    /// after the swaps.
    ///
    /// A section whose table this edge does not serve is a foreign
    /// placeholder — its ops advance the position without local replay,
    /// exactly like a `SkipRange` (a sharded edge receives the whole
    /// atom even when it owns only some of its tables; the router never
    /// reads the unserved tables here).
    pub fn apply_txn(&self, txn: &TxnBatch<S::Delta>) -> Result<(), EdgeError<S::Error>>
    where
        S::Store: Clone,
    {
        if txn.sections.is_empty() {
            return Ok(());
        }
        let mut seq = self.applied_seq.lock();
        if txn.start_seq() != *seq {
            return Err(EdgeError::OutOfOrder {
                expected: *seq,
                got: txn.start_seq(),
            });
        }
        // Resolve the served replicas up front; unserved tables replay
        // as placeholders.
        let mut replicas: BTreeMap<&str, Arc<ServingReplica<S>>> = BTreeMap::new();
        for section in &txn.sections {
            if !replicas.contains_key(section.table.as_str()) {
                if let Some(replica) = self.replica(&section.table) {
                    replicas.insert(section.table.as_str(), replica);
                }
            }
        }
        let lock_txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        let mut resources: Vec<Resource> = Vec::new();
        {
            let mut snaps: BTreeMap<&str, Arc<S::Store>> = BTreeMap::new();
            for section in &txn.sections {
                let Some(replica) = replicas.get(section.table.as_str()) else {
                    continue;
                };
                let snap = snaps
                    .entry(section.table.as_str())
                    .or_insert_with(|| replica.snapshot());
                for op in &section.ops {
                    for target in self.scheme.lock_targets(snap, op) {
                        resources.push((section.table.clone(), target));
                    }
                }
            }
        }
        resources.sort_unstable();
        resources.dedup();
        self.acquire_with_retry(lock_txn, &resources, LockMode::Exclusive);
        // Build every successor store aside; a table touched by several
        // sections chains them on one working copy.
        let result = (|| {
            let mut successors: BTreeMap<&str, S::Store> = BTreeMap::new();
            for section in &txn.sections {
                let Some(replica) = replicas.get(section.table.as_str()) else {
                    continue;
                };
                let store = successors
                    .entry(section.table.as_str())
                    .or_insert_with(|| (*replica.snapshot()).clone());
                self.scheme
                    .apply_delta_batch(store, &section.ops, &section.payloads, section.key_version)
                    .map_err(EdgeError::Scheme)?;
            }
            Ok(successors)
        })();
        let successors = match result {
            Ok(successors) => successors,
            Err(e) => {
                self.locks.release_all(lock_txn);
                return Err(e);
            }
        };
        // Every section replayed: swap all tables, then invalidate each
        // touched table's cache exactly once.
        for (table, store) in successors {
            let replica = &replicas[table];
            replica.publish(store);
            let floor = replica.published_count();
            self.cache.invalidate_table(table, floor);
            self.compact_cache.invalidate_table(table, floor);
        }
        self.locks.release_all(lock_txn);
        *seq += txn.ops();
        drop(seq);
        if let Some(stamp) = &txn.stamp {
            self.set_freshness_stamp(stamp.clone());
        }
        Ok(())
    }

    /// Apply one subscription log entry — a single-op delta, a
    /// group-committed batch, or an atomic multi-table txn — through
    /// the matching replay path.
    pub fn apply_log_entry(&self, entry: &LogEntry<S::Delta>) -> Result<(), EdgeError<S::Error>>
    where
        S::Store: Clone,
    {
        match entry {
            LogEntry::Op(delta) => self.apply_delta(delta),
            LogEntry::Batch(batch) => self.apply_delta_batch(batch),
            LogEntry::Txn(txn) => self.apply_txn(txn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_core::scheme::{UpdateOp, VbScheme};
    use vbx_core::{VbTree, VbTreeConfig};
    use vbx_crypto::signer::MockSigner;
    use vbx_crypto::{Acc256, Signer};
    use vbx_storage::workload::WorkloadSpec;

    fn service() -> (EdgeService<VbScheme<4>>, MockSigner) {
        let table = WorkloadSpec::new(60, 3, 8).build();
        let signer = MockSigner::new(7);
        let scheme = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(5));
        let tree = VbTree::bulk_load(
            &table,
            VbTreeConfig::with_fanout(5),
            Acc256::test_default(),
            &signer,
        );
        let svc = EdgeService::new(scheme);
        svc.install_table("items", table.schema().clone(), tree);
        (svc, signer)
    }

    #[test]
    fn repeated_query_hits_cache() {
        let (svc, _) = service();
        let q = RangeQuery::select_all(10, 30);
        let a = svc.query_range("items", &q).unwrap();
        let b = svc.query_range("items", &q).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second query must be the cached Arc");
        let stats = svc.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn delta_invalidates_only_its_table() {
        let (svc, signer) = service();
        let other = WorkloadSpec {
            table: "other".into(),
            ..WorkloadSpec::new(20, 3, 8)
        }
        .build();
        let tree = VbTree::bulk_load(
            &other,
            VbTreeConfig::with_fanout(5),
            Acc256::test_default(),
            &signer,
        );
        svc.install_table("other", other.schema().clone(), tree);

        let q = RangeQuery::select_all(0, 10);
        svc.query_range("items", &q).unwrap();
        svc.query_range("other", &q).unwrap();
        assert_eq!(svc.cache.len(), 2);

        // Produce a real signed delta by updating a master copy.
        let mut master = (*svc.snapshot("items").unwrap()).clone();
        let op = UpdateOp::Delete(5);
        let payload = svc
            .scheme()
            .update(&mut master, &op, &signer)
            .expect("master update");
        let delta = SignedDelta {
            seq: 0,
            table: "items".into(),
            op,
            payload,
            key_version: signer.key_version(),
        };
        svc.apply_delta(&delta).unwrap();

        // items' entry dropped, other's survived.
        assert_eq!(svc.cache.len(), 1);
        assert_eq!(svc.cache_stats().invalidated, 1);
        let resp = svc.query_range("items", &q).unwrap();
        assert!(resp.rows.iter().all(|r| r.key != 5));
        assert_eq!(svc.applied_seq(), 1);
    }

    #[test]
    fn out_of_order_delta_rejected() {
        let (svc, signer) = service();
        let mut master = (*svc.snapshot("items").unwrap()).clone();
        let op = UpdateOp::Delete(5);
        let payload = svc.scheme().update(&mut master, &op, &signer).unwrap();
        let delta = SignedDelta {
            seq: 3,
            table: "items".into(),
            op,
            payload,
            key_version: signer.key_version(),
        };
        assert!(matches!(
            svc.apply_delta(&delta),
            Err(EdgeError::OutOfOrder {
                expected: 0,
                got: 3
            })
        ));
    }

    #[test]
    fn cache_capacity_evicts_fifo() {
        let cache: ResponseCache<u32> = ResponseCache::new(2);
        let key = |i: u64| CacheKey::new("t", &RangeQuery::select_all(i, i), 0);
        cache.insert(key(0), Arc::new(0), 0);
        cache.insert(key(1), Arc::new(1), 0);
        cache.insert(key(2), Arc::new(2), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0)).is_none(), "oldest entry evicted");
        assert!(cache.get(&key(2)).is_some());
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn stale_insert_after_invalidation_is_rejected() {
        // Regression for the lost-invalidation race: a reader snapshots
        // at version v, a delta publishes v+1 and invalidates, then the
        // reader finishes and tries to cache its pre-delta response.
        // The version floor must reject it — otherwise the stale entry
        // would be served until the *next* delta.
        let cache: ResponseCache<u32> = ResponseCache::new(8);
        let key = CacheKey::new("t", &RangeQuery::select_all(0, 9), 0);
        cache.invalidate_table("t", 1); // delta landed: floor = 1
        cache.insert(key.clone(), Arc::new(7), 0); // stale snapshot v0
        assert!(cache.get(&key).is_none(), "stale insert must be dropped");
        assert_eq!(cache.stats().stale_skips, 1);
        // A response from the successor snapshot is accepted.
        cache.insert(key.clone(), Arc::new(8), 1);
        assert_eq!(cache.get(&key).as_deref(), Some(&8));
        // Invalidation on another table leaves this floor alone.
        cache.invalidate_table("u", 5);
        cache.insert(key.clone(), Arc::new(9), 1);
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn residual_fingerprint_separates_entries() {
        let (svc, _) = service();
        let q = RangeQuery::select_all(0, 59);
        let plain = svc.query_range("items", &q).unwrap();
        let filtered = svc
            .serve("items", &q, 0xFEED, |store| {
                vbx_core::execute(store, &q, Some(&|t: &vbx_storage::Tuple| t.key % 2 == 0))
            })
            .unwrap();
        assert!(!Arc::ptr_eq(&plain, &filtered));
        assert!(filtered.rows.len() < plain.rows.len());
        // Each slot replays its own entry.
        assert!(Arc::ptr_eq(
            &filtered,
            &svc.serve("items", &q, 0xFEED, |_| unreachable!("must hit cache"))
                .unwrap()
        ));
    }

    #[test]
    fn queries_take_shared_locks() {
        let (svc, _) = service();
        let q = RangeQuery::select_all(0, 5);
        svc.query_range("items", &q).unwrap();
        assert!(svc.lock_stats().acquired > 0);
        assert_eq!(svc.lock_stats().released, 1);
    }
}
