//! Multi-edge cluster: sharded delta fan-out with freshness-verified
//! reads.
//!
//! The paper's deployment model is one trusted owner streaming signed
//! deltas to *many* unsecured edge servers. [`ClusterCoordinator`] is
//! that topology in-process:
//!
//! * a [`ShardMap`] partitions tables across N [`EdgeServer`] replicas
//!   (least-loaded assignment at `create_table` time);
//! * every committed update lands in the central server's bounded
//!   [`DeltaLog`](crate::central::DeltaLog) and is **fanned out over
//!   per-edge subscription queues** — the owning edge gets the signed
//!   delta itself, every other edge gets a cheap sequence placeholder so
//!   its replication position stays contiguous (fan-out is O(new
//!   deltas), not O(edges × history));
//! * client queries are **routed to the owning edge**
//!   ([`query`](ClusterCoordinator::query)), with
//!   [`scatter_gather`](ClusterCoordinator::scatter_gather) fanning the
//!   legs of a multi-table query (e.g. both sides of a client-joined
//!   equijoin) across shards;
//! * per-edge applied-seq lag is tracked
//!   ([`lag_report`](ClusterCoordinator::lag_report)), and each edge
//!   republishes the owner's newest signed
//!   [`FreshnessStamp`](vbx_core::FreshnessStamp) with its responses,
//!   so a client holding the owner position can reject an
//!   honest-but-stale edge (`VerifyError::Stale`) — the lazy-trust gap
//!   WedgeChain formalises for edge-cloud stores.
//!
//! Draining an edge's queue is deliberately explicit
//! ([`drain_edge`](ClusterCoordinator::drain_edge) /
//! [`sync`](ClusterCoordinator::sync)): tests and benchmarks induce a
//! lagging replica simply by not draining it.

use crate::central::{CentralError, CentralServer, DeltaLogError, LogEntry, Txn};
use crate::edge_server::EdgeServer;
use crate::service::EdgeError;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use vbx_core::scheme::{AuthScheme, DeltaBatch, SignedDelta, TxnBatch, UpdateOp};
use vbx_core::RangeQuery;
use vbx_storage::{Table, Tuple};

/// Cluster topology parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of edge replicas.
    pub edges: usize,
    /// Delta-log retention window at the central server (a subscriber
    /// further behind must re-bundle).
    pub retention: usize,
    /// Bound on one edge's subscription queue. A subscriber whose
    /// queue would exceed this is **disconnected** — its buffered items
    /// are dropped and it must
    /// [`resubscribe_edge`](ClusterCoordinator::resubscribe_edge) —
    /// instead of growing an unbounded `VecDeque`.
    pub max_queue: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            edges: 3,
            retention: 4_096,
            max_queue: 4_096,
        }
    }
}

/// Table → owning-edge assignment: least-loaded at creation, mutable
/// afterwards ([`reassign`](Self::reassign) /
/// [`promote_replica`](Self::promote_replica) /
/// [`remove_table`](Self::remove_table) for failover and resharding).
/// Every mutation bumps a monotone [`version`](Self::version) so
/// routers holding a copy can detect a stale view.
#[derive(Clone, Debug)]
pub struct ShardMap {
    owners: BTreeMap<String, usize>,
    load: Vec<usize>,
    version: u64,
}

impl ShardMap {
    /// An empty map over `num_edges` edges.
    ///
    /// # Panics
    ///
    /// Panics when `num_edges` is zero — a shard map with no edges can
    /// never hold an assignment, and silently clamping to one edge
    /// would hand every table to a replica the caller never stood up.
    pub fn new(num_edges: usize) -> Self {
        assert!(
            num_edges > 0,
            "ShardMap::new: a shard map needs at least one edge, got 0"
        );
        Self {
            owners: BTreeMap::new(),
            load: vec![0; num_edges],
            version: 0,
        }
    }

    /// Assign `table` to the least-loaded edge (lowest id on ties) and
    /// return it. Re-assigning an existing table returns its current
    /// owner unchanged.
    pub fn assign(&mut self, table: &str) -> usize {
        if let Some(&owner) = self.owners.get(table) {
            return owner;
        }
        let owner = (0..self.load.len())
            .min_by_key(|&i| (self.load[i], i))
            .expect("at least one edge");
        self.owners.insert(table.to_string(), owner);
        self.load[owner] += 1;
        self.version += 1;
        owner
    }

    /// The edge owning `table`, if assigned.
    pub fn owner(&self, table: &str) -> Option<usize> {
        self.owners.get(table).copied()
    }

    /// Tables owned by `edge`, in name order.
    pub fn tables_of(&self, edge: usize) -> Vec<&str> {
        self.owners
            .iter()
            .filter(|(_, &o)| o == edge)
            .map(|(t, _)| t.as_str())
            .collect()
    }

    /// Monotone mutation counter: bumped by every
    /// [`assign`](Self::assign), [`reassign`](Self::reassign),
    /// [`promote_replica`](Self::promote_replica) and
    /// [`remove_table`](Self::remove_table) that changed an
    /// assignment.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Move `table` to `new_owner`, adjusting both edges' load counts.
    /// Returns the previous owner; `None` when the table is unassigned
    /// or `new_owner` is out of range (the map is left unchanged).
    pub fn reassign(&mut self, table: &str, new_owner: usize) -> Option<usize> {
        if new_owner >= self.load.len() {
            return None;
        }
        let owner = self.owners.get_mut(table)?;
        let old = *owner;
        if old == new_owner {
            return Some(old);
        }
        *owner = new_owner;
        self.load[old] -= 1;
        self.load[new_owner] += 1;
        self.version += 1;
        Some(old)
    }

    /// Move every table owned by `dead` to `standby` (edge failover).
    /// Returns the moved table names in name order; empty when the ids
    /// are invalid, equal, or `dead` owned nothing.
    pub fn promote_replica(&mut self, dead: usize, standby: usize) -> Vec<String> {
        let mut moved = Vec::new();
        if dead == standby || dead >= self.load.len() || standby >= self.load.len() {
            return moved;
        }
        for (table, owner) in self.owners.iter_mut() {
            if *owner == dead {
                *owner = standby;
                moved.push(table.clone());
            }
        }
        if !moved.is_empty() {
            self.load[dead] -= moved.len();
            self.load[standby] += moved.len();
            self.version += 1;
        }
        moved
    }

    /// Drop `table`'s assignment (e.g. after the table was dropped
    /// from the central catalog), shrinking its owner's load count.
    /// Returns the former owner.
    pub fn remove_table(&mut self, table: &str) -> Option<usize> {
        let owner = self.owners.remove(table)?;
        self.load[owner] -= 1;
        self.version += 1;
        Some(owner)
    }

    /// Number of edges in the map.
    pub fn num_edges(&self) -> usize {
        self.load.len()
    }

    /// Number of assigned tables.
    pub fn num_tables(&self) -> usize {
        self.owners.len()
    }
}

/// Cluster-level failures, parameterised by the scheme's error type.
#[derive(Debug)]
pub enum ClusterError<E> {
    /// The table is not assigned to any edge.
    UnknownTable(String),
    /// No edge with that id.
    UnknownEdge(usize),
    /// Central-server failure.
    Central(CentralError<E>),
    /// Edge-replica failure (replay divergence, out-of-order delta).
    Edge(EdgeError<E>),
    /// A subscription cursor fell out of the delta log's retention
    /// window; the edge must be re-provisioned from a fresh bundle.
    Truncated(DeltaLogError),
    /// The edge's subscription queue hit its bound and the subscriber
    /// was disconnected (its buffered items dropped). Re-provision it
    /// with [`ClusterCoordinator::resubscribe_edge`].
    Disconnected {
        /// The slow edge.
        edge: usize,
        /// Queue items buffered when the bound tripped.
        queued: usize,
        /// The configured bound ([`ClusterConfig::max_queue`]).
        bound: usize,
    },
    /// Verified state sync rejected a chunk stream while
    /// (re)provisioning an edge: the bytes did not authenticate against
    /// the central's signed root digest. The unverified replica is
    /// **not** installed.
    Sync(vbx_core::SyncError),
    /// A recovered central's head is *behind* an edge's subscription
    /// cursor: a commit that was acked and fanned out is missing from
    /// the recovered history. This is data loss — refusing the adoption
    /// beats silently forking the edges from the owner.
    RolledBack {
        /// Edge whose cursor is ahead of the recovered head.
        edge: usize,
        /// That edge's subscription cursor.
        cursor: u64,
        /// The recovered central's head (`next_seq`).
        head: u64,
    },
}

impl<E: core::fmt::Display> core::fmt::Display for ClusterError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::UnknownTable(t) => write!(f, "table {t} not sharded to any edge"),
            ClusterError::UnknownEdge(i) => write!(f, "no edge {i}"),
            ClusterError::Central(e) => write!(f, "central: {e}"),
            ClusterError::Edge(e) => write!(f, "edge: {e}"),
            ClusterError::Truncated(e) => write!(f, "subscription lost: {e}"),
            ClusterError::Sync(e) => write!(f, "verified sync rejected: {e}"),
            ClusterError::Disconnected {
                edge,
                queued,
                bound,
            } => write!(
                f,
                "edge {edge} disconnected: subscription queue hit {queued}/{bound}; resubscribe"
            ),
            ClusterError::RolledBack { edge, cursor, head } => write!(
                f,
                "recovered central head {head} is behind edge {edge}'s cursor {cursor}: acked commits were lost"
            ),
        }
    }
}

impl<E: std::error::Error> std::error::Error for ClusterError<E> {}

impl<E> From<CentralError<E>> for ClusterError<E> {
    fn from(e: CentralError<E>) -> Self {
        ClusterError::Central(e)
    }
}

impl<E> From<EdgeError<E>> for ClusterError<E> {
    fn from(e: EdgeError<E>) -> Self {
        ClusterError::Edge(e)
    }
}

impl<E> From<vbx_core::SyncError> for ClusterError<E> {
    fn from(e: vbx_core::SyncError) -> Self {
        ClusterError::Sync(e)
    }
}

/// One entry of an edge's subscription queue: the signed delta (or the
/// shared handle of a group-committed batch) for tables the edge owns,
/// a bare sequence-range placeholder for everything else (so the edge's
/// position advances without cloning foreign deltas — a foreign batch
/// of `k` ops is one placeholder, not `k`).
#[derive(Clone, Debug)]
enum QueueItem<P> {
    Apply(SignedDelta<P>),
    ApplyBatch(Arc<DeltaBatch<P>>),
    ApplyTxn(Arc<TxnBatch<P>>),
    Skip { start_seq: u64, count: u64 },
}

/// One edge replica plus its subscription state.
struct EdgeSlot<S: AuthScheme>
where
    S::Store: Clone,
{
    server: EdgeServer<S>,
    queue: VecDeque<QueueItem<S::Delta>>,
    /// Next global sequence number to pull from the central log.
    cursor: u64,
    /// Set when the queue bound tripped: fan-out stops buffering for
    /// this edge until it resubscribes.
    disconnected: bool,
}

/// Per-edge replication lag snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeLag {
    /// Edge id.
    pub edge: usize,
    /// Deltas the edge has consumed (applied or skipped).
    pub applied_seq: u64,
    /// Items sitting in its subscription queue.
    pub queued: usize,
    /// Deltas behind the owner's head (`owner_seq - applied_seq`).
    pub lag: u64,
    /// Whether the bounded subscription queue tripped and the edge was
    /// dropped from fan-out (it must resubscribe).
    pub disconnected: bool,
}

/// A response plus where it came from.
#[derive(Clone, Debug)]
pub struct RoutedResponse<R> {
    /// Edge that served the query.
    pub edge: usize,
    /// Table queried.
    pub table: String,
    /// The scheme response (rows + VO + freshness).
    pub response: R,
}

/// The cluster control plane: one trusted [`CentralServer`] plus N
/// sharded [`EdgeServer`] replicas (see module docs).
pub struct ClusterCoordinator<S: AuthScheme>
where
    S::Store: Clone,
{
    central: CentralServer<S>,
    edges: Vec<EdgeSlot<S>>,
    shard_map: ShardMap,
    max_queue: usize,
}

impl<S: AuthScheme + Clone> ClusterCoordinator<S>
where
    S::Store: Clone,
{
    /// Stand up a cluster: a central server with a bounded delta log
    /// and `config.edges` empty edge replicas subscribed from sequence
    /// zero.
    pub fn new(
        scheme: S,
        signer: std::sync::Arc<dyn vbx_crypto::Signer>,
        config: ClusterConfig,
    ) -> Self {
        let central = CentralServer::with_scheme(scheme.clone(), signer)
            .with_delta_retention(config.retention);
        let edges = (0..config.edges.max(1))
            .map(|_| EdgeSlot {
                server: EdgeServer::with_seq(scheme.clone(), 0),
                queue: VecDeque::new(),
                cursor: 0,
                disconnected: false,
            })
            .collect();
        Self {
            central,
            edges,
            shard_map: ShardMap::new(config.edges.max(1)),
            max_queue: config.max_queue.max(1),
        }
    }

    /// Stand up a cluster around an existing (e.g. crash-recovered)
    /// central server: every base table is re-sharded across
    /// `num_edges` fresh replicas provisioned from the central's
    /// current stores, and every subscription starts at the central's
    /// head. This is the full re-bundle path — compare
    /// [`adopt_central`](Self::adopt_central), which keeps the existing
    /// edges and their cursors.
    pub fn from_central(central: CentralServer<S>, num_edges: usize) -> Self {
        let scheme = central.scheme().clone();
        let head = central.delta_log().next_seq();
        let verifier = central.verifier();
        let mut shard_map = ShardMap::new(num_edges.max(1));
        let mut edges: Vec<EdgeSlot<S>> = (0..num_edges.max(1))
            .map(|_| EdgeSlot {
                server: EdgeServer::with_seq(scheme.clone(), head),
                queue: VecDeque::new(),
                cursor: head,
                disconnected: false,
            })
            .collect();
        for table in central.catalog.iter() {
            let name = table.schema().table.clone();
            let owner = shard_map.assign(&name);
            let source = central.stores.get(&name).expect("catalog mirrors stores");
            // Edges never install state they have not verified — even
            // from a (crash-recovered) central in the same process, the
            // replica is rebuilt through the chunk-and-verify pipeline.
            let store = crate::sync::clone_verified(&scheme, source, verifier.clone())
                .expect("central's own store must restore cleanly");
            edges[owner]
                .server
                .install_table(name, table.schema().clone(), store);
        }
        Self {
            central,
            edges,
            shard_map,
            max_queue: ClusterConfig::default().max_queue,
        }
    }

    /// Swap in a recovered central server while keeping the edges and
    /// their subscription cursors (the fast resubscription path after a
    /// central crash). Refuses the adoption when an edge's cursor is
    /// *ahead* of the recovered head ([`ClusterError::RolledBack`] —
    /// an acked, fanned-out commit is missing from the recovered
    /// history) or *behind* its retention window
    /// ([`ClusterError::Truncated`] — that edge must re-bundle via
    /// [`from_central`](Self::from_central) instead). On success the
    /// next [`fan_out`](Self::fan_out) resumes each subscription
    /// exactly at its cursor: no gaps, no duplicate sequence numbers.
    pub fn adopt_central(
        &mut self,
        central: CentralServer<S>,
    ) -> Result<(), ClusterError<S::Error>> {
        let head = central.delta_log().next_seq();
        let oldest = central.delta_log().oldest_seq();
        for (id, slot) in self.edges.iter().enumerate() {
            if slot.cursor > head {
                return Err(ClusterError::RolledBack {
                    edge: id,
                    cursor: slot.cursor,
                    head,
                });
            }
            if slot.cursor < oldest {
                return Err(ClusterError::Truncated(DeltaLogError::Truncated {
                    requested: slot.cursor,
                    oldest,
                }));
            }
        }
        self.central = central;
        Ok(())
    }

    /// The trusted side (key registry, owner position, delta log).
    pub fn central(&self) -> &CentralServer<S> {
        &self.central
    }

    /// Mutable access to the trusted side (heartbeats, key rotation).
    pub fn central_mut(&mut self) -> &mut CentralServer<S> {
        &mut self.central
    }

    /// The table → edge assignment.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// Number of edge replicas.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// A specific edge server.
    pub fn edge(&self, id: usize) -> Option<&EdgeServer<S>> {
        self.edges.get(id).map(|s| &s.server)
    }

    /// Mutable edge access (tests place edges into tamper modes).
    pub fn edge_mut(&mut self, id: usize) -> Option<&mut EdgeServer<S>> {
        self.edges.get_mut(id).map(|s| &mut s.server)
    }

    /// The owner position `(seq, clock)` clients verify freshness
    /// against.
    pub fn owner_position(&self) -> (u64, u64) {
        self.central.owner_position()
    }

    /// Create a base table: build + sign at the central server, assign
    /// it to the least-loaded edge, and install the replica there.
    /// Returns the owning edge id.
    pub fn create_table(&mut self, table: Table) -> usize {
        let name = table.schema().table.clone();
        let schema = table.schema().clone();
        self.central.create_table(table);
        let owner = self.shard_map.assign(&name);
        let store = self
            .central
            .store(&name)
            .expect("store exists right after create_table")
            .clone();
        self.edges[owner].server.install_table(name, schema, store);
        owner
    }

    /// Insert at the owner; the signed delta is fanned out to the
    /// subscription queues (not yet applied — see
    /// [`drain_edge`](Self::drain_edge)).
    pub fn insert(
        &mut self,
        table: &str,
        tuple: Tuple,
    ) -> Result<SignedDelta<S::Delta>, ClusterError<S::Error>> {
        let delta = self.central.insert(table, tuple)?;
        self.fan_out()?;
        Ok(delta)
    }

    /// Delete at the owner and fan out.
    pub fn delete(
        &mut self,
        table: &str,
        key: u64,
    ) -> Result<SignedDelta<S::Delta>, ClusterError<S::Error>> {
        let delta = self.central.delete(table, key)?;
        self.fan_out()?;
        Ok(delta)
    }

    /// Range-delete at the owner and fan out.
    pub fn delete_range(
        &mut self,
        table: &str,
        lo: u64,
        hi: u64,
    ) -> Result<SignedDelta<S::Delta>, ClusterError<S::Error>> {
        let delta = self.central.delete_range(table, lo, hi)?;
        self.fan_out()?;
        Ok(delta)
    }

    /// Group-commit a whole batch of updates at the owner (one
    /// signature sweep, one stamp — see
    /// [`CentralServer::execute_update_batch`]) and fan the single
    /// batch envelope out: the owning edge's queue gets one shared
    /// `Arc`, every other edge one range placeholder — **one fan-out
    /// message for `k` ops** instead of `k`.
    pub fn update_batch(
        &mut self,
        table: &str,
        ops: Vec<UpdateOp>,
    ) -> Result<Arc<DeltaBatch<S::Delta>>, ClusterError<S::Error>> {
        let batch = self.central.execute_update_batch(table, ops)?;
        self.fan_out()?;
        Ok(batch)
    }

    /// Move every new log entry into the per-edge subscription queues:
    /// the owning edge's queue gets the signed delta (a group-committed
    /// batch travels as one shared `Arc` — **one fan-out message for
    /// `k` ops**), all the others one sequence-range placeholder per
    /// entry. Returns the number of queue items added.
    ///
    /// Queues are **bounded** by [`ClusterConfig::max_queue`]: an edge
    /// whose queue would overflow is disconnected (buffered items
    /// dropped, no further buffering) instead of growing without limit;
    /// its next [`drain_edge`](Self::drain_edge) reports
    /// [`ClusterError::Disconnected`] and it must
    /// [`resubscribe_edge`](Self::resubscribe_edge). Fan-out itself
    /// keeps going — one slow subscriber never blocks the write path or
    /// the healthy edges.
    pub fn fan_out(&mut self) -> Result<usize, ClusterError<S::Error>> {
        let mut moved = 0usize;
        for (id, slot) in self.edges.iter_mut().enumerate() {
            if slot.disconnected {
                continue;
            }
            let entries = self
                .central
                .delta_log()
                .since(slot.cursor)
                .map_err(ClusterError::Truncated)?;
            for entry in entries {
                debug_assert_eq!(
                    entry.start_seq(),
                    slot.cursor,
                    "subscription stays contiguous"
                );
                if slot.queue.len() >= self.max_queue {
                    // The bounded send queue: drop the whole backlog and
                    // mark the subscriber gone rather than buffer
                    // without limit for a consumer that is not keeping
                    // up.
                    slot.queue.clear();
                    slot.disconnected = true;
                    break;
                }
                // A txn entry is owned by every edge that owns *any* of
                // its tables — each such edge receives the whole atom
                // (applied all-or-none), never a per-table slice.
                let owned = entry.tables().any(|t| self.shard_map.owner(t) == Some(id));
                let item = if owned {
                    match entry {
                        LogEntry::Op(delta) => QueueItem::Apply(delta.clone()),
                        LogEntry::Batch(batch) => QueueItem::ApplyBatch(batch.clone()),
                        LogEntry::Txn(txn) => QueueItem::ApplyTxn(txn.clone()),
                    }
                } else {
                    QueueItem::Skip {
                        start_seq: entry.start_seq(),
                        count: entry.ops() as u64,
                    }
                };
                slot.queue.push_back(item);
                slot.cursor = entry.end_seq();
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Apply up to `max` queued subscription items on one edge
    /// (replaying owned deltas, skipping foreign placeholders), then
    /// refresh the edge's owner stamp if the central server still
    /// retains an attestation for its exact position. Returns the
    /// number of items consumed.
    pub fn drain_edge(&mut self, edge: usize, max: usize) -> Result<usize, ClusterError<S::Error>> {
        let slot = self
            .edges
            .get_mut(edge)
            .ok_or(ClusterError::UnknownEdge(edge))?;
        if slot.disconnected {
            return Err(ClusterError::Disconnected {
                edge,
                queued: slot.queue.len(),
                bound: self.max_queue,
            });
        }
        let mut consumed = 0usize;
        while consumed < max {
            let Some(item) = slot.queue.pop_front() else {
                break;
            };
            match item {
                QueueItem::Apply(delta) => slot.server.apply_delta(&delta)?,
                QueueItem::ApplyBatch(batch) => slot.server.apply_delta_batch(&batch)?,
                QueueItem::ApplyTxn(txn) => slot.server.apply_txn(&txn)?,
                QueueItem::Skip { start_seq, count } => {
                    slot.server.service().skip_deltas(start_seq, count)?
                }
            }
            consumed += 1;
        }
        // Only an attestation for the edge's *exact* position may be
        // installed: handing a lagging edge a newer stamp would let it
        // masquerade as fresh.
        let pos = slot.server.applied_seq();
        if let Some(stamp) = self.central.stamp_for_seq(pos) {
            slot.server.service().set_freshness_stamp(stamp);
        }
        Ok(consumed)
    }

    /// Reconnect a disconnected edge by re-provisioning it from the
    /// central's *current* state instead of replaying the dropped
    /// backlog: every owned store is rebuilt through the **verified
    /// chunk-sync pipeline** (each chunk authenticated against the
    /// signed root digest before anything is installed — never a
    /// trusting clone), the cursor and applied position are
    /// fast-forwarded to the owner's head, and the head's attestation
    /// is installed if the central retains one. Also works on a healthy
    /// edge (it simply snaps to the head).
    ///
    /// A table the shard map still assigns to this edge but that was
    /// since dropped from the central catalog is not an error: the
    /// stale assignment is removed (shrinking this edge's load count)
    /// and the resubscribe continues.
    pub fn resubscribe_edge(&mut self, edge: usize) -> Result<(), ClusterError<S::Error>> {
        if edge >= self.edges.len() {
            return Err(ClusterError::UnknownEdge(edge));
        }
        let head = self.central.delta_log().next_seq();
        let verifier = self.central.verifier();
        // Replace the replica wholesale: its old stores may be
        // arbitrarily far behind the dropped backlog.
        let mut server = EdgeServer::with_seq(self.central.scheme().clone(), head);
        let tables: Vec<String> = self
            .shard_map
            .tables_of(edge)
            .into_iter()
            .map(str::to_string)
            .collect();
        for table in tables {
            let Some(schema) = self.central.schema(&table).cloned() else {
                self.shard_map.remove_table(&table);
                continue;
            };
            let source = self.central.store(&table).expect("catalog mirrors stores");
            let store =
                crate::sync::clone_verified(self.central.scheme(), source, verifier.clone())?;
            server.install_table(table, schema, store);
        }
        if let Some(stamp) = self.central.stamp_for_seq(head) {
            server.service().set_freshness_stamp(stamp);
        }
        let slot = &mut self.edges[edge];
        slot.server = server;
        slot.queue.clear();
        slot.cursor = head;
        slot.disconnected = false;
        Ok(())
    }

    /// Take `edge` out of the serving set: drop its buffered
    /// subscription queue and stop fanning out to it. The slot stays
    /// (edge ids remain stable) and a later
    /// [`resubscribe_edge`](Self::resubscribe_edge) revives it; its
    /// tables keep routing to it until
    /// [`promote_replica`](Self::promote_replica) moves them.
    pub fn mark_edge_dead(&mut self, edge: usize) -> Result<(), ClusterError<S::Error>> {
        let slot = self
            .edges
            .get_mut(edge)
            .ok_or(ClusterError::UnknownEdge(edge))?;
        slot.queue.clear();
        slot.disconnected = true;
        Ok(())
    }

    /// Fail over from `dead` to `standby`: mark the dead edge gone,
    /// bring the standby current (a warm standby drains its queue to
    /// the head; one that was itself disconnected is fully
    /// re-provisioned), move the dead edge's tables to it in the shard
    /// map (bumping the map's version so routers see the change), and
    /// **chunk-restore each moved table through the verifying
    /// restorer** — the standby never installs bytes it has not
    /// authenticated against the central's signed root digests.
    /// Queries route to the standby from the moment this returns.
    /// Returns the moved table names.
    pub fn promote_replica(
        &mut self,
        dead: usize,
        standby: usize,
    ) -> Result<Vec<String>, ClusterError<S::Error>> {
        if dead >= self.edges.len() {
            return Err(ClusterError::UnknownEdge(dead));
        }
        if standby >= self.edges.len() || standby == dead {
            return Err(ClusterError::UnknownEdge(standby));
        }
        self.mark_edge_dead(dead)?;
        if self.edges[standby].disconnected {
            // The standby lost its own subscription at some point: move
            // the assignments first, then rebuild the whole replica
            // through the verified resubscribe path.
            let moved = self.shard_map.promote_replica(dead, standby);
            self.resubscribe_edge(standby)?;
            return Ok(moved);
        }
        // Warm standby: catch its replica up to the head first, so its
        // applied position agrees with the restored trees (which are
        // snapshots of the central's state at the head).
        self.fan_out()?;
        self.drain_edge(standby, usize::MAX)?;
        let moved = self.shard_map.promote_replica(dead, standby);
        let verifier = self.central.verifier();
        for table in &moved {
            let Some(schema) = self.central.schema(table).cloned() else {
                self.shard_map.remove_table(table);
                continue;
            };
            let source = self.central.store(table).expect("catalog mirrors stores");
            let store =
                crate::sync::clone_verified(self.central.scheme(), source, verifier.clone())?;
            self.edges[standby]
                .server
                .install_table(table.clone(), schema, store);
        }
        let pos = self.edges[standby].server.applied_seq();
        if let Some(stamp) = self.central.stamp_for_seq(pos) {
            self.edges[standby]
                .server
                .service()
                .set_freshness_stamp(stamp);
        }
        Ok(moved)
    }

    /// Fan out and fully drain every healthy edge (the steady state
    /// between induced-lag experiments); disconnected edges are left
    /// alone until they [`resubscribe_edge`](Self::resubscribe_edge).
    /// Returns total items consumed.
    pub fn sync(&mut self) -> Result<usize, ClusterError<S::Error>> {
        self.fan_out()?;
        let mut consumed = 0;
        for id in 0..self.edges.len() {
            if self.edges[id].disconnected {
                continue;
            }
            consumed += self.drain_edge(id, usize::MAX)?;
        }
        Ok(consumed)
    }

    /// Owner liveness heartbeat: advance the logical clock, re-sign the
    /// current position, and deliver the stamp to every edge that is
    /// exactly caught up (a lagging or partitioned edge keeps its aging
    /// stamp and trips `FreshnessPolicy::max_age`).
    ///
    /// Since the heartbeat also flushes pending group-commit runs that
    /// have aged past `commit_interval`, the flushed entries are fanned
    /// out to the subscription queues before the stamp is offered — an
    /// edge with freshly queued work keeps its old stamp until it
    /// drains.
    pub fn broadcast_heartbeat(&mut self) -> Result<(), ClusterError<S::Error>> {
        let stamp = self.central.heartbeat();
        self.fan_out()?;
        for slot in &mut self.edges {
            if slot.server.applied_seq() == stamp.seq && slot.queue.is_empty() {
                slot.server.service().set_freshness_stamp(stamp.clone());
            }
        }
        Ok(())
    }

    /// Start staging an atomic multi-table transaction (see
    /// [`CentralServer::begin_txn`]).
    pub fn begin_txn(&self) -> Txn {
        self.central.begin_txn()
    }

    /// Commit a staged multi-table transaction at the owner — one union
    /// lock scope, every per-table signing sweep, **one** checksummed
    /// `CommitTxn` WAL record — and fan the single txn envelope out:
    /// every edge owning any touched table receives the whole atom (one
    /// shared `Arc`, applied all-or-none), every other edge one range
    /// placeholder. A scatter-gather read across the txn's tables never
    /// observes one table at `end_seq` with another still behind.
    pub fn commit_txn(
        &mut self,
        txn: Txn,
    ) -> Result<Arc<TxnBatch<S::Delta>>, ClusterError<S::Error>> {
        let committed = self.central.commit_txn(txn)?;
        self.fan_out()?;
        Ok(committed)
    }

    /// The edge owning `table`.
    pub fn route(&self, table: &str) -> Result<usize, ClusterError<S::Error>> {
        self.shard_map
            .owner(table)
            .ok_or_else(|| ClusterError::UnknownTable(table.to_string()))
    }

    /// Serve a range query from the owning edge (the response carries
    /// that edge's freshness stamp).
    pub fn query(
        &self,
        table: &str,
        query: &RangeQuery,
    ) -> Result<RoutedResponse<S::Response>, ClusterError<S::Error>> {
        let edge = self.route(table)?;
        let response = self.edges[edge].server.query_range(table, query)?;
        Ok(RoutedResponse {
            edge,
            table: table.to_string(),
            response,
        })
    }

    /// Scatter-gather: route each leg of a multi-table query (e.g. both
    /// sides of a client-joined equijoin) to its owning edge and gather
    /// the responses in input order. Each leg verifies independently
    /// against its own edge's freshness stamp.
    pub fn scatter_gather(
        &self,
        legs: &[(String, RangeQuery)],
    ) -> Result<Vec<RoutedResponse<S::Response>>, ClusterError<S::Error>> {
        legs.iter()
            .map(|(table, query)| self.query(table, query))
            .collect()
    }

    /// Per-edge replication lag against the owner's head.
    pub fn lag_report(&self) -> Vec<EdgeLag> {
        let head = self.central.delta_log().next_seq();
        self.edges
            .iter()
            .enumerate()
            .map(|(edge, slot)| {
                let applied_seq = slot.server.applied_seq();
                EdgeLag {
                    edge,
                    applied_seq,
                    queued: slot.queue.len(),
                    lag: head.saturating_sub(applied_seq),
                    disconnected: slot.disconnected,
                }
            })
            .collect()
    }
}
