//! Digest-level shared/exclusive locking (Section 3.4).
//!
//! The paper's protocol:
//!
//! * an **insert** X-locks each digest on the root-to-leaf path "in turn
//!   only as it is being modified" (plus the parent on splits);
//! * a **delete** X-locks all digests on the path before recomputing
//!   them;
//! * a **query** S-locks the digests of its enveloping subtree, so
//!   queries whose subtrees do not overlap an update proceed
//!   concurrently.
//!
//! [`LockManager`] implements the compatibility matrix with try-lock
//! semantics (callers retry or abort; there is no wait queue, so no
//! deadlocks) and counts conflicts so tests can assert the concurrency
//! claims.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// Transaction identifier.
pub type TxnId = u64;

/// Lock modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (queries over their enveloping subtree).
    Shared,
    /// Exclusive (updates over path digests).
    Exclusive,
}

/// A lockable resource: one node digest of one tree.
pub type Resource = (String, usize);

/// Why an acquisition failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockConflict {
    /// The contested resource.
    pub resource: Resource,
    /// Mode requested.
    pub requested: LockMode,
}

impl core::fmt::Display for LockConflict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "lock conflict on {}:{} ({:?})",
            self.resource.0, self.resource.1, self.requested
        )
    }
}

impl std::error::Error for LockConflict {}

/// Aggregate lock statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Successful acquisitions.
    pub acquired: u64,
    /// Denied requests.
    pub conflicts: u64,
    /// Release-all calls (transaction ends).
    pub released: u64,
}

#[derive(Default)]
struct State {
    /// Transactions holding this resource shared. A transaction that
    /// upgraded Shared→Exclusive **stays** in this set: the membership
    /// records the pre-upgrade mode, so rolling the upgrade back (or
    /// releasing the exclusive half) restores the shared hold instead of
    /// dropping the lock entirely.
    shared: HashSet<TxnId>,
    exclusive: Option<TxnId>,
}

/// What one successful acquisition actually changed — the exact undo
/// information an all-or-nothing batch needs for rollback. Strict 2PL
/// forbids releasing anything the transaction already held before the
/// batch, so rollback must distinguish these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Acquisition {
    /// The transaction held nothing on this resource before.
    Fresh,
    /// Shared→Exclusive upgrade; the shared hold predates the batch.
    Upgraded,
    /// Already held in the requested (or a stronger) mode; no change.
    Reentrant,
}

#[derive(Default)]
struct Table {
    locks: HashMap<Resource, State>,
    held_by: HashMap<TxnId, HashSet<Resource>>,
    stats: LockStats,
}

/// The lock manager (internally synchronised; share by reference).
#[derive(Default)]
pub struct LockManager {
    table: Mutex<Table>,
}

impl LockManager {
    /// Fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to acquire `resource` in `mode` for `txn`. Re-entrant;
    /// upgrades Shared→Exclusive when `txn` is the only shared holder.
    pub fn try_acquire(
        &self,
        txn: TxnId,
        resource: Resource,
        mode: LockMode,
    ) -> Result<(), LockConflict> {
        self.acquire_inner(txn, resource, mode).map(|_| ())
    }

    fn acquire_inner(
        &self,
        txn: TxnId,
        resource: Resource,
        mode: LockMode,
    ) -> Result<Acquisition, LockConflict> {
        let mut t = self.table.lock();
        let state = t.locks.entry(resource.clone()).or_default();
        let ok = match mode {
            LockMode::Shared => state.exclusive.is_none() || state.exclusive == Some(txn),
            LockMode::Exclusive => {
                let others_shared = state.shared.iter().any(|&h| h != txn);
                let others_excl = state.exclusive.is_some_and(|h| h != txn);
                !others_shared && !others_excl
            }
        };
        if !ok {
            t.stats.conflicts += 1;
            return Err(LockConflict {
                resource,
                requested: mode,
            });
        }
        let change = match mode {
            // Holding Exclusive subsumes Shared; holding Shared already
            // satisfies a Shared request.
            LockMode::Shared if state.exclusive == Some(txn) || state.shared.contains(&txn) => {
                Acquisition::Reentrant
            }
            LockMode::Shared => {
                state.shared.insert(txn);
                Acquisition::Fresh
            }
            LockMode::Exclusive if state.exclusive == Some(txn) => Acquisition::Reentrant,
            LockMode::Exclusive if state.shared.contains(&txn) => {
                // Upgrade. The shared membership is deliberately kept:
                // it records the pre-upgrade mode (see `State`).
                state.exclusive = Some(txn);
                Acquisition::Upgraded
            }
            LockMode::Exclusive => {
                state.exclusive = Some(txn);
                Acquisition::Fresh
            }
        };
        if change == Acquisition::Fresh {
            t.held_by.entry(txn).or_default().insert(resource);
        }
        t.stats.acquired += 1;
        Ok(change)
    }

    /// Acquire a whole set of resources or nothing (all-or-nothing, used
    /// for delete transactions which must X-lock the full path first).
    ///
    /// On a mid-batch conflict only the acquisitions the batch itself
    /// made are undone: holds that predate the batch (re-entrant
    /// re-acquisitions, the shared half of an upgrade) survive, as
    /// strict 2PL requires.
    pub fn try_acquire_all(
        &self,
        txn: TxnId,
        resources: &[Resource],
        mode: LockMode,
    ) -> Result<(), LockConflict> {
        let mut made: Vec<(usize, Acquisition)> = Vec::with_capacity(resources.len());
        for (i, r) in resources.iter().enumerate() {
            match self.acquire_inner(txn, r.clone(), mode) {
                Ok(change) => made.push((i, change)),
                Err(conflict) => {
                    // Roll back exactly what this batch changed, newest
                    // first (a Fresh shared hold later upgraded within
                    // the same batch must lose the upgrade before the
                    // hold itself is released).
                    for &(j, change) in made.iter().rev() {
                        match change {
                            Acquisition::Fresh => self.release_one(txn, &resources[j]),
                            Acquisition::Upgraded => self.downgrade_one(txn, &resources[j]),
                            Acquisition::Reentrant => {}
                        }
                    }
                    return Err(conflict);
                }
            }
        }
        Ok(())
    }

    fn release_one(&self, txn: TxnId, resource: &Resource) {
        let mut t = self.table.lock();
        if let Some(state) = t.locks.get_mut(resource) {
            state.shared.remove(&txn);
            if state.exclusive == Some(txn) {
                state.exclusive = None;
            }
            if state.shared.is_empty() && state.exclusive.is_none() {
                t.locks.remove(resource);
            }
        }
        if let Some(held) = t.held_by.get_mut(&txn) {
            held.remove(resource);
        }
    }

    /// Undo a Shared→Exclusive upgrade: drop the exclusive half, keep
    /// the pre-existing shared hold (the transaction stays a holder).
    fn downgrade_one(&self, txn: TxnId, resource: &Resource) {
        let mut t = self.table.lock();
        if let Some(state) = t.locks.get_mut(resource) {
            if state.exclusive == Some(txn) {
                state.exclusive = None;
            }
            debug_assert!(
                state.shared.contains(&txn),
                "downgrade target must retain its shared hold"
            );
        }
    }

    /// Release everything `txn` holds (end of transaction — 2PL's
    /// shrinking phase happens at once, i.e. strict 2PL).
    pub fn release_all(&self, txn: TxnId) {
        let mut t = self.table.lock();
        let resources = t.held_by.remove(&txn).unwrap_or_default();
        for r in resources {
            if let Some(state) = t.locks.get_mut(&r) {
                state.shared.remove(&txn);
                if state.exclusive == Some(txn) {
                    state.exclusive = None;
                }
                if state.shared.is_empty() && state.exclusive.is_none() {
                    t.locks.remove(&r);
                }
            }
        }
        t.stats.released += 1;
    }

    /// Current statistics.
    pub fn stats(&self) -> LockStats {
        self.table.lock().stats
    }

    /// Number of currently locked resources (tests).
    pub fn locked_resources(&self) -> usize {
        self.table.lock().locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(n: usize) -> Resource {
        ("t".to_string(), n)
    }

    #[test]
    fn shared_locks_compatible() {
        let m = LockManager::new();
        m.try_acquire(1, res(0), LockMode::Shared).unwrap();
        m.try_acquire(2, res(0), LockMode::Shared).unwrap();
        assert_eq!(m.stats().acquired, 2);
        assert_eq!(m.stats().conflicts, 0);
    }

    #[test]
    fn exclusive_conflicts_with_shared() {
        let m = LockManager::new();
        m.try_acquire(1, res(0), LockMode::Shared).unwrap();
        assert!(m.try_acquire(2, res(0), LockMode::Exclusive).is_err());
        assert!(m.try_acquire(2, res(0), LockMode::Shared).is_ok());
        assert_eq!(m.stats().conflicts, 1);
    }

    #[test]
    fn exclusive_blocks_everyone_else() {
        let m = LockManager::new();
        m.try_acquire(1, res(0), LockMode::Exclusive).unwrap();
        assert!(m.try_acquire(2, res(0), LockMode::Shared).is_err());
        assert!(m.try_acquire(2, res(0), LockMode::Exclusive).is_err());
        // Re-entrant for the holder.
        assert!(m.try_acquire(1, res(0), LockMode::Exclusive).is_ok());
        assert!(m.try_acquire(1, res(0), LockMode::Shared).is_ok());
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let m = LockManager::new();
        m.try_acquire(1, res(0), LockMode::Shared).unwrap();
        m.try_acquire(1, res(0), LockMode::Exclusive).unwrap();
        assert!(m.try_acquire(2, res(0), LockMode::Shared).is_err());
    }

    #[test]
    fn upgrade_denied_with_other_readers() {
        let m = LockManager::new();
        m.try_acquire(1, res(0), LockMode::Shared).unwrap();
        m.try_acquire(2, res(0), LockMode::Shared).unwrap();
        assert!(m.try_acquire(1, res(0), LockMode::Exclusive).is_err());
    }

    #[test]
    fn release_all_frees_resources() {
        let m = LockManager::new();
        m.try_acquire(1, res(0), LockMode::Exclusive).unwrap();
        m.try_acquire(1, res(1), LockMode::Shared).unwrap();
        assert_eq!(m.locked_resources(), 2);
        m.release_all(1);
        assert_eq!(m.locked_resources(), 0);
        assert!(m.try_acquire(2, res(0), LockMode::Exclusive).is_ok());
    }

    #[test]
    fn all_or_nothing_rolls_back() {
        let m = LockManager::new();
        m.try_acquire(9, res(2), LockMode::Exclusive).unwrap();
        let want = vec![res(0), res(1), res(2)];
        assert!(m.try_acquire_all(1, &want, LockMode::Exclusive).is_err());
        // Nothing from the failed batch may remain held.
        assert!(m.try_acquire(2, res(0), LockMode::Exclusive).is_ok());
        assert!(m.try_acquire(2, res(1), LockMode::Exclusive).is_ok());
    }

    #[test]
    fn failed_batch_keeps_preexisting_holds() {
        // Regression: rollback of a failed batch used to release
        // re-entrantly re-acquired resources the transaction already
        // held *before* the batch, silently dropping its locks
        // mid-transaction (strict 2PL violation).
        let m = LockManager::new();
        m.try_acquire(1, res(0), LockMode::Exclusive).unwrap();
        m.try_acquire(9, res(2), LockMode::Exclusive).unwrap();
        // Batch re-acquires res(0) (already held) and fails on res(2).
        assert!(m
            .try_acquire_all(1, &[res(0), res(1), res(2)], LockMode::Exclusive)
            .is_err());
        // txn 1 must still hold res(0) exclusively…
        assert!(m.try_acquire(2, res(0), LockMode::Shared).is_err());
        assert!(m.try_acquire(2, res(0), LockMode::Exclusive).is_err());
        // …while the batch's genuinely-new acquisition was rolled back.
        assert!(m.try_acquire(2, res(1), LockMode::Exclusive).is_ok());
        // End of transaction still frees everything.
        m.release_all(1);
        assert!(m.try_acquire(2, res(0), LockMode::Exclusive).is_ok());
    }

    #[test]
    fn failed_batch_restores_shared_hold_after_upgrade() {
        // Regression: a Shared→Exclusive upgrade inside a failed batch
        // used to erase the pre-existing shared hold, so rollback
        // dropped the lock entirely instead of downgrading.
        let m = LockManager::new();
        m.try_acquire(1, res(0), LockMode::Shared).unwrap();
        m.try_acquire(9, res(1), LockMode::Exclusive).unwrap();
        // The upgrade on res(0) succeeds, then res(1) conflicts.
        assert!(m
            .try_acquire_all(1, &[res(0), res(1)], LockMode::Exclusive)
            .is_err());
        // txn 1 is back to a *shared* hold on res(0): other readers may
        // join, but no one can take it exclusively.
        assert!(m.try_acquire(2, res(0), LockMode::Shared).is_ok());
        assert!(m.try_acquire(3, res(0), LockMode::Exclusive).is_err());
        m.release_all(1);
        m.release_all(2);
        assert!(m.try_acquire(3, res(0), LockMode::Exclusive).is_ok());
    }

    #[test]
    fn release_after_upgrade_frees_resource() {
        // An upgrade must not leave a phantom shared hold behind after
        // the transaction ends.
        let m = LockManager::new();
        m.try_acquire(1, res(0), LockMode::Shared).unwrap();
        m.try_acquire(1, res(0), LockMode::Exclusive).unwrap();
        m.release_all(1);
        assert_eq!(m.locked_resources(), 0);
        assert!(m.try_acquire(2, res(0), LockMode::Exclusive).is_ok());
    }

    #[test]
    fn disjoint_resources_never_conflict() {
        // The paper's concurrency claim: non-overlapping enveloping
        // subtrees proceed concurrently.
        let m = LockManager::new();
        m.try_acquire_all(1, &[res(0), res(1)], LockMode::Exclusive)
            .unwrap();
        m.try_acquire_all(2, &[res(2), res(3)], LockMode::Shared)
            .unwrap();
        assert_eq!(m.stats().conflicts, 0);
    }

    #[test]
    fn concurrent_hammering() {
        // 8 threads × disjoint resource sets: all must succeed with zero
        // conflicts; then 8 threads × one shared hot resource in X mode:
        // exactly one winner per round.
        let m = std::sync::Arc::new(LockManager::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..50usize {
                        let r = ("t".to_string(), (t as usize) * 1000 + i);
                        m.try_acquire(t, r, LockMode::Exclusive).unwrap();
                    }
                    m.release_all(t);
                });
            }
        });
        assert_eq!(m.stats().conflicts, 0);
        assert_eq!(m.locked_resources(), 0);

        let winners = std::sync::Arc::new(parking_lot::Mutex::new(0u32));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = std::sync::Arc::clone(&m);
                let winners = std::sync::Arc::clone(&winners);
                s.spawn(move || {
                    if m.try_acquire(100 + t, ("hot".into(), 0), LockMode::Exclusive)
                        .is_ok()
                    {
                        *winners.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*winners.lock(), 1);
    }
}
