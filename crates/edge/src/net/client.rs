//! The request side of the frame protocol: typed calls over a
//! [`Conn`], plus the replication helpers an edge node uses to
//! bootstrap and stay current over the wire.
//!
//! The client never trusts what it receives here — it returns verbatim
//! envelope bytes (`VBX2`/`VBX4`/`VBB1`) for the caller to decode and
//! **verify** with the usual [`vbx_core::verify`] machinery. The only
//! interpretation done locally is protocol shape (matching response
//! kinds, unwrapping `Error` frames).

use super::transport::{Conn, Transport};
use crate::central::{EdgeBundle, LogEntry};
use crate::edge_server::EdgeServer;
use crate::service::EdgeError;
use std::io;
use std::time::{Duration, Instant};
use vbx_core::scheme::VbScheme;
use vbx_core::verify::FreshnessStamp;
use vbx_core::{
    decode_delta_batch, decode_signed_delta, decode_txn_batch, CoreError, ErrorCode, NetMsg,
    RangeQuery, SyncError,
};
use vbx_crypto::accum::Accumulator;

/// How long a call waits for its response before giving up.
pub const CALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (dial, send, receive, peer hang-up).
    Io(io::Error),
    /// A frame or envelope failed to decode.
    Wire(CoreError),
    /// The server answered with an `Error` frame.
    Remote {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with an unexpected message kind.
    Protocol(String),
    /// The local apply of a replicated entry failed partway through a
    /// poll round: `applied` entries landed before `source` stopped the
    /// round, so the edge's cursor has still advanced by that much.
    Apply {
        /// Entries applied before the failure.
        applied: usize,
        /// The typed apply failure.
        source: EdgeError<vbx_core::scheme::VbSchemeError>,
    },
    /// Verified state sync rejected a chunk stream.
    Sync(SyncError),
    /// Bounded retries of a transiently failing call ran out.
    RetriesExhausted {
        /// Attempts made, including the first.
        attempts: u32,
        /// The last transient failure observed.
        last: Box<NetError>,
    },
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<CoreError> for NetError {
    fn from(e: CoreError) -> Self {
        NetError::Wire(e)
    }
}

impl From<SyncError> for NetError {
    fn from(e: SyncError) -> Self {
        NetError::Sync(e)
    }
}

/// Bounded retry policy for the replication helpers: transient
/// transport failures (`NetError::Io` — dial refused, timeout, peer
/// reset) are retried with exponential backoff; every other failure
/// (protocol violations, remote errors, verification rejects) is
/// deterministic and surfaces immediately. When the budget runs out
/// the caller gets [`NetError::RetriesExhausted`] carrying the final
/// transport error.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Backoff before retry `n` is `base_delay << (n - 1)`.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base_delay: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// No retries: a single attempt whose failure surfaces verbatim.
    pub fn none() -> Self {
        Self {
            attempts: 1,
            base_delay: Duration::ZERO,
        }
    }

    fn backoff(&self, retry: u32) -> Duration {
        self.base_delay.saturating_mul(1u32 << retry.min(16))
    }
}

fn is_transient(e: &NetError) -> bool {
    matches!(e, NetError::Io(_))
}

fn with_retries<T>(
    policy: &RetryPolicy,
    mut f: impl FnMut() -> Result<T, NetError>,
) -> Result<T, NetError> {
    let attempts = policy.attempts.max(1);
    let mut last: Option<NetError> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(NetError::RetriesExhausted {
        attempts,
        last: Box::new(last.expect("loop ran at least once")),
    })
}

/// One step of a chunked state-sync fetch.
#[derive(Debug)]
pub enum ChunkFetch {
    /// The next chunk's bytes — feed them to the restorer, then ask for
    /// the next index.
    Chunk(Vec<u8>),
    /// The requested index is past the end: the table has `chunks`
    /// chunks in total and the central's delta log head was `head` when
    /// it answered (the cursor a fresh subscription should start from).
    Done {
        /// Total chunks in the stream.
        chunks: u32,
        /// Central's delta-log head at answer time.
        head: u64,
    },
}

/// A typed frame-protocol client over any transport.
pub struct NetClient {
    conn: Box<dyn Conn>,
    retry: RetryPolicy,
}

impl NetClient {
    /// Dial `addr` over `transport`.
    pub fn connect(transport: &dyn Transport, addr: &str) -> Result<Self, NetError> {
        Ok(Self {
            conn: transport.connect(addr)?,
            retry: RetryPolicy::default(),
        })
    }

    /// Wrap an existing connection.
    pub fn from_conn(conn: Box<dyn Conn>) -> Self {
        Self {
            conn,
            retry: RetryPolicy::default(),
        }
    }

    /// Override the retry budget the replication helpers
    /// ([`fetch_chunk`](Self::fetch_chunk), [`replicate_once`],
    /// [`bootstrap_edge`]) spend on transient transport failures.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The client's current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn recv_msg(&mut self) -> Result<NetMsg, NetError> {
        let deadline = Instant::now() + CALL_TIMEOUT;
        loop {
            match self.conn.recv() {
                Ok(frame) => return Ok(NetMsg::from_frame(&frame)?),
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Io(e));
                    }
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Send one message and receive one response message.
    pub fn call(&mut self, msg: &NetMsg) -> Result<NetMsg, NetError> {
        self.conn.send(&msg.to_frame())?;
        match self.recv_msg()? {
            NetMsg::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Ok(other),
        }
    }

    fn expect<T>(
        got: NetMsg,
        what: &str,
        f: impl FnOnce(NetMsg) -> Option<T>,
    ) -> Result<T, NetError> {
        let kind = got.kind();
        f(got).ok_or_else(|| NetError::Protocol(format!("expected {what}, got {kind:?}")))
    }

    /// Liveness probe; returns the peer's applied/committed sequence.
    pub fn ping(&mut self) -> Result<u64, NetError> {
        let resp = self.call(&NetMsg::Ping)?;
        Self::expect(resp, "Pong", |m| match m {
            NetMsg::Pong { applied_seq } => Some(applied_seq),
            _ => None,
        })
    }

    /// Range query; returns verbatim `VBX2` bytes to decode and verify.
    pub fn query_range(&mut self, table: &str, query: &RangeQuery) -> Result<Vec<u8>, NetError> {
        let resp = self.call(&NetMsg::RangeReq {
            table: table.to_string(),
            query: query.clone(),
        })?;
        Self::expect(resp, "QueryResp", |m| match m {
            NetMsg::QueryResp(bytes) => Some(bytes),
            _ => None,
        })
    }

    /// SQL query; returns verbatim `VBX2` bytes (the client re-plans
    /// the SQL itself to verify them).
    pub fn query_sql(&mut self, sql: &str) -> Result<Vec<u8>, NetError> {
        let resp = self.call(&NetMsg::SqlReq {
            sql: sql.to_string(),
        })?;
        Self::expect(resp, "QueryResp", |m| match m {
            NetMsg::QueryResp(bytes) => Some(bytes),
            _ => None,
        })
    }

    /// Compact multi-range query; returns verbatim `VBX4` bytes.
    pub fn query_compact(
        &mut self,
        table: &str,
        queries: &[RangeQuery],
        aggregate: bool,
    ) -> Result<Vec<u8>, NetError> {
        let resp = self.call(&NetMsg::CompactReq {
            table: table.to_string(),
            queries: queries.to_vec(),
            aggregate,
        })?;
        Self::expect(resp, "CompactResp", |m| match m {
            NetMsg::CompactResp(bytes) => Some(bytes),
            _ => None,
        })
    }

    /// Fetch the central's provisioning bundle (verbatim `VBB1` bytes).
    pub fn fetch_bundle(&mut self) -> Result<Vec<u8>, NetError> {
        let resp = self.call(&NetMsg::BundleReq)?;
        Self::expect(resp, "BundleResp", |m| match m {
            NetMsg::BundleResp(bytes) => Some(bytes),
            _ => None,
        })
    }

    /// Ask the peer for a freshness stamp (the central signs a new one;
    /// an edge relays its latest).
    pub fn heartbeat(&mut self) -> Result<Option<FreshnessStamp>, NetError> {
        let resp = self.call(&NetMsg::HeartbeatReq)?;
        Self::expect(resp, "Stamp", |m| match m {
            NetMsg::Stamp { stamp } => Some(stamp),
            _ => None,
        })
    }

    /// Subscribe to the delta stream from `cursor`; returns
    /// `(head, oldest)` of the server's log.
    pub fn subscribe(&mut self, cursor: u64) -> Result<(u64, u64), NetError> {
        let resp = self.call(&NetMsg::Subscribe { cursor })?;
        Self::expect(resp, "SubAck", |m| match m {
            NetMsg::SubAck { head, oldest } => Some((head, oldest)),
            _ => None,
        })
    }

    /// Pull up to `max` subscription entries. Returns the entry
    /// messages (`DeltaOp`/`DeltaBatch`) followed by the log's
    /// `(head, oldest)` from the terminating `SubAck`.
    pub fn poll_deltas(&mut self, max: u32) -> Result<(Vec<NetMsg>, u64, u64), NetError> {
        self.conn.send(&NetMsg::PollDeltas { max }.to_frame())?;
        let mut entries = Vec::new();
        loop {
            match self.recv_msg()? {
                NetMsg::SubAck { head, oldest } => return Ok((entries, head, oldest)),
                NetMsg::Error { code, message } => return Err(NetError::Remote { code, message }),
                entry @ (NetMsg::DeltaOp(_)
                | NetMsg::DeltaBatch(_)
                | NetMsg::DeltaTxn(_)
                | NetMsg::SkipRange { .. }) => entries.push(entry),
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected {:?} in poll stream",
                        other.kind()
                    )))
                }
            }
        }
    }

    /// Request chunk `index` of `table`'s verified sync stream. The
    /// bytes come back verbatim for the scheme's restorer to
    /// authenticate — the client does not interpret them. Transient
    /// transport failures are retried per the client's
    /// [`RetryPolicy`] — the request is idempotent, so a replay after
    /// a dropped response is harmless.
    pub fn fetch_chunk(&mut self, table: &str, index: u32) -> Result<ChunkFetch, NetError> {
        let policy = self.retry;
        let resp = with_retries(&policy, || {
            self.call(&NetMsg::ChunkRequest {
                table: table.to_string(),
                index,
            })
        })?;
        Self::expect(resp, "Chunk or RestoreDone", |m| match m {
            NetMsg::Chunk(bytes) => Some(ChunkFetch::Chunk(bytes)),
            NetMsg::RestoreDone { chunks, head } => Some(ChunkFetch::Done { chunks, head }),
            _ => None,
        })
    }

    /// Push one replication message (a `VBX3`/`VBX6` envelope, skip, or
    /// stamp) to an edge and return its applied sequence from the Ack.
    pub fn push_replication(&mut self, msg: &NetMsg) -> Result<u64, NetError> {
        let resp = self.call(msg)?;
        Self::expect(resp, "Ack", |m| match m {
            NetMsg::Ack { applied_seq } => Some(applied_seq),
            _ => None,
        })
    }
}

/// Fetch and decode the central's bundle and stand up an edge server
/// from it. The bundle must be non-empty (its trees carry the scheme
/// parameters); provision empty edges via
/// [`EdgeServer::from_bundle_with_scheme`] instead.
pub fn bootstrap_edge<const L: usize>(
    client: &mut NetClient,
    acc: &Accumulator<L>,
) -> Result<EdgeServer<VbScheme<L>>, NetError> {
    let policy = client.retry_policy();
    let bytes = with_retries(&policy, || client.fetch_bundle())?;
    let bundle = EdgeBundle::from_bytes(&bytes, acc)?;
    Ok(EdgeServer::from_bundle(bundle))
}

/// Pull one round of subscription entries from `client` (a connection
/// to the central) and apply them to `edge`. Returns the number of
/// entries applied. A [`NetError::Remote`] with
/// [`ErrorCode::Lagging`] means the edge fell out of the bounded
/// backlog / retention window and must re-bootstrap from a bundle.
pub fn replicate_once<const L: usize>(
    client: &mut NetClient,
    edge: &EdgeServer<VbScheme<L>>,
    max: u32,
) -> Result<usize, NetError> {
    // Only the poll itself retries: a transient transport failure before
    // any entry was handed over is safely re-issued, while apply and
    // decode failures are deterministic and surface immediately.
    let policy = client.retry_policy();
    let (entries, _head, _oldest) = with_retries(&policy, || client.poll_deltas(max))?;
    let mut applied = 0usize;
    for entry in entries {
        let res = match entry {
            NetMsg::DeltaOp(bytes) => {
                let delta = decode_signed_delta(&bytes, &edge.scheme().acc)?;
                edge.apply_log_entry(&LogEntry::Op(delta))
            }
            NetMsg::DeltaBatch(bytes) => {
                let batch = decode_delta_batch(&bytes, &edge.scheme().acc)?;
                edge.apply_delta_batch(&batch)
            }
            NetMsg::DeltaTxn(bytes) => {
                let txn = decode_txn_batch(&bytes, &edge.scheme().acc)?;
                edge.apply_txn(&txn)
            }
            NetMsg::SkipRange { start_seq, count } => edge.service().skip_deltas(start_seq, count),
            _ => unreachable!("poll_deltas only returns replication entries"),
        };
        res.map_err(|source| NetError::Apply { applied, source })?;
        applied += 1;
    }
    Ok(applied)
}

/// Relay a fresh owner stamp from the central to a local edge: one
/// heartbeat call, then install the stamp so queries served from
/// `edge` republish it.
pub fn sync_stamp<const L: usize>(
    client: &mut NetClient,
    edge: &EdgeServer<VbScheme<L>>,
) -> Result<(), NetError> {
    if let Some(stamp) = client.heartbeat()? {
        edge.service().set_freshness_stamp(stamp);
    }
    Ok(())
}
