//! The connection loop: accept, spawn a thread per connection, serve
//! frames through a shared [`FrameEndpoint`], shut down gracefully.
//!
//! Connection-per-thread is deliberate: the serving engine is already
//! `&self`-concurrent (snapshot readers never block), the paper's
//! workload is request/response over long-lived connections, and a
//! thread parked in a 25 ms poll costs nothing measurable at the
//! hundreds-of-connections scale `BENCH_net.json` targets. Shutdown is
//! cooperative — every loop checks an [`AtomicBool`] each
//! [`POLL_INTERVAL`](super::transport::POLL_INTERVAL) — and
//! [`NetServer::shutdown`] joins the accept thread, which joins every
//! connection thread before returning, so no request is mid-flight
//! when it returns.

use super::endpoint::{ConnState, FrameEndpoint};
use super::transport::{Conn, Listener};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Counters a serving loop maintains (all monotonically increasing).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: AtomicU64,
    /// Frames served (one per inbound request frame).
    pub frames: AtomicU64,
    /// Connections torn down by I/O or stream-corruption errors (EOF —
    /// a client hanging up — is not an error).
    pub errors: AtomicU64,
}

/// A running frame server. Dropping it shuts it down.
pub struct NetServer {
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    stats: Arc<ServerStats>,
    addr: String,
}

impl NetServer {
    /// Start serving `endpoint` on `listener` with a thread per
    /// connection.
    pub fn spawn(listener: Box<dyn Listener>, endpoint: Arc<dyn FrameEndpoint>) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let addr = listener.local_addr();
        let accept = std::thread::spawn({
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            move || accept_loop(listener, endpoint, shutdown, stats)
        });
        Self {
            shutdown,
            accept: Some(accept),
            stats,
            addr,
        }
    }

    /// The bound address (dial this).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Live serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stop accepting, drain every connection thread, and return once
    /// all of them exited.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    mut listener: Box<dyn Listener>,
    endpoint: Arc<dyn FrameEndpoint>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(conn)) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                let endpoint = Arc::clone(&endpoint);
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                conns.push(std::thread::spawn(move || {
                    conn_loop(conn, endpoint, shutdown, stats)
                }));
                // Reap finished handlers so a long-lived server does not
                // accumulate join handles for hung-up connections.
                conns.retain(|h| !h.is_finished());
            }
            Ok(None) => {}
            Err(_) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    for h in conns {
        h.join().ok();
    }
}

fn conn_loop(
    mut conn: Box<dyn Conn>,
    endpoint: Arc<dyn FrameEndpoint>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let mut state = ConnState::default();
    while !shutdown.load(Ordering::SeqCst) {
        match conn.recv() {
            Ok(frame) => {
                stats.frames.fetch_add(1, Ordering::Relaxed);
                for reply in endpoint.serve_frame(&mut state, &frame) {
                    if conn.send(&reply).is_err() {
                        return;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return,
            Err(_) => {
                // Corrupt stream or transport failure: count and drop.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}
