//! The networked deployment: the VBX protocol on real sockets.
//!
//! Everything the in-process deployment does with function calls, this
//! module does with `VBX5` frames over a [`Transport`]:
//!
//! * [`transport`] — the `Transport`/`Listener`/`Conn` seam and its two
//!   implementations: an in-process **loopback** (paired byte channels
//!   that still run every frame through the codec, so it doubles as a
//!   differential oracle against TCP) and real **`std::net` TCP** with
//!   a connection-per-thread accept loop;
//! * [`endpoint`] — transport-agnostic request handlers:
//!   `serve_frame(&self, state, frame) -> frames` for an edge server
//!   (queries + push replication) and for the central (bundles,
//!   subscribe-from-cursor with a bounded backlog, heartbeats);
//! * [`server`] — the connection loop: accept, spawn, serve until
//!   graceful shutdown;
//! * [`client`] — the typed request side, plus the replication helper
//!   an edge node uses to bootstrap from a bundle and tail the delta
//!   stream over the wire.
//!
//! The trust model is unchanged by the transport: frames carry the same
//! signed envelopes, the frame CRC protects against accidents only, and
//! clients verify responses exactly as before — a hostile network is
//! just another untrusted edge.

pub mod client;
pub mod endpoint;
pub mod server;
pub mod transport;

pub use client::{
    bootstrap_edge, replicate_once, sync_stamp, ChunkFetch, NetClient, NetError, RetryPolicy,
    CALL_TIMEOUT,
};
pub use endpoint::{CentralEndpoint, ConnState, EdgeEndpoint, FrameEndpoint, DEFAULT_MAX_BACKLOG};
pub use server::{NetServer, ServerStats};
pub use transport::{Conn, Listener, LoopbackTransport, TcpTransport, Transport, POLL_INTERVAL};
