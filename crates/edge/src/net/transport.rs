//! The transport seam: blocking, framed, poll-friendly connections.
//!
//! A [`Conn`] moves whole [`Frame`]s; partial and interleaved reads are
//! reassembled by the shared [`FrameBuffer`], so both implementations
//! decode byte-identically. `recv` and `accept` block for at most
//! [`POLL_INTERVAL`] and then report `TimedOut`/`None`, which is what
//! lets connection threads notice a shutdown flag without async
//! machinery.
//!
//! [`LoopbackTransport`] pairs `std::sync::mpsc` byte channels — every
//! frame is still **encoded to bytes and decoded back**, so loopback
//! exercises the exact codec path TCP does and serves as the
//! differential oracle. [`TcpTransport`] is `std::net` with Nagle off
//! and read timeouts.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vbx_core::{Frame, FrameBuffer};

/// How long `recv`/`accept` block before reporting "nothing yet"
/// (`io::ErrorKind::TimedOut` / `Ok(None)`). Connection loops poll at
/// this cadence to observe shutdown flags.
pub const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// One framed, bidirectional connection.
pub trait Conn: Send {
    /// Send one frame (blocking until it is handed to the transport).
    fn send(&mut self, frame: &Frame) -> io::Result<()>;

    /// Receive the next frame. Blocks up to [`POLL_INTERVAL`], then
    /// fails with `TimedOut` (retry); a closed peer is
    /// `UnexpectedEof`, a corrupt stream `InvalidData`.
    fn recv(&mut self) -> io::Result<Frame>;

    /// Human-readable peer address (diagnostics only).
    fn peer(&self) -> String;
}

/// Accepts inbound connections.
pub trait Listener: Send {
    /// Accept one connection, waiting up to [`POLL_INTERVAL`];
    /// `Ok(None)` means nobody dialled in this interval.
    fn accept(&mut self) -> io::Result<Option<Box<dyn Conn>>>;

    /// The address peers dial, in the transport's own notation.
    fn local_addr(&self) -> String;
}

/// A way to listen and connect — the seam the endpoints, tests, and
/// benches are generic over.
pub trait Transport: Send + Sync {
    /// `"loopback"` or `"tcp"` (labels in benches and reports).
    fn name(&self) -> &'static str;

    /// Bind a listener. For TCP, `addr` is `host:port` (`port` 0 picks
    /// a free one — read the chosen address back via
    /// [`Listener::local_addr`]); for loopback any string names the
    /// in-process endpoint.
    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>>;

    /// Dial a listener.
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Conn>>;
}

/// Pump raw bytes into a frame buffer and map decode failures onto the
/// transports' shared error vocabulary.
fn frame_from_buffer(buf: &mut FrameBuffer) -> io::Result<Option<Frame>> {
    buf.try_frame()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// Real `std::net` TCP.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpTransport;

struct TcpConn {
    stream: TcpStream,
    buf: FrameBuffer,
    peer: String,
}

impl TcpConn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:?".into());
        Ok(Self {
            stream,
            buf: FrameBuffer::new(),
            peer,
        })
    }
}

impl Conn for TcpConn {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.stream.write_all(&frame.encode())
    }

    fn recv(&mut self) -> io::Result<Frame> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = frame_from_buffer(&mut self.buf)? {
                return Ok(frame);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.buf.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Err(io::ErrorKind::TimedOut.into())
                }
                Err(e) if e.kind() == io::ErrorKind::TimedOut => return Err(e),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

struct TcpNetListener {
    listener: TcpListener,
    addr: String,
}

impl Listener for TcpNetListener {
    fn accept(&mut self) -> io::Result<Option<Box<dyn Conn>>> {
        match self.listener.accept() {
            Ok((stream, _)) => Ok(Some(Box::new(TcpConn::new(stream)?))),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Non-blocking accept: nobody waiting. Sleep one poll
                // interval so the accept loop doesn't spin.
                std::thread::sleep(POLL_INTERVAL);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(Box::new(TcpNetListener { listener, addr }))
    }

    fn connect(&self, addr: &str) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(TcpConn::new(TcpStream::connect(addr)?)?))
    }
}

// ---------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------

type AcceptTx = Sender<LoopbackConn>;
type Registry = Arc<Mutex<HashMap<String, AcceptTx>>>;

/// In-process transport: paired byte channels behind the same traits.
/// Frames still cross an encode/decode boundary, so everything the
/// codec could get wrong on TCP it gets wrong here too — which is the
/// point: loopback runs are the differential oracle for TCP runs.
#[derive(Clone, Default)]
pub struct LoopbackTransport {
    registry: Registry,
}

impl LoopbackTransport {
    /// A transport with an empty listener registry.
    pub fn new() -> Self {
        Self::default()
    }
}

struct LoopbackConn {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    buf: FrameBuffer,
    peer: String,
}

impl Conn for LoopbackConn {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.tx
            .send(frame.encode())
            .map_err(|_| io::ErrorKind::BrokenPipe.into())
    }

    fn recv(&mut self) -> io::Result<Frame> {
        loop {
            if let Some(frame) = frame_from_buffer(&mut self.buf)? {
                return Ok(frame);
            }
            match self.rx.recv_timeout(POLL_INTERVAL) {
                Ok(bytes) => self.buf.extend(&bytes),
                Err(RecvTimeoutError::Timeout) => return Err(io::ErrorKind::TimedOut.into()),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::ErrorKind::UnexpectedEof.into())
                }
            }
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

struct LoopbackListener {
    rx: Receiver<LoopbackConn>,
    addr: String,
    registry: Registry,
}

impl Listener for LoopbackListener {
    fn accept(&mut self) -> io::Result<Option<Box<dyn Conn>>> {
        match self.rx.recv_timeout(POLL_INTERVAL) {
            Ok(conn) => Ok(Some(Box::new(conn))),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(io::ErrorKind::BrokenPipe.into()),
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Drop for LoopbackListener {
    fn drop(&mut self) {
        // Deregister so later connects fail with ConnectionRefused and
        // queued-but-unaccepted dials drop cleanly. Recover a poisoned
        // registry: one connection thread panicking must not cascade
        // into every later bind/dial (the registry is a plain map —
        // no invariant spans the panic).
        self.registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.addr);
        while let Ok(_conn) = self.rx.try_recv() {}
        debug_assert!(matches!(
            self.rx.try_recv(),
            Err(TryRecvError::Empty | TryRecvError::Disconnected)
        ));
    }
}

impl Transport for LoopbackTransport {
    fn name(&self) -> &'static str {
        "loopback"
    }

    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>> {
        // See `LoopbackListener::drop` for why the lock is recovered.
        let mut reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        if reg.contains_key(addr) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("loopback address {addr:?} already bound"),
            ));
        }
        let (tx, rx) = mpsc::channel();
        reg.insert(addr.to_string(), tx);
        Ok(Box::new(LoopbackListener {
            rx,
            addr: addr.to_string(),
            registry: Arc::clone(&self.registry),
        }))
    }

    fn connect(&self, addr: &str) -> io::Result<Box<dyn Conn>> {
        let accept_tx = {
            // See `LoopbackListener::drop` for why the lock is
            // recovered.
            let reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
            reg.get(addr).cloned().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("no loopback listener at {addr:?}"),
                )
            })?
        };
        let (c2s_tx, c2s_rx) = mpsc::channel();
        let (s2c_tx, s2c_rx) = mpsc::channel();
        let server_side = LoopbackConn {
            tx: s2c_tx,
            rx: c2s_rx,
            buf: FrameBuffer::new(),
            peer: format!("loopback-client->{addr}"),
        };
        accept_tx.send(server_side).map_err(|_| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("loopback listener at {addr:?} is gone"),
            )
        })?;
        Ok(Box::new(LoopbackConn {
            tx: c2s_tx,
            rx: s2c_rx,
            buf: FrameBuffer::new(),
            peer: format!("loopback:{addr}"),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_core::NetMsg;

    fn echo_once(transport: &dyn Transport, addr: &str) {
        let mut listener = transport.listen(addr).unwrap();
        let dial_addr = listener.local_addr();
        let t = std::thread::spawn(move || {
            let mut conn = loop {
                if let Some(c) = listener.accept().unwrap() {
                    break c;
                }
            };
            let frame = loop {
                match conn.recv() {
                    Ok(f) => break f,
                    Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
                    Err(e) => panic!("server recv: {e}"),
                }
            };
            conn.send(&frame).unwrap();
        });
        let transport_conn = transport.connect(&dial_addr);
        let mut conn = transport_conn.unwrap();
        let msg = NetMsg::SqlReq {
            sql: "SELECT * FROM t WHERE k BETWEEN 1 AND 5".into(),
        };
        conn.send(&msg.to_frame()).unwrap();
        let back = loop {
            match conn.recv() {
                Ok(f) => break f,
                Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
                Err(e) => panic!("client recv: {e}"),
            }
        };
        assert_eq!(NetMsg::from_frame(&back).unwrap(), msg);
        t.join().unwrap();
    }

    #[test]
    fn loopback_echo_roundtrip() {
        echo_once(&LoopbackTransport::new(), "edge-0");
    }

    #[test]
    fn tcp_echo_roundtrip() {
        echo_once(&TcpTransport, "127.0.0.1:0");
    }

    #[test]
    fn loopback_connect_without_listener_refuses() {
        let t = LoopbackTransport::new();
        match t.connect("nobody") {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused),
            Ok(_) => panic!("connect to unbound address must refuse"),
        }
    }
}
