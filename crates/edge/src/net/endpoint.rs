//! Transport-agnostic endpoint handlers.
//!
//! An endpoint turns one inbound frame into the frames to send back —
//! no sockets, no threads. The connection loop in
//! [`crate::net::server`] drives it; tests can drive it directly with
//! in-memory frames. Per-connection protocol state (today: the
//! subscription cursor) lives in [`ConnState`], owned by the
//! connection, not the endpoint — endpoints themselves are `&self` and
//! shared across every connection thread.
//!
//! [`EdgeEndpoint`] is the untrusted serving side: range/SQL/compact
//! queries plus the push-replication path (deltas, batches, skips,
//! stamps) a central or relay streams into it. [`CentralEndpoint`] is
//! the trusted side: provisioning bundles, heartbeat stamps, and the
//! subscribe-from-cursor delta stream with an explicit **bounded
//! backlog** — a subscriber that falls more than `max_backlog` entries
//! behind is disconnected with [`ErrorCode::Lagging`] instead of
//! growing an unbounded queue, and must re-bootstrap from a bundle.

use crate::central::{CentralServer, LogEntry};
use crate::edge_server::EdgeServer;
use crate::service::EdgeError;
use std::sync::{Arc, Mutex};
use vbx_core::scheme::{AuthScheme, VbScheme};
use vbx_core::{
    decode_delta_batch, decode_signed_delta, decode_txn_batch, encode_delta_batch, encode_response,
    encode_signed_delta, encode_txn_batch, ErrorCode, Frame, NetMsg,
};
use vbx_crypto::SigVerifier;

/// Hard cap on entries one poll may return, whatever the client asks.
const MAX_POLL_ENTRIES: usize = 1024;

/// Per-connection protocol state, owned by the connection loop.
#[derive(Clone, Debug, Default)]
pub struct ConnState {
    /// The subscription cursor: next delta sequence this connection
    /// wants. `None` until a successful `Subscribe` (and again after a
    /// lag disconnect).
    pub cursor: Option<u64>,
}

/// A request handler: one inbound frame in, response frames out.
pub trait FrameEndpoint: Send + Sync {
    /// Serve one frame. Never panics on hostile input — protocol
    /// violations come back as [`NetMsg::Error`] frames.
    fn serve_frame(&self, state: &mut ConnState, frame: &Frame) -> Vec<Frame>;
}

fn err_frame(code: ErrorCode, message: impl Into<String>) -> Vec<Frame> {
    vec![NetMsg::Error {
        code,
        message: message.into(),
    }
    .to_frame()]
}

fn edge_err_frame<E: std::fmt::Debug>(e: &EdgeError<E>) -> Vec<Frame> {
    match e {
        EdgeError::UnknownTable(t) => err_frame(ErrorCode::UnknownTable, format!("table {t:?}")),
        EdgeError::OutOfOrder { expected, got } => err_frame(
            ErrorCode::OutOfOrder,
            format!("expected seq {expected}, got {got}"),
        ),
        EdgeError::Scheme(e) => err_frame(ErrorCode::Scheme, format!("{e:?}")),
    }
}

// ---------------------------------------------------------------------
// Edge
// ---------------------------------------------------------------------

/// The edge server behind a frame interface: untrusted query serving
/// plus the push side of replication.
pub struct EdgeEndpoint<const L: usize> {
    server: Arc<EdgeServer<VbScheme<L>>>,
    aggregator: Option<Arc<dyn SigVerifier>>,
}

impl<const L: usize> EdgeEndpoint<L> {
    /// Wrap a (shared) edge server.
    pub fn new(server: Arc<EdgeServer<VbScheme<L>>>) -> Self {
        Self {
            server,
            aggregator: None,
        }
    }

    /// Configure the verifier used to condense signatures when a
    /// compact request asks for aggregation.
    pub fn with_aggregator(mut self, aggregator: Arc<dyn SigVerifier>) -> Self {
        self.aggregator = Some(aggregator);
        self
    }

    /// The served edge (e.g. to flip tamper modes in a conformance
    /// script).
    pub fn server(&self) -> &Arc<EdgeServer<VbScheme<L>>> {
        &self.server
    }
}

impl<const L: usize> FrameEndpoint for EdgeEndpoint<L> {
    fn serve_frame(&self, _state: &mut ConnState, frame: &Frame) -> Vec<Frame> {
        let msg = match NetMsg::from_frame(frame) {
            Ok(msg) => msg,
            Err(e) => return err_frame(ErrorCode::BadRequest, format!("{e:?}")),
        };
        match msg {
            NetMsg::Ping => vec![NetMsg::Pong {
                applied_seq: self.server.applied_seq(),
            }
            .to_frame()],
            NetMsg::RangeReq { table, query } => match self.server.query_range(&table, &query) {
                Ok(resp) => vec![NetMsg::QueryResp(encode_response(&resp)).to_frame()],
                Err(e) => edge_err_frame(&e),
            },
            NetMsg::SqlReq { sql } => match self.server.query_sql(&sql) {
                Ok((_plan, resp)) => vec![NetMsg::QueryResp(encode_response(&resp)).to_frame()],
                Err(e) => err_frame(ErrorCode::BadRequest, format!("{e:?}")),
            },
            NetMsg::CompactReq {
                table,
                queries,
                aggregate,
            } => {
                let agg = if aggregate {
                    self.aggregator.as_deref()
                } else {
                    None
                };
                match self.server.query_compact(&table, &queries, agg) {
                    Ok(bytes) => vec![NetMsg::CompactResp(bytes).to_frame()],
                    Err(e) => edge_err_frame(&e),
                }
            }
            NetMsg::DeltaOp(bytes) => {
                let acc = &self.server.scheme().acc;
                match decode_signed_delta(&bytes, acc) {
                    Ok(delta) => match self.server.apply_delta(&delta) {
                        Ok(()) => vec![self.ack()],
                        Err(e) => edge_err_frame(&e),
                    },
                    Err(e) => err_frame(ErrorCode::BadRequest, format!("{e:?}")),
                }
            }
            NetMsg::DeltaBatch(bytes) => {
                let acc = &self.server.scheme().acc;
                match decode_delta_batch(&bytes, acc) {
                    Ok(batch) => match self.server.apply_delta_batch(&batch) {
                        Ok(()) => vec![self.ack()],
                        Err(e) => edge_err_frame(&e),
                    },
                    Err(e) => err_frame(ErrorCode::BadRequest, format!("{e:?}")),
                }
            }
            NetMsg::DeltaTxn(bytes) => {
                let acc = &self.server.scheme().acc;
                match decode_txn_batch(&bytes, acc) {
                    Ok(txn) => match self.server.apply_txn(&txn) {
                        Ok(()) => vec![self.ack()],
                        Err(e) => edge_err_frame(&e),
                    },
                    Err(e) => err_frame(ErrorCode::BadRequest, format!("{e:?}")),
                }
            }
            NetMsg::SkipRange { start_seq, count } => {
                match self.server.service().skip_deltas(start_seq, count) {
                    Ok(()) => vec![self.ack()],
                    Err(e) => edge_err_frame(&e),
                }
            }
            NetMsg::Stamp { stamp } => {
                if let Some(stamp) = stamp {
                    self.server.service().set_freshness_stamp(stamp);
                }
                vec![self.ack()]
            }
            NetMsg::HeartbeatReq => {
                // The edge relays the owner-signed stamp it last saw; it
                // cannot mint one.
                vec![NetMsg::Stamp {
                    stamp: self.server.service().current_freshness().stamp,
                }
                .to_frame()]
            }
            _ => err_frame(
                ErrorCode::BadRequest,
                format!("{:?} is not an edge request", frame.kind),
            ),
        }
    }
}

impl<const L: usize> EdgeEndpoint<L> {
    fn ack(&self) -> Frame {
        NetMsg::Ack {
            applied_seq: self.server.applied_seq(),
        }
        .to_frame()
    }
}

// ---------------------------------------------------------------------
// Central
// ---------------------------------------------------------------------

/// Default bound on a subscriber's backlog (entries between its cursor
/// and the log head) before it is disconnected as lagging.
pub const DEFAULT_MAX_BACKLOG: u64 = 4096;

/// The trusted central behind a frame interface: bundles, heartbeats,
/// and the cursor-based subscription stream.
pub struct CentralEndpoint<const L: usize> {
    central: Mutex<CentralServer<VbScheme<L>>>,
    max_backlog: u64,
}

impl<const L: usize> CentralEndpoint<L> {
    /// Wrap a central server (the endpoint serializes access — the
    /// central's write path is `&mut`).
    pub fn new(central: CentralServer<VbScheme<L>>) -> Self {
        Self {
            central: Mutex::new(central),
            max_backlog: DEFAULT_MAX_BACKLOG,
        }
    }

    /// Override the lag bound after which a subscriber is disconnected.
    pub fn with_max_backlog(mut self, max_backlog: u64) -> Self {
        self.max_backlog = max_backlog.max(1);
        self
    }

    /// Run `f` against the wrapped central (commits in tests/benches
    /// while connections are being served).
    pub fn with_central<R>(&self, f: impl FnOnce(&mut CentralServer<VbScheme<L>>) -> R) -> R {
        // Recover a poisoned lock: a connection thread that panicked
        // mid-frame must not cascade panics across every other
        // connection (the central's write path keeps its own
        // atomicity — a failed commit rolls back before unwinding).
        f(&mut self.central.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<const L: usize> FrameEndpoint for CentralEndpoint<L> {
    fn serve_frame(&self, state: &mut ConnState, frame: &Frame) -> Vec<Frame> {
        let msg = match NetMsg::from_frame(frame) {
            Ok(msg) => msg,
            Err(e) => return err_frame(ErrorCode::BadRequest, format!("{e:?}")),
        };
        // See `with_central` for why the lock is recovered, not
        // propagated.
        let mut central = self.central.lock().unwrap_or_else(|e| e.into_inner());
        match msg {
            NetMsg::Ping => {
                let head = central.delta_log().next_seq();
                vec![NetMsg::Pong {
                    applied_seq: head.saturating_sub(1),
                }
                .to_frame()]
            }
            NetMsg::BundleReq => {
                vec![NetMsg::BundleResp(central.bundle().to_bytes()).to_frame()]
            }
            NetMsg::HeartbeatReq => vec![NetMsg::Stamp {
                stamp: Some(central.heartbeat()),
            }
            .to_frame()],
            NetMsg::Subscribe { cursor } => {
                let log = central.delta_log();
                let (head, oldest) = (log.next_seq(), log.oldest_seq());
                if cursor < oldest {
                    state.cursor = None;
                    return err_frame(
                        ErrorCode::Lagging,
                        format!("cursor {cursor} below retention horizon {oldest}; re-bundle"),
                    );
                }
                state.cursor = Some(cursor);
                vec![NetMsg::SubAck { head, oldest }.to_frame()]
            }
            NetMsg::PollDeltas { max } => {
                let Some(cursor) = state.cursor else {
                    return err_frame(ErrorCode::BadRequest, "poll before subscribe");
                };
                let log = central.delta_log();
                let (head, oldest) = (log.next_seq(), log.oldest_seq());
                let backlog = head.saturating_sub(cursor);
                if backlog > self.max_backlog {
                    // The bounded send queue: rather than buffering an
                    // unbounded fan-out for a slow subscriber, drop the
                    // subscription with an explicit lag error.
                    state.cursor = None;
                    return err_frame(
                        ErrorCode::Lagging,
                        format!(
                            "subscriber {backlog} entries behind exceeds bound {}; re-subscribe",
                            self.max_backlog
                        ),
                    );
                }
                let entries = match log.collect_since(cursor) {
                    Ok(entries) => entries,
                    Err(e) => {
                        state.cursor = None;
                        return err_frame(ErrorCode::Lagging, format!("{e:?}"));
                    }
                };
                let budget = (max as usize).clamp(1, MAX_POLL_ENTRIES);
                let mut frames = Vec::new();
                let mut next = cursor;
                for entry in entries.into_iter().take(budget) {
                    next = entry.end_seq();
                    frames.push(match entry {
                        LogEntry::Op(delta) => {
                            NetMsg::DeltaOp(encode_signed_delta(&delta)).to_frame()
                        }
                        LogEntry::Batch(batch) => {
                            NetMsg::DeltaBatch(encode_delta_batch(batch.as_ref())).to_frame()
                        }
                        LogEntry::Txn(txn) => {
                            NetMsg::DeltaTxn(encode_txn_batch(txn.as_ref())).to_frame()
                        }
                    });
                }
                state.cursor = Some(next);
                // A SubAck trailer marks the poll complete and reports
                // the log shape, so an empty poll still answers.
                frames.push(NetMsg::SubAck { head, oldest }.to_frame());
                frames
            }
            NetMsg::ChunkRequest { table, index } => {
                let Some(store) = central.store(&table) else {
                    return err_frame(ErrorCode::UnknownTable, format!("table {table:?}"));
                };
                let total = central.scheme().sync_chunk_count(store);
                if (index as usize) >= total {
                    // Past the end (or a scheme without sync support,
                    // total 0): report the stream shape and the log
                    // head to subscribe from.
                    return vec![NetMsg::RestoreDone {
                        chunks: total as u32,
                        head: central.delta_log().next_seq(),
                    }
                    .to_frame()];
                }
                match central.scheme().encode_sync_chunk(store, index as usize) {
                    Ok(bytes) => vec![NetMsg::Chunk(bytes).to_frame()],
                    Err(e) => err_frame(ErrorCode::Internal, format!("{e}")),
                }
            }
            _ => err_frame(
                ErrorCode::BadRequest,
                format!("{:?} is not a central request", frame.kind),
            ),
        }
    }
}
