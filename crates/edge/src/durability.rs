//! Durable central server: write-ahead logging, checkpoints, and crash
//! recovery.
//!
//! The central server is the single writer of the whole system — if its
//! in-memory state dies with the process, every signed delta it acked
//! is gone and the edges serve a history no one can extend. This module
//! makes the central recoverable:
//!
//! * **WAL** ([`vbx_storage::wal`]): every committed update appends one
//!   checksummed record — a whole group-commit batch is *one* record
//!   and *one* fsync, the durability analogue of the batched signing
//!   sweep — and the record is synced **before** the commit returns
//!   (append-before-ack). Heartbeats are logged too, so a restart can
//!   never rewind the logical clock below a freshness stamp already
//!   handed out.
//! * **Checkpoints** ([`vbx_storage::checkpoint`]): the full
//!   recoverable state — authenticated stores, catalog, view
//!   definitions, delta-log tail, stamp history, clock — serialised
//!   through [`SlottedPage`](vbx_storage::SlottedPage)s into one
//!   CRC-protected file, written atomically as `ckpt-<next_seq>`. The
//!   previous checkpoint is kept until the new one is durable, so a
//!   torn checkpoint write falls back instead of losing everything.
//! * **Recovery** ([`CentralServer::recover`]): load the newest valid
//!   checkpoint, replay the WAL suffix (records at or past the
//!   checkpoint's position) through the scheme's deterministic
//!   `apply_delta` path, and truncate any torn tail — by
//!   append-before-ack a torn record was never acked, so dropping it
//!   loses nothing a caller was promised. Recovered state is
//!   byte-identical to the never-crashed server's
//!   ([`CentralServer::encode_state`]), which the crash-matrix tests
//!   assert across every fault-injection point of
//!   [`FailpointFs`](vbx_storage::FailpointFs).
//!
//! Group-commit ops still *queued* (enqueued but not yet flushed into a
//! batch) are intentionally not WAL-protected: an op is durable exactly
//! when its commit is acked, and `enqueue_update` acks only the flushed
//! batches.

use crate::central::{CentralError, CentralServer, DeltaLog, LogEntry};
use crate::locks::LockManager;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use vbx_core::durable::{decode_stamp, encode_stamp};
use vbx_core::scheme::{AuthScheme, DeltaBatch, SignedDelta, TxnBatch, UpdateOp};
use vbx_core::{
    decode_wal_record, encode_wal_commit_batch, encode_wal_commit_op, encode_wal_commit_txn,
    encode_wal_heartbeat, CoreError, DurableScheme, FreshnessStamp, WalRecord,
};
use vbx_crypto::{KeyRegistry, Signer};
use vbx_query::JoinViewDef;
use vbx_storage::wal::WAL_FILE;
use vbx_storage::{
    Catalog, CheckpointBuilder, CheckpointReader, StorageError, Table, Vfs, Wal, WalTail,
};

/// Checkpoint file name prefix; the suffix is the zero-padded delta-log
/// `next_seq` the checkpoint captures, so lexicographic order equals
/// recovery order.
const CKPT_PREFIX: &str = "ckpt-";

/// Captured [`vbx_core::encode_wal_commit_op`] for the server's scheme.
type EncodeOpFn<S> =
    fn(&S, u64, Option<&FreshnessStamp>, &SignedDelta<<S as AuthScheme>::Delta>) -> Vec<u8>;

/// Knobs of the durability subsystem
/// ([`CentralServer::with_durability`]).
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// Write an automatic checkpoint after this many WAL-logged ops
    /// (`0` = only on DDL and explicit [`CentralServer::checkpoint`]
    /// calls). Checkpoints bound recovery replay time; between them the
    /// WAL alone carries the commits.
    pub checkpoint_every: u64,
    /// Keep WAL records after a checkpoint instead of resetting the
    /// file. Recovery still skips records the checkpoint already
    /// covers; the retained prefix lets tests replay the *full* history
    /// and assert checkpoint+suffix ≡ full-WAL replay.
    pub retain_wal: bool,
    /// Page size for checkpoint serialisation (≥ 64).
    pub page_size: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 1024,
            retain_wal: false,
            page_size: vbx_storage::checkpoint::DEFAULT_PAGE_SIZE,
        }
    }
}

/// The per-server durability state: the WAL append handle, checkpoint
/// bookkeeping, and the scheme's encoding hooks captured as plain `fn`
/// pointers (so the engine lives inside the scheme-generic
/// [`CentralServer`] without widening its `AuthScheme` bound — only
/// [`with_durability`](CentralServer::with_durability) and
/// [`recover`](CentralServer::recover) require [`DurableScheme`]).
pub(crate) struct DurabilityEngine<S: AuthScheme> {
    vfs: Arc<dyn Vfs>,
    wal: Wal,
    config: DurabilityConfig,
    /// Ops WAL-logged since the last checkpoint.
    ops_since_checkpoint: u64,
    /// Newest durable checkpoint file, kept until its successor lands.
    checkpoint_file: Option<String>,
    /// First durability failure: the in-memory state may be ahead of
    /// disk, so every later commit fails with this error until the
    /// server is replaced via recovery.
    failed: Option<StorageError>,
    encode_op: EncodeOpFn<S>,
    encode_batch: fn(&S, u64, &DeltaBatch<S::Delta>) -> Vec<u8>,
    encode_txn: fn(&S, u64, &TxnBatch<S::Delta>) -> Vec<u8>,
    build_image: fn(&CentralServer<S>, usize) -> Vec<u8>,
}

impl<S: AuthScheme> DurabilityEngine<S> {
    fn check(&self) -> Result<(), StorageError> {
        match &self.failed {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Count `ops` newly logged ops and checkpoint if the policy says
    /// the WAL has grown enough.
    fn note_commit(&mut self, central: &CentralServer<S>, ops: u64) -> Result<(), StorageError> {
        self.ops_since_checkpoint += ops;
        if self.config.checkpoint_every > 0
            && self.ops_since_checkpoint >= self.config.checkpoint_every
        {
            self.write_checkpoint(central)?;
        }
        Ok(())
    }

    /// Serialise the full state and land it atomically as
    /// `ckpt-<next_seq>`. Only after the new file is durable is the
    /// previous checkpoint removed and (unless `retain_wal`) the WAL
    /// reset — a crash anywhere in between leaves either the old
    /// checkpoint + full WAL or the new checkpoint, never neither.
    fn write_checkpoint(&mut self, central: &CentralServer<S>) -> Result<(), StorageError> {
        let image = (self.build_image)(central, self.config.page_size);
        let name = format!("{CKPT_PREFIX}{:020}", central.delta_log().next_seq());
        self.vfs.write_atomic(&name, &image)?;
        if let Some(old) = self.checkpoint_file.take() {
            if old != name {
                self.vfs.remove(&old)?;
            }
        }
        self.checkpoint_file = Some(name);
        self.ops_since_checkpoint = 0;
        if !self.config.retain_wal {
            self.wal.reset()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Commit-path hooks (called from central.rs; no-ops without durability)
// ---------------------------------------------------------------------

impl<S: AuthScheme> CentralServer<S> {
    /// WAL-log one committed op (append + fsync) before the commit is
    /// acked. A failure poisons the engine and surfaces as
    /// [`CentralError::Durability`].
    pub(crate) fn durability_commit_op(
        &mut self,
        stamp: Option<&FreshnessStamp>,
        delta: &SignedDelta<S::Delta>,
    ) -> Result<(), CentralError<S::Error>> {
        let Some(mut eng) = self.durability.take() else {
            return Ok(());
        };
        let result = (|| {
            eng.check()?;
            let bytes = (eng.encode_op)(&self.scheme, self.clock, stamp, delta);
            eng.wal.append_sync(&bytes)?;
            eng.note_commit(self, 1)
        })();
        if let Err(e) = &result {
            eng.failed = Some(e.clone());
        }
        self.durability = Some(eng);
        result.map_err(CentralError::Durability)
    }

    /// WAL-log one committed group-commit batch: one record, one fsync
    /// for the whole sequence range.
    pub(crate) fn durability_commit_batch(
        &mut self,
        batch: &DeltaBatch<S::Delta>,
    ) -> Result<(), CentralError<S::Error>> {
        let Some(mut eng) = self.durability.take() else {
            return Ok(());
        };
        let result = (|| {
            eng.check()?;
            let bytes = (eng.encode_batch)(&self.scheme, self.clock, batch);
            eng.wal.append_sync(&bytes)?;
            eng.note_commit(self, batch.len() as u64)
        })();
        if let Err(e) = &result {
            eng.failed = Some(e.clone());
        }
        self.durability = Some(eng);
        result.map_err(CentralError::Durability)
    }

    /// WAL-log one committed multi-table transaction: **one** record,
    /// one fsync for every table's sweep — the all-or-nothing unit
    /// recovery rolls back as a whole when its append tore.
    pub(crate) fn durability_commit_txn(
        &mut self,
        txn: &TxnBatch<S::Delta>,
    ) -> Result<(), CentralError<S::Error>> {
        let Some(mut eng) = self.durability.take() else {
            return Ok(());
        };
        let result = (|| {
            eng.check()?;
            let bytes = (eng.encode_txn)(&self.scheme, self.clock, txn);
            eng.wal.append_sync(&bytes)?;
            eng.note_commit(self, txn.ops())
        })();
        if let Err(e) = &result {
            eng.failed = Some(e.clone());
        }
        self.durability = Some(eng);
        result.map_err(CentralError::Durability)
    }

    /// WAL-log a heartbeat's clock advance + stamp. `heartbeat()` keeps
    /// its infallible signature, so a failure here only poisons the
    /// engine — the *next* commit fails instead of acking state that a
    /// crash could rewind below the handed-out stamp.
    pub(crate) fn durability_heartbeat(&mut self, stamp: &FreshnessStamp) {
        let Some(mut eng) = self.durability.take() else {
            return;
        };
        if eng.failed.is_none() {
            let bytes = encode_wal_heartbeat(self.clock, stamp);
            if let Err(e) = eng.wal.append_sync(&bytes) {
                eng.failed = Some(e);
            }
        }
        self.durability = Some(eng);
    }

    /// DDL (create table / materialise view / rotate key) changes state
    /// the WAL's update records cannot express — force a checkpoint so
    /// the change is durable immediately. Failures poison the engine.
    pub(crate) fn durability_mark_ddl(&mut self) {
        let Some(mut eng) = self.durability.take() else {
            return;
        };
        if eng.failed.is_none() {
            if let Err(e) = eng.write_checkpoint(self) {
                eng.failed = Some(e);
            }
        }
        self.durability = Some(eng);
    }
}

// ---------------------------------------------------------------------
// Public durable surface (DurableScheme-bounded)
// ---------------------------------------------------------------------

fn wire_err<E>(e: CoreError) -> CentralError<E> {
    CentralError::Durability(StorageError::Corrupt(format!("durable decode: {e}")))
}

fn corrupt<E>(m: impl Into<String>) -> CentralError<E> {
    CentralError::Durability(StorageError::Corrupt(m.into()))
}

impl<S: DurableScheme> CentralServer<S> {
    /// Enable durability: open (or adopt) the WAL inside `vfs` and
    /// write a baseline checkpoint of the current state, so recovery
    /// always has a snapshot to start from. From here on every commit
    /// appends + fsyncs a WAL record before it is acked.
    pub fn with_durability(
        mut self,
        vfs: Arc<dyn Vfs>,
        config: DurabilityConfig,
    ) -> Result<Self, StorageError> {
        let wal = Wal::open(vfs.clone(), WAL_FILE)?;
        let mut eng = DurabilityEngine {
            vfs,
            wal,
            config,
            ops_since_checkpoint: 0,
            checkpoint_file: None,
            failed: None,
            encode_op: encode_wal_commit_op::<S>,
            encode_batch: encode_wal_commit_batch::<S>,
            encode_txn: encode_wal_commit_txn::<S>,
            build_image: checkpoint_image::<S>,
        };
        eng.write_checkpoint(&self)?;
        self.durability = Some(eng);
        Ok(self)
    }

    /// True when a durability engine is attached and healthy.
    pub fn durable(&self) -> bool {
        self.durability
            .as_ref()
            .is_some_and(|eng| eng.failed.is_none())
    }

    /// Force a checkpoint now (benchmarks / shutdown). No-op without
    /// durability.
    pub fn checkpoint(&mut self) -> Result<(), CentralError<S::Error>> {
        let Some(mut eng) = self.durability.take() else {
            return Ok(());
        };
        let result = eng.check().and_then(|()| eng.write_checkpoint(self));
        if let Err(e) = &result {
            eng.failed = Some(e.clone());
        }
        self.durability = Some(eng);
        result.map_err(CentralError::Durability)
    }

    /// Deterministic byte fingerprint of the full recoverable state —
    /// exactly the checkpoint image. Two servers with equal
    /// `encode_state()` hold byte-identical stores, catalog, views,
    /// delta-log tail, stamp history, and clock; the crash-matrix tests
    /// pin recovery on this.
    pub fn encode_state(&self) -> Vec<u8> {
        checkpoint_image(self, vbx_storage::checkpoint::DEFAULT_PAGE_SIZE)
    }

    /// Recover a central server from `vfs`: load the newest valid
    /// checkpoint (a torn newest falls back to its kept predecessor),
    /// replay the WAL records past the checkpoint's position through
    /// the scheme's deterministic replica path, truncate any torn WAL
    /// tail, and resume logging. `signer` must hold the same key
    /// (version) the state was signed under; the key registry is
    /// re-published from it.
    pub fn recover(
        scheme: S,
        signer: Arc<dyn Signer>,
        vfs: Arc<dyn Vfs>,
        config: DurabilityConfig,
    ) -> Result<Self, CentralError<S::Error>> {
        // -- 1. newest valid checkpoint (invalid ones are removed) --
        let mut ckpts: Vec<String> = vfs
            .list()
            .map_err(CentralError::Durability)?
            .into_iter()
            .filter(|n| n.starts_with(CKPT_PREFIX))
            .collect();
        ckpts.sort();
        let mut chosen = None;
        for name in ckpts.iter().rev() {
            let bytes = vfs
                .read(name)
                .map_err(CentralError::Durability)?
                .unwrap_or_default();
            match CheckpointReader::parse(&bytes) {
                Ok(reader) => {
                    chosen = Some((name.clone(), reader));
                    break;
                }
                Err(_) => {
                    // Torn checkpoint write: fall back to the previous
                    // one (kept durable until its successor landed).
                    vfs.remove(name).map_err(CentralError::Durability)?;
                }
            }
        }
        let Some((ckpt_name, reader)) = chosen else {
            return Err(corrupt("no valid checkpoint found"));
        };
        let mut server = restore_from_checkpoint(scheme, signer, &reader)?;

        // -- 2. replay the WAL suffix --
        let wal_bytes = vfs
            .read(WAL_FILE)
            .map_err(CentralError::Durability)?
            .unwrap_or_default();
        let scan = vbx_storage::wal::scan_bytes(&wal_bytes).map_err(CentralError::Durability)?;
        let mut replayed = 0u64;
        for record in &scan.records {
            replayed += server.replay_wal_record(record)?;
        }
        if let WalTail::Torn { offset, .. } = &scan.tail {
            // Never-acked torn tail: drop it durably so future appends
            // land on a valid prefix.
            vfs.write_atomic(WAL_FILE, &wal_bytes[..*offset])
                .map_err(CentralError::Durability)?;
        }

        // -- 3. resume logging --
        let wal = Wal::open(vfs.clone(), WAL_FILE).map_err(CentralError::Durability)?;
        server.durability = Some(DurabilityEngine {
            vfs,
            wal,
            config,
            ops_since_checkpoint: replayed,
            checkpoint_file: Some(ckpt_name),
            failed: None,
            encode_op: encode_wal_commit_op::<S>,
            encode_batch: encode_wal_commit_batch::<S>,
            encode_txn: encode_wal_commit_txn::<S>,
            build_image: checkpoint_image::<S>,
        });
        Ok(server)
    }

    /// Apply one decoded WAL record, skipping records the checkpoint
    /// already covers. Returns the number of ops applied.
    fn replay_wal_record(&mut self, bytes: &[u8]) -> Result<u64, CentralError<S::Error>> {
        let record = decode_wal_record(&self.scheme, bytes).map_err(wire_err)?;
        match record {
            WalRecord::CommitOp {
                clock,
                stamp,
                delta,
            } => {
                let next = self.log.next_seq();
                if delta.seq < next {
                    return Ok(0); // covered by the checkpoint
                }
                if delta.seq > next {
                    return Err(corrupt(format!(
                        "WAL gap: record at seq {} but log expects {next}",
                        delta.seq
                    )));
                }
                self.replay_op(&delta)?;
                self.log.push(delta).map_err(|e| corrupt(e.to_string()))?;
                self.clock = self.clock.max(clock);
                if let Some(stamp) = stamp {
                    self.stamps.insert(stamp.seq, stamp);
                    self.prune_stamps();
                }
                Ok(1)
            }
            WalRecord::CommitBatch { clock, batch } => {
                let next = self.log.next_seq();
                if batch.end_seq() <= next {
                    return Ok(0);
                }
                if batch.start_seq != next {
                    return Err(corrupt(format!(
                        "WAL gap: batch at seq {} but log expects {next}",
                        batch.start_seq
                    )));
                }
                self.replay_ops(&batch.table, &batch.ops, &batch.payloads, batch.key_version)?;
                self.clock = self.clock.max(clock);
                if let Some(stamp) = &batch.stamp {
                    self.stamps.insert(stamp.seq, stamp.clone());
                }
                let ops = batch.len() as u64;
                self.log
                    .push_batch(batch)
                    .map_err(|e| corrupt(e.to_string()))?;
                self.prune_stamps();
                Ok(ops)
            }
            WalRecord::CommitTxn { clock, txn } => {
                let next = self.log.next_seq();
                if txn.end_seq() <= next {
                    return Ok(0);
                }
                if txn.start_seq() != next {
                    return Err(corrupt(format!(
                        "WAL gap: txn at seq {} but log expects {next}",
                        txn.start_seq()
                    )));
                }
                // All-or-nothing at the record level: a torn CommitTxn
                // append fails its CRC and lands in the torn tail — the
                // *whole* txn rolls back, never a table subset. Here the
                // record is intact, so every section replays.
                for section in &txn.sections {
                    self.replay_ops(
                        &section.table,
                        &section.ops,
                        &section.payloads,
                        section.key_version,
                    )?;
                }
                self.clock = self.clock.max(clock);
                if let Some(stamp) = &txn.stamp {
                    self.stamps.insert(stamp.seq, stamp.clone());
                }
                let ops = txn.ops();
                self.log.push_txn(txn).map_err(|e| corrupt(e.to_string()))?;
                self.prune_stamps();
                Ok(ops)
            }
            WalRecord::Heartbeat { clock, stamp } => {
                self.clock = self.clock.max(clock);
                self.stamps.insert(stamp.seq, stamp);
                self.prune_stamps();
                Ok(0)
            }
        }
    }

    /// Replay one single-op commit through the scheme's deterministic
    /// replica path (`apply_delta` — single-op payloads are a per-site
    /// digest stream, not the batch sweep format), then mirror the op
    /// into the catalog and refresh affected views.
    fn replay_op(&mut self, delta: &SignedDelta<S::Delta>) -> Result<(), CentralError<S::Error>> {
        let store = self
            .stores
            .get_mut(&delta.table)
            .ok_or_else(|| CentralError::UnknownTable(delta.table.clone()))?;
        self.scheme
            .apply_delta(store, &delta.op, &delta.payload, delta.key_version)
            .map_err(CentralError::Scheme)?;
        self.mirror_ops(&delta.table.clone(), std::slice::from_ref(&delta.op))
    }

    /// Replay a group-committed batch through the scheme's deterministic
    /// replica path (`apply_delta_batch`), mirror its ops into the
    /// catalog, and refresh affected views — the same side effects the
    /// original commit had, minus locking (recovery is single-threaded)
    /// and minus re-signing (payloads carry the original signatures).
    fn replay_ops(
        &mut self,
        table: &str,
        ops: &[UpdateOp],
        payloads: &[S::Delta],
        key_version: u32,
    ) -> Result<(), CentralError<S::Error>> {
        let store = self
            .stores
            .get_mut(table)
            .ok_or_else(|| CentralError::UnknownTable(table.to_string()))?;
        self.scheme
            .apply_delta_batch(store, ops, payloads, key_version)
            .map_err(CentralError::Scheme)?;
        self.mirror_ops(table, ops)
    }

    /// Mirror replayed ops into the plain-tuple catalog and rebuild any
    /// join views over the touched table.
    fn mirror_ops(&mut self, table: &str, ops: &[UpdateOp]) -> Result<(), CentralError<S::Error>> {
        let cat = self
            .catalog
            .get_mut(table)
            .ok_or_else(|| CentralError::UnknownTable(table.to_string()))?;
        for op in ops {
            match op {
                UpdateOp::Insert(tuple) => {
                    cat.insert(tuple.clone())?;
                }
                UpdateOp::Delete(key) => {
                    cat.delete(*key)?;
                }
                UpdateOp::DeleteRange(lo, hi) => {
                    let doomed: Vec<u64> = cat.range(*lo, *hi).map(|t| t.key).collect();
                    for k in doomed {
                        cat.delete(k)?;
                    }
                }
            }
        }
        self.refresh_views_for(table)
    }
}

// ---------------------------------------------------------------------
// Checkpoint image codec
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, StorageError> {
    if buf.len() < 4 {
        return Err(StorageError::Corrupt("checkpoint u32 truncated".into()));
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_be_bytes(head.try_into().expect("4 bytes")))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, StorageError> {
    if buf.len() < 8 {
        return Err(StorageError::Corrupt("checkpoint u64 truncated".into()));
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Ok(u64::from_be_bytes(head.try_into().expect("8 bytes")))
}

fn get_bytes<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8], StorageError> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(StorageError::Corrupt("checkpoint bytes truncated".into()));
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    Ok(head)
}

fn get_str(buf: &mut &[u8]) -> Result<String, StorageError> {
    let bytes = get_bytes(buf)?;
    core::str::from_utf8(bytes)
        .map(str::to_string)
        .map_err(|_| StorageError::Corrupt("checkpoint string not UTF-8".into()))
}

/// Serialise the full recoverable state into one checkpoint image.
/// Deterministic: `BTreeMap` iteration orders every section, and all
/// signatures are stored, never re-derived.
fn checkpoint_image<S: DurableScheme>(central: &CentralServer<S>, page_size: usize) -> Vec<u8> {
    let mut builder = CheckpointBuilder::new(page_size);

    let mut meta = Vec::with_capacity(64);
    put_u32(&mut meta, central.signer.key_version());
    meta.push(central.stamp_commits as u8);
    put_u64(&mut meta, central.clock);
    put_u64(&mut meta, central.log.oldest_seq());
    put_u64(&mut meta, central.log.next_seq());
    put_u64(
        &mut meta,
        u64::try_from(central.log.retention()).unwrap_or(u64::MAX),
    );
    builder.add("meta", &meta);

    let mut views = Vec::new();
    put_u32(&mut views, central.views.len() as u32);
    for def in &central.views {
        put_str(&mut views, &def.name);
        put_str(&mut views, &def.left_table);
        put_str(&mut views, &def.right_table);
        put_str(&mut views, &def.left_col);
        put_str(&mut views, &def.right_col);
    }
    builder.add("views", &views);

    let mut catalog = Vec::new();
    put_u32(&mut catalog, central.catalog.len() as u32);
    for table in central.catalog.iter() {
        table.encode_into(&mut catalog);
    }
    builder.add("catalog", &catalog);

    let mut stores = Vec::new();
    put_u32(&mut stores, central.stores.len() as u32);
    for (name, store) in &central.stores {
        put_str(&mut stores, name);
        put_bytes(&mut stores, &central.scheme.encode_store(store));
    }
    builder.add("stores", &stores);

    // Delta-log tail: each entry as a full WAL record (clock 0 — the
    // real clock lives in "meta"), so one codec covers both files.
    let mut log = Vec::new();
    put_u32(&mut log, central.log.entries().count() as u32);
    for entry in central.log.entries() {
        let record = match entry {
            LogEntry::Op(delta) => encode_wal_commit_op(&central.scheme, 0, None, delta),
            LogEntry::Batch(batch) => encode_wal_commit_batch(&central.scheme, 0, batch),
            LogEntry::Txn(txn) => encode_wal_commit_txn(&central.scheme, 0, txn),
        };
        put_bytes(&mut log, &record);
    }
    builder.add("log", &log);

    let mut stamps = Vec::new();
    put_u32(&mut stamps, central.stamps.len() as u32);
    for stamp in central.stamps.values() {
        encode_stamp(&mut stamps, stamp);
    }
    builder.add("stamps", &stamps);

    builder.finish()
}

/// Rebuild a server from a parsed checkpoint (no WAL applied yet).
fn restore_from_checkpoint<S: DurableScheme>(
    scheme: S,
    signer: Arc<dyn Signer>,
    reader: &CheckpointReader,
) -> Result<CentralServer<S>, CentralError<S::Error>> {
    let section = |key: &str| {
        reader
            .get(key)
            .ok_or_else(|| corrupt::<S::Error>(format!("checkpoint missing section {key}")))
    };

    let mut meta = section("meta")?;
    let key_version = get_u32(&mut meta)?;
    if key_version != signer.key_version() {
        return Err(corrupt(format!(
            "checkpoint signed under key version {key_version}, recovering signer has {}",
            signer.key_version()
        )));
    }
    if meta.is_empty() {
        return Err(corrupt("checkpoint meta truncated"));
    }
    let stamp_commits = meta[0] != 0;
    meta = &meta[1..];
    let clock = get_u64(&mut meta)?;
    let log_start = get_u64(&mut meta)?;
    let log_next = get_u64(&mut meta)?;
    let retention = usize::try_from(get_u64(&mut meta)?).unwrap_or(usize::MAX);

    let mut views_buf = section("views")?;
    let n_views = get_u32(&mut views_buf)?;
    let mut views = Vec::with_capacity(n_views as usize);
    for _ in 0..n_views {
        let name = get_str(&mut views_buf)?;
        let left_table = get_str(&mut views_buf)?;
        let right_table = get_str(&mut views_buf)?;
        let left_col = get_str(&mut views_buf)?;
        let right_col = get_str(&mut views_buf)?;
        let def = JoinViewDef::new(&left_table, &right_table, &left_col, &right_col);
        if def.name != name {
            return Err(corrupt(format!(
                "view name mismatch: {name} vs {}",
                def.name
            )));
        }
        views.push(def);
    }

    let mut cat_buf = section("catalog")?;
    let n_tables = get_u32(&mut cat_buf)?;
    let mut catalog = Catalog::new();
    for _ in 0..n_tables {
        catalog.put(Table::decode(&mut cat_buf)?);
    }

    let mut stores_buf = section("stores")?;
    let n_stores = get_u32(&mut stores_buf)?;
    let mut stores = BTreeMap::new();
    for _ in 0..n_stores {
        let name = get_str(&mut stores_buf)?;
        let bytes = get_bytes(&mut stores_buf)?;
        let store = scheme.decode_store(bytes).map_err(wire_err)?;
        stores.insert(name, store);
    }

    let mut log_buf = section("log")?;
    let n_entries = get_u32(&mut log_buf)?;
    let mut entries = VecDeque::with_capacity(n_entries as usize);
    for _ in 0..n_entries {
        let record = get_bytes(&mut log_buf)?;
        match decode_wal_record(&scheme, record).map_err(wire_err)? {
            WalRecord::CommitOp { delta, .. } => entries.push_back(LogEntry::Op(delta)),
            WalRecord::CommitBatch { batch, .. } => {
                entries.push_back(LogEntry::Batch(Arc::new(batch)))
            }
            WalRecord::CommitTxn { txn, .. } => entries.push_back(LogEntry::Txn(Arc::new(txn))),
            WalRecord::Heartbeat { .. } => {
                return Err(corrupt("heartbeat record in checkpoint log section"))
            }
        }
    }
    let log = DeltaLog::from_parts(entries, log_start, retention);
    if log.next_seq() != log_next {
        return Err(corrupt(format!(
            "checkpoint log tail ends at seq {} but meta recorded {log_next}",
            log.next_seq()
        )));
    }

    let mut stamps_buf = section("stamps")?;
    let n_stamps = get_u32(&mut stamps_buf)?;
    let mut stamps = BTreeMap::new();
    for _ in 0..n_stamps {
        let stamp = decode_stamp(&mut stamps_buf).map_err(wire_err)?;
        stamps.insert(stamp.seq, stamp);
    }

    let mut registry = KeyRegistry::new();
    registry.publish(signer.verifier(), 0);
    Ok(CentralServer {
        scheme,
        signer,
        registry,
        catalog,
        stores,
        views,
        locks: LockManager::new(),
        log,
        stamps,
        stamp_commits,
        group_commit: None,
        pending: Vec::new(),
        pending_since_clock: clock,
        clock,
        durability: None,
    })
}
