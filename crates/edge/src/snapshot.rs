//! Atomically swappable store snapshots for concurrent serving.
//!
//! A [`ServingReplica`] wraps one table's authenticated store in an
//! `Arc`-published snapshot: readers grab the current `Arc` (a pointer
//! clone under a briefly-held read lock) and work on a store that can
//! never change underneath them, while the writer builds the successor
//! store *off to the side* and swaps it in with one pointer store. This
//! is the WedgeChain-style edge-store shape — many concurrent readers
//! over a replica that a trusted writer advances asynchronously — and it
//! is what lets the Section 3.4 locking protocol run at digest level
//! without readers ever blocking on store mutation.
//!
//! For the VB-tree the build-aside clone is cheap: `VbTree`'s node arena
//! is `Arc`'d (copy-on-write), so cloning copies one pointer per node
//! slot and the delta replay detaches only the root-to-leaf path it
//! touches.

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vbx_core::scheme::AuthScheme;

/// One table's swappable snapshot (see module docs).
pub struct ServingReplica<S: AuthScheme> {
    current: RwLock<Arc<S::Store>>,
    /// Serialises writers: two concurrent `update_with` calls must not
    /// both clone the same base snapshot and lose one set of changes.
    write_gate: Mutex<()>,
    /// Number of snapshots published so far (tests/diagnostics).
    published: AtomicU64,
}

impl<S: AuthScheme> ServingReplica<S> {
    /// Wrap an initial store.
    pub fn new(store: S::Store) -> Self {
        Self {
            current: RwLock::new(Arc::new(store)),
            write_gate: Mutex::new(()),
            published: AtomicU64::new(0),
        }
    }

    /// The current snapshot. Never blocks on writers beyond the pointer
    /// swap itself; the returned store is immutable for as long as the
    /// caller holds the `Arc`.
    pub fn snapshot(&self) -> Arc<S::Store> {
        self.current.read().clone()
    }

    /// The current snapshot together with a publish-version stamp no
    /// newer than the snapshot itself. Cache writers use the stamp to
    /// detect that a successor was published (and the cache invalidated)
    /// while they were executing — a stale result must not be inserted
    /// after the invalidation. The stamp is read under the same read
    /// lock as the pointer; a publish racing the bump can only make the
    /// stamp *older* than the snapshot, which errs on the safe side
    /// (the insert is skipped, never accepted stale).
    pub fn versioned_snapshot(&self) -> (Arc<S::Store>, u64) {
        let guard = self.current.read();
        let version = self.published.load(Ordering::Acquire);
        (guard.clone(), version)
    }

    /// Publish a fully-built replacement store (initial distribution,
    /// wholesale view refreshes).
    pub fn publish(&self, store: S::Store) {
        let _gate = self.write_gate.lock();
        *self.current.write() = Arc::new(store);
        self.published.fetch_add(1, Ordering::Release);
    }

    /// Build the successor snapshot off to the side and swap it in:
    /// clone the current store (cheap for COW stores), apply `mutate`,
    /// publish on success. On error nothing is published — readers keep
    /// the old snapshot and the failed successor is dropped.
    ///
    /// The clone + swap is paid **per call**, not per op: the
    /// group-commit path (`EdgeService::apply_delta_batch`) replays a
    /// whole `DeltaBatch` inside one `mutate`, so `k` ops cost one
    /// clone and one publish instead of `k` of each.
    pub fn update_with<E>(
        &self,
        mutate: impl FnOnce(&mut S::Store) -> Result<(), E>,
    ) -> Result<(), E>
    where
        S::Store: Clone,
    {
        let _gate = self.write_gate.lock();
        let mut next = (**self.current.read()).clone();
        mutate(&mut next)?;
        *self.current.write() = Arc::new(next);
        self.published.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// How many snapshots have been published (0 = still the initial
    /// store).
    pub fn published_count(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_core::scheme::VbScheme;
    use vbx_core::{VbTree, VbTreeConfig};
    use vbx_crypto::signer::MockSigner;
    use vbx_crypto::Acc256;
    use vbx_storage::workload::WorkloadSpec;

    fn replica() -> (ServingReplica<VbScheme<4>>, MockSigner) {
        let table = WorkloadSpec::new(40, 3, 8).build();
        let signer = MockSigner::new(5);
        let tree = VbTree::bulk_load(
            &table,
            VbTreeConfig::with_fanout(5),
            Acc256::test_default(),
            &signer,
        );
        (ServingReplica::new(tree), signer)
    }

    #[test]
    fn snapshot_survives_swap() {
        let (r, signer) = replica();
        let before = r.snapshot();
        let len_before = before.len();
        r.update_with(|t| t.delete(3, &signer).map(|_| ())).unwrap();
        // The old handle still sees the pre-update tree…
        assert_eq!(before.len(), len_before);
        assert!(before.get(3).is_some());
        // …while fresh snapshots see the successor.
        let after = r.snapshot();
        assert_eq!(after.len(), len_before - 1);
        assert!(after.get(3).is_none());
        assert_eq!(r.published_count(), 1);
    }

    #[test]
    fn failed_update_publishes_nothing() {
        let (r, signer) = replica();
        let before = r.snapshot();
        let err = r.update_with(|t| t.delete(999_999, &signer).map(|_| ()));
        assert!(err.is_err());
        assert!(Arc::ptr_eq(&before, &r.snapshot()));
        assert_eq!(r.published_count(), 0);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let (r, signer) = replica();
        let r = &r;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..200 {
                        let snap = r.snapshot();
                        // Every observed snapshot is internally
                        // consistent, whatever the writer is doing.
                        snap.check_integrity(None).unwrap();
                    }
                });
            }
            s.spawn(move || {
                for k in 0..30u64 {
                    let _ = r.update_with(|t| t.delete(k, &signer).map(|_| ()));
                }
            });
        });
        assert_eq!(r.snapshot().len(), 10);
    }
}
