//! Verified chunked state sync — the restore side.
//!
//! A restoring edge never installs state it has not verified. Instead
//! of trusting a cloned store (or a decoded blob), it pumps the owner's
//! chunk stream through the scheme's [`StoreRestorer`], which
//! authenticates **every chunk against the signed commitments as it
//! ingests** — a tampered, reordered, truncated, or stale chunk is
//! rejected mid-stream, before anything is installed.
//!
//! Two entry points:
//!
//! * [`clone_verified`] — in-process: re-derive an edge replica from a
//!   central's own store by round-tripping it through the chunk
//!   producer and the verifying restorer (the cluster coordinator's
//!   provisioning and resubscribe path);
//! * [`restore_table`] — over the wire: drive
//!   [`NetClient::fetch_chunk`] from chunk 0 until the central reports
//!   the end of the stream, feeding each chunk to the restorer.

use crate::net::client::{ChunkFetch, NetClient, NetError};
use std::sync::Arc;
use vbx_core::scheme::{AuthScheme, VbScheme};
use vbx_core::{SyncError, VbTree};
use vbx_crypto::SigVerifier;

/// Rebuild a store from `source` through the full chunk-and-verify
/// pipeline: every chunk the scheme's producer emits is ingested by the
/// scheme's restorer, which checks it against the signed root
/// commitments under `verifier` before the copy is released.
///
/// This is the in-process analogue of a network restore — the trusting
/// `store.clone()` replaced by a path where the receiving side only
/// accepts what it can authenticate.
pub fn clone_verified<S: AuthScheme>(
    scheme: &S,
    source: &S::Store,
    verifier: Arc<dyn SigVerifier>,
) -> Result<S::Store, SyncError> {
    let total = scheme.sync_chunk_count(source);
    if total == 0 {
        return Err(SyncError::Unsupported(S::NAME));
    }
    let mut restorer = scheme.begin_restore(verifier);
    for index in 0..total {
        let chunk = scheme.encode_sync_chunk(source, index)?;
        restorer.ingest(&chunk)?;
    }
    restorer.finish()
}

/// A table restored over the wire, with the stream shape and the log
/// position to subscribe from.
pub struct RestoredTable<const L: usize> {
    /// The verified replica.
    pub tree: VbTree<L>,
    /// Chunks the stream carried.
    pub chunks: u32,
    /// The central's delta-log head when the stream ended — the cursor
    /// a fresh subscription should start from to catch up without a
    /// gap.
    pub head: u64,
}

/// Stream `table`'s chunks from the central behind `client` and rebuild
/// a verified replica. Each chunk is authenticated against the signed
/// root digest under `verifier` as it arrives; the first bad chunk
/// aborts the restore with a [`NetError::Sync`].
pub fn restore_table<const L: usize>(
    client: &mut NetClient,
    scheme: &VbScheme<L>,
    verifier: Arc<dyn SigVerifier>,
    table: &str,
) -> Result<RestoredTable<L>, NetError> {
    let mut restorer = scheme.begin_restore(verifier);
    let mut ingested: u32 = 0;
    loop {
        match client.fetch_chunk(table, ingested)? {
            ChunkFetch::Chunk(bytes) => {
                restorer.ingest(&bytes)?;
                ingested += 1;
            }
            ChunkFetch::Done { chunks, head } => {
                if chunks != ingested {
                    return Err(NetError::Sync(SyncError::Incomplete {
                        ingested,
                        expected: chunks,
                    }));
                }
                let tree = restorer.finish()?;
                return Ok(RestoredTable { tree, chunks, head });
            }
        }
    }
}
