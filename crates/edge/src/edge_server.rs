//! Unsecured edge servers, generic over the authentication scheme.
//!
//! An edge server holds replicas of authenticated stores (VB-trees,
//! Naive digest tables, Merkle trees), answers range queries — and, for
//! the VB-tree scheme, SQL — with verification objects attached, and
//! applies signed update deltas from the central server (it cannot sign
//! anything itself). For the test suite it can also be placed into a
//! [`TamperMode`] simulating a compromised host; the tampering itself is
//! delegated to [`AuthScheme::tamper`], so every attack runs through the
//! same pipeline for every scheme.

use crate::central::EdgeBundle;
use std::collections::BTreeMap;
use vbx_core::scheme::{AuthScheme, SignedDelta, VbScheme};
use vbx_core::{execute, QueryResponse, RangeQuery, VbTree};
use vbx_query::{parse_select, plan_select, EngineError, JoinViewDef, PlannedQuery};
use vbx_storage::{Schema, Tuple};

pub use vbx_core::scheme::TamperMode;
pub use vbx_query::engine::PlannedQuery as Plan;

/// Edge-side failures: replication and query lookup, parameterised by
/// the scheme's own error type.
#[derive(Debug)]
pub enum EdgeError<E> {
    /// No replica of the named table.
    UnknownTable(String),
    /// A delta arrived out of order.
    OutOfOrder {
        /// Sequence number the replica expected next.
        expected: u64,
        /// Sequence number that arrived.
        got: u64,
    },
    /// Scheme-level failure (divergence, forged delta, ...).
    Scheme(E),
}

impl<E: core::fmt::Display> core::fmt::Display for EdgeError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EdgeError::UnknownTable(t) => write!(f, "no replica of {t}"),
            EdgeError::OutOfOrder { expected, got } => {
                write!(f, "delta {got} applied out of order (expected {expected})")
            }
            EdgeError::Scheme(e) => write!(f, "{e}"),
        }
    }
}

impl<E: std::error::Error> std::error::Error for EdgeError<E> {}

/// An edge server instance.
pub struct EdgeServer<S: AuthScheme> {
    scheme: S,
    schemas: BTreeMap<String, Schema>,
    stores: BTreeMap<String, S::Store>,
    views: Vec<JoinViewDef>,
    applied_seq: u64,
    tamper: TamperMode,
}

impl<S: AuthScheme> EdgeServer<S> {
    /// An empty edge server for a scheme (tables arrive via
    /// [`install_table`](Self::install_table) or, for the VB-tree, a
    /// distribution bundle).
    pub fn new(scheme: S) -> Self {
        Self {
            scheme,
            schemas: BTreeMap::new(),
            stores: BTreeMap::new(),
            views: Vec::new(),
            applied_seq: 0,
            tamper: TamperMode::None,
        }
    }

    /// The scheme descriptor.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Install (or replace) a table replica.
    pub fn install_table(&mut self, name: impl Into<String>, schema: Schema, store: S::Store) {
        let name = name.into();
        self.schemas.insert(name.clone(), schema);
        self.stores.insert(name, store);
    }

    /// Set the tamper mode (tests only — a real edge server is simply
    /// this code running on an untrusted host).
    pub fn set_tamper(&mut self, mode: TamperMode) {
        self.tamper = mode;
    }

    /// Last applied delta sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Schemas of everything replicated (public metadata clients also
    /// hold).
    pub fn schemas(&self) -> BTreeMap<String, Schema> {
        self.schemas.clone()
    }

    /// Replica store lookup.
    pub fn store(&self, name: &str) -> Option<&S::Store> {
        self.stores.get(name)
    }

    /// Answer a range query against a replica, applying the configured
    /// tamper mode — the one pipeline every scheme serves through.
    pub fn query_range(
        &self,
        table: &str,
        query: &RangeQuery,
    ) -> Result<S::Response, EdgeError<S::Error>> {
        let store = self
            .stores
            .get(table)
            .ok_or_else(|| EdgeError::UnknownTable(table.into()))?;
        let mut resp = self.scheme.range_query(store, query);
        self.scheme.tamper(store, query, &mut resp, &self.tamper);
        Ok(resp)
    }

    /// Apply one signed update delta, verifying order and (where the
    /// scheme can) replay consistency.
    pub fn apply_delta(
        &mut self,
        delta: &SignedDelta<S::Delta>,
    ) -> Result<(), EdgeError<S::Error>> {
        if delta.seq != self.applied_seq {
            return Err(EdgeError::OutOfOrder {
                expected: self.applied_seq,
                got: delta.seq,
            });
        }
        let store = self
            .stores
            .get_mut(&delta.table)
            .ok_or_else(|| EdgeError::UnknownTable(delta.table.clone()))?;
        self.scheme
            .apply_delta(store, &delta.op, &delta.payload, delta.key_version)
            .map_err(EdgeError::Scheme)?;
        self.applied_seq += 1;
        Ok(())
    }
}

/// VB-tree specific surface: bundle distribution, view refreshes, and
/// the SQL front end.
impl<const L: usize> EdgeServer<VbScheme<L>> {
    /// Stand up an edge server from a distribution bundle, recovering
    /// the scheme's public parameters from the shipped trees.
    ///
    /// # Panics
    /// Panics on an empty bundle (no trees to read the parameters
    /// from) — use [`from_bundle_with_scheme`](Self::from_bundle_with_scheme)
    /// when provisioning edges before the first `create_table`.
    pub fn from_bundle(bundle: EdgeBundle<L>) -> Self {
        let scheme = {
            let tree =
                bundle.trees.values().next().expect(
                    "empty bundle carries no scheme parameters; use from_bundle_with_scheme",
                );
            VbScheme::new(tree.accumulator().clone(), tree.config().clone())
        };
        Self::from_bundle_with_scheme(scheme, bundle)
    }

    /// Stand up an edge server from explicit scheme parameters and a
    /// bundle, which may be empty (queries then fail gracefully with
    /// `UnknownTable` until replicas arrive).
    pub fn from_bundle_with_scheme(scheme: VbScheme<L>, bundle: EdgeBundle<L>) -> Self {
        let mut edge = Self::new(scheme);
        edge.applied_seq = bundle.as_of_seq;
        for (name, tree) in bundle.trees {
            edge.schemas.insert(name.clone(), tree.schema().clone());
            edge.stores.insert(name, tree);
        }
        edge.views = bundle.views;
        edge
    }

    /// Replica tree lookup.
    pub fn tree(&self, name: &str) -> Option<&VbTree<L>> {
        self.stores.get(name)
    }

    /// Register a view tree (initial distribution and refreshes).
    pub fn install_view(&mut self, def: JoinViewDef, tree: VbTree<L>) {
        self.views.retain(|d| d.name != def.name);
        self.schemas.insert(def.name.clone(), tree.schema().clone());
        self.stores.insert(def.name.clone(), tree);
        self.views.push(def);
    }

    /// Refresh view replicas after base-table deltas (views are rebuilt
    /// wholesale at the central server because their rowids shift).
    pub fn refresh_views(&mut self, trees: BTreeMap<String, VbTree<L>>) {
        for (name, tree) in trees {
            if self.views.iter().any(|d| d.name == name) {
                self.schemas.insert(name.clone(), tree.schema().clone());
                self.stores.insert(name, tree);
            }
        }
    }

    /// Answer a SQL query, applying the configured tamper mode to the
    /// response.
    pub fn query_sql(&self, sql: &str) -> Result<(PlannedQuery, QueryResponse<L>), EngineError> {
        let stmt = parse_select(sql)?;
        let planned = plan_select(&stmt, &self.schemas)?;
        let tree = self
            .stores
            .get(&planned.target)
            .ok_or_else(|| EngineError::UnknownTable(planned.target.clone()))?;
        let residual = planned.residual.clone();
        let resp = match &self.tamper {
            TamperMode::DropAndReclassify { key } => {
                // Re-execute with an additional "hide the victim"
                // predicate: its signed tuple digest lands in D_S,
                // producing a VO that still balances.
                let victim = *key;
                let pred =
                    move |t: &Tuple| t.key != victim && residual.as_ref().is_none_or(|p| p.eval(t));
                execute(tree, &planned.range_query, Some(&pred))
            }
            mode => {
                type PredFn = Box<dyn Fn(&Tuple) -> bool>;
                let pred_fn: Option<PredFn> =
                    residual.map(|p| Box::new(move |t: &Tuple| p.eval(t)) as PredFn);
                let mut resp = execute(tree, &planned.range_query, pred_fn.as_deref());
                self.scheme
                    .tamper(tree, &planned.range_query, &mut resp, mode);
                resp
            }
        };
        Ok((planned, resp))
    }
}
