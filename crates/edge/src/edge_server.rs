//! Unsecured edge servers, generic over the authentication scheme.
//!
//! An edge server holds replicas of authenticated stores (VB-trees,
//! Naive digest tables, Merkle trees), answers range queries — and, for
//! the VB-tree scheme, SQL — with verification objects attached, and
//! applies signed update deltas from the central server (it cannot sign
//! anything itself). Since PR 3 it is a façade over the concurrent
//! [`EdgeService`]: every table is a [`crate::snapshot::ServingReplica`]
//! (readers work on immutable snapshots and never block; deltas build
//! the successor store off to the side and swap it in under the
//! Section 3.4 digest locks), and repeated queries are answered from the
//! service's response/VO cache. For the test suite it can also be placed
//! into a [`TamperMode`] simulating a compromised host; the tampering
//! itself is delegated to [`AuthScheme::tamper`], so every attack runs
//! through the same pipeline for every scheme. Tampered responses are
//! produced from a fresh clone — the cache only ever holds honest
//! responses.

use crate::central::{EdgeBundle, LogEntry};
use crate::service::EdgeService;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use vbx_core::scheme::{AuthScheme, DeltaBatch, SignedDelta, TxnBatch, VbScheme, VbSchemeError};
use vbx_core::{
    compact_response_bytes, encode_compact_prefix, encode_compact_response, execute, QueryResponse,
    RangeQuery, VbTree,
};
use vbx_crypto::SigVerifier;
use vbx_query::{parse_select, plan_select, EngineError, JoinViewDef, PlannedQuery};
use vbx_storage::{Schema, Tuple};

pub use crate::service::EdgeError;
pub use vbx_core::scheme::TamperMode;
pub use vbx_query::engine::PlannedQuery as Plan;

/// An edge server instance: the concurrent serving engine plus the
/// view registry and the test-only tamper switch.
pub struct EdgeServer<S: AuthScheme>
where
    S::Store: Clone,
{
    service: EdgeService<S>,
    views: Vec<JoinViewDef>,
    tamper: RwLock<TamperMode>,
}

impl<S: AuthScheme> EdgeServer<S>
where
    S::Store: Clone,
{
    /// An empty edge server for a scheme (tables arrive via
    /// [`install_table`](Self::install_table) or, for the VB-tree, a
    /// distribution bundle).
    pub fn new(scheme: S) -> Self {
        Self::with_seq(scheme, 0)
    }

    /// An empty edge server whose replicas reflect deltas `< seq`
    /// (cluster provisioning against a central server that already
    /// committed updates).
    pub fn with_seq(scheme: S, seq: u64) -> Self {
        Self {
            service: EdgeService::with_seq(scheme, seq),
            views: Vec::new(),
            tamper: RwLock::new(TamperMode::None),
        }
    }

    /// The scheme descriptor.
    pub fn scheme(&self) -> &S {
        self.service.scheme()
    }

    /// The underlying concurrent serving engine (share it across
    /// threads; all of its methods take `&self`).
    pub fn service(&self) -> &EdgeService<S> {
        &self.service
    }

    /// Install (or replace) a table replica.
    pub fn install_table(&mut self, name: impl Into<String>, schema: Schema, store: S::Store) {
        self.service.install_table(name, schema, store);
    }

    /// Set the tamper mode (tests only — a real edge server is simply
    /// this code running on an untrusted host). Takes `&self` so a
    /// conformance script can flip a shared, already-serving edge into
    /// a compromised state mid-connection.
    pub fn set_tamper(&self, mode: TamperMode) {
        *self.tamper.write() = mode;
    }

    /// The currently configured tamper mode.
    pub fn tamper_mode(&self) -> TamperMode {
        self.tamper.read().clone()
    }

    /// Last applied delta sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.service.applied_seq()
    }

    /// Schemas of everything replicated (public metadata clients also
    /// hold).
    pub fn schemas(&self) -> BTreeMap<String, Schema> {
        self.service.schemas()
    }

    /// Snapshot of a replica store (an `Arc` handle — the store is
    /// immutable; later deltas swap in successors without touching it).
    pub fn store(&self, name: &str) -> Option<Arc<S::Store>> {
        self.service.snapshot(name)
    }

    /// Answer a range query against a replica, applying the configured
    /// tamper mode — the one pipeline every scheme serves through.
    pub fn query_range(
        &self,
        table: &str,
        query: &RangeQuery,
    ) -> Result<S::Response, EdgeError<S::Error>> {
        let resp = self.service.query_range(table, query)?;
        let mut resp = (*resp).clone();
        let tamper = self.tamper_mode();
        if tamper != TamperMode::None {
            let store = self
                .service
                .snapshot(table)
                .ok_or_else(|| EdgeError::UnknownTable(table.into()))?;
            self.service
                .scheme()
                .tamper(&store, query, &mut resp, &tamper);
        }
        // Republish the edge's replication position (after tampering —
        // the stamp is owner-signed material the edge merely relays;
        // what a compromised host can and cannot gain from it is spelled
        // out in `vbx_core::verify::FreshnessStamp`'s threat model).
        S::stamp_freshness(&mut resp, &self.service.current_freshness());
        Ok(resp)
    }

    /// Apply one signed update delta, verifying order and (where the
    /// scheme can) replay consistency. Takes `&self`: a writer thread
    /// can advance the replicas while readers keep serving snapshots.
    pub fn apply_delta(&self, delta: &SignedDelta<S::Delta>) -> Result<(), EdgeError<S::Error>> {
        self.service.apply_delta(delta)
    }

    /// Apply one group-committed [`DeltaBatch`]: one snapshot clone, `k`
    /// replays, one swap, one cache invalidation (see
    /// [`EdgeService::apply_delta_batch`]).
    pub fn apply_delta_batch(
        &self,
        batch: &DeltaBatch<S::Delta>,
    ) -> Result<(), EdgeError<S::Error>> {
        self.service.apply_delta_batch(batch)
    }

    /// Apply one atomic multi-table [`TxnBatch`] all-or-none (see
    /// [`EdgeService::apply_txn`]).
    pub fn apply_txn(&self, txn: &TxnBatch<S::Delta>) -> Result<(), EdgeError<S::Error>> {
        self.service.apply_txn(txn)
    }

    /// Apply one subscription log entry (single-op delta, batch, or
    /// atomic multi-table txn).
    pub fn apply_log_entry(&self, entry: &LogEntry<S::Delta>) -> Result<(), EdgeError<S::Error>> {
        self.service.apply_log_entry(entry)
    }
}

/// VB-tree specific surface: bundle distribution, view refreshes, and
/// the SQL front end.
impl<const L: usize> EdgeServer<VbScheme<L>> {
    /// Stand up an edge server from a distribution bundle, recovering
    /// the scheme's public parameters from the shipped trees. Each tree
    /// becomes a [`crate::snapshot::ServingReplica`] of the concurrent
    /// serving engine.
    ///
    /// # Panics
    /// Panics on an empty bundle (no trees to read the parameters
    /// from). To provision an edge *before* the first `create_table`,
    /// construct the replica set through
    /// [`from_bundle_with_scheme`](Self::from_bundle_with_scheme) with
    /// explicit scheme parameters — replicas then arrive later via
    /// [`install_table`](Self::install_table) or a fresh bundle.
    pub fn from_bundle(bundle: EdgeBundle<L>) -> Self {
        let scheme = {
            let tree =
                bundle.trees.values().next().expect(
                    "empty bundle carries no scheme parameters; use from_bundle_with_scheme",
                );
            VbScheme::new(tree.accumulator().clone(), tree.config().clone())
        };
        Self::from_bundle_with_scheme(scheme, bundle)
    }

    /// Stand up an edge server from explicit scheme parameters and a
    /// bundle, which may be empty (queries then fail gracefully with
    /// `UnknownTable` until replicas arrive).
    pub fn from_bundle_with_scheme(scheme: VbScheme<L>, bundle: EdgeBundle<L>) -> Self {
        let service = EdgeService::with_seq(scheme, bundle.as_of_seq);
        for (name, tree) in bundle.trees {
            let schema = tree.schema().clone();
            service.install_table(name, schema, tree);
        }
        Self {
            service,
            views: bundle.views,
            tamper: RwLock::new(TamperMode::None),
        }
    }

    /// Replica tree snapshot.
    pub fn tree(&self, name: &str) -> Option<Arc<VbTree<L>>> {
        self.service.snapshot(name)
    }

    /// Register a view tree (initial distribution and refreshes).
    pub fn install_view(&mut self, def: JoinViewDef, tree: VbTree<L>) {
        self.views.retain(|d| d.name != def.name);
        let schema = tree.schema().clone();
        self.service.install_table(def.name.clone(), schema, tree);
        self.views.push(def);
    }

    /// Refresh view replicas after base-table deltas (views are rebuilt
    /// wholesale at the central server because their rowids shift).
    /// Publishing a refreshed tree invalidates the view's cached
    /// responses.
    pub fn refresh_views(&mut self, trees: BTreeMap<String, VbTree<L>>) {
        for (name, tree) in trees {
            if self.views.iter().any(|d| d.name == name) {
                let schema = tree.schema().clone();
                self.service.install_table(name, schema, tree);
            }
        }
    }

    /// Answer a SQL query, applying the configured tamper mode to the
    /// response. Honest executions go through the service's response
    /// cache, keyed by the plan's range + projection + residual
    /// fingerprint.
    pub fn query_sql(&self, sql: &str) -> Result<(PlannedQuery, QueryResponse<L>), EngineError> {
        let stmt = parse_select(sql)?;
        let planned = plan_select(&stmt, &self.service.schemas())?;
        let resp = match &self.tamper_mode() {
            TamperMode::DropAndReclassify { key } => {
                // Re-execute with an additional "hide the victim"
                // predicate: its signed tuple digest lands in D_S,
                // producing a VO that still balances. Bypasses the cache
                // — only honest responses are cached.
                let tree = self
                    .service
                    .snapshot(&planned.target)
                    .ok_or_else(|| EngineError::UnknownTable(planned.target.clone()))?;
                let victim = *key;
                let residual = planned.residual.clone();
                let pred =
                    move |t: &Tuple| t.key != victim && residual.as_ref().is_none_or(|p| p.eval(t));
                execute(&tree, &planned.range_query, Some(&pred))
            }
            mode => {
                let residual = planned.residual.clone();
                let fp = planned.residual_fingerprint();
                let resp = self
                    .service
                    .serve(&planned.target, &planned.range_query, fp, |tree| {
                        type PredFn = Box<dyn Fn(&Tuple) -> bool>;
                        let pred_fn: Option<PredFn> =
                            residual.map(|p| Box::new(move |t: &Tuple| p.eval(t)) as PredFn);
                        execute(tree, &planned.range_query, pred_fn.as_deref())
                    })
                    .map_err(|e| match e {
                        EdgeError::UnknownTable(t) => EngineError::UnknownTable(t),
                        // `serve` can only fail on replica lookup.
                        EdgeError::OutOfOrder { .. } | EdgeError::Scheme(_) => {
                            unreachable!("serve fails only on unknown tables")
                        }
                    })?;
                let mut resp = (*resp).clone();
                if *mode != TamperMode::None {
                    let tree = self
                        .service
                        .snapshot(&planned.target)
                        .ok_or_else(|| EngineError::UnknownTable(planned.target.clone()))?;
                    self.service
                        .scheme()
                        .tamper(&tree, &planned.range_query, &mut resp, mode);
                }
                resp
            }
        };
        let mut resp = resp;
        VbScheme::<L>::stamp_freshness(&mut resp, &self.service.current_freshness());
        Ok((planned, resp))
    }

    /// Answer `k` ranges with one encoded compact (`VBX4`) response,
    /// applying the configured tamper mode. Honest executions cache the
    /// encoded **prefix** (dictionary + aggregate signature + op
    /// streams) and append the edge's current freshness per request —
    /// repeated hot batches skip execution, VO assembly *and* wire
    /// encoding, yet never replay a stale replication stamp. With an
    /// `aggregator`, shipped digests are bare and one condensed
    /// signature covers them all.
    pub fn query_compact(
        &self,
        table: &str,
        queries: &[RangeQuery],
        aggregator: Option<&dyn SigVerifier>,
    ) -> Result<Vec<u8>, EdgeError<VbSchemeError>> {
        let tamper = self.tamper_mode();
        if tamper != TamperMode::None {
            // Tampered responses bypass the cache (it only ever holds
            // honest prefixes) and are built from a fresh execution.
            let tree = self
                .service
                .snapshot(table)
                .ok_or_else(|| EdgeError::UnknownTable(table.into()))?;
            let scheme = self.service.scheme();
            let mut resp = scheme.multi_query_compact(&tree, queries, aggregator);
            scheme.tamper_compact(&tree, queries, &mut resp, &tamper, aggregator);
            resp.freshness = self.service.current_freshness();
            return Ok(encode_compact_response(&resp));
        }
        let agg_tag = aggregator.map_or(0, |a| u64::from(a.key_version()) + 1);
        let prefix = self
            .service
            .serve_compact_bytes(table, queries, 0, agg_tag, |tree| {
                encode_compact_prefix(
                    &self
                        .service
                        .scheme()
                        .multi_query_compact(tree, queries, aggregator),
                )
            })?;
        Ok(compact_response_bytes(
            &prefix,
            &self.service.current_freshness(),
        ))
    }
}
