//! Unsecured edge servers.
//!
//! An edge server holds replicas of VB-trees, answers SQL queries with
//! verification objects, and applies signed update deltas from the
//! central server (it cannot sign anything itself). For the test suite
//! it can also be placed into a [`TamperMode`] simulating a compromised
//! host — the attacks the VO must (and, for the documented
//! reclassification case, cannot) detect.

use crate::central::{EdgeBundle, UpdateDelta, UpdateOp};
use vbx_core::{execute, CoreError, QueryResponse, ReplaySource};
use vbx_query::{AuthQueryEngine, EngineError, JoinViewDef, PlannedQuery};
use vbx_storage::{Tuple, Value};

pub use vbx_query::engine::PlannedQuery as Plan;

/// Simulated compromises of an edge host.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TamperMode {
    /// Honest behaviour.
    #[default]
    None,
    /// Corrupt the first value of the first result row.
    MutateValue,
    /// Inject a spurious copy of an existing row under a fresh key.
    InjectRow,
    /// Silently remove a result row (without touching the VO).
    DropRow,
    /// Remove a result row *and* reclassify its signed tuple digest into
    /// `D_S` — the paper's documented completeness boundary (§3.1
    /// assumes edges do not do this maliciously).
    DropAndReclassify {
        /// Key of the row to suppress.
        key: u64,
    },
}

/// An edge server instance.
pub struct EdgeServer<const L: usize> {
    engine: AuthQueryEngine<L>,
    views: Vec<JoinViewDef>,
    applied_seq: u64,
    tamper: TamperMode,
}

impl<const L: usize> EdgeServer<L> {
    /// Stand up an edge server from a distribution bundle.
    pub fn from_bundle(bundle: EdgeBundle<L>) -> Self {
        let mut engine = AuthQueryEngine::new();
        let mut views = Vec::new();
        for (name, tree) in bundle.trees {
            match bundle.views.iter().find(|d| d.name == name) {
                Some(def) => {
                    engine.register_view(def.clone(), tree);
                    views.push(def.clone());
                }
                None => engine.register_table(tree),
            }
        }
        Self {
            engine,
            views,
            applied_seq: bundle.as_of_seq,
            tamper: TamperMode::None,
        }
    }

    /// Register a view tree (initial distribution and refreshes).
    pub fn install_view(&mut self, def: JoinViewDef, tree: vbx_core::VbTree<L>) {
        self.views.retain(|d| d.name != def.name);
        self.views.push(def.clone());
        self.engine.register_view(def, tree);
    }

    /// Refresh view replicas after base-table deltas (views are rebuilt
    /// wholesale at the central server because their rowids shift).
    pub fn refresh_views(&mut self, trees: std::collections::BTreeMap<String, vbx_core::VbTree<L>>) {
        for (name, tree) in trees {
            if let Some(def) = self.views.iter().find(|d| d.name == name).cloned() {
                self.engine.register_view(def, tree);
            }
        }
    }

    /// Set the tamper mode (tests only — a real edge server is simply
    /// this code running on an untrusted host).
    pub fn set_tamper(&mut self, mode: TamperMode) {
        self.tamper = mode;
    }

    /// Last applied delta sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Direct engine access (tests and benchmarks).
    pub fn engine(&self) -> &AuthQueryEngine<L> {
        &self.engine
    }

    /// Apply one signed update delta, verifying replay consistency.
    pub fn apply_delta(&mut self, delta: &UpdateDelta<L>) -> Result<(), CoreError> {
        if delta.seq != self.applied_seq {
            return Err(CoreError::ReplicaDivergence(format!(
                "delta {} applied out of order (expected {})",
                delta.seq, self.applied_seq
            )));
        }
        let tree = self
            .engine
            .tree_mut(&delta.table)
            .ok_or_else(|| CoreError::ReplicaDivergence(format!("no replica of {}", delta.table)))?;
        let mut src = ReplaySource::new(delta.digests.clone(), delta.key_version);
        match &delta.op {
            UpdateOp::Insert(tuple) => {
                tree.insert_with_source(tuple.clone(), &mut src)?;
            }
            UpdateOp::Delete(key) => {
                tree.delete_with_source(*key, &mut src)?;
            }
            UpdateOp::DeleteRange(lo, hi) => {
                tree.delete_range_with_source(*lo, *hi, &mut src)?;
            }
        }
        if src.remaining() != 0 {
            return Err(CoreError::ReplicaDivergence(format!(
                "{} unused digests after replay",
                src.remaining()
            )));
        }
        self.applied_seq += 1;
        Ok(())
    }

    /// Answer a SQL query, applying the configured tamper mode to the
    /// response.
    pub fn query_sql(
        &self,
        sql: &str,
    ) -> Result<(PlannedQuery, QueryResponse<L>), EngineError> {
        match &self.tamper {
            TamperMode::DropAndReclassify { key } => self.query_reclassified(sql, *key),
            _ => {
                let (planned, mut resp) = self.engine.execute_sql(sql)?;
                self.apply_tamper(&mut resp);
                Ok((planned, resp))
            }
        }
    }

    fn query_reclassified(
        &self,
        sql: &str,
        victim: u64,
    ) -> Result<(PlannedQuery, QueryResponse<L>), EngineError> {
        // Re-plan, then execute with an additional "hide the victim"
        // predicate: its signed tuple digest lands in D_S, producing a
        // VO that still balances.
        let client = vbx_query::ClientSession::new(self.engine.schemas(), self.acc_clone());
        let planned = client.plan_sql(sql)?;
        let tree = self
            .engine
            .tree(&planned.target)
            .ok_or_else(|| EngineError::UnknownTable(planned.target.clone()))?;
        let residual = planned.residual.clone();
        let pred = move |t: &Tuple| t.key != victim && residual.as_ref().is_none_or(|p| p.eval(t));
        let resp = execute(tree, &planned.range_query, Some(&pred));
        Ok((planned, resp))
    }

    fn acc_clone(&self) -> vbx_crypto::Accumulator<L> {
        // All trees share group parameters; grab them from any tree.
        self.engine
            .tree_names()
            .next()
            .and_then(|n| self.engine.tree(n))
            .map(|t| t.accumulator().clone())
            .expect("edge server has at least one tree")
    }

    fn apply_tamper(&self, resp: &mut QueryResponse<L>) {
        match &self.tamper {
            TamperMode::None | TamperMode::DropAndReclassify { .. } => {}
            TamperMode::MutateValue => {
                if let Some(row) = resp.rows.first_mut() {
                    if let Some(v) = row.values.first_mut() {
                        *v = match v {
                            Value::Int(x) => Value::Int(*x ^ 1),
                            Value::Float(x) => Value::Float(*x + 1.0),
                            Value::Text(_) => Value::Text("tampered".into()),
                            Value::Bytes(b) => {
                                let mut b = b.clone();
                                b.push(0xFF);
                                Value::Bytes(b)
                            }
                        };
                    }
                }
            }
            TamperMode::InjectRow => {
                if let Some(last) = resp.rows.last().cloned() {
                    let mut forged = last;
                    forged.key += 1;
                    resp.rows.push(forged);
                }
            }
            TamperMode::DropRow => {
                if !resp.rows.is_empty() {
                    let mid = resp.rows.len() / 2;
                    resp.rows.remove(mid);
                }
            }
        }
    }
}
