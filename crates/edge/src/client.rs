//! Trusted clients.
//!
//! A client holds only public material: the table/view schemas, the
//! accumulator group parameters, and access to the key registry. It
//! verifies every response and enforces a freshness policy against the
//! registry's validity windows — the Section 3.4 defence against edge
//! servers "masquerading out-of-date data, signed with an old private
//! key, as the latest data".

use std::collections::BTreeMap;
use vbx_core::scheme::{AuthScheme, VerifiedBatch};
use vbx_core::{CostMeter, QueryResponse, RangeQuery};
use vbx_crypto::accum::Accumulator;
use vbx_crypto::keyreg::{KeyRegistry, Timestamp};
use vbx_query::{ClientSession, EngineError, VerifiedRows};
use vbx_storage::Schema;

/// How strictly the client checks key freshness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyFreshnessPolicy {
    /// Only the currently-valid key version is acceptable.
    RequireCurrent,
    /// Accept any key version whose validity window contains the given
    /// timestamp (historical reads).
    AcceptAsOf(Timestamp),
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The key version in the VO was never published.
    UnknownKeyVersion(u32),
    /// The key version is outside its validity window (the stale-replay
    /// attack).
    StaleKey {
        /// Version the response was signed under.
        version: u32,
    },
    /// Verification or planning failure.
    Engine(EngineError),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::UnknownKeyVersion(v) => write!(f, "unknown key version {v}"),
            ClientError::StaleKey { version } => {
                write!(
                    f,
                    "stale key version {version}: possible replay of old data"
                )
            }
            ClientError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<EngineError> for ClientError {
    fn from(e: EngineError) -> Self {
        ClientError::Engine(e)
    }
}

/// A verifying client.
pub struct EdgeClient<const L: usize> {
    session: ClientSession<L>,
}

impl<const L: usize> EdgeClient<L> {
    /// Create from public metadata.
    pub fn new(schemas: BTreeMap<String, Schema>, acc: Accumulator<L>) -> Self {
        Self {
            session: ClientSession::new(schemas, acc),
        }
    }

    /// Verify a response for `sql`, enforcing the freshness policy.
    pub fn verify(
        &self,
        sql: &str,
        resp: &QueryResponse<L>,
        registry: &KeyRegistry,
        policy: KeyFreshnessPolicy,
    ) -> Result<VerifiedRows, ClientError> {
        let version = resp.vo.key_version;
        let verifier = registry
            .verifier(version)
            .ok_or(ClientError::UnknownKeyVersion(version))?;
        let fresh = match policy {
            KeyFreshnessPolicy::RequireCurrent => registry.current() == Some(version),
            KeyFreshnessPolicy::AcceptAsOf(t) => registry.is_acceptable(version, t),
        };
        if !fresh {
            return Err(ClientError::StaleKey { version });
        }
        Ok(self.session.verify_sql(sql, resp, verifier.as_ref())?)
    }

    /// The underlying session (for direct planning in tests).
    pub fn session(&self) -> &ClientSession<L> {
        &self.session
    }
}

/// Client-side failures of the generic scheme pipeline.
#[derive(Debug)]
pub enum SchemeClientError<E> {
    /// The queried table is not in the client's schema set.
    UnknownTable(String),
    /// The key version in the response was never published.
    UnknownKeyVersion(u32),
    /// The key version is outside its validity window (the stale-replay
    /// attack).
    StaleKey {
        /// Version the response was signed under.
        version: u32,
    },
    /// Scheme verification failed (tampering or malformed response).
    Scheme(E),
    /// The response is authentic but its freshness metadata violates
    /// the client's data-freshness policy (`VerifyError::Stale`), or
    /// the owner stamp's signature is forged (`BadSignature`). Distinct
    /// from [`Scheme`](Self::Scheme): the result itself verified.
    Freshness(vbx_core::VerifyError),
}

impl<E: core::fmt::Display> core::fmt::Display for SchemeClientError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SchemeClientError::UnknownTable(t) => write!(f, "unknown table {t}"),
            SchemeClientError::UnknownKeyVersion(v) => write!(f, "unknown key version {v}"),
            SchemeClientError::StaleKey { version } => {
                write!(
                    f,
                    "stale key version {version}: possible replay of old data"
                )
            }
            SchemeClientError::Scheme(e) => write!(f, "verification failed: {e}"),
            SchemeClientError::Freshness(e) => write!(f, "freshness check failed: {e}"),
        }
    }
}

impl<E: std::error::Error> std::error::Error for SchemeClientError<E> {}

/// A verifying client for the generic range pipeline: works with any
/// [`AuthScheme`], enforcing key freshness exactly like [`EdgeClient`]
/// does for the VB-tree SQL path.
pub struct SchemeClient<S: AuthScheme> {
    scheme: S,
    schemas: BTreeMap<String, Schema>,
}

impl<S: AuthScheme> SchemeClient<S> {
    /// Create from public metadata: scheme parameters and schemas.
    pub fn new(scheme: S, schemas: BTreeMap<String, Schema>) -> Self {
        Self { scheme, schemas }
    }

    /// Verify a range-query response, enforcing the freshness policy.
    /// Returns the authenticated rows together with the operation meter
    /// (the Section 4 cost accounting).
    pub fn verify_range(
        &self,
        table: &str,
        query: &RangeQuery,
        resp: &S::Response,
        registry: &KeyRegistry,
        policy: KeyFreshnessPolicy,
    ) -> Result<(VerifiedBatch, CostMeter), SchemeClientError<S::Error>> {
        let schema = self
            .schemas
            .get(table)
            .ok_or_else(|| SchemeClientError::UnknownTable(table.into()))?;
        let version = S::response_key_version(resp);
        let verifier = registry
            .verifier(version)
            .ok_or(SchemeClientError::UnknownKeyVersion(version))?;
        let fresh = match policy {
            KeyFreshnessPolicy::RequireCurrent => registry.current() == Some(version),
            KeyFreshnessPolicy::AcceptAsOf(t) => registry.is_acceptable(version, t),
        };
        if !fresh {
            return Err(SchemeClientError::StaleKey { version });
        }
        let mut meter = CostMeter::new();
        let batch = self
            .scheme
            .verify(schema, verifier.as_ref(), query, resp, &mut meter)
            .map_err(SchemeClientError::Scheme)?;
        Ok((batch, meter))
    }

    /// [`verify_range`](Self::verify_range) plus **data**-freshness
    /// enforcement: after the response proves authentic, demand an
    /// owner-signed [`FreshnessStamp`](vbx_core::FreshnessStamp) in its
    /// freshness metadata and check it against `policy` and the owner
    /// position `(owner_seq, owner_clock)` the client learned out of
    /// band. Works for **every scheme** whose responses carry a
    /// [`ResponseFreshness`](vbx_core::ResponseFreshness) — since PR 5
    /// that includes the Naive and Merkle baselines, so cluster-grade
    /// staleness detection is no longer VB-tree-only. Runs the same
    /// [`check_freshness`](vbx_core::check_freshness) the VB-tree's
    /// `ClientVerifier::with_freshness` path uses, so the semantics
    /// (staleness never conflated with tampering, checked only after
    /// authentication) are identical across schemes.
    #[allow(clippy::too_many_arguments)]
    pub fn verify_range_fresh(
        &self,
        table: &str,
        query: &RangeQuery,
        resp: &S::Response,
        registry: &KeyRegistry,
        policy: KeyFreshnessPolicy,
        freshness: vbx_core::FreshnessPolicy,
        owner_seq: u64,
        owner_clock: u64,
    ) -> Result<(VerifiedBatch, CostMeter), SchemeClientError<S::Error>> {
        let (batch, mut meter) = self.verify_range(table, query, resp, registry, policy)?;
        let verifier = registry
            .verifier(S::response_key_version(resp))
            .expect("verify_range resolved this version");
        vbx_core::check_freshness(
            S::response_freshness(resp),
            &freshness,
            owner_seq,
            owner_clock,
            verifier.as_ref(),
            &mut meter,
        )
        .map_err(SchemeClientError::Freshness)?;
        Ok((batch, meter))
    }
}
