//! # vbx-edge — the edge-computing deployment (Figure 2)
//!
//! The three parties of the paper's system model, as in-process
//! components exchanging serialized messages:
//!
//! * [`central`] — the **trusted central DBMS**: owns the master
//!   database and the private key, builds and maintains VB-trees,
//!   executes update transactions under the Section 3.4 locking
//!   protocol, and propagates signed update deltas to edge servers;
//! * [`edge_server`] — **unsecured edge servers**: hold replicas of the
//!   tables and VB-trees, answer queries with VOs, and (for the tests)
//!   can be placed into *tampering* modes that simulate a compromised
//!   host;
//! * [`client`] — **trusted clients**: verify results with nothing but
//!   the public key registry and schema metadata, enforcing freshness
//!   against the key validity windows;
//! * [`locks`] — the digest-level shared/exclusive lock manager used by
//!   update transactions and (conceptually) queries' enveloping
//!   subtrees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod central;
pub mod client;
pub mod edge_server;
pub mod locks;

pub use central::{CentralServer, EdgeBundle, UpdateDelta, UpdateOp};
pub use client::{ClientError, EdgeClient, FreshnessPolicy};
pub use edge_server::{EdgeServer, TamperMode};
pub use locks::{LockConflict, LockManager, LockMode, LockStats};
