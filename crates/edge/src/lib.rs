//! # vbx-edge — the edge-computing deployment (Figure 2)
//!
//! The three parties of the paper's system model, as in-process
//! components exchanging serialized messages:
//!
//! * [`central`] — the **trusted central DBMS**: owns the master
//!   database and the private key, builds and maintains VB-trees,
//!   executes update transactions under the Section 3.4 locking
//!   protocol, and propagates signed update deltas to edge servers;
//! * [`edge_server`] — **unsecured edge servers**: hold replicas of the
//!   tables and VB-trees, answer queries with VOs, and (for the tests)
//!   can be placed into *tampering* modes that simulate a compromised
//!   host;
//! * [`client`] — **trusted clients**: verify results with nothing but
//!   the public key registry and schema metadata, enforcing freshness
//!   against the key validity windows;
//! * [`locks`] — the digest-level shared/exclusive lock manager used by
//!   update transactions and queries' enveloping subtrees;
//! * [`snapshot`] / [`service`] — the **concurrent serving subsystem**:
//!   atomically swappable store snapshots per table, the Section 3.4
//!   lock protocol wired into both the query and the delta path, and a
//!   response/VO cache invalidated per table on delta apply;
//! * [`cluster`] — the **multi-edge cluster**: tables sharded across N
//!   edge replicas, signed deltas fanned out over per-edge subscription
//!   queues (bounded-retention [`DeltaLog`] cursors), queries routed to
//!   the owning edge, and freshness-verified reads — clients reject an
//!   honest-but-stale edge via owner-signed `(seq, clock)` stamps and
//!   `FreshnessPolicy { max_lag, max_age }`;
//! * [`net`] — the **networked deployment**: the same parties behind a
//!   `Transport`/`Listener`/`Conn` seam exchanging `VBX5` frames, with
//!   an in-process loopback transport (differential oracle) and a real
//!   `std::net` TCP transport serving many concurrent verified
//!   connections;
//! * [`durability`] — the central's **crash safety**: a checksummed
//!   write-ahead log appended and fsync'd before every commit ack (one
//!   record per group-commit batch), periodic + DDL-forced atomic
//!   checkpoints through the storage page layer, and
//!   `CentralServer::recover` — newest valid checkpoint + WAL-suffix
//!   replay to a byte-identical state whose `(seq, clock)` never
//!   rewinds below an issued stamp.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod central;
pub mod client;
pub mod cluster;
pub mod durability;
pub mod edge_server;
pub mod locks;
pub mod net;
pub mod service;
pub mod snapshot;
pub mod sync;

pub use central::{
    CentralError, CentralServer, CommittedBatches, DeltaLog, DeltaLogError, EdgeBundle, FlushError,
    Flushed, GroupCommitConfig, LogEntry, Txn, UpdateDelta,
};
pub use client::{ClientError, EdgeClient, KeyFreshnessPolicy, SchemeClient, SchemeClientError};
pub use cluster::{
    ClusterConfig, ClusterCoordinator, ClusterError, EdgeLag, RoutedResponse, ShardMap,
};
pub use durability::DurabilityConfig;
pub use edge_server::{EdgeServer, TamperMode};
pub use locks::{LockConflict, LockManager, LockMode, LockStats};
pub use net::{
    CentralEndpoint, Conn, ConnState, EdgeEndpoint, FrameEndpoint, Listener, LoopbackTransport,
    NetClient, NetError, NetServer, RetryPolicy, ServerStats, TcpTransport, Transport,
};
pub use service::{CacheStats, EdgeError, EdgeService, ResponseCache};
pub use snapshot::ServingReplica;
pub use sync::{clone_verified, restore_table, RestoredTable};
// Data-freshness verification surface (the cluster's client side).
pub use vbx_core::{FreshnessPolicy, FreshnessStamp, ResponseFreshness};
// The scheme layer the deployment is generic over (re-exported so edge
// users need only this crate).
pub use vbx_baselines::{MerkleScheme, NaiveScheme};
pub use vbx_core::scheme::{AuthScheme, DeltaBatch, SignedDelta, TxnBatch, UpdateOp, VbScheme};
