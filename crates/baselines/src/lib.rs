//! # vbx-baselines — comparison schemes
//!
//! Two baselines the paper positions the VB-tree against:
//!
//! * [`naive`] — the **Naive strategy** of the paper's Appendix: every
//!   tuple and attribute carries its own signed digest, and the edge
//!   server ships one signed tuple digest per result row plus signed
//!   digests for all filtered attributes. Communication and computation
//!   grow with per-row signature work — equations (A.1)/(A.2), plotted
//!   against the VB-tree in Figures 10–13.
//! * [`merkle`] — a **Merkle hash tree** in the style of Devanbu et al.
//!   [5] (and the paper's own Figure 1): a binary hash tree over the
//!   sorted table with a single signed root. Its VOs reach the root, so
//!   they grow with `log N_R` — the overhead the VB-tree's per-node
//!   signatures eliminate — but, unlike the VB-tree, its range proofs
//!   demonstrate completeness at the price of exposing boundary tuples
//!   (the access-control drawback discussed in Section 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merkle;
pub mod naive;
pub mod schemes;

pub use merkle::{
    proof_ops, verify_merkle_ops, MerkleAuthStore, MerkleError, MerkleOp, MerkleOpsReport,
    MerkleResponse,
};
pub use naive::{NaiveAuthStore, NaiveError, NaiveResponse, NaiveRow};
pub use schemes::{MerkleScheme, MerkleVo, NaiveScheme};

/// Wire cost of the freshness metadata an edge attaches to a response.
/// Delegates to the one layout definition in `vbx_core::wire`, so both
/// baselines' wire accounting matches the VB-tree response encoding's
/// freshness section byte for byte.
pub fn freshness_wire_bytes(freshness: &vbx_core::ResponseFreshness) -> usize {
    vbx_core::wire::freshness_wire_bytes(freshness)
}
