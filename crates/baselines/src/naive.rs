//! The Naive strategy (paper Appendix, Figure 14).
//!
//! "The naive strategy maintains for each attribute a signed digest, and
//! for each tuple a signed digest obtained from the attribute digests. It
//! transmits the result tuples together with their attribute and tuple
//! digests for the client to verify the correctness of the result
//! tuples."
//!
//! Costs (with `N_Q` result tuples, `N_C` columns, `Q_C` returned):
//!
//! * communication (A.1): `N_Q · (|D| + Σ|A_qc| + (N_C − Q_C)·|D|)`
//! * computation (A.2): per tuple, `Q_C` hashes + `N_C − Q_C + 1`
//!   signature decryptions + `N_C` combines.
//!
//! Note the per-row signature decryption — the term that makes Naive lose
//! to the VB-tree in Figure 12.

use crate::freshness_wire_bytes;
use std::collections::BTreeMap;
use vbx_core::ResponseFreshness;
use vbx_crypto::accum::{Accumulator, DigestRole, SignedDigest};
use vbx_crypto::{SigVerifier, Signer};
use vbx_storage::{Schema, Table, Tuple, Value};

/// Why a Naive response failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NaiveError {
    /// A row has the wrong number of values or filtered digests.
    Malformed {
        /// Offending row key.
        key: u64,
    },
    /// A signature failed.
    BadSignature {
        /// Offending row key.
        key: u64,
    },
    /// The recomputed tuple digest does not match the signed one.
    DigestMismatch {
        /// Offending row key.
        key: u64,
    },
    /// Result keys out of order or out of range.
    BadRowSet,
    /// Insert with a key that already exists.
    DuplicateKey(u64),
    /// Delete of a missing key.
    KeyNotFound(u64),
    /// A replayed delta's digests do not match the replica's own
    /// recomputation — the delta was forged or the replica diverged.
    ReplicaDivergence(String),
}

impl core::fmt::Display for NaiveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NaiveError::Malformed { key } => write!(f, "malformed naive row {key}"),
            NaiveError::BadSignature { key } => write!(f, "bad signature on row {key}"),
            NaiveError::DigestMismatch { key } => write!(f, "digest mismatch on row {key}"),
            NaiveError::BadRowSet => write!(f, "row set out of order or range"),
            NaiveError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            NaiveError::KeyNotFound(k) => write!(f, "key {k} not found"),
            NaiveError::ReplicaDivergence(m) => write!(f, "replica divergence: {m}"),
        }
    }
}

impl std::error::Error for NaiveError {}

#[derive(Clone)]
struct Entry<const L: usize> {
    tuple: Tuple,
    attr_digests: Vec<SignedDigest<L>>,
    tuple_digest: SignedDigest<L>,
}

/// Server-side store for the Naive strategy: a key-ordered map of tuples
/// with their signed digests. `Clone` supports the serving replicas'
/// build-aside-and-swap update path.
#[derive(Clone)]
pub struct NaiveAuthStore<const L: usize> {
    schema: Schema,
    entries: BTreeMap<u64, Entry<L>>,
    key_version: u32,
}

/// One answer row with its authentication material.
#[derive(Clone, Debug)]
pub struct NaiveRow<const L: usize> {
    /// Primary key.
    pub key: u64,
    /// Returned attribute values (projection order).
    pub values: Vec<Value>,
    /// The signed tuple digest `D_T`.
    pub tuple_digest: SignedDigest<L>,
    /// Signed digests of the filtered attributes, in schema order.
    pub filtered_attrs: Vec<SignedDigest<L>>,
}

/// A Naive query answer.
#[derive(Clone, Debug)]
pub struct NaiveResponse<const L: usize> {
    /// Answer rows in key order.
    pub rows: Vec<NaiveRow<L>>,
    /// Key version for registry lookup.
    pub key_version: u32,
    /// The serving edge's replication position + newest owner stamp
    /// (default/empty on a standalone store — stamped by the edge
    /// service in cluster deployments, like the VB-tree's responses).
    pub freshness: ResponseFreshness,
}

impl<const L: usize> NaiveResponse<L> {
    /// Wire size: values plus all shipped digests (the quantity in
    /// equation (A.1)).
    pub fn wire_bytes(&self) -> usize {
        let digest_len = |d: &SignedDigest<L>| 1 + L * 8 + 2 + d.sig.len();
        self.rows
            .iter()
            .map(|r| {
                10 + r.values.iter().map(Value::wire_len).sum::<usize>()
                    + digest_len(&r.tuple_digest)
                    + r.filtered_attrs.iter().map(digest_len).sum::<usize>()
            })
            .sum::<usize>()
            + 8
            + freshness_wire_bytes(&self.freshness)
    }

    /// Number of signed digests shipped.
    pub fn digest_count(&self) -> usize {
        self.rows.iter().map(|r| 1 + r.filtered_attrs.len()).sum()
    }
}

impl<const L: usize> NaiveAuthStore<L> {
    /// Build the store from a table, signing every attribute and tuple.
    pub fn build(table: &Table, acc: Accumulator<L>, signer: &dyn Signer) -> Self {
        let schema = table.schema().clone();
        let mut entries = BTreeMap::new();
        for t in table.iter() {
            let (attr_digests, tuple_digest) = Self::sign_tuple(&schema, &acc, signer, t);
            entries.insert(
                t.key,
                Entry {
                    tuple: t.clone(),
                    attr_digests,
                    tuple_digest,
                },
            );
        }
        Self {
            schema,
            entries,
            key_version: signer.key_version(),
        }
    }

    /// Sign one tuple's attribute digests and combined tuple digest —
    /// the per-tuple signing work of the Naive strategy, shared by
    /// [`build`](Self::build) and update transactions.
    pub fn sign_tuple(
        schema: &Schema,
        acc: &Accumulator<L>,
        signer: &dyn Signer,
        tuple: &Tuple,
    ) -> (Vec<SignedDigest<L>>, SignedDigest<L>) {
        let mut attr_digests = Vec::with_capacity(tuple.values.len());
        let mut tuple_exp = acc.identity();
        for (col, v) in tuple.values.iter().enumerate() {
            let input = schema.attribute_digest_input(col, tuple.key, v);
            let e = acc.exp_from_bytes(&input);
            tuple_exp = acc.combine(&tuple_exp, &e);
            attr_digests.push(acc.sign_digest(signer, DigestRole::Attribute, &e));
        }
        let tuple_digest = acc.sign_digest(signer, DigestRole::Tuple, &tuple_exp);
        (attr_digests, tuple_digest)
    }

    /// Install a pre-signed tuple (updates at the trusted server, and
    /// signed-delta replay at replicas — replicas cannot sign).
    pub fn insert_signed(
        &mut self,
        tuple: Tuple,
        attr_digests: Vec<SignedDigest<L>>,
        tuple_digest: SignedDigest<L>,
        key_version: u32,
    ) -> Result<(), NaiveError> {
        if self.entries.contains_key(&tuple.key) {
            return Err(NaiveError::DuplicateKey(tuple.key));
        }
        if attr_digests.len() != tuple.values.len() {
            return Err(NaiveError::Malformed { key: tuple.key });
        }
        self.entries.insert(
            tuple.key,
            Entry {
                tuple,
                attr_digests,
                tuple_digest,
            },
        );
        self.key_version = key_version;
        Ok(())
    }

    /// Remove a tuple and its digests.
    pub fn remove(&mut self, key: u64) -> Result<(), NaiveError> {
        self.entries
            .remove(&key)
            .map(|_| ())
            .ok_or(NaiveError::KeyNotFound(key))
    }

    /// Remove every tuple in `[lo, hi]`, returning how many were removed.
    pub fn remove_range(&mut self, lo: u64, hi: u64) -> usize {
        let keys: Vec<u64> = self.entries.range(lo..=hi).map(|(k, _)| *k).collect();
        for k in &keys {
            self.entries.remove(k);
        }
        keys.len()
    }

    /// Key version the store's digests were signed under.
    pub fn key_version(&self) -> u32 {
        self.key_version
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Restore-time audit for a store received over an untrusted
    /// channel: recompute every attribute exponent from the stored
    /// values, check each tuple exponent is the product of its
    /// attributes, and verify every signature under `verifier`.
    pub fn check_signatures(
        &self,
        acc: &Accumulator<L>,
        verifier: &dyn SigVerifier,
    ) -> Result<(), NaiveError> {
        for (&key, e) in &self.entries {
            if e.tuple.key != key || e.attr_digests.len() != e.tuple.values.len() {
                return Err(NaiveError::Malformed { key });
            }
            let mut tuple_exp = acc.identity();
            for (col, (v, d)) in e.tuple.values.iter().zip(&e.attr_digests).enumerate() {
                let input = self.schema.attribute_digest_input(col, key, v);
                if acc.exp_from_bytes(&input) != d.exp {
                    return Err(NaiveError::DigestMismatch { key });
                }
                if !acc.verify_digest(verifier, d) {
                    return Err(NaiveError::BadSignature { key });
                }
                tuple_exp = acc.combine(&tuple_exp, &d.exp);
            }
            if tuple_exp != e.tuple_digest.exp {
                return Err(NaiveError::DigestMismatch { key });
            }
            if !acc.verify_digest(verifier, &e.tuple_digest) {
                return Err(NaiveError::BadSignature { key });
            }
        }
        Ok(())
    }

    /// Serialise the store (schema, key version, and every entry's
    /// tuple + signed digests) for a durability checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.entries.len() * 128);
        self.schema.encode_into(&mut out);
        out.extend_from_slice(&self.key_version.to_be_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for e in self.entries.values() {
            e.tuple.encode_into(&mut out);
            out.extend_from_slice(&(e.attr_digests.len() as u32).to_be_bytes());
            for d in &e.attr_digests {
                vbx_core::durable::put_signed_digest(&mut out, d);
            }
            vbx_core::durable::put_signed_digest(&mut out, &e.tuple_digest);
        }
        out
    }

    /// Decode a checkpointed store. Structural damage errors (never
    /// panics); signatures are carried verbatim, so a decoded store is
    /// byte-identical to the encoded one.
    pub fn decode(bytes: &[u8], acc: &Accumulator<L>) -> Result<Self, vbx_core::CoreError> {
        use vbx_core::durable::get_signed_digest;
        let corrupt = |m: &str| vbx_core::CoreError::Wire(m.to_string());
        let mut buf = bytes;
        let schema = Schema::decode(&mut buf).map_err(vbx_core::CoreError::Storage)?;
        if buf.len() < 8 {
            return Err(corrupt("naive store header truncated"));
        }
        let key_version = u32::from_be_bytes(buf[..4].try_into().unwrap());
        let n = u32::from_be_bytes(buf[4..8].try_into().unwrap()) as usize;
        buf = &buf[8..];
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let tuple = Tuple::decode(&mut buf).map_err(vbx_core::CoreError::Storage)?;
            if buf.len() < 4 {
                return Err(corrupt("naive entry digest count truncated"));
            }
            let n_attrs = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
            buf = &buf[4..];
            if n_attrs != tuple.values.len() {
                return Err(corrupt("naive entry digest count mismatch"));
            }
            let mut attr_digests = Vec::with_capacity(n_attrs);
            for _ in 0..n_attrs {
                attr_digests.push(get_signed_digest(&mut buf, acc)?);
            }
            let tuple_digest = get_signed_digest(&mut buf, acc)?;
            entries.insert(
                tuple.key,
                Entry {
                    tuple,
                    attr_digests,
                    tuple_digest,
                },
            );
        }
        if !buf.is_empty() {
            return Err(corrupt("trailing bytes in naive store"));
        }
        Ok(Self {
            schema,
            entries,
            key_version,
        })
    }

    /// Answer a range query with optional projection and predicate.
    pub fn query(
        &self,
        lo: u64,
        hi: u64,
        projection: Option<&[usize]>,
        predicate: Option<&dyn Fn(&Tuple) -> bool>,
    ) -> NaiveResponse<L> {
        let n_cols = self.schema.num_columns();
        let returned: Vec<usize> = match projection {
            Some(cols) => cols.to_vec(),
            None => (0..n_cols).collect(),
        };
        let mut rows = Vec::new();
        for (_, e) in self.entries.range(lo..=hi) {
            if predicate.is_none_or(|p| p(&e.tuple)) {
                let values = returned
                    .iter()
                    .map(|&c| e.tuple.values[c].clone())
                    .collect();
                let filtered_attrs = (0..n_cols)
                    .filter(|c| !returned.contains(c))
                    .map(|c| e.attr_digests[c].clone())
                    .collect();
                rows.push(NaiveRow {
                    key: e.tuple.key,
                    values,
                    tuple_digest: e.tuple_digest.clone(),
                    filtered_attrs,
                });
            }
        }
        NaiveResponse {
            rows,
            key_version: self.key_version,
            freshness: ResponseFreshness::default(),
        }
    }

    /// Client-side verification: per row, recompute returned attribute
    /// digests, verify + combine the filtered ones, and match the signed
    /// tuple digest (Figure 14). Returns the number of signature
    /// verifications performed — the per-row `Cost_s` term of (A.2).
    pub fn verify(
        acc: &Accumulator<L>,
        schema: &Schema,
        verifier: &dyn SigVerifier,
        lo: u64,
        hi: u64,
        projection: Option<&[usize]>,
        resp: &NaiveResponse<L>,
    ) -> Result<usize, NaiveError> {
        let n_cols = schema.num_columns();
        let returned: Vec<usize> = match projection {
            Some(cols) => cols.to_vec(),
            None => (0..n_cols).collect(),
        };
        let filtered_count = n_cols - returned.len();
        let mut sig_checks = 0usize;
        let mut prev: Option<u64> = None;
        for row in &resp.rows {
            if row.key < lo || row.key > hi || prev.is_some_and(|p| row.key <= p) {
                return Err(NaiveError::BadRowSet);
            }
            prev = Some(row.key);
            if row.values.len() != returned.len() || row.filtered_attrs.len() != filtered_count {
                return Err(NaiveError::Malformed { key: row.key });
            }
            let mut exp = acc.identity();
            for (slot, &col) in returned.iter().enumerate() {
                let input = schema.attribute_digest_input(col, row.key, &row.values[slot]);
                let e = acc.exp_from_bytes(&input);
                exp = acc.combine(&exp, &e);
            }
            for d in &row.filtered_attrs {
                sig_checks += 1;
                if d.role != DigestRole::Attribute || !acc.verify_digest(verifier, d) {
                    return Err(NaiveError::BadSignature { key: row.key });
                }
                exp = acc.combine(&exp, &d.exp);
            }
            sig_checks += 1;
            if row.tuple_digest.role != DigestRole::Tuple
                || !acc.verify_digest(verifier, &row.tuple_digest)
            {
                return Err(NaiveError::BadSignature { key: row.key });
            }
            if exp != row.tuple_digest.exp {
                return Err(NaiveError::DigestMismatch { key: row.key });
            }
        }
        Ok(sig_checks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_crypto::signer::MockSigner;
    use vbx_crypto::Acc256;
    use vbx_storage::workload::WorkloadSpec;

    fn store() -> (NaiveAuthStore<4>, MockSigner) {
        let table = WorkloadSpec::new(40, 4, 8).build();
        let signer = MockSigner::new(5);
        let store = NaiveAuthStore::build(&table, Acc256::test_default(), &signer);
        (store, signer)
    }

    #[test]
    fn roundtrip_select_all() {
        let (s, signer) = store();
        let resp = s.query(5, 20, None, None);
        assert_eq!(resp.rows.len(), 16);
        let checks = NaiveAuthStore::verify(
            &Acc256::test_default(),
            s.schema(),
            signer.verifier().as_ref(),
            5,
            20,
            None,
            &resp,
        )
        .unwrap();
        // One tuple-digest check per row, no filtered attributes.
        assert_eq!(checks, 16);
    }

    #[test]
    fn roundtrip_projection() {
        let (s, signer) = store();
        let proj = [1usize];
        let resp = s.query(0, 39, Some(&proj), None);
        let checks = NaiveAuthStore::verify(
            &Acc256::test_default(),
            s.schema(),
            signer.verifier().as_ref(),
            0,
            39,
            Some(&proj),
            &resp,
        )
        .unwrap();
        // Per row: 3 filtered attr digests + 1 tuple digest.
        assert_eq!(checks, 40 * 4);
    }

    #[test]
    fn per_row_signatures_grow_with_result() {
        // The defining cost of Naive: signature checks scale with rows.
        let (s, signer) = store();
        let verifier = signer.verifier();
        let acc = Acc256::test_default();
        let small = s.query(0, 9, None, None);
        let large = s.query(0, 39, None, None);
        let c_small =
            NaiveAuthStore::verify(&acc, s.schema(), verifier.as_ref(), 0, 9, None, &small)
                .unwrap();
        let c_large =
            NaiveAuthStore::verify(&acc, s.schema(), verifier.as_ref(), 0, 39, None, &large)
                .unwrap();
        assert_eq!(c_large, 4 * c_small);
        assert!(large.wire_bytes() > small.wire_bytes());
    }

    #[test]
    fn tampered_value_detected() {
        let (s, signer) = store();
        let mut resp = s.query(0, 10, None, None);
        resp.rows[2].values[0] = Value::from("evil");
        let err = NaiveAuthStore::verify(
            &Acc256::test_default(),
            s.schema(),
            signer.verifier().as_ref(),
            0,
            10,
            None,
            &resp,
        )
        .unwrap_err();
        assert!(matches!(err, NaiveError::DigestMismatch { .. }));
    }

    #[test]
    fn forged_digest_detected() {
        let (s, signer) = store();
        let mut resp = s.query(0, 10, Some(&[0]), None);
        let acc = Acc256::test_default();
        resp.rows[0].filtered_attrs[0].exp = acc.exp_from_bytes(b"evil");
        let err = NaiveAuthStore::verify(
            &acc,
            s.schema(),
            signer.verifier().as_ref(),
            0,
            10,
            Some(&[0]),
            &resp,
        )
        .unwrap_err();
        assert!(matches!(err, NaiveError::BadSignature { .. }));
    }

    #[test]
    fn spurious_row_detected() {
        let (s, signer) = store();
        let mut resp = s.query(0, 10, None, None);
        let mut fake = resp.rows[0].clone();
        fake.key = 7;
        fake.values[0] = Value::from("injected");
        resp.rows.retain(|r| r.key != 7);
        resp.rows.push(fake);
        resp.rows.sort_by_key(|r| r.key);
        let err = NaiveAuthStore::verify(
            &Acc256::test_default(),
            s.schema(),
            signer.verifier().as_ref(),
            0,
            10,
            None,
            &resp,
        )
        .unwrap_err();
        assert!(matches!(err, NaiveError::DigestMismatch { .. }));
    }

    #[test]
    fn naive_cannot_detect_dropped_rows() {
        // Documented limitation: Naive has no completeness story at all —
        // silently removing a row still verifies.
        let (s, signer) = store();
        let mut resp = s.query(0, 10, None, None);
        resp.rows.remove(4);
        NaiveAuthStore::verify(
            &Acc256::test_default(),
            s.schema(),
            signer.verifier().as_ref(),
            0,
            10,
            None,
            &resp,
        )
        .unwrap();
    }

    #[test]
    fn predicate_filtering() {
        let (s, signer) = store();
        let pred = |t: &Tuple| matches!(t.values[3], Value::Int(v) if v < 50);
        let resp = s.query(0, 39, None, Some(&pred));
        assert!(resp.rows.len() < 40);
        NaiveAuthStore::verify(
            &Acc256::test_default(),
            s.schema(),
            signer.verifier().as_ref(),
            0,
            39,
            None,
            &resp,
        )
        .unwrap();
    }
}
