//! A Devanbu-style Merkle hash tree baseline (paper Section 2, Figure 1).
//!
//! A binary SHA-256 hash tree over the table in key order with a single
//! signed root. Range queries return the matching tuples, the *boundary*
//! tuples immediately outside the range, and the hashes of every maximal
//! subtree not touched by the range — enough for the client to recompute
//! the signed root.
//!
//! Properties the paper contrasts with the VB-tree:
//!
//! * the VO reaches the root, so it carries `O(log N_R)` hashes — it
//!   grows with the database;
//! * projection cannot be done at the server (a leaf hash covers the
//!   whole tuple), so full tuples must be shipped;
//! * completeness *is* provable (an advantage!) but requires exposing
//!   boundary tuples, in tension with access control.

use vbx_crypto::hash::sha256;
use vbx_crypto::{SigVerifier, Signature, Signer};
use vbx_storage::{Schema, Table, Tuple};

/// Verification failures for the Merkle baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MerkleError {
    /// The reconstructed root is not authenticated by the signature —
    /// either the contents were tampered with or the key is wrong.
    RootMismatch,
    /// Rows unsorted / outside the range.
    BadRowSet,
    /// The proof structure is inconsistent with the tree size.
    MalformedProof,
    /// Boundary tuples fail to demonstrate completeness.
    BadBoundary,
    /// Insert with a key that already exists.
    DuplicateKey(u64),
    /// Delete of a missing key.
    KeyNotFound(u64),
}

impl core::fmt::Display for MerkleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MerkleError::RootMismatch => {
                write!(
                    f,
                    "reconstructed root not authenticated (tamper or wrong key)"
                )
            }
            MerkleError::BadRowSet => write!(f, "rows unsorted or out of range"),
            MerkleError::MalformedProof => write!(f, "malformed proof"),
            MerkleError::BadBoundary => write!(f, "boundary tuples do not prove completeness"),
            MerkleError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            MerkleError::KeyNotFound(k) => write!(f, "key {k} not found"),
        }
    }
}

impl std::error::Error for MerkleError {}

fn leaf_hash(schema: &Schema, tuple: &Tuple) -> [u8; 32] {
    // Domain-separated leaf encoding: schema fingerprint ‖ tuple bytes.
    let mut data = Vec::with_capacity(tuple.wire_len() + 34);
    data.push(0x00); // leaf tag
    data.extend_from_slice(&sha256(&schema.fingerprint_bytes()));
    tuple.encode_into(&mut data);
    sha256(&data)
}

fn inner_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut data = [0u8; 65];
    data[0] = 0x01; // inner tag
    data[1..33].copy_from_slice(left);
    data[33..].copy_from_slice(right);
    sha256(&data)
}

/// The authenticated store: tuples in key order plus the full hash tree.
/// `Clone` supports the serving replicas' build-aside-and-swap update
/// path.
#[derive(Clone)]
pub struct MerkleAuthStore {
    schema: Schema,
    tuples: Vec<Tuple>,
    /// `levels[0]` = leaf hashes; `levels.last()` = `[root]`.
    levels: Vec<Vec<[u8; 32]>>,
    root_sig: Signature,
    key_version: u32,
}

/// A range answer with its Merkle proof.
#[derive(Clone, Debug)]
pub struct MerkleResponse {
    /// Matching tuples (full tuples — the scheme cannot project).
    pub rows: Vec<Tuple>,
    /// Tuple immediately left of the range, if any (completeness).
    pub left_boundary: Option<Tuple>,
    /// Tuple immediately right of the range, if any.
    pub right_boundary: Option<Tuple>,
    /// Index of the first returned leaf (including boundaries).
    pub first_leaf: usize,
    /// Hashes of maximal subtrees outside the returned leaf range, in
    /// deterministic traversal order.
    pub proof: Vec<[u8; 32]>,
    /// Total leaves in the tree (needed to re-derive the tree shape).
    pub n_leaves: usize,
    /// Signed root.
    pub root_sig: Signature,
    /// Key version for registry lookup.
    pub key_version: u32,
    /// The serving edge's replication position + newest owner stamp
    /// (default/empty on a standalone store — stamped by the edge
    /// service in cluster deployments, like the VB-tree's responses).
    pub freshness: vbx_core::ResponseFreshness,
}

impl MerkleResponse {
    /// Wire size: tuples + boundaries + 32-byte hashes + signature.
    pub fn wire_bytes(&self) -> usize {
        self.rows.iter().map(Tuple::wire_len).sum::<usize>()
            + self
                .left_boundary
                .iter()
                .chain(self.right_boundary.iter())
                .map(Tuple::wire_len)
                .sum::<usize>()
            + self.proof.len() * 32
            + self.root_sig.len()
            + 24
            + crate::freshness_wire_bytes(&self.freshness)
    }

    /// Number of hash digests in the proof (the `O(log N)` term).
    pub fn proof_hashes(&self) -> usize {
        self.proof.len()
    }
}

impl MerkleAuthStore {
    /// Build from a table and sign the root.
    pub fn build(table: &Table, signer: &dyn Signer) -> Self {
        let schema = table.schema().clone();
        let tuples: Vec<Tuple> = table.iter().cloned().collect();
        let levels = build_levels(&schema, &tuples);
        let root = *levels.last().unwrap().first().unwrap();
        let root_sig = signer.sign(&root_msg(&schema, &root));
        Self {
            schema,
            tuples,
            levels,
            root_sig,
            key_version: signer.key_version(),
        }
    }

    /// Insert a tuple and rebuild the hash levels. The root signature is
    /// *not* refreshed — call [`sign_root`](Self::sign_root) (trusted) or
    /// [`install_root_sig`](Self::install_root_sig) (replica) afterwards.
    pub fn insert_tuple(&mut self, tuple: Tuple) -> Result<(), MerkleError> {
        let pos = self.tuples.partition_point(|t| t.key < tuple.key);
        if self.tuples.get(pos).is_some_and(|t| t.key == tuple.key) {
            return Err(MerkleError::DuplicateKey(tuple.key));
        }
        self.tuples.insert(pos, tuple);
        self.levels = build_levels(&self.schema, &self.tuples);
        Ok(())
    }

    /// Remove a tuple by key and rebuild the hash levels.
    pub fn remove(&mut self, key: u64) -> Result<(), MerkleError> {
        let pos = self.tuples.partition_point(|t| t.key < key);
        if self.tuples.get(pos).is_none_or(|t| t.key != key) {
            return Err(MerkleError::KeyNotFound(key));
        }
        self.tuples.remove(pos);
        self.levels = build_levels(&self.schema, &self.tuples);
        Ok(())
    }

    /// Remove every tuple in `[lo, hi]`, returning how many were removed.
    pub fn remove_range(&mut self, lo: u64, hi: u64) -> usize {
        let before = self.tuples.len();
        self.tuples.retain(|t| t.key < lo || t.key > hi);
        let removed = before - self.tuples.len();
        if removed > 0 {
            self.levels = build_levels(&self.schema, &self.tuples);
        }
        removed
    }

    /// Trusted: re-sign the current root, install the signature, and
    /// return it (for distribution in a signed delta).
    pub fn sign_root(&mut self, signer: &dyn Signer) -> Signature {
        let sig = signer.sign(&root_msg(&self.schema, &self.root()));
        self.root_sig = sig.clone();
        self.key_version = signer.key_version();
        sig
    }

    /// Replica: install a root signature received in a signed delta
    /// (replicas cannot sign; clients will verify it).
    pub fn install_root_sig(&mut self, sig: Signature, key_version: u32) {
        self.root_sig = sig;
        self.key_version = key_version;
    }

    /// Key version the root was signed under.
    pub fn key_version(&self) -> u32 {
        self.key_version
    }

    /// Restore-time audit for a store received over an untrusted
    /// channel: recompute the root from the tuples and check the stored
    /// signature authenticates it under `verifier`.
    pub fn verify_root_sig(&self, verifier: &dyn SigVerifier) -> bool {
        verifier.verify(&root_msg(&self.schema, &self.root()), &self.root_sig)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The root hash.
    pub fn root(&self) -> [u8; 32] {
        *self.levels.last().unwrap().first().unwrap()
    }

    /// Serialise the store for a durability checkpoint: schema, key
    /// version, root signature, and the tuples. The hash levels are
    /// derived data and rebuilt deterministically on decode.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.tuples.len() * 64);
        self.schema.encode_into(&mut out);
        out.extend_from_slice(&self.key_version.to_be_bytes());
        out.extend_from_slice(&(self.root_sig.len() as u16).to_be_bytes());
        out.extend_from_slice(self.root_sig.as_bytes());
        out.extend_from_slice(&(self.tuples.len() as u32).to_be_bytes());
        for t in &self.tuples {
            t.encode_into(&mut out);
        }
        out
    }

    /// Decode a checkpointed store, rebuilding the hash levels from the
    /// tuples (the same deterministic construction as `build`, so the
    /// recovered store is byte-identical). Never panics on hostile
    /// bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, vbx_core::CoreError> {
        let corrupt = |m: &str| vbx_core::CoreError::Wire(m.to_string());
        let mut buf = bytes;
        let schema = Schema::decode(&mut buf).map_err(vbx_core::CoreError::Storage)?;
        if buf.len() < 6 {
            return Err(corrupt("merkle store header truncated"));
        }
        let key_version = u32::from_be_bytes(buf[..4].try_into().unwrap());
        let sig_len = u16::from_be_bytes(buf[4..6].try_into().unwrap()) as usize;
        buf = &buf[6..];
        if buf.len() < sig_len {
            return Err(corrupt("merkle root signature truncated"));
        }
        let root_sig = Signature(buf[..sig_len].to_vec());
        buf = &buf[sig_len..];
        if buf.len() < 4 {
            return Err(corrupt("merkle tuple count truncated"));
        }
        let n = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
        buf = &buf[4..];
        let mut tuples = Vec::with_capacity(n.min(1 << 20));
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let t = Tuple::decode(&mut buf).map_err(vbx_core::CoreError::Storage)?;
            if prev.is_some_and(|p| t.key <= p) {
                return Err(corrupt("merkle tuples out of key order"));
            }
            prev = Some(t.key);
            tuples.push(t);
        }
        if !buf.is_empty() {
            return Err(corrupt("trailing bytes in merkle store"));
        }
        let levels = build_levels(&schema, &tuples);
        Ok(Self {
            schema,
            tuples,
            levels,
            root_sig,
            key_version,
        })
    }

    /// Answer a key-range query with a completeness-proving VO.
    pub fn query(&self, lo: u64, hi: u64) -> MerkleResponse {
        // Returned window: matching tuples plus one boundary tuple on
        // each side (where they exist).
        let start = self.tuples.partition_point(|t| t.key < lo);
        let end = self.tuples.partition_point(|t| t.key <= hi);
        let first_leaf = start.saturating_sub(1);
        let last_leaf_excl = (end + 1).min(self.tuples.len());

        let rows = self.tuples[start..end].to_vec();
        let left_boundary = (start > 0).then(|| self.tuples[start - 1].clone());
        let right_boundary = (end < self.tuples.len()).then(|| self.tuples[end].clone());

        let mut proof = Vec::new();
        if !self.tuples.is_empty() && first_leaf < last_leaf_excl {
            self.collect_proof(0, first_leaf, last_leaf_excl, &mut proof);
        } else if !self.tuples.is_empty() {
            // Degenerate: nothing returned at all (empty table handled
            // by n_leaves == 0). Prove the whole tree via the root only.
            proof.push(self.root());
        }
        MerkleResponse {
            rows,
            left_boundary,
            right_boundary,
            first_leaf,
            proof,
            n_leaves: self.tuples.len(),
            root_sig: self.root_sig.clone(),
            key_version: self.key_version,
            freshness: vbx_core::ResponseFreshness::default(),
        }
    }

    /// Emit hashes of maximal subtrees whose leaf span does not
    /// intersect `[lo, hi)`, in op-stream order: the server replays the
    /// same [`proof_ops`] program the client will verify with, filling
    /// in a hash wherever the program demands proof material.
    fn collect_proof(&self, _level_unused: usize, lo: usize, hi: usize, out: &mut Vec<[u8; 32]>) {
        for op in proof_ops(self.tuples.len(), lo, hi) {
            if let MerkleOp::PushProof { level, index } = op {
                out.push(self.levels[level as usize][index as usize]);
            }
        }
    }

    /// Client-side verification: recompute the window's leaf hashes,
    /// merge with the proof hashes, rebuild the root, check the
    /// signature, and check range completeness via the boundaries.
    pub fn verify(
        schema: &Schema,
        verifier: &dyn SigVerifier,
        lo: u64,
        hi: u64,
        resp: &MerkleResponse,
    ) -> Result<(), MerkleError> {
        // 1. Row sanity.
        let mut prev = None;
        for t in &resp.rows {
            if t.key < lo || t.key > hi || prev.is_some_and(|p| t.key <= p) {
                return Err(MerkleError::BadRowSet);
            }
            prev = Some(t.key);
        }
        // 2. Boundary sanity: boundaries must be strictly outside.
        if let Some(b) = &resp.left_boundary {
            if b.key >= lo {
                return Err(MerkleError::BadBoundary);
            }
        }
        if let Some(b) = &resp.right_boundary {
            if b.key <= hi {
                return Err(MerkleError::BadBoundary);
            }
        }

        // 3. Rebuild the window of leaf hashes.
        let window: Vec<&Tuple> = resp
            .left_boundary
            .iter()
            .chain(resp.rows.iter())
            .chain(resp.right_boundary.iter())
            .collect();
        // Window keys must themselves be sorted (boundary adjacency).
        for w in window.windows(2) {
            if w[0].key >= w[1].key {
                return Err(MerkleError::BadBoundary);
            }
        }
        if resp.n_leaves == 0 {
            if !window.is_empty() {
                return Err(MerkleError::MalformedProof);
            }
            let root = sha256(b"empty-merkle-tree");
            return check_root(schema, verifier, &root, &resp.root_sig);
        }
        let window_hashes: Vec<[u8; 32]> = window.iter().map(|t| leaf_hash(schema, t)).collect();

        // 4. Recompute the root by mirroring the server's traversal.
        let mut proof_iter = resp.proof.iter();
        let mut leaf_iter = window_hashes.iter();
        let wlo = resp.first_leaf;
        let whi = resp.first_leaf + window_hashes.len();
        if whi > resp.n_leaves {
            return Err(MerkleError::MalformedProof);
        }
        let height = levels_for(resp.n_leaves);
        let root = rebuild(
            height - 1,
            0,
            resp.n_leaves,
            wlo,
            whi,
            &mut proof_iter,
            &mut leaf_iter,
        )
        .ok_or(MerkleError::MalformedProof)?;
        if proof_iter.next().is_some() || leaf_iter.next().is_some() {
            return Err(MerkleError::MalformedProof);
        }
        check_root(schema, verifier, &root, &resp.root_sig)?;

        // 5. Completeness: the window must cover [lo, hi] contiguously —
        // guaranteed because the proof pinned `first_leaf .. whi` as
        // consecutive leaves and boundaries are strictly outside. The
        // only remaining hole: missing boundary when the range does not
        // touch the table edge. Detect via first_leaf/window shape.
        if resp.left_boundary.is_none() && resp.first_leaf != 0 {
            return Err(MerkleError::BadBoundary);
        }
        if resp.right_boundary.is_none() && whi != resp.n_leaves {
            return Err(MerkleError::BadBoundary);
        }
        Ok(())
    }
}

/// Rebuild all hash levels bottom-up from the sorted tuples.
fn build_levels(schema: &Schema, tuples: &[Tuple]) -> Vec<Vec<[u8; 32]>> {
    let mut levels = Vec::new();
    let leaves: Vec<[u8; 32]> = tuples.iter().map(|t| leaf_hash(schema, t)).collect();
    let mut current = if leaves.is_empty() {
        vec![sha256(b"empty-merkle-tree")]
    } else {
        leaves
    };
    levels.push(current.clone());
    while current.len() > 1 {
        let mut next = Vec::with_capacity(current.len().div_ceil(2));
        for pair in current.chunks(2) {
            if pair.len() == 2 {
                next.push(inner_hash(&pair[0], &pair[1]));
            } else {
                // Odd node promoted unchanged (Bitcoin-style trees
                // duplicate instead; promotion avoids the duplication
                // ambiguity).
                next.push(pair[0]);
            }
        }
        levels.push(next.clone());
        current = next;
    }
    levels
}

fn root_msg(schema: &Schema, root: &[u8; 32]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(64);
    msg.extend_from_slice(b"vbx-merkle-root");
    msg.extend_from_slice(&sha256(&schema.fingerprint_bytes()));
    msg.extend_from_slice(root);
    msg
}

fn check_root(
    schema: &Schema,
    verifier: &dyn SigVerifier,
    root: &[u8; 32],
    sig: &Signature,
) -> Result<(), MerkleError> {
    if verifier.verify(&root_msg(schema, root), sig) {
        Ok(())
    } else {
        Err(MerkleError::RootMismatch)
    }
}

/// Number of levels in a tree over `n` leaves (≥ 1).
fn levels_for(n: usize) -> usize {
    let mut levels = 1;
    let mut width = n.max(1);
    while width > 1 {
        width = width.div_ceil(2);
        levels += 1;
    }
    levels
}

/// Mirror of the server's `walk`, consuming proof hashes for untouched
/// subtrees and window leaf hashes for covered leaves.
fn rebuild<'a>(
    level: usize,
    index: usize,
    n_leaves: usize,
    lo: usize,
    hi: usize,
    proof: &mut core::slice::Iter<'a, [u8; 32]>,
    leaves: &mut core::slice::Iter<'a, [u8; 32]>,
) -> Option<[u8; 32]> {
    let span = 1usize << level;
    let first = index * span;
    let last = (first + span).min(n_leaves);
    if first >= last {
        return None; // phantom
    }
    if last <= lo || first >= hi {
        return proof.next().copied();
    }
    if level == 0 {
        return leaves.next().copied();
    }
    if lo <= first && last <= hi && level == 0 {
        return leaves.next().copied();
    }
    let left = rebuild(level - 1, 2 * index, n_leaves, lo, hi, proof, leaves)?;
    match rebuild(level - 1, 2 * index + 1, n_leaves, lo, hi, proof, leaves) {
        Some(right) => Some(inner_hash(&left, &right)),
        None => Some(left), // odd promotion
    }
}

/// One instruction of the Merkle proof stack machine.
///
/// The program is **derived, not shipped**: both parties compute it
/// from public shape data (`n_leaves` + the returned window), so a
/// compromised edge cannot steer the traversal — it only supplies the
/// hashes the program demands, exactly as many as the shape dictates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MerkleOp {
    /// Push the next untouched-subtree hash from the proof. The node
    /// coordinates let the server fill in the hash; the client consumes
    /// the proof sequentially and ignores them.
    PushProof {
        /// Tree level (0 = leaves).
        level: u8,
        /// Node index within the level.
        index: u32,
    },
    /// Recompute and push the next window leaf's hash.
    PushLeaf,
    /// Pop the right then the left hash, push their inner hash.
    Join,
}

/// The proof program for a tree of `n_leaves` with returned window
/// `[window_lo, window_hi)`: a post-order flattening of the proof
/// traversal, generated iteratively (explicit work stack, no
/// recursion). Executing it with [`verify_merkle_ops`] rebuilds the
/// root holding at most `O(depth)` hashes at once.
pub fn proof_ops(n_leaves: usize, window_lo: usize, window_hi: usize) -> Vec<MerkleOp> {
    enum Item {
        Node { level: usize, index: usize },
        Join,
    }
    let mut ops = Vec::new();
    if n_leaves == 0 || window_lo >= window_hi {
        return ops;
    }
    let mut stack = vec![Item::Node {
        level: levels_for(n_leaves) - 1,
        index: 0,
    }];
    while let Some(item) = stack.pop() {
        match item {
            Item::Join => ops.push(MerkleOp::Join),
            Item::Node { level, index } => {
                let span = 1usize << level;
                let first = index * span;
                let last = (first + span).min(n_leaves);
                if first >= last {
                    continue; // phantom node beyond the last leaf
                }
                if last <= window_lo || first >= window_hi {
                    ops.push(MerkleOp::PushProof {
                        level: level as u8,
                        index: index as u32,
                    });
                    continue;
                }
                if level == 0 {
                    ops.push(MerkleOp::PushLeaf);
                    continue;
                }
                // Post-order via LIFO: left pops first, then right,
                // then the Join. A phantom right child (odd promotion)
                // gets no Join — the left hash stands for the parent.
                let child_span = span / 2;
                if (2 * index + 1) * child_span < n_leaves {
                    stack.push(Item::Join);
                    stack.push(Item::Node {
                        level: level - 1,
                        index: 2 * index + 1,
                    });
                }
                stack.push(Item::Node {
                    level: level - 1,
                    index: 2 * index,
                });
            }
        }
    }
    ops
}

/// Statistics from the op-stream verifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MerkleOpsReport {
    /// Instructions executed.
    pub ops: usize,
    /// Deepest the hash stack ever got (≤ tree depth + 1).
    pub peak_stack_depth: usize,
}

/// Op-stream verification: the same checks as
/// [`MerkleAuthStore::verify`], but the root is rebuilt by an iterative
/// stack machine executing [`proof_ops`] instead of a recursive mirror
/// of the server traversal — constant code paths, `O(depth)` live
/// hashes, and an execution trace ([`MerkleOpsReport`]) for the bench
/// harness.
pub fn verify_merkle_ops(
    schema: &Schema,
    verifier: &dyn SigVerifier,
    lo: u64,
    hi: u64,
    resp: &MerkleResponse,
) -> Result<MerkleOpsReport, MerkleError> {
    // Row and boundary sanity — identical to the recursive path.
    let mut prev = None;
    for t in &resp.rows {
        if t.key < lo || t.key > hi || prev.is_some_and(|p| t.key <= p) {
            return Err(MerkleError::BadRowSet);
        }
        prev = Some(t.key);
    }
    if let Some(b) = &resp.left_boundary {
        if b.key >= lo {
            return Err(MerkleError::BadBoundary);
        }
    }
    if let Some(b) = &resp.right_boundary {
        if b.key <= hi {
            return Err(MerkleError::BadBoundary);
        }
    }
    let window: Vec<&Tuple> = resp
        .left_boundary
        .iter()
        .chain(resp.rows.iter())
        .chain(resp.right_boundary.iter())
        .collect();
    for w in window.windows(2) {
        if w[0].key >= w[1].key {
            return Err(MerkleError::BadBoundary);
        }
    }
    if resp.n_leaves == 0 {
        if !window.is_empty() {
            return Err(MerkleError::MalformedProof);
        }
        let root = sha256(b"empty-merkle-tree");
        check_root(schema, verifier, &root, &resp.root_sig)?;
        return Ok(MerkleOpsReport::default());
    }
    let wlo = resp.first_leaf;
    let whi = resp.first_leaf + window.len();
    if whi > resp.n_leaves {
        return Err(MerkleError::MalformedProof);
    }

    // Degenerate nothing-returned answer: the proof is the bare root.
    if window.is_empty() {
        let [root] = resp.proof.as_slice() else {
            return Err(MerkleError::MalformedProof);
        };
        check_root(schema, verifier, root, &resp.root_sig)?;
        if resp.left_boundary.is_none() && resp.first_leaf != 0 {
            return Err(MerkleError::BadBoundary);
        }
        if resp.right_boundary.is_none() && whi != resp.n_leaves {
            return Err(MerkleError::BadBoundary);
        }
        return Ok(MerkleOpsReport {
            ops: 1,
            peak_stack_depth: 1,
        });
    }

    // The stack machine: leaf hashes are recomputed on demand, so only
    // the in-flight spine of the tree is ever resident.
    let mut stack: Vec<[u8; 32]> = Vec::new();
    let mut report = MerkleOpsReport::default();
    let mut proof_iter = resp.proof.iter();
    let mut leaf_iter = window.iter();
    for op in proof_ops(resp.n_leaves, wlo, whi) {
        report.ops += 1;
        match op {
            MerkleOp::PushProof { .. } => {
                stack.push(*proof_iter.next().ok_or(MerkleError::MalformedProof)?);
            }
            MerkleOp::PushLeaf => {
                let t = leaf_iter.next().ok_or(MerkleError::MalformedProof)?;
                stack.push(leaf_hash(schema, t));
            }
            MerkleOp::Join => {
                let right = stack.pop().ok_or(MerkleError::MalformedProof)?;
                let left = stack.pop().ok_or(MerkleError::MalformedProof)?;
                stack.push(inner_hash(&left, &right));
            }
        }
        report.peak_stack_depth = report.peak_stack_depth.max(stack.len());
    }
    if proof_iter.next().is_some() || leaf_iter.next().is_some() || stack.len() != 1 {
        return Err(MerkleError::MalformedProof);
    }
    check_root(schema, verifier, &stack[0], &resp.root_sig)?;
    if resp.left_boundary.is_none() && resp.first_leaf != 0 {
        return Err(MerkleError::BadBoundary);
    }
    if resp.right_boundary.is_none() && whi != resp.n_leaves {
        return Err(MerkleError::BadBoundary);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_crypto::signer::MockSigner;
    use vbx_storage::workload::WorkloadSpec;

    fn store(rows: u64) -> (MerkleAuthStore, MockSigner) {
        let table = WorkloadSpec::new(rows, 3, 8).build();
        let signer = MockSigner::new(8);
        (MerkleAuthStore::build(&table, &signer), signer)
    }

    #[test]
    fn roundtrip_various_ranges() {
        let (s, signer) = store(50);
        let v = signer.verifier();
        for (lo, hi) in [
            (0u64, 49u64),
            (10, 20),
            (0, 0),
            (49, 49),
            (25, 100),
            (60, 70),
        ] {
            let resp = s.query(lo, hi);
            MerkleAuthStore::verify(s.schema(), v.as_ref(), lo, hi, &resp)
                .unwrap_or_else(|e| panic!("range [{lo},{hi}]: {e}"));
        }
    }

    #[test]
    fn empty_table() {
        let (s, signer) = store(0);
        let resp = s.query(0, 10);
        assert!(resp.rows.is_empty());
        MerkleAuthStore::verify(s.schema(), signer.verifier().as_ref(), 0, 10, &resp).unwrap();
    }

    #[test]
    fn single_tuple_table() {
        let (s, signer) = store(1);
        let resp = s.query(0, 0);
        assert_eq!(resp.rows.len(), 1);
        MerkleAuthStore::verify(s.schema(), signer.verifier().as_ref(), 0, 0, &resp).unwrap();
    }

    #[test]
    fn odd_sized_trees() {
        for n in [1u64, 2, 3, 5, 7, 11, 17, 31, 33] {
            let (s, signer) = store(n);
            let hi = n.saturating_sub(1);
            let resp = s.query(0, hi);
            MerkleAuthStore::verify(s.schema(), signer.verifier().as_ref(), 0, hi, &resp)
                .unwrap_or_else(|e| panic!("n = {n}: {e}"));
        }
    }

    #[test]
    fn tampered_tuple_detected() {
        let (s, signer) = store(30);
        let mut resp = s.query(5, 15);
        resp.rows[2].values[0] = vbx_storage::Value::from("evil");
        let err = MerkleAuthStore::verify(s.schema(), signer.verifier().as_ref(), 5, 15, &resp)
            .unwrap_err();
        assert_eq!(err, MerkleError::RootMismatch);
    }

    #[test]
    fn dropped_tuple_detected() {
        // Unlike Naive and the VB-tree, the Merkle range proof *does*
        // catch dropped tuples.
        let (s, signer) = store(30);
        let mut resp = s.query(5, 15);
        resp.rows.remove(3);
        let err = MerkleAuthStore::verify(s.schema(), signer.verifier().as_ref(), 5, 15, &resp)
            .unwrap_err();
        assert!(matches!(
            err,
            MerkleError::RootMismatch | MerkleError::MalformedProof
        ));
    }

    #[test]
    fn missing_boundary_detected() {
        let (s, signer) = store(30);
        let mut resp = s.query(5, 15);
        resp.left_boundary = None;
        let err = MerkleAuthStore::verify(s.schema(), signer.verifier().as_ref(), 5, 15, &resp)
            .unwrap_err();
        assert!(matches!(
            err,
            MerkleError::BadBoundary | MerkleError::RootMismatch | MerkleError::MalformedProof
        ));
    }

    #[test]
    fn proof_grows_with_log_n() {
        // The paper's critique: MHT VOs grow with the table size.
        let q = (100u64, 119u64);
        let mut hashes = Vec::new();
        for rows in [200u64, 1600, 12800] {
            let (s, _) = store(rows);
            let resp = s.query(q.0, q.1);
            assert_eq!(resp.rows.len(), 20);
            hashes.push(resp.proof_hashes());
        }
        assert!(
            hashes[0] < hashes[1] && hashes[1] < hashes[2],
            "proof sizes {hashes:?} must grow with N"
        );
    }

    #[test]
    fn ops_verifier_agrees_with_recursive_everywhere() {
        for rows in [1u64, 2, 3, 7, 16, 31, 50, 63] {
            let (s, signer) = store(rows);
            let v = signer.verifier();
            for (lo, hi) in [
                (0u64, rows.saturating_sub(1)),
                (0, 0),
                (rows / 3, 2 * rows / 3 + 1),
                (rows, rows + 10),
                (rows.saturating_sub(1), rows.saturating_sub(1)),
            ] {
                let resp = s.query(lo, hi);
                let recursive = MerkleAuthStore::verify(s.schema(), v.as_ref(), lo, hi, &resp);
                let ops = verify_merkle_ops(s.schema(), v.as_ref(), lo, hi, &resp);
                assert_eq!(
                    recursive.is_ok(),
                    ops.is_ok(),
                    "rows={rows} [{lo},{hi}]: recursive {recursive:?} vs ops {ops:?}"
                );
                let report = ops.unwrap();
                let depth = levels_for(rows as usize);
                assert!(
                    report.peak_stack_depth <= depth + 1,
                    "rows={rows} [{lo},{hi}]: peak {} > depth {depth} + 1",
                    report.peak_stack_depth
                );
            }
        }
    }

    #[test]
    fn ops_verifier_detects_every_tamper_the_recursive_one_does() {
        let (s, signer) = store(40);
        let v = signer.verifier();
        let honest = s.query(8, 24);
        verify_merkle_ops(s.schema(), v.as_ref(), 8, 24, &honest).unwrap();

        type TamperFn = fn(&mut MerkleResponse);
        let tampers: [(&str, TamperFn); 5] = [
            ("mutate", |r| {
                r.rows[1].values[0] = vbx_storage::Value::from("evil")
            }),
            ("drop", |r| {
                r.rows.remove(2);
            }),
            ("inject", |r| {
                let mut t = r.rows[0].clone();
                t.key += 1;
                r.rows.insert(1, t);
            }),
            ("strip boundary", |r| r.left_boundary = None),
            ("truncate proof", |r| {
                r.proof.pop();
            }),
        ];
        for (name, tamper) in tampers {
            let mut resp = honest.clone();
            tamper(&mut resp);
            let recursive = MerkleAuthStore::verify(s.schema(), v.as_ref(), 8, 24, &resp);
            let ops = verify_merkle_ops(s.schema(), v.as_ref(), 8, 24, &resp);
            assert!(recursive.is_err(), "{name}: recursive must detect");
            assert!(ops.is_err(), "{name}: ops must detect");
        }
    }

    #[test]
    fn server_proof_comes_from_the_same_op_program() {
        // collect_proof replays proof_ops, so the number of PushProof
        // ops must equal the proof length the client consumes.
        let (s, _) = store(50);
        for (lo, hi) in [(0u64, 49u64), (10, 20), (0, 0), (49, 49), (25, 100)] {
            let resp = s.query(lo, hi);
            let window = resp.first_leaf
                ..resp.first_leaf
                    + resp.rows.len()
                    + usize::from(resp.left_boundary.is_some())
                    + usize::from(resp.right_boundary.is_some());
            let pushes = proof_ops(resp.n_leaves, window.start, window.end)
                .iter()
                .filter(|op| matches!(op, MerkleOp::PushProof { .. }))
                .count();
            assert_eq!(pushes, resp.proof.len(), "[{lo},{hi}]");
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let (s, _) = store(20);
        let wrong = MockSigner::new(1234);
        let resp = s.query(0, 5);
        let err = MerkleAuthStore::verify(s.schema(), wrong.verifier().as_ref(), 0, 5, &resp)
            .unwrap_err();
        assert_eq!(err, MerkleError::RootMismatch);
    }
}
