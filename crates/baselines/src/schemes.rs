//! [`AuthScheme`] implementations for the two baselines, so the edge
//! deployment, tamper scenarios, and measurement harness run the same
//! pipeline over the Naive strategy and the Merkle hash tree as over the
//! VB-tree.

use crate::merkle::{MerkleAuthStore, MerkleError, MerkleResponse};
use crate::naive::{NaiveAuthStore, NaiveError, NaiveResponse};
use std::sync::Arc;
use vbx_core::durable::DurableScheme;
use vbx_core::scheme::{
    drop_middle_row, inject_duplicate_last, mutate_first_value, update_batch_atomic, AuthScheme,
    TamperMode, UpdateOp, VerifiedBatch,
};
use vbx_core::vo::{RangeQuery, ResultRow};
use vbx_core::{CoreError, CostMeter, ResponseFreshness, StoreRestorer, SyncError};
use vbx_crypto::accum::{Accumulator, SignedDigest};
use vbx_crypto::{SigVerifier, Signature, Signer};
use vbx_storage::{Schema, Table};

/// The Naive strategy as an [`AuthScheme`]: per-attribute and per-tuple
/// signed digests, shipped with every result row.
#[derive(Clone)]
pub struct NaiveScheme<const L: usize> {
    /// Digest algebra (public group parameters).
    pub acc: Accumulator<L>,
}

impl<const L: usize> NaiveScheme<L> {
    /// A scheme descriptor from public parameters.
    pub fn new(acc: Accumulator<L>) -> Self {
        Self { acc }
    }
}

impl<const L: usize> AuthScheme for NaiveScheme<L> {
    const NAME: &'static str = "naive";

    type Store = NaiveAuthStore<L>;
    type Response = NaiveResponse<L>;
    type Vo = Vec<SignedDigest<L>>;
    type Error = NaiveError;
    /// Insert payload: the new tuple's attribute digests in schema order,
    /// then its tuple digest. Deletes need no signed material.
    type Delta = Vec<SignedDigest<L>>;

    fn build(&self, table: &Table, signer: &dyn Signer) -> NaiveAuthStore<L> {
        NaiveAuthStore::build(table, self.acc.clone(), signer)
    }

    fn range_query(&self, store: &NaiveAuthStore<L>, query: &RangeQuery) -> NaiveResponse<L> {
        store.query(query.lo, query.hi, query.projection.as_deref(), None)
    }

    fn update(
        &self,
        store: &mut NaiveAuthStore<L>,
        op: &UpdateOp,
        signer: &dyn Signer,
    ) -> Result<Self::Delta, NaiveError> {
        match op {
            UpdateOp::Insert(tuple) => {
                let (attrs, tuple_digest) =
                    NaiveAuthStore::sign_tuple(store.schema(), &self.acc, signer, tuple);
                let mut payload = attrs.clone();
                payload.push(tuple_digest.clone());
                store.insert_signed(tuple.clone(), attrs, tuple_digest, signer.key_version())?;
                Ok(payload)
            }
            UpdateOp::Delete(key) => {
                store.remove(*key)?;
                Ok(Vec::new())
            }
            UpdateOp::DeleteRange(lo, hi) => {
                store.remove_range(*lo, *hi);
                Ok(Vec::new())
            }
        }
    }

    /// The per-op loop with the trait's atomicity contract: a failing
    /// op restores the pre-batch store (see `update_batch_atomic`).
    fn update_batch(
        &self,
        store: &mut NaiveAuthStore<L>,
        ops: &[UpdateOp],
        signer: &dyn Signer,
    ) -> Result<Vec<Self::Delta>, NaiveError> {
        update_batch_atomic(self, store, ops, signer)
    }

    fn apply_delta(
        &self,
        store: &mut NaiveAuthStore<L>,
        op: &UpdateOp,
        payload: &Self::Delta,
        key_version: u32,
    ) -> Result<(), NaiveError> {
        match op {
            UpdateOp::Insert(tuple) => {
                if payload.len() != tuple.values.len() + 1 {
                    return Err(NaiveError::ReplicaDivergence(format!(
                        "insert payload has {} digests, tuple needs {}",
                        payload.len(),
                        tuple.values.len() + 1
                    )));
                }
                // The replica recomputes every exponent from the tuple it
                // was told to insert; a man-in-the-middle altering the
                // tuple cannot re-sign matching digests.
                let schema = store.schema().clone();
                for (col, (v, d)) in tuple.values.iter().zip(payload.iter()).enumerate() {
                    let input = schema.attribute_digest_input(col, tuple.key, v);
                    if self.acc.exp_from_bytes(&input) != d.exp {
                        return Err(NaiveError::ReplicaDivergence(format!(
                            "attribute {col} digest does not match replayed tuple {}",
                            tuple.key
                        )));
                    }
                }
                let attrs = payload[..tuple.values.len()].to_vec();
                let tuple_digest = payload[tuple.values.len()].clone();
                let expected = self.acc.combine_all(attrs.iter().map(|d| &d.exp));
                if tuple_digest.exp != expected {
                    return Err(NaiveError::ReplicaDivergence(format!(
                        "tuple digest does not combine from attributes for key {}",
                        tuple.key
                    )));
                }
                store.insert_signed(tuple.clone(), attrs, tuple_digest, key_version)
            }
            UpdateOp::Delete(key) => store.remove(*key),
            UpdateOp::DeleteRange(lo, hi) => {
                store.remove_range(*lo, *hi);
                Ok(())
            }
        }
    }

    fn verify(
        &self,
        schema: &Schema,
        verifier: &dyn SigVerifier,
        query: &RangeQuery,
        resp: &NaiveResponse<L>,
        meter: &mut CostMeter,
    ) -> Result<VerifiedBatch, NaiveError> {
        let sig_checks = NaiveAuthStore::verify(
            &self.acc,
            schema,
            verifier,
            query.lo,
            query.hi,
            query.projection.as_deref(),
            resp,
        )?;
        let n_cols = schema.num_columns();
        let returned = query.returned_columns(n_cols).len();
        // (A.2): per row, Q_C attribute hashes and N_C combines; one
        // signature decryption per shipped digest.
        meter.hash_ops += (resp.rows.len() * returned) as u64;
        meter.combine_ops += (resp.rows.len() * n_cols) as u64;
        meter.verify_ops += sig_checks as u64;
        Ok(VerifiedBatch {
            rows: Self::response_rows(resp),
            signatures_checked: sig_checks,
        })
    }

    fn vo(resp: &NaiveResponse<L>) -> Self::Vo {
        resp.rows
            .iter()
            .flat_map(|r| {
                std::iter::once(r.tuple_digest.clone()).chain(r.filtered_attrs.iter().cloned())
            })
            .collect()
    }

    fn response_rows(resp: &NaiveResponse<L>) -> Vec<ResultRow> {
        resp.rows
            .iter()
            .map(|r| ResultRow {
                key: r.key,
                values: r.values.clone(),
            })
            .collect()
    }

    fn response_wire_bytes(resp: &NaiveResponse<L>) -> usize {
        resp.wire_bytes()
    }

    fn vo_digest_count(resp: &NaiveResponse<L>) -> usize {
        resp.digest_count()
    }

    fn response_key_version(resp: &NaiveResponse<L>) -> u32 {
        resp.key_version
    }

    fn stamp_freshness(resp: &mut NaiveResponse<L>, freshness: &ResponseFreshness) {
        resp.freshness = freshness.clone();
    }

    fn response_freshness(resp: &NaiveResponse<L>) -> Option<&ResponseFreshness> {
        Some(&resp.freshness)
    }

    fn tamper(
        &self,
        _store: &NaiveAuthStore<L>,
        _query: &RangeQuery,
        resp: &mut NaiveResponse<L>,
        mode: &TamperMode,
    ) {
        match mode {
            TamperMode::None => {}
            TamperMode::MutateValue => {
                if let Some(row) = resp.rows.first_mut() {
                    mutate_first_value(&mut row.values);
                }
            }
            TamperMode::InjectRow => {
                inject_duplicate_last(&mut resp.rows, |t| t.key += 1);
            }
            TamperMode::DropRow => {
                drop_middle_row(&mut resp.rows);
            }
            TamperMode::DropAndReclassify { key } => {
                // Naive has no completeness material at all: dropping a
                // row needs no reclassification and goes undetected.
                resp.rows.retain(|r| r.key != *key);
            }
        }
    }

    fn supports_projection(&self) -> bool {
        true
    }

    fn proves_completeness(&self) -> bool {
        false
    }

    fn sync_chunk_count(&self, _store: &NaiveAuthStore<L>) -> usize {
        1
    }

    fn encode_sync_chunk(
        &self,
        store: &NaiveAuthStore<L>,
        index: usize,
    ) -> Result<Vec<u8>, SyncError> {
        if index != 0 {
            return Err(SyncError::NoSuchChunk {
                index: index as u32,
                total: 1,
            });
        }
        Ok(DurableScheme::encode_store(self, store))
    }

    fn begin_restore(
        &self,
        verifier: Arc<dyn SigVerifier>,
    ) -> Box<dyn StoreRestorer<NaiveAuthStore<L>>> {
        let acc = self.acc.clone();
        Box::new(BlobRestorer::new(move |bytes: &[u8]| {
            let store = NaiveAuthStore::decode(bytes, &acc).map_err(SyncError::Wire)?;
            store
                .check_signatures(&acc, verifier.as_ref())
                .map_err(|e| match e {
                    NaiveError::BadSignature { .. } => SyncError::BadSignature(e.to_string()),
                    other => SyncError::DigestMismatch(other.to_string()),
                })?;
            Ok(store)
        }))
    }
}

/// A Merkle response's detachable proof material.
#[derive(Clone, Debug)]
pub struct MerkleVo {
    /// Hashes of untouched maximal subtrees.
    pub proof: Vec<[u8; 32]>,
    /// The signed root.
    pub root_sig: Signature,
}

/// The Devanbu-style Merkle hash tree as an [`AuthScheme`]: a single
/// signed root, `O(log N)` proofs, provable completeness, no server-side
/// projection.
#[derive(Clone, Copy, Debug, Default)]
pub struct MerkleScheme;

impl AuthScheme for MerkleScheme {
    const NAME: &'static str = "merkle";

    type Store = MerkleAuthStore;
    type Response = MerkleResponse;
    type Vo = MerkleVo;
    type Error = MerkleError;
    /// The freshly signed root after the operation.
    type Delta = Signature;

    fn build(&self, table: &Table, signer: &dyn Signer) -> MerkleAuthStore {
        MerkleAuthStore::build(table, signer)
    }

    fn range_query(&self, store: &MerkleAuthStore, query: &RangeQuery) -> MerkleResponse {
        // The scheme cannot project: leaf hashes cover whole tuples, so
        // the projection (if any) is ignored and full tuples shipped.
        store.query(query.lo, query.hi)
    }

    fn update(
        &self,
        store: &mut MerkleAuthStore,
        op: &UpdateOp,
        signer: &dyn Signer,
    ) -> Result<Self::Delta, MerkleError> {
        match op {
            UpdateOp::Insert(tuple) => store.insert_tuple(tuple.clone())?,
            UpdateOp::Delete(key) => store.remove(*key)?,
            UpdateOp::DeleteRange(lo, hi) => {
                store.remove_range(*lo, *hi);
            }
        }
        Ok(store.sign_root(signer))
    }

    /// The per-op loop with the trait's atomicity contract: a failing
    /// op restores the pre-batch store (see `update_batch_atomic`).
    fn update_batch(
        &self,
        store: &mut MerkleAuthStore,
        ops: &[UpdateOp],
        signer: &dyn Signer,
    ) -> Result<Vec<Self::Delta>, MerkleError> {
        update_batch_atomic(self, store, ops, signer)
    }

    fn apply_delta(
        &self,
        store: &mut MerkleAuthStore,
        op: &UpdateOp,
        payload: &Self::Delta,
        key_version: u32,
    ) -> Result<(), MerkleError> {
        match op {
            UpdateOp::Insert(tuple) => store.insert_tuple(tuple.clone())?,
            UpdateOp::Delete(key) => store.remove(*key)?,
            UpdateOp::DeleteRange(lo, hi) => {
                store.remove_range(*lo, *hi);
            }
        }
        // Replicas cannot verify the new root signature themselves (no
        // public-key material at the edge in this model); clients will.
        store.install_root_sig(payload.clone(), key_version);
        Ok(())
    }

    fn verify(
        &self,
        schema: &Schema,
        verifier: &dyn SigVerifier,
        query: &RangeQuery,
        resp: &MerkleResponse,
        meter: &mut CostMeter,
    ) -> Result<VerifiedBatch, MerkleError> {
        MerkleAuthStore::verify(schema, verifier, query.lo, query.hi, resp)?;
        // Cost accounting: one leaf hash per window tuple, one inner
        // hash per recombination step (≈ window + proof nodes merged
        // down to the root), one signature check on the root.
        let window = resp.rows.len()
            + usize::from(resp.left_boundary.is_some())
            + usize::from(resp.right_boundary.is_some());
        meter.hash_ops += window as u64;
        meter.combine_ops += (window + resp.proof.len()).saturating_sub(1) as u64;
        meter.verify_ops += 1;
        Ok(VerifiedBatch {
            rows: Self::response_rows(resp),
            signatures_checked: 1,
        })
    }

    fn vo(resp: &MerkleResponse) -> MerkleVo {
        MerkleVo {
            proof: resp.proof.clone(),
            root_sig: resp.root_sig.clone(),
        }
    }

    fn response_rows(resp: &MerkleResponse) -> Vec<ResultRow> {
        resp.rows
            .iter()
            .map(|t| ResultRow {
                key: t.key,
                values: t.values.clone(),
            })
            .collect()
    }

    fn response_wire_bytes(resp: &MerkleResponse) -> usize {
        resp.wire_bytes()
    }

    fn vo_digest_count(resp: &MerkleResponse) -> usize {
        resp.proof_hashes()
    }

    fn response_key_version(resp: &MerkleResponse) -> u32 {
        resp.key_version
    }

    fn stamp_freshness(resp: &mut MerkleResponse, freshness: &ResponseFreshness) {
        resp.freshness = freshness.clone();
    }

    fn response_freshness(resp: &MerkleResponse) -> Option<&ResponseFreshness> {
        Some(&resp.freshness)
    }

    fn tamper(
        &self,
        _store: &MerkleAuthStore,
        _query: &RangeQuery,
        resp: &mut MerkleResponse,
        mode: &TamperMode,
    ) {
        match mode {
            TamperMode::None => {}
            TamperMode::MutateValue => {
                if let Some(t) = resp.rows.first_mut() {
                    mutate_first_value(&mut t.values);
                }
            }
            TamperMode::InjectRow => {
                inject_duplicate_last(&mut resp.rows, |t| t.key += 1);
            }
            TamperMode::DropRow => {
                drop_middle_row(&mut resp.rows);
            }
            TamperMode::DropAndReclassify { key } => {
                // There is nowhere to reclassify to: the proof pins the
                // leaf range, so this reduces to a plain drop — which
                // the Merkle completeness proof *does* detect.
                resp.rows.retain(|t| t.key != *key);
            }
        }
    }

    fn supports_projection(&self) -> bool {
        false
    }

    fn proves_completeness(&self) -> bool {
        true
    }

    fn sync_chunk_count(&self, _store: &MerkleAuthStore) -> usize {
        1
    }

    fn encode_sync_chunk(
        &self,
        store: &MerkleAuthStore,
        index: usize,
    ) -> Result<Vec<u8>, SyncError> {
        if index != 0 {
            return Err(SyncError::NoSuchChunk {
                index: index as u32,
                total: 1,
            });
        }
        Ok(DurableScheme::encode_store(self, store))
    }

    fn begin_restore(
        &self,
        verifier: Arc<dyn SigVerifier>,
    ) -> Box<dyn StoreRestorer<MerkleAuthStore>> {
        Box::new(BlobRestorer::new(move |bytes: &[u8]| {
            let store = MerkleAuthStore::decode(bytes).map_err(SyncError::Wire)?;
            if !store.verify_root_sig(verifier.as_ref()) {
                return Err(SyncError::BadSignature(
                    "merkle root signature does not authenticate restored tuples".into(),
                ));
            }
            Ok(store)
        }))
    }
}

/// Single-chunk [`StoreRestorer`] shared by the baselines: their
/// commitment granularity is the whole store (per-tuple signatures for
/// Naive, one signed root for Merkle), so verified sync ships the
/// durability codec's bytes as one chunk and audits all signatures in
/// the decode closure before releasing the store.
struct BlobRestorer<S, F> {
    decode: F,
    blob: Option<Vec<u8>>,
    _store: std::marker::PhantomData<fn() -> S>,
}

impl<S, F> BlobRestorer<S, F>
where
    F: FnOnce(&[u8]) -> Result<S, SyncError> + Send,
{
    fn new(decode: F) -> Self {
        Self {
            decode,
            blob: None,
            _store: std::marker::PhantomData,
        }
    }
}

impl<S, F> StoreRestorer<S> for BlobRestorer<S, F>
where
    S: 'static,
    F: FnOnce(&[u8]) -> Result<S, SyncError> + Send,
{
    fn ingest(&mut self, chunk: &[u8]) -> Result<(), SyncError> {
        if self.blob.is_some() {
            return Err(SyncError::ChunkOutOfOrder {
                expected: 1,
                got: 1,
            });
        }
        self.blob = Some(chunk.to_vec());
        Ok(())
    }

    fn finish(self: Box<Self>) -> Result<S, SyncError> {
        let blob = self.blob.ok_or(SyncError::Incomplete {
            ingested: 0,
            expected: 1,
        })?;
        (self.decode)(&blob)
    }
}

impl<const L: usize> DurableScheme for NaiveScheme<L> {
    fn encode_store(&self, store: &NaiveAuthStore<L>) -> Vec<u8> {
        store.encode()
    }

    fn decode_store(&self, bytes: &[u8]) -> Result<NaiveAuthStore<L>, CoreError> {
        NaiveAuthStore::decode(bytes, &self.acc)
    }

    fn encode_delta(&self, payload: &Self::Delta) -> Vec<u8> {
        vbx_core::durable::encode_digest_vec(payload)
    }

    fn decode_delta(&self, bytes: &[u8]) -> Result<Self::Delta, CoreError> {
        vbx_core::durable::decode_digest_vec(bytes, |buf| {
            vbx_core::durable::get_signed_digest(buf, &self.acc)
        })
    }
}

impl DurableScheme for MerkleScheme {
    fn encode_store(&self, store: &MerkleAuthStore) -> Vec<u8> {
        store.encode()
    }

    fn decode_store(&self, bytes: &[u8]) -> Result<MerkleAuthStore, CoreError> {
        MerkleAuthStore::decode(bytes)
    }

    fn encode_delta(&self, payload: &Self::Delta) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + payload.len());
        out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        out.extend_from_slice(payload.as_bytes());
        out
    }

    fn decode_delta(&self, bytes: &[u8]) -> Result<Self::Delta, CoreError> {
        let corrupt = |m: &str| CoreError::Wire(m.to_string());
        if bytes.len() < 2 {
            return Err(corrupt("merkle delta truncated"));
        }
        let len = u16::from_be_bytes(bytes[..2].try_into().unwrap()) as usize;
        if bytes.len() != 2 + len {
            return Err(corrupt("merkle delta length mismatch"));
        }
        Ok(Signature(bytes[2..].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_crypto::signer::MockSigner;
    use vbx_crypto::Acc256;
    use vbx_storage::workload::WorkloadSpec;
    use vbx_storage::Tuple;
    use vbx_storage::Value;

    fn table() -> Table {
        WorkloadSpec::new(40, 3, 8).build()
    }

    fn new_tuple(schema: &Schema, key: u64) -> Tuple {
        Tuple::new(
            schema,
            key,
            vec![Value::from("n"), Value::from("m"), Value::from(7i64)],
        )
        .unwrap()
    }

    #[test]
    fn naive_update_and_replay_through_the_trait() {
        let t = table();
        let signer = MockSigner::new(31);
        let scheme = NaiveScheme::new(Acc256::test_default());
        let mut master = scheme.build(&t, &signer);
        let mut replica = scheme.build(&t, &signer);

        let op = UpdateOp::Insert(new_tuple(t.schema(), 100));
        let payload = scheme.update(&mut master, &op, &signer).unwrap();
        scheme
            .apply_delta(&mut replica, &op, &payload, signer.key_version())
            .unwrap();
        assert_eq!(master.len(), replica.len());

        // A forged tuple in the replayed delta is rejected.
        let forged_op = UpdateOp::Insert({
            let mut evil = new_tuple(t.schema(), 101);
            evil.values[0] = Value::from("evil");
            evil
        });
        let honest_payload = scheme
            .update(
                &mut master,
                &UpdateOp::Insert(new_tuple(t.schema(), 101)),
                &signer,
            )
            .unwrap();
        let err = scheme
            .apply_delta(
                &mut replica,
                &forged_op,
                &honest_payload,
                signer.key_version(),
            )
            .unwrap_err();
        assert!(matches!(err, NaiveError::ReplicaDivergence(_)));

        let del = UpdateOp::Delete(100);
        let payload = scheme.update(&mut master, &del, &signer).unwrap();
        scheme
            .apply_delta(&mut replica, &del, &payload, signer.key_version())
            .unwrap();

        let q = RangeQuery::select_all(0, 200);
        let resp = scheme.range_query(&master, &q);
        let mut meter = CostMeter::new();
        scheme
            .verify(
                t.schema(),
                signer.verifier().as_ref(),
                &q,
                &resp,
                &mut meter,
            )
            .unwrap();
        assert!(meter.verify_ops > 0);
    }

    #[test]
    fn merkle_update_and_replay_through_the_trait() {
        let t = table();
        let signer = MockSigner::new(32);
        let scheme = MerkleScheme;
        let mut master = scheme.build(&t, &signer);
        let mut replica = scheme.build(&t, &signer);

        for op in [
            UpdateOp::Insert(new_tuple(t.schema(), 100)),
            UpdateOp::Delete(5),
            UpdateOp::DeleteRange(10, 15),
        ] {
            let payload = scheme.update(&mut master, &op, &signer).unwrap();
            scheme
                .apply_delta(&mut replica, &op, &payload, signer.key_version())
                .unwrap();
        }
        assert_eq!(master.root(), replica.root());

        let q = RangeQuery::select_all(0, 200);
        let resp = scheme.range_query(&replica, &q);
        let mut meter = CostMeter::new();
        let batch = scheme
            .verify(
                t.schema(),
                signer.verifier().as_ref(),
                &q,
                &resp,
                &mut meter,
            )
            .unwrap();
        assert_eq!(batch.rows.len(), master.len());
        assert_eq!(meter.verify_ops, 1);
    }

    #[test]
    fn scheme_capability_flags_match_the_paper() {
        let naive = NaiveScheme::<4>::new(Acc256::test_default());
        assert!(naive.supports_projection());
        assert!(!naive.proves_completeness());
        assert!(!MerkleScheme.supports_projection());
        assert!(MerkleScheme.proves_completeness());
    }
}
