//! The transaction benchmark behind `repro -- txn`: measures what the
//! single-record atomic multi-table commit costs on the write path
//! (one checksummed `CommitTxn` WAL fsync for the whole txn vs k
//! separate single-table group commits), then crash-recovers and
//! proves two invariants that CI gates on through the committed file:
//! recovery divergences = 0 (the recovered server is byte-identical to
//! a never-crashed control) and partial flushes observed = 0 (no txn
//! is ever half-visible — each txn's keys are present in *all* of its
//! tables or in none).
//!
//! Runs against a real directory ([`DiskVfs`]) so the fsyncs are real;
//! the directory is removed afterwards.

use crate::perf::BenchRecord;
use std::sync::Arc;
use std::time::Instant;
use vbx_core::{VbScheme, VbTreeConfig};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::{Acc256, Signer};
use vbx_edge::{CentralServer, DurabilityConfig, UpdateOp};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{DiskVfs, Schema, Tuple, Value, Vfs};

const TABLES: [&str; 2] = ["t0", "t1"];
/// Inserts staged per table per txn.
const SECTION_OPS: u64 = 4;

fn tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("v{key:06}")),
            Value::from((key % 89) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

fn spec(table: &str, rows: u64) -> WorkloadSpec {
    WorkloadSpec {
        table: table.into(),
        ..WorkloadSpec::new(rows, 2, 8)
    }
}

fn durable_central(
    vfs: Arc<dyn Vfs>,
    rows: u64,
    config: DurabilityConfig,
) -> CentralServer<VbScheme<4>> {
    let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(0xD2));
    let mut central = CentralServer::with_scheme(
        VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(16)),
        signer,
    )
    .with_delta_retention(1 << 20)
    .with_durability(vfs, config)
    .expect("durability init");
    for table in TABLES {
        central.create_table(spec(table, rows).build());
    }
    central
}

/// Run the transaction benchmark. Returns the trajectory records for
/// `BENCH_txn.json`; panics if the recovered state diverges from the
/// never-crashed control or any txn recovers as a table subset (both
/// are also reported as records so CI can gate on the committed file).
pub fn run_txn(rows: u64, smoke: bool) -> Vec<BenchRecord> {
    let root = std::env::temp_dir().join(format!("vbx-txn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let txns: u64 = if smoke { 32 } else { 256 };
    let mut records = Vec::new();
    let config = DurabilityConfig {
        checkpoint_every: 0, // DDL-only: keep every commit in the WAL
        retain_wal: false,
        page_size: 4096,
    };
    let base = 1 << 20; // keys above the seeded rows

    // ---- write path: one CommitTxn fsync covers both tables --------
    let dir_txn = root.join("txn");
    let vfs: Arc<dyn Vfs> = Arc::new(DiskVfs::open(&dir_txn).expect("temp vfs"));
    let mut central = durable_central(vfs, rows, config);
    let schemas: Vec<Schema> = TABLES
        .iter()
        .map(|t| central.schema(t).expect("table").clone())
        .collect();
    let mut control = {
        let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(0xD2));
        let mut c = CentralServer::with_scheme(
            VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(16)),
            signer,
        )
        .with_delta_retention(1 << 20);
        for table in TABLES {
            c.create_table(spec(table, rows).build());
        }
        c
    };
    let stage = |c: &mut CentralServer<VbScheme<4>>, i: u64| {
        let mut txn = c.begin_txn();
        for (t, schema) in TABLES.iter().zip(&schemas) {
            for j in 0..SECTION_OPS {
                txn.stage(
                    *t,
                    UpdateOp::Insert(tuple(schema, base + i * SECTION_OPS + j)),
                );
            }
        }
        c.commit_txn(txn).expect("txn commit");
    };
    let t0 = Instant::now();
    for i in 0..txns {
        stage(&mut central, i);
    }
    let txn_ns = t0.elapsed().as_nanos() as f64 / txns as f64;
    records.push(BenchRecord {
        op: "txn_commit".into(),
        n: txns,
        ns_per_op: txn_ns,
    });
    for i in 0..txns {
        stage(&mut control, i);
    }

    // ---- write path: the same ops as k per-table commits -----------
    // (one signing sweep + one fsync per table instead of one
    // CommitTxn record for the whole atom).
    let dir_split = root.join("split");
    let vfs: Arc<dyn Vfs> = Arc::new(DiskVfs::open(&dir_split).expect("temp vfs"));
    let mut split = durable_central(vfs, rows, config);
    let t0 = Instant::now();
    for i in 0..txns {
        for (t, schema) in TABLES.iter().zip(&schemas) {
            let batch = (0..SECTION_OPS)
                .map(|j| UpdateOp::Insert(tuple(schema, base + i * SECTION_OPS + j)))
                .collect();
            split.execute_update_batch(t, batch).expect("durable batch");
        }
    }
    let split_ns = t0.elapsed().as_nanos() as f64 / txns as f64;
    records.push(BenchRecord {
        op: "txn_split_commit".into(),
        n: txns,
        ns_per_op: split_ns,
    });
    drop(split);

    // ---- crash + recover: byte-identity and all-or-nothing ---------
    let expected = central.encode_state();
    drop(central);
    let vfs: Arc<dyn Vfs> = Arc::new(DiskVfs::open(&dir_txn).expect("temp vfs"));
    let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(0xD2));
    let t0 = Instant::now();
    let recovered = CentralServer::recover(
        VbScheme::<4>::new(Acc256::test_default(), VbTreeConfig::with_fanout(16)),
        signer,
        vfs,
        config,
    )
    .expect("recovery");
    let replay_ns = t0.elapsed().as_nanos() as f64 / txns as f64;
    records.push(BenchRecord {
        op: "txn_recover_replay".into(),
        n: txns,
        ns_per_op: replay_ns,
    });

    let divergences = u64::from(recovered.encode_state() != expected)
        + u64::from(recovered.encode_state() != control.encode_state());
    assert_eq!(divergences, 0, "recovered state diverged from control");
    records.push(BenchRecord {
        op: "txn_divergences".into(),
        n: divergences,
        ns_per_op: 0.0,
    });

    // A txn that recovered in one table but not the other would be the
    // partial flush the CommitTxn record exists to rule out.
    let mut partial_flushes = 0u64;
    for i in 0..txns {
        for j in 0..SECTION_OPS {
            let key = base + i * SECTION_OPS + j;
            let present: Vec<bool> = TABLES
                .iter()
                .map(|t| recovered.store(t).expect("table").get(key).is_some())
                .collect();
            if present.iter().any(|p| *p) && !present.iter().all(|p| *p) {
                partial_flushes += 1;
            }
        }
    }
    assert_eq!(partial_flushes, 0, "a txn recovered as a table subset");
    records.push(BenchRecord {
        op: "txn_partial_flushes".into(),
        n: partial_flushes,
        ns_per_op: 0.0,
    });

    println!(
        "atomic txn commit (2 tables, 1 fsync):  {:>10.0} ns/txn",
        txn_ns
    );
    println!(
        "split per-table commits (2 fsyncs):     {:>10.0} ns/txn-equiv",
        split_ns
    );
    println!(
        "recovery replay: {txns} txns in {:.2} ms",
        replay_ns * txns as f64 / 1e6
    );
    println!("divergences: {divergences}");
    println!("partial flushes: {partial_flushes}");

    let _ = std::fs::remove_dir_all(&root);
    records
}
