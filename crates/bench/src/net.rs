//! The `repro -- net` section: a closed-loop load generator driving
//! hundreds of concurrent **verified** connections against an edge
//! server over real TCP.
//!
//! N reader connections each run their own [`NetClient`] in a closed
//! loop — compact (`VBX4`) multi-range queries, decoded and fully
//! client-verified per response — while one writer connection streams
//! group-committed `VBX3` delta batches from a [`CentralServer`] into
//! the same edge through the push-replication path. Every response is
//! verified; a single failure fails the run. The report (connection
//! count, throughput, query p50/p99, verification failures) is written
//! to `BENCH_net.json` in the same diffable shape as the other
//! sections.

use crate::perf::{percentile, BenchRecord};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vbx_core::{decode_compact_response, ClientVerifier, RangeQuery, UpdateOp, VbTreeConfig};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_edge::{
    CentralServer, EdgeEndpoint, EdgeServer, FrameEndpoint, NetClient, NetServer, TcpTransport,
    Transport,
};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Schema, Tuple, Value};

/// Dial with retries: a burst of hundreds of simultaneous connects can
/// outrun the listener's accept backlog; the kernel drops the excess
/// SYNs and a brief retry loop absorbs it.
fn connect_with_retry(addr: &str) -> NetClient {
    let mut delay = Duration::from_millis(5);
    for _ in 0..8 {
        match NetClient::connect(&TcpTransport, addr) {
            Ok(c) => return c,
            Err(_) => {
                std::thread::sleep(delay);
                delay *= 2;
            }
        }
    }
    NetClient::connect(&TcpTransport, addr).expect("edge server accepts connections")
}

/// Everything a reader connection shares with the harness: where to
/// dial, what to verify against, and the stop/failure signals.
struct ReaderCtx<'a> {
    rows: u64,
    min_queries: u64,
    addr: &'a str,
    acc: &'a Acc256,
    schema: &'a Schema,
    verifier: &'a dyn vbx_crypto::SigVerifier,
    stop: &'a AtomicBool,
    failures: &'a AtomicU64,
}

/// One connection's share of the closed loop: compact queries over its
/// own socket, each response decoded and verified, until the writer is
/// done (but at least `min_queries`).
fn reader_conn(reader: u64, ctx: &ReaderCtx<'_>) -> Vec<u64> {
    let mut client = connect_with_retry(ctx.addr);
    let rows = ctx.rows;
    let span = ((rows as f64 * 0.02) as u64).max(1);
    let mut lat = Vec::with_capacity(1024);
    let mut i = 0u64;
    while !ctx.stop.load(Ordering::Relaxed) || i < ctx.min_queries {
        let lo = (reader * 131 + i * 17) % rows;
        let queries = [
            RangeQuery::select_all(lo, lo + span),
            RangeQuery::select_all((lo + rows / 2) % rows, (lo + rows / 2) % rows + span),
        ];
        let t0 = Instant::now();
        let bytes = client
            .query_compact("items", &queries, false)
            .expect("edge serves while up");
        let ok = decode_compact_response::<4>(&bytes, ctx.acc)
            .map_err(|_| ())
            .and_then(|resp| {
                ClientVerifier::new(ctx.acc, ctx.schema)
                    .verify_compact(ctx.verifier, &queries, &resp)
                    .map_err(|_| ())
            })
            .is_ok();
        lat.push(t0.elapsed().as_nanos() as u64);
        if !ok {
            ctx.failures.fetch_add(1, Ordering::Relaxed);
        }
        i += 1;
    }
    lat
}

/// Run the networked serving benchmark: `connections` verified reader
/// connections plus one replication writer against one edge over TCP
/// loopback. Returns the records written to `BENCH_net.json`.
pub fn run_net(rows: u64, connections: usize, smoke: bool) -> Vec<BenchRecord> {
    let batches: u64 = if smoke { 10 } else { 40 };
    let batch_ops: usize = 8;
    let min_queries: u64 = if smoke { 5 } else { 20 };

    let spec = WorkloadSpec {
        table: "items".into(),
        ..WorkloadSpec::new(rows, 4, 10)
    };
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(0x7C9, 1));
    let verifier = signer.verifier();
    let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::default());
    central.create_table(spec.build());
    let schema = central.tree("items").expect("created").schema().clone();
    let edge = Arc::new(EdgeServer::from_bundle(central.bundle()));

    let endpoint = Arc::new(EdgeEndpoint::new(edge.clone()));
    let server = NetServer::spawn(
        TcpTransport.listen("127.0.0.1:0").expect("bind loopback"),
        endpoint as Arc<dyn FrameEndpoint>,
    );
    let addr = server.addr().to_string();

    println!(
        "# net — {connections} verified TCP connections × compact queries vs 1 writer × {batches} group-commit batches ({rows} rows)"
    );

    let stop = AtomicBool::new(false);
    let failures = AtomicU64::new(0);
    let wall = Instant::now();
    let ctx = ReaderCtx {
        rows,
        min_queries,
        addr: addr.as_str(),
        acc: &acc,
        schema: &schema,
        verifier: verifier.as_ref(),
        stop: &stop,
        failures: &failures,
    };
    let (mut latencies, batch_ns) = std::thread::scope(|s| {
        let ctx = &ctx;
        let addr = ctx.addr;
        let schema = ctx.schema;
        let stop = ctx.stop;
        let central = &mut central;

        let handles: Vec<_> = (0..connections as u64)
            .map(|r| s.spawn(move || reader_conn(r, ctx)))
            .collect();

        // The writer is its own connection: group-commit at the
        // central, stream each VBX3 batch into the edge over TCP.
        let writer = s.spawn(move || {
            let mut client = connect_with_retry(addr);
            let mut per_batch = Vec::with_capacity(batches as usize);
            for b in 0..batches {
                let t0 = Instant::now();
                let ops: Vec<UpdateOp> = (0..batch_ops as u64)
                    .map(|i| {
                        let key = rows * 4 + b * batch_ops as u64 + i;
                        UpdateOp::Insert(
                            Tuple::new(
                                schema,
                                key,
                                vec![
                                    Value::from(format!("new{key}")),
                                    Value::from("w"),
                                    Value::from("x"),
                                    Value::from((key % 97) as i64),
                                ],
                            )
                            .expect("schema-conformant tuple"),
                        )
                    })
                    .collect();
                let batch = central
                    .execute_update_batch("items", ops)
                    .expect("group commit");
                let bytes = vbx_core::encode_delta_batch(batch.as_ref());
                let applied = client
                    .push_replication(&vbx_core::NetMsg::DeltaBatch(bytes))
                    .expect("edge applies the batch");
                assert_eq!(applied, batch.end_seq(), "edge acked the batch position");
                per_batch.push(t0.elapsed().as_nanos() as u64);
            }
            stop.store(true, Ordering::Relaxed);
            per_batch
        });

        let lats: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader connection panicked"))
            .collect();
        (lats, writer.join().expect("writer connection panicked"))
    });
    let wall_ns = wall.elapsed().as_nanos() as f64;

    let failures = failures.load(Ordering::Relaxed);
    assert_eq!(failures, 0, "a TCP-served response failed verification");
    assert_eq!(edge.applied_seq(), batches * batch_ops as u64);
    let accepted = server
        .stats()
        .accepted
        .load(std::sync::atomic::Ordering::Relaxed);
    server.shutdown();

    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let mean = latencies.iter().sum::<u64>() as f64 / total.max(1) as f64;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let qps = total as f64 / (wall_ns / 1e9);
    let batch_mean = batch_ns.iter().sum::<u64>() as f64 / batch_ns.len().max(1) as f64;

    let mut recs = Vec::new();
    let mut rec = |op: &str, n: u64, ns: f64| {
        println!("{op:<28} {ns:>14.1} ns/op  (n = {n})");
        recs.push(BenchRecord {
            op: op.to_string(),
            n,
            ns_per_op: ns,
        });
    };
    rec("net_connections", connections as u64, 0.0);
    rec("net_queries", total, 0.0);
    rec("net_query_mean", total, mean);
    rec("net_query_p50", total, p50);
    rec("net_query_p99", total, p99);
    rec("net_wall_per_query", total, wall_ns / total.max(1) as f64);
    rec("net_batch_replicate", batches, batch_mean);
    rec("net_verify_failures", failures, 0.0);

    println!();
    println!("connections            : {connections} readers + 1 writer (accepted {accepted})");
    println!("reader throughput      : {qps:.0} verified compact queries/s (closed loop)");
    println!(
        "writer                 : {batches} batches × {batch_ops} ops streamed as VBX3 over TCP"
    );
    recs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_net_serves_many_verified_connections() {
        let recs = run_net(300, 16, true);
        let get = |op: &str| {
            recs.iter()
                .find(|r| r.op == op)
                .unwrap_or_else(|| panic!("missing record {op}"))
        };
        assert_eq!(get("net_connections").n, 16);
        assert_eq!(get("net_verify_failures").n, 0);
        assert!(get("net_queries").n >= 16 * 5, "every reader met its quota");
        assert!(get("net_query_p99").ns_per_op >= get("net_query_p50").ns_per_op);
    }
}
