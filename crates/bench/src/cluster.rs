//! The `repro -- cluster` section: a closed-loop benchmark of the
//! multi-edge cluster (sharded delta fan-out + freshness-verified
//! reads).
//!
//! Topology: one trusted owner, **4 edge replicas**, one table sharded
//! to each edge. N reader threads issue routed range queries and verify
//! every response — *including the freshness stamp* under a strict
//! `FreshnessPolicy` — while a writer commits signed deltas that fan
//! out over the per-edge subscription queues and drain in-line.
//!
//! After the closed loop, an **induced-lag scenario** stops draining
//! one edge's queue while the writer keeps committing: a strict client
//! must reject that edge's (honest, authentic, but stale) responses
//! with `VerifyError::Stale`, and accept them again once the queue
//! drains. The report records per-edge lag in both phases, routed
//! latency percentiles, and the stale-rejection counts, and is written
//! to `BENCH_cluster.json`.

use crate::perf::{percentile, reader_threads, BenchRecord};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use vbx_core::{ClientVerifier, FreshnessPolicy, RangeQuery, VbScheme, VbTreeConfig, VerifyError};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::Acc256;
use vbx_edge::{ClusterConfig, ClusterCoordinator};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Schema, Tuple, Value};

const EDGES: usize = 4;
const TABLES: usize = 4;

fn fresh_tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("new{key}")),
            Value::from("w"),
            Value::from((key % 97) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

type Cluster = ClusterCoordinator<VbScheme<4>>;

/// Route a query, verify the response under `policy` against the
/// current owner position. Returns Ok(rows) or the verification error.
fn verified_routed_query(
    cluster: &Cluster,
    acc: &Acc256,
    schemas: &[Schema],
    table_idx: usize,
    q: &RangeQuery,
    policy: FreshnessPolicy,
) -> Result<usize, VerifyError> {
    let table = format!("t{table_idx}");
    let routed = cluster.query(&table, q).expect("table is sharded");
    let (owner_seq, owner_clock) = cluster.owner_position();
    let verifier = cluster
        .central()
        .registry()
        .verifier(routed.response.vo.key_version)
        .expect("published key version");
    ClientVerifier::new(acc, &schemas[table_idx])
        .with_freshness(policy, owner_seq, owner_clock)
        .verify(verifier.as_ref(), q, &routed.response)
        .map(|r| r.rows)
}

/// Run the cluster benchmark at `rows` rows per table (`smoke` shrinks
/// the workload for CI) and return the records written to
/// `BENCH_cluster.json`. `write_batch` are the group-commit batch
/// sizes swept on the RSA-signed configuration (`write_batchN`
/// records).
pub fn run_cluster(rows: u64, smoke: bool, write_batch: &[usize]) -> Vec<BenchRecord> {
    let deltas: u64 = (if smoke { 32 } else { 160 }).min(rows / 2);
    let min_queries: u64 = if smoke { 24 } else { 150 };
    let induced: u64 = if smoke { 6 } else { 20 };

    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(0xC1A5, 1));
    let mut cluster: Cluster = ClusterCoordinator::new(
        VbScheme::new(acc.clone(), VbTreeConfig::default()),
        signer,
        ClusterConfig {
            edges: EDGES,
            retention: 8_192,
            ..ClusterConfig::default()
        },
    );
    let mut schemas = Vec::with_capacity(TABLES);
    for i in 0..TABLES {
        let spec = WorkloadSpec {
            table: format!("t{i}"),
            ..WorkloadSpec::new(rows, 3, 8)
        };
        let table = spec.build();
        schemas.push(table.schema().clone());
        cluster.create_table(table);
    }
    cluster.sync().expect("initial sync");

    let readers = reader_threads();
    println!(
        "# cluster — {EDGES} edges × {TABLES} sharded tables, {readers} readers × \
         freshness-verified routed queries vs 1 writer × {deltas} fanned-out deltas \
         ({rows} rows/table)"
    );

    // ---- phase 1: closed loop, every edge kept fresh ----
    let shared = RwLock::new(cluster);
    let stop = AtomicBool::new(false);
    let failures = AtomicU64::new(0);
    let wall = Instant::now();
    let (mut latencies, write_ns) = std::thread::scope(|s| {
        let shared = &shared;
        let stop = &stop;
        let failures = &failures;
        let acc = &acc;
        let schemas = &schemas[..];

        let handles: Vec<_> = (0..readers as u64)
            .map(|r| {
                s.spawn(move || {
                    let spans = [(rows / 200).max(1), (rows / 50).max(1), (rows / 10).max(1)];
                    let mut lat = Vec::with_capacity(4096);
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) || i < min_queries {
                        let t_idx = ((r + i) % TABLES as u64) as usize;
                        let span = spans[(i % 3) as usize];
                        let lo = (r * 131 + i * 17) % rows;
                        let q = RangeQuery::select_all(lo, lo + span);
                        let t0 = Instant::now();
                        let guard = shared.read();
                        // Readers demand full freshness: the writer
                        // drains every queue before releasing its write
                        // lock, so a strict policy must always pass.
                        let ok = verified_routed_query(
                            &guard,
                            acc,
                            schemas,
                            t_idx,
                            &q,
                            FreshnessPolicy::strict(),
                        )
                        .is_ok();
                        drop(guard);
                        lat.push(t0.elapsed().as_nanos() as u64);
                        if !ok {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        i += 1;
                    }
                    lat
                })
            })
            .collect();

        let writer = s.spawn(move || {
            let mut per_write = Vec::with_capacity(deltas as usize);
            for i in 0..deltas {
                let t_idx = (i % TABLES as u64) as usize;
                let table = format!("t{t_idx}");
                let t0 = Instant::now();
                let mut guard = shared.write();
                if i % 2 == 0 {
                    let key = rows * 4 + i;
                    let tuple = fresh_tuple(&schemas[t_idx], key);
                    guard.insert(&table, tuple).expect("insert + fan-out");
                } else {
                    guard.delete(&table, i).expect("delete + fan-out");
                }
                // Commit + fan-out + full drain inside the write lock:
                // readers never observe a lagging edge in this phase.
                guard.sync().expect("drain all subscriptions");
                drop(guard);
                per_write.push(t0.elapsed().as_nanos() as u64);
            }
            stop.store(true, Ordering::Relaxed);
            per_write
        });

        let lats: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader panicked"))
            .collect();
        (lats, writer.join().expect("writer panicked"))
    });
    let wall_ns = wall.elapsed().as_nanos() as f64;
    let mut cluster = shared.into_inner();

    let fresh_failures = failures.load(Ordering::Relaxed);
    assert_eq!(
        fresh_failures, 0,
        "a fresh edge's routed response failed strict verification"
    );
    let fresh_lags = cluster.lag_report();
    assert!(
        fresh_lags.iter().all(|l| l.lag == 0),
        "closed loop must end fully drained: {fresh_lags:?}"
    );

    // ---- phase 2: induced lag on one edge ----
    let victim_table = 0usize;
    let victim_edge = cluster.route("t0").expect("sharded");
    let q = RangeQuery::select_all(0, rows / 4);
    let mut stale_rejections = 0u64;
    let mut stale_lag_seen = 0u64;
    for i in 0..induced {
        let key = rows * 8 + i;
        let tuple = fresh_tuple(&schemas[victim_table], key);
        // Commit + fan-out, but never drain the victim's queue: an
        // honest replica that has fallen behind.
        cluster.insert("t0", tuple).expect("insert");
        for e in 0..EDGES {
            if e != victim_edge {
                cluster.drain_edge(e, usize::MAX).expect("drain");
            }
        }
        match verified_routed_query(
            &cluster,
            &acc,
            &schemas,
            victim_table,
            &q,
            FreshnessPolicy::strict(),
        ) {
            Err(VerifyError::Stale { lag, .. }) => {
                stale_rejections += 1;
                stale_lag_seen = stale_lag_seen.max(lag.unwrap_or(0));
            }
            Err(e) => panic!("induced lag must read as Stale, not {e:?}"),
            Ok(_) => panic!("stale edge accepted under a strict policy"),
        }
    }
    let induced_lags = cluster.lag_report();
    assert_eq!(induced_lags[victim_edge].lag, induced);
    assert!(stale_rejections >= 1, "no Stale rejection observed");

    // Recovery: draining the queue makes the same strict client accept.
    cluster
        .drain_edge(victim_edge, usize::MAX)
        .expect("drain victim");
    let recovered_rows = verified_routed_query(
        &cluster,
        &acc,
        &schemas,
        victim_table,
        &q,
        FreshnessPolicy::strict(),
    )
    .expect("caught-up edge must verify strictly again");

    // ---- report ----
    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let mean = latencies.iter().sum::<u64>() as f64 / total.max(1) as f64;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let qps = total as f64 / (wall_ns / 1e9);
    let write_mean = write_ns.iter().sum::<u64>() as f64 / write_ns.len().max(1) as f64;

    let mut recs = Vec::new();
    let mut rec = |op: &str, n: u64, ns: f64| {
        println!("{op:<28} {ns:>14.1} ns/op  (n = {n})");
        recs.push(BenchRecord {
            op: op.to_string(),
            n,
            ns_per_op: ns,
        });
    };
    rec("cluster_edges", EDGES as u64, 0.0);
    rec("cluster_tables", TABLES as u64, 0.0);
    rec("cluster_routed_mean", total, mean);
    rec("cluster_routed_p50", total, p50);
    rec("cluster_routed_p99", total, p99);
    rec("cluster_write_pipeline", deltas, write_mean);
    rec("cluster_verify_failures", fresh_failures, 0.0);
    rec("cluster_stale_rejections", stale_rejections, 0.0);
    rec("cluster_stale_max_lag", stale_lag_seen, 0.0);
    rec("cluster_recovered_rows", recovered_rows as u64, 0.0);
    for l in &fresh_lags {
        rec(&format!("cluster_edge{}_lag_fresh", l.edge), l.lag, 0.0);
    }
    for l in &induced_lags {
        rec(&format!("cluster_edge{}_lag_induced", l.edge), l.lag, 0.0);
    }

    println!();
    println!("readers                : {readers} threads (+1 writer)");
    println!("reader throughput      : {qps:.0} freshness-verified routed queries/s");
    println!(
        "write pipeline         : commit + fan-out + drain-all mean {:.1} µs",
        write_mean / 1e3
    );
    println!(
        "induced lag            : edge {victim_edge} fell {induced} deltas behind → \
         {stale_rejections} Stale rejections, accepted again after drain"
    );
    let shard_summary: Vec<String> = (0..EDGES)
        .map(|e| format!("edge{e}:{:?}", cluster.shard_map().tables_of(e)))
        .collect();
    println!("shard map              : {}", shard_summary.join(" "));

    // ---- group-commit sweep on the RSA-signed configuration ----
    println!();
    recs.extend(crate::write_batch::sweep_cluster(write_batch, smoke));

    // ---- flat vs compact VO comparison (RSA-1024) ----
    println!();
    recs.extend(crate::compact::sweep_compact_vo(smoke));
    recs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cluster_verifies_and_detects_staleness() {
        let recs = run_cluster(240, true, &[1, 16]);
        let get = |op: &str| {
            recs.iter()
                .find(|r| r.op == op)
                .unwrap_or_else(|| panic!("missing record {op}"))
        };
        assert!(get("cluster_edges").n >= 3);
        assert_eq!(get("cluster_verify_failures").n, 0);
        assert!(get("cluster_stale_rejections").n >= 1);
        assert!(get("cluster_routed_p99").ns_per_op >= get("cluster_routed_p50").ns_per_op);
        // Per-edge lag is recorded in both phases.
        assert_eq!(get("cluster_edge0_lag_fresh").n, 0);
        assert!((0..EDGES).any(|e| recs
            .iter()
            .any(|r| r.op == format!("cluster_edge{e}_lag_induced") && r.n > 0)));
        assert!(
            get("write_batch16").ns_per_op <= get("write_batch1").ns_per_op,
            "group commit must amortise the per-op write cost"
        );
    }
}
