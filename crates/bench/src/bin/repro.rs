//! `repro` — regenerate every table and figure of the paper.
//!
//! For each experiment the analytical model (Section 4, at the paper's
//! 1M-row scale) is printed next to measurements from the real
//! implementation (at a laptop-scale row count, reported inline).
//!
//! ```text
//! cargo run -p vbx-bench --bin repro --release            # everything
//! cargo run -p vbx-bench --bin repro --release -- fig10   # one section
//! cargo run -p vbx-bench --bin repro --release -- all 50000  # more rows
//! cargo run -p vbx-bench --bin repro --release -- perf    # fast-path speedups
//! cargo run -p vbx-bench --bin repro --release -- perf --smoke  # quick CI check
//! cargo run -p vbx-bench --bin repro --release -- serve   # concurrent serving
//! cargo run -p vbx-bench --bin repro --release -- serve --smoke # quick CI check
//! cargo run -p vbx-bench --bin repro --release -- cluster # multi-edge cluster
//! cargo run -p vbx-bench --bin repro --release -- cluster --smoke # quick CI check
//! cargo run -p vbx-bench --bin repro --release -- serve --write-batch 1,4,16 # group-commit sweep
//! cargo run -p vbx-bench --bin repro --release -- recover # durability: fsync cost + replay rate
//! cargo run -p vbx-bench --bin repro --release -- recover --smoke # quick CI check
//! cargo run -p vbx-bench --bin repro --release -- txn     # atomic multi-table commit vs split
//! cargo run -p vbx-bench --bin repro --release -- txn --smoke # quick CI check
//! cargo run -p vbx-bench --bin repro --release -- net     # many-connection TCP serving
//! cargo run -p vbx-bench --bin repro --release -- net --smoke # quick CI check
//! cargo run -p vbx-bench --bin repro --release -- failover # verified sync + edge failover
//! cargo run -p vbx-bench --bin repro --release -- failover --smoke # quick CI check
//! ```
//!
//! The `perf` section (run only when named — it writes a file) measures
//! the crypto fast paths and bulk-build parallelism, prints the speedup
//! ratios, and rewrites `BENCH_perf.json` so the numbers are tracked
//! across PRs. The `serve` section likewise rewrites `BENCH_serve.json`
//! with the concurrent-serving numbers (reader latency percentiles,
//! delta apply cost, cold vs cached query time).

use vbx_analysis::figures::{self, render_table};
use vbx_analysis::{tree, update, Params};
use vbx_bench::{
    fixture, head_to_head, measured_comm, measured_compute, measured_updates, measured_vo_growth,
};
use vbx_core::{RangeQuery, VbTree, VbTreeConfig};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::Geometry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // `--write-batch <k>` (repeatable, or comma-separated) selects the
    // group-commit batch sizes the serve/cluster sections sweep on the
    // RSA-signed configuration; default k ∈ {1, 4, 16}.
    let mut write_batch: Vec<usize> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter().filter(|a| a != "--smoke");
    while let Some(a) = it.next() {
        if a == "--write-batch" {
            let ks = it.next().unwrap_or_default();
            write_batch.extend(ks.split(',').filter_map(|k| k.parse::<usize>().ok()));
        } else {
            rest.push(a);
        }
    }
    if write_batch.is_empty() {
        write_batch = vec![1, 4, 16];
    }
    let args = rest;
    let section = args.first().map(String::as_str).unwrap_or("all");
    let explicit_rows: Option<u64> = args.get(1).and_then(|s| s.parse().ok());
    let rows: u64 = explicit_rows.unwrap_or(20_000);

    let run = |name: &str| section == "all" || section == name;
    let p = Params::default();

    if section == "perf" {
        // Named-only (writes BENCH_perf.json); not part of `all`.
        let perf_rows = explicit_rows.unwrap_or(if smoke { 1_000 } else { 10_000 });
        let records = vbx_bench::perf::run_perf(perf_rows, smoke);
        vbx_bench::perf::write_bench_json("BENCH_perf.json", "perf", perf_rows, &records)
            .expect("write BENCH_perf.json");
        println!("\nwrote BENCH_perf.json ({} records)", records.len());
        return;
    }

    if section == "cluster" {
        // Named-only (writes BENCH_cluster.json); not part of `all`.
        // The multi-edge cluster benchmark: sharded delta fan-out,
        // routed freshness-verified reads, and the induced-lag scenario
        // (a strict client must reject the stale edge with
        // VerifyError::Stale and accept it again after its subscription
        // queue drains).
        let cluster_rows = explicit_rows.unwrap_or(if smoke { 500 } else { 4_000 });
        let records = vbx_bench::cluster::run_cluster(cluster_rows, smoke, &write_batch);
        vbx_bench::perf::write_bench_json("BENCH_cluster.json", "cluster", cluster_rows, &records)
            .expect("write BENCH_cluster.json");
        println!("\nwrote BENCH_cluster.json ({} records)", records.len());
        return;
    }

    if section == "serve" {
        // Named-only (writes BENCH_serve.json); not part of `all`. The
        // closed-loop concurrent serving benchmark: N reader threads ×
        // verified query mix vs one writer applying signed deltas.
        let serve_rows = explicit_rows.unwrap_or(if smoke { 1_000 } else { 8_000 });
        let records = vbx_bench::serve::run_serve(serve_rows, smoke, &write_batch);
        vbx_bench::perf::write_bench_json("BENCH_serve.json", "serve", serve_rows, &records)
            .expect("write BENCH_serve.json");
        println!("\nwrote BENCH_serve.json ({} records)", records.len());
        return;
    }

    if section == "recover" {
        // Named-only (writes BENCH_recover.json); not part of `all`.
        // The durability benchmark: real-fsync WAL commit cost (per-op
        // vs group-committed), recovery replay throughput, and a
        // byte-identity check of the recovered state against a server
        // that never crashed.
        let recover_rows = explicit_rows.unwrap_or(if smoke { 500 } else { 4_000 });
        let records = vbx_bench::recover::run_recover(recover_rows, smoke);
        vbx_bench::perf::write_bench_json("BENCH_recover.json", "recover", recover_rows, &records)
            .expect("write BENCH_recover.json");
        println!("\nwrote BENCH_recover.json ({} records)", records.len());
        return;
    }

    if section == "txn" {
        // Named-only (writes BENCH_txn.json); not part of `all`. The
        // transaction benchmark: one CommitTxn fsync for a whole
        // multi-table atom vs k per-table commits, recovery replay,
        // and the two invariants CI gates on — zero divergences and
        // zero partially-recovered txns.
        let txn_rows = explicit_rows.unwrap_or(if smoke { 500 } else { 4_000 });
        let records = vbx_bench::txn::run_txn(txn_rows, smoke);
        vbx_bench::perf::write_bench_json("BENCH_txn.json", "txn", txn_rows, &records)
            .expect("write BENCH_txn.json");
        println!("\nwrote BENCH_txn.json ({} records)", records.len());
        return;
    }

    if section == "failover" {
        // Named-only (writes BENCH_failover.json); not part of `all`.
        // Verified chunked state sync + edge failover: restore
        // throughput through the chunk-and-verify pipeline, promotion
        // downtime when an edge is killed under load, and the headline
        // invariant that zero unverified rows are served around the
        // failover.
        let failover_rows = explicit_rows.unwrap_or(if smoke { 400 } else { 3_000 });
        let records = vbx_bench::failover::run_failover(failover_rows, smoke);
        vbx_bench::perf::write_bench_json(
            "BENCH_failover.json",
            "failover",
            failover_rows,
            &records,
        )
        .expect("write BENCH_failover.json");
        println!("\nwrote BENCH_failover.json ({} records)", records.len());
        return;
    }

    if section == "net" {
        // Named-only (writes BENCH_net.json); not part of `all`. The
        // networked serving benchmark: hundreds of concurrent verified
        // TCP connections (compact VBX4 readers) vs one writer
        // streaming group-commit batches over the wire.
        let net_rows = explicit_rows.unwrap_or(if smoke { 500 } else { 2_000 });
        let connections = if smoke { 32 } else { 192 };
        let records = vbx_bench::net::run_net(net_rows, connections, smoke);
        vbx_bench::perf::write_bench_json("BENCH_net.json", "net", net_rows, &records)
            .expect("write BENCH_net.json");
        println!("\nwrote BENCH_net.json ({} records)", records.len());
        return;
    }

    if run("params") {
        print_params(&p, rows);
    }
    if run("fig8") {
        fig8(&p, rows);
    }
    if run("fig9") {
        fig9(&p, rows);
    }
    if run("fig10") {
        fig10(&p, rows);
    }
    if run("fig11") {
        fig11(&p, rows);
    }
    if run("fig12") {
        fig12(&p, rows);
    }
    if run("fig13a") {
        println!("{}", render_table(&figures::figure13a(&p)));
    }
    if run("fig13b") {
        println!("{}", render_table(&figures::figure13b(&p)));
    }
    if run("storage") {
        storage(&p, rows);
    }
    if run("update") {
        update_costs(&p, rows);
    }
    if run("merkle") {
        merkle_extension();
    }
    if run("schemes") {
        scheme_head_to_head(rows);
    }
    if run("ablate") {
        ablations(rows);
    }
}

/// Design-choice ablations beyond the paper's figures: fan-out vs VO
/// size, and accumulator group width vs verification work.
fn ablations(rows: u64) {
    use vbx_core::{execute, ClientVerifier, RangeQuery};
    use vbx_crypto::Acc512;
    use vbx_crypto::Signer as _;

    println!("# Ablation — fan-out vs VO size (rows = {rows}, 100-row result)");
    println!(
        "{:>8} {:>8} {:>12} {:>12}",
        "fanout", "height", "D_S digests", "VO bytes"
    );
    let table = WorkloadSpec::new(rows, 4, 10).build();
    let signer = MockSigner::new(1);
    let q = RangeQuery::select_all(rows / 2, rows / 2 + 99);
    for fanout in [8usize, 32, 114, 256] {
        let tree: VbTree<4> = VbTree::bulk_load(
            &table,
            VbTreeConfig {
                geometry: Geometry::default(),
                fanout_override: Some(fanout),
            },
            Acc256::test_default(),
            &signer,
        );
        let resp = execute(&tree, &q, None);
        let size = vbx_core::measure_response(&resp);
        println!(
            "{:>8} {:>8} {:>12} {:>12}",
            fanout,
            tree.height(),
            resp.vo.d_s.len(),
            size.vo_bytes
        );
    }

    println!();
    println!("# Ablation — accumulator group width (2k rows, 200-row result)");
    let table = WorkloadSpec::new(2_000, 4, 10).build();
    let q = RangeQuery::select_all(500, 699);
    {
        let acc = Acc256::test_default();
        let tree: VbTree<4> =
            VbTree::bulk_load(&table, VbTreeConfig::default(), acc.clone(), &signer);
        let resp = execute(&tree, &q, None);
        let t0 = std::time::Instant::now();
        ClientVerifier::new(&acc, table.schema())
            .verify(signer.verifier().as_ref(), &q, &resp)
            .unwrap();
        println!(
            "256-bit group: verify {} rows in {:?}, VO {} B",
            resp.rows.len(),
            t0.elapsed(),
            vbx_core::measure_response(&resp).vo_bytes
        );
    }
    {
        let acc = Acc512::test_default_512();
        let tree: VbTree<8> =
            VbTree::bulk_load(&table, VbTreeConfig::default(), acc.clone(), &signer);
        let resp = execute(&tree, &q, None);
        let t0 = std::time::Instant::now();
        ClientVerifier::new(&acc, table.schema())
            .verify(signer.verifier().as_ref(), &q, &resp)
            .unwrap();
        println!(
            "512-bit group: verify {} rows in {:?}, VO {} B",
            resp.rows.len(),
            t0.elapsed(),
            vbx_core::measure_response(&resp).vo_bytes
        );
    }
    println!();
}

fn print_params(p: &Params, rows: u64) {
    println!("# Table 1 — parameters");
    println!("|D| digest len      : {} B", p.digest_len);
    println!("|K| key len         : {} B", p.key_len);
    println!("|P| pointer len     : {} B", p.ptr_len);
    println!("|B| block size      : {} B", p.block_size);
    println!("N_R rows (model)    : {}", p.n_r);
    println!("N_R rows (measured) : {rows}");
    println!("N_C columns         : {}", p.n_c);
    println!("Q_C result columns  : {}", p.q_c);
    println!("attr size           : {} B", p.attr_size);
    println!("X = Cost_s/Cost_h1  : {}", p.x);
    println!("Cost_h2/Cost_h1     : {}", p.combine_ratio);
    println!();
}

fn fig8(p: &Params, rows: u64) {
    println!("{}", render_table(&figures::figure8(p)));
    println!("## measured fan-out / height of real trees ({rows} rows, mock signer)");
    println!(
        "{:>12} {:>16} {:>16} {:>16}",
        "log2|K|", "fanout(model)", "fanout(real)", "height(real)"
    );
    let table = WorkloadSpec::new(rows, 4, 10).build();
    let signer = MockSigner::new(1);
    for log_k in 0..=8u32 {
        let geometry = Geometry {
            key_len: 1usize << log_k,
            ..Geometry::default()
        };
        let config = VbTreeConfig {
            geometry,
            fanout_override: None,
        };
        let t: VbTree<4> = VbTree::bulk_load(&table, config, Acc256::test_default(), &signer);
        let s = t.stats();
        println!(
            "{:>12} {:>16} {:>16} {:>16}",
            log_k,
            geometry.vbtree_fanout(),
            s.fanout,
            s.height
        );
    }
    println!();
}

fn fig9(p: &Params, rows: u64) {
    println!("{}", render_table(&figures::figure9(p)));
    println!("## model heights at the measured scale ({rows} rows)");
    println!("{:>12} {:>16} {:>16}", "log2|K|", "B-tree", "VB-tree");
    for log_k in 0..=8u32 {
        let ps = Params {
            key_len: 1usize << log_k,
            n_r: rows,
            ..p.clone()
        };
        println!(
            "{:>12} {:>16} {:>16}",
            log_k,
            tree::btree_height(&ps),
            tree::vbtree_height(&ps)
        );
    }
    println!();
}

fn fig10(p: &Params, rows: u64) {
    for q_c in [2usize, 5, 8] {
        println!("{}", render_table(&figures::figure10(p, q_c)));
    }
    println!("## measured bytes on the wire ({rows} rows)");
    let fix = fixture(rows, 10, 20, None);
    println!(
        "{:>6} {:>4} {:>14} {:>14} {:>14} {:>14}",
        "sel%", "Q_C", "naive", "vbtree", "vb result", "vb VO"
    );
    for q_c in [2usize, 5, 8] {
        for pct in [10u32, 20, 40, 60, 80, 100] {
            let (naive, vb, result, vo) = measured_comm(&fix, q_c, pct as f64 / 100.0);
            println!("{pct:>6} {q_c:>4} {naive:>14} {vb:>14} {result:>14} {vo:>14}");
        }
    }
    println!();
}

fn fig11(p: &Params, rows: u64) {
    println!("{}", render_table(&figures::figure11(p)));
    println!("## measured bytes vs attribute size ({rows} rows, all columns)");
    println!(
        "{:>12} {:>6} {:>14} {:>14}",
        "attrFactor", "sel%", "naive", "vbtree"
    );
    for a in 0..=4u32 {
        let attr = (1usize << a) * 16;
        let fix = fixture(rows, 10, attr, None);
        for pct in [20u32, 80] {
            let (naive, vb, _, _) = measured_comm(&fix, 10, pct as f64 / 100.0);
            println!("{a:>12} {pct:>6} {naive:>14} {vb:>14}");
        }
    }
    println!();
}

fn fig12(p: &Params, rows: u64) {
    for x in [5.0f64, 10.0, 100.0] {
        println!("{}", render_table(&figures::figure12(p, x)));
    }
    println!("## measured verification cost ({rows} rows, units of Cost_h1)");
    let fix = fixture(rows, 10, 20, None);
    println!(
        "{:>6} {:>6} {:>16} {:>16} {:>10} {:>10} {:>10}",
        "X", "sel%", "naive", "vbtree", "vb hash", "vb comb", "vb verify"
    );
    for x in [5.0f64, 10.0, 100.0] {
        let ps = Params { x, ..p.clone() };
        for pct in [20u32, 60, 100] {
            let (naive, vb, meter) = measured_compute(&fix, 10, pct as f64 / 100.0, &ps);
            println!(
                "{x:>6} {pct:>6} {naive:>16.0} {vb:>16.0} {:>10} {:>10} {:>10}",
                meter.hash_ops, meter.combine_ops, meter.verify_ops
            );
        }
    }
    println!();
}

fn storage(p: &Params, rows: u64) {
    println!("# Section 4.1 — storage costs");
    println!(
        "base-table digest overhead (model, 1M rows): {} B",
        tree::base_table_overhead(p)
    );
    println!("per-node digest overhead: {} B", tree::node_overhead(p));
    println!(
        "index bytes: B-tree {} / VB-tree {}",
        tree::btree_index_bytes(p),
        tree::vbtree_index_bytes(p)
    );
    let fix = fixture(rows, 10, 20, None);
    let stats = fix.tree.stats();
    println!("## measured ({rows} rows)");
    println!("tree height          : {}", stats.height);
    println!("nodes                : {}", stats.nodes);
    println!("leaves               : {}", stats.leaves);
    println!("fan-out              : {}", stats.fanout);
    println!("logical index bytes  : {}", stats.logical_bytes);
    println!("actual digest bytes  : {}", stats.digest_bytes);
    println!("base table bytes     : {}", fix.table.data_bytes());
    println!();
}

fn update_costs(p: &Params, rows: u64) {
    println!("# Section 4.4 — update costs (equations (11), (12))");
    let ins = update::insert_breakdown(p);
    println!(
        "insert (model, 1M rows): hashes {} combines {} signs {} -> {:.0} Cost_h1",
        ins.hashes,
        ins.combines,
        ins.signs,
        update::update_total(p, &ins)
    );
    for n_d in [100u64, 10_000] {
        let del = update::delete_breakdown(p, n_d);
        println!(
            "delete {n_d} rows (model): combines {:.0} signs {:.0} -> {:.0} Cost_h1",
            del.combines,
            del.signs,
            update::update_total(p, &del)
        );
    }
    let scaled = Params {
        n_r: rows,
        ..p.clone()
    };
    let (ins_m, del_m, range_m) = measured_updates(rows, 100);
    let ins_model = update::insert_breakdown(&scaled);
    println!("## measured ({rows} rows)");
    println!(
        "insert: measured [{}] vs model signs {:.0}",
        ins_m, ins_model.signs
    );
    println!("point delete: measured [{del_m}]");
    let del_model = update::delete_breakdown(&scaled, 100);
    println!(
        "range delete (100 rows): measured [{range_m}] vs model combines {:.0} signs {:.0}",
        del_model.combines, del_model.signs
    );
    println!();
}

/// All three schemes through the one generic `AuthScheme` pipeline:
/// same table, same query, the paper's three cost axes side by side.
fn scheme_head_to_head(rows: u64) {
    println!("# Head-to-head — one AuthScheme pipeline, three schemes");
    let hi = rows / 5; // 20% selectivity
    let q = RangeQuery::select_all(0, hi.saturating_sub(1));
    println!("table: {rows} rows x 10 cols, query [0, {}]", q.hi);
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "scheme", "rows", "wire bytes", "VO digests", "hashes", "combines", "sig checks"
    );
    for m in head_to_head(rows, 10, 20, None, &q) {
        println!(
            "{:>10} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
            m.scheme,
            m.rows,
            m.wire_bytes,
            m.vo_digests,
            m.meter.hash_ops,
            m.meter.combine_ops,
            m.meter.verify_ops
        );
    }
    println!();
}

fn merkle_extension() {
    println!("# Extension — VO growth: VB-tree vs Merkle root-anchored proofs");
    println!(
        "{:>10} {:>20} {:>20}",
        "rows", "VB-tree VO digests", "Merkle proof hashes"
    );
    for (rows, vb, mk) in measured_vo_growth(&[500, 2_000, 8_000, 32_000]) {
        println!("{rows:>10} {vb:>20} {mk:>20}");
    }
    println!();
}
