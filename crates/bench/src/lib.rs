//! # vbx-bench — measurement harness
//!
//! Shared fixtures and measurement routines behind the `repro` binary
//! (which regenerates every figure/table of the paper) and the Criterion
//! benches. Measurements run the *real* implementation — trees, VOs,
//! verification — at laptop scale and report the same metrics the
//! analytical model predicts, so shapes can be compared directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod compact;
pub mod failover;
pub mod net;
pub mod perf;
pub mod recover;
pub mod serve;
pub mod txn;
pub mod write_batch;

use vbx_analysis::Params;
use vbx_baselines::{MerkleAuthStore, MerkleScheme, NaiveAuthStore, NaiveScheme};
use vbx_core::scheme::AuthScheme;
use vbx_core::{execute, ClientVerifier, CostMeter, RangeQuery, VbScheme, VbTree, VbTreeConfig};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::Table;

/// A measurement fixture: one synthetic table with all three
/// authenticated stores built over it.
pub struct Fixture {
    /// The synthetic base table.
    pub table: Table,
    /// The VB-tree (mock-signed for speed; signature sizes are reported
    /// separately by the primitives bench).
    pub tree: VbTree<4>,
    /// The Naive per-tuple/per-attribute store.
    pub naive: NaiveAuthStore<4>,
    /// The Merkle hash tree baseline.
    pub merkle: MerkleAuthStore,
    /// Shared accumulator.
    pub acc: Acc256,
    /// The signer used throughout.
    pub signer: MockSigner,
}

/// Build a fixture. `fanout: None` uses the Table 1 geometry.
pub fn fixture(rows: u64, n_c: usize, attr_bytes: usize, fanout: Option<usize>) -> Fixture {
    let spec = WorkloadSpec::new(rows, n_c, attr_bytes);
    let table = spec.build();
    let signer = MockSigner::new(0xBEEF);
    let acc = Acc256::test_default();
    let config = match fanout {
        Some(f) => VbTreeConfig::with_fanout(f),
        None => VbTreeConfig::default(),
    };
    let tree = VbTree::bulk_load_parallel(
        &table,
        config,
        acc.clone(),
        &signer,
        vbx_core::default_build_threads(table.len()),
    );
    let naive = NaiveAuthStore::build(&table, acc.clone(), &signer);
    let merkle = MerkleAuthStore::build(&table, &signer);
    Fixture {
        table,
        tree,
        naive,
        merkle,
        acc,
        signer,
    }
}

/// A measurement fixture for one [`AuthScheme`]: the synthetic table
/// and the authenticated store built over it — the generic counterpart
/// of [`Fixture`], usable with any scheme.
pub struct SchemeFixture<S: AuthScheme> {
    /// The scheme descriptor (public parameters).
    pub scheme: S,
    /// The synthetic base table.
    pub table: Table,
    /// The authenticated store.
    pub store: S::Store,
    /// The signer used throughout.
    pub signer: MockSigner,
}

/// Build a generic fixture over `scheme`.
pub fn scheme_fixture<S: AuthScheme>(
    scheme: S,
    rows: u64,
    n_c: usize,
    attr_bytes: usize,
) -> SchemeFixture<S> {
    let table = WorkloadSpec::new(rows, n_c, attr_bytes).build();
    let signer = MockSigner::new(0xBEEF);
    let store = scheme.build(&table, &signer);
    SchemeFixture {
        scheme,
        table,
        store,
        signer,
    }
}

/// One scheme's measured costs for one query, all through the
/// [`AuthScheme`] pipeline.
#[derive(Clone, Debug)]
pub struct SchemeMeasurement {
    /// Scheme name (`vb-tree`, `naive`, `merkle`).
    pub scheme: &'static str,
    /// Result rows returned.
    pub rows: usize,
    /// Bytes on the wire (communication cost).
    pub wire_bytes: usize,
    /// Digests/hashes shipped in the VO (VO-size metric).
    pub vo_digests: usize,
    /// Client-side primitive operations.
    pub meter: CostMeter,
}

/// Execute and verify one range query through the scheme interface,
/// returning the paper's three cost axes.
pub fn measure_scheme<S: AuthScheme>(
    fix: &SchemeFixture<S>,
    query: &RangeQuery,
) -> SchemeMeasurement {
    let resp = fix.scheme.range_query(&fix.store, query);
    let mut meter = CostMeter::new();
    let batch = fix
        .scheme
        .verify(
            fix.table.schema(),
            fix.signer.verifier().as_ref(),
            query,
            &resp,
            &mut meter,
        )
        .unwrap_or_else(|e| panic!("honest {} response verifies: {e}", S::NAME));
    SchemeMeasurement {
        scheme: S::NAME,
        rows: batch.rows.len(),
        wire_bytes: S::response_wire_bytes(&resp),
        vo_digests: S::vo_digest_count(&resp),
        meter,
    }
}

/// The paper's head-to-head: the same table and query measured through
/// all three schemes via the one generic pipeline.
pub fn head_to_head(
    rows: u64,
    n_c: usize,
    attr_bytes: usize,
    fanout: Option<usize>,
    query: &RangeQuery,
) -> Vec<SchemeMeasurement> {
    let acc = Acc256::test_default();
    let config = match fanout {
        Some(f) => VbTreeConfig::with_fanout(f),
        None => VbTreeConfig::default(),
    };
    let vb = scheme_fixture(VbScheme::new(acc.clone(), config), rows, n_c, attr_bytes);
    let naive = scheme_fixture(NaiveScheme::new(acc), rows, n_c, attr_bytes);
    let merkle = scheme_fixture(MerkleScheme, rows, n_c, attr_bytes);
    vec![
        measure_scheme(&vb, query),
        measure_scheme(&naive, query),
        measure_scheme(&merkle, query),
    ]
}

/// The projection of the first `q_c` columns, or `None` for all.
pub fn projection(n_c: usize, q_c: usize) -> Option<Vec<usize>> {
    if q_c >= n_c {
        None
    } else {
        Some((0..q_c).collect())
    }
}

/// Measured communication cost (bytes on the wire) at a selectivity:
/// `(naive_bytes, vbtree_bytes, vbtree_result_bytes, vbtree_vo_bytes)`.
pub fn measured_comm(fix: &Fixture, q_c: usize, selectivity: f64) -> (usize, usize, usize, usize) {
    let n_c = fix.table.schema().num_columns();
    let rows = fix.table.len() as u64;
    let hi = sel_hi(rows, selectivity);
    let proj = projection(n_c, q_c);
    let q = RangeQuery {
        lo: 0,
        hi,
        projection: proj.clone(),
    };
    let resp = execute(&fix.tree, &q, None);
    let size = vbx_core::measure_response(&resp);
    let naive_resp = fix.naive.query(0, hi, proj.as_deref(), None);
    (
        naive_resp.wire_bytes(),
        size.total(),
        size.result_bytes,
        size.vo_bytes,
    )
}

/// Measured verification cost at a selectivity, weighted by the paper's
/// ratios: `(naive_cost, vbtree_cost)` in units of `Cost_h1`, plus the
/// raw VB-tree meter.
pub fn measured_compute(
    fix: &Fixture,
    q_c: usize,
    selectivity: f64,
    params: &Params,
) -> (f64, f64, CostMeter) {
    let n_c = fix.table.schema().num_columns();
    let rows = fix.table.len() as u64;
    let hi = sel_hi(rows, selectivity);
    let proj = projection(n_c, q_c);
    let q = RangeQuery {
        lo: 0,
        hi,
        projection: proj.clone(),
    };
    let resp = execute(&fix.tree, &q, None);
    let client = ClientVerifier::new(&fix.acc, fix.table.schema());
    let report = client
        .verify(fix.signer.verifier().as_ref(), &q, &resp)
        .expect("honest response verifies");

    let vb_cost = report.meter.hash_ops as f64
        + report.meter.combine_ops as f64 * params.combine_ratio
        + report.meter.verify_ops as f64 * params.x;

    // Naive: run the real verifier and price its operations.
    let naive_resp = fix.naive.query(0, hi, proj.as_deref(), None);
    let sig_checks = NaiveAuthStore::verify(
        &fix.acc,
        fix.table.schema(),
        fix.signer.verifier().as_ref(),
        0,
        hi,
        proj.as_deref(),
        &naive_resp,
    )
    .expect("honest naive response verifies");
    let n_rows = naive_resp.rows.len() as f64;
    let q_c_eff = proj.as_ref().map_or(n_c, Vec::len) as f64;
    let naive_cost = n_rows * q_c_eff // hashes
        + n_rows * n_c as f64 * params.combine_ratio // combines
        + sig_checks as f64 * params.x;

    (naive_cost, vb_cost, report.meter)
}

/// Measured VO digest counts for the VB-tree vs proof hashes for the
/// Merkle baseline at a fixed 20-row result, as the table grows.
pub fn measured_vo_growth(rows_list: &[u64]) -> Vec<(u64, usize, usize)> {
    rows_list
        .iter()
        .map(|&rows| {
            let fix = fixture(rows, 4, 10, Some(16));
            let q = RangeQuery::select_all(100, 119);
            let resp = execute(&fix.tree, &q, None);
            let merkle_resp = fix.merkle.query(100, 119);
            (rows, resp.vo.digest_count(), merkle_resp.proof_hashes())
        })
        .collect()
}

/// Inclusive high key touching `⌈sel × rows⌉` tuples (keys are dense).
fn sel_hi(rows: u64, selectivity: f64) -> u64 {
    let n = ((rows as f64) * selectivity).ceil().max(1.0) as u64;
    n.min(rows) - 1
}

/// Measured update costs: `(insert_meter, delete_meter, range_meter)`
/// for one insert, one point delete, and a `range_size` batch delete.
pub fn measured_updates(rows: u64, range_size: u64) -> (CostMeter, CostMeter, CostMeter) {
    let mut fix = fixture(rows, 10, 20, None);
    let schema = fix.table.schema().clone();
    let spec = WorkloadSpec::new(rows, 10, 20);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let tuple = spec.make_tuple(&schema, rows + 10, &mut rng);

    fix.tree.take_meter();
    fix.tree.insert(tuple, &fix.signer).unwrap();
    let insert_meter = fix.tree.take_meter();

    fix.tree.delete(rows / 2, &fix.signer).unwrap();
    let delete_meter = fix.tree.take_meter();

    fix.tree
        .delete_range(10, 10 + range_size - 1, &fix.signer)
        .unwrap();
    let range_meter = fix.tree.take_meter();

    (insert_meter, delete_meter, range_meter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_consistently() {
        let fix = fixture(200, 4, 10, Some(8));
        assert_eq!(fix.tree.len(), 200);
        assert_eq!(fix.naive.len(), 200);
        assert_eq!(fix.merkle.len(), 200);
    }

    #[test]
    fn measured_comm_orders_match_paper() {
        let fix = fixture(500, 10, 20, None);
        for q_c in [2usize, 5, 8] {
            for sel in [0.2, 0.6, 1.0] {
                let (naive, vb, _, _) = measured_comm(&fix, q_c, sel);
                assert!(
                    naive > vb,
                    "naive must ship more bytes (q_c {q_c}, sel {sel}): {naive} vs {vb}"
                );
            }
        }
    }

    #[test]
    fn measured_compute_orders_match_paper() {
        let fix = fixture(400, 10, 20, None);
        let p = Params::default();
        for sel in [0.2, 0.8] {
            let (naive, vb, _) = measured_compute(&fix, 10, sel, &p);
            assert!(naive > vb, "sel {sel}: {naive} vs {vb}");
        }
    }

    #[test]
    fn vo_growth_vbtree_flat_merkle_log() {
        let growth = measured_vo_growth(&[400, 1600, 6400]);
        let vb: Vec<usize> = growth.iter().map(|g| g.1).collect();
        let mk: Vec<usize> = growth.iter().map(|g| g.2).collect();
        assert!(vb[2] <= vb[0] + 2, "VB-tree VO must not grow: {vb:?}");
        assert!(mk[2] > mk[0], "Merkle proof must grow: {mk:?}");
    }

    #[test]
    fn head_to_head_matches_paper_orderings() {
        // Figures 10–13 through the one generic pipeline: Naive ships
        // the most bytes and does per-row signature work; the VB-tree's
        // VO carries the fewest signature checks per row.
        let q = RangeQuery::select_all(0, 99);
        let m = head_to_head(500, 10, 20, None, &q);
        assert_eq!(m.len(), 3);
        let vb = &m[0];
        let naive = &m[1];
        let merkle = &m[2];
        assert_eq!(vb.scheme, "vb-tree");
        assert_eq!(naive.scheme, "naive");
        assert_eq!(merkle.scheme, "merkle");
        assert_eq!(vb.rows, 100);
        assert_eq!(naive.rows, 100);
        assert_eq!(merkle.rows, 100);
        assert!(
            naive.wire_bytes > vb.wire_bytes,
            "naive must ship more bytes: {} vs {}",
            naive.wire_bytes,
            vb.wire_bytes
        );
        // Naive: one signature decryption per row (at minimum); Merkle:
        // exactly one (the root).
        assert!(naive.meter.verify_ops >= 100);
        assert_eq!(merkle.meter.verify_ops, 1);
        assert!(vb.meter.verify_ops < naive.meter.verify_ops);
    }

    #[test]
    fn merkle_vo_grows_with_table_via_generic_pipeline() {
        let q = RangeQuery::select_all(100, 119);
        let mut merkle_digests = Vec::new();
        let mut vb_digests = Vec::new();
        for rows in [400u64, 1600, 6400] {
            let m = head_to_head(rows, 4, 10, Some(16), &q);
            vb_digests.push(m[0].vo_digests);
            merkle_digests.push(m[2].vo_digests);
        }
        assert!(
            merkle_digests[2] > merkle_digests[0],
            "merkle proof must grow: {merkle_digests:?}"
        );
        assert!(
            vb_digests[2] <= vb_digests[0] + 2,
            "VB-tree VO must not grow: {vb_digests:?}"
        );
    }

    #[test]
    fn measured_updates_scale() {
        let (ins, del, range) = measured_updates(400, 50);
        assert_eq!(ins.hash_ops, 10); // N_C attribute hashes
        assert!(ins.sign_ops >= 11); // attrs + tuple + path nodes
        assert!(del.sign_ops >= 1);
        assert!(range.sign_ops >= del.sign_ops);
    }
}
