//! The `repro -- failover` section: a closed-loop benchmark of
//! **verified chunked state sync** and **edge failover**.
//!
//! Two questions, measured on the real implementation:
//!
//! 1. *How fast is a verified restore?* The full chunk-and-verify
//!    pipeline (`TreeChunks` → `Restorer`, the path `clone_verified`
//!    and the wire restore share) is timed end to end: chunk encoding,
//!    per-chunk signature/digest verification, and tree rebuild —
//!    reported as ns per restore, rows/s, and stream bytes.
//!
//! 2. *What does failover cost under load?* Reader threads issue
//!    strict freshness-verified routed queries while a writer commits
//!    fanned-out deltas; at the midpoint the writer **kills the edge
//!    owning `t0`** and promotes a standby via the verified-sync path.
//!    Readers only ever observe the cluster before or after the
//!    promotion (it runs under the coordinator's write lock), so the
//!    headline invariant is `failover_verify_failures = 0`: **no
//!    unverified or stale row is ever served**, and the downtime is
//!    exactly the promotion latency. The report is written to
//!    `BENCH_failover.json`.

use crate::perf::{percentile, reader_threads, BenchRecord};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use vbx_core::scheme::AuthScheme;
use vbx_core::{ClientVerifier, FreshnessPolicy, RangeQuery, VbScheme, VbTreeConfig};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::Acc256;
use vbx_edge::{clone_verified, ClusterConfig, ClusterCoordinator};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Schema, Tuple, Value};

const EDGES: usize = 3;
const TABLES: usize = 3;

fn fresh_tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("new{key}")),
            Value::from("w"),
            Value::from((key % 97) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

type Cluster = ClusterCoordinator<VbScheme<4>>;

/// Route a query and verify the response under a strict freshness
/// policy against the current owner position.
fn strict_routed_query(
    cluster: &Cluster,
    acc: &Acc256,
    schemas: &[Schema],
    table_idx: usize,
    q: &RangeQuery,
) -> Result<usize, vbx_core::VerifyError> {
    let table = format!("t{table_idx}");
    let routed = cluster.query(&table, q).expect("table is sharded");
    let (owner_seq, owner_clock) = cluster.owner_position();
    let verifier = cluster
        .central()
        .registry()
        .verifier(routed.response.vo.key_version)
        .expect("published key version");
    ClientVerifier::new(acc, &schemas[table_idx])
        .with_freshness(FreshnessPolicy::strict(), owner_seq, owner_clock)
        .verify(verifier.as_ref(), q, &routed.response)
        .map(|r| r.rows)
}

/// Run the failover benchmark at `rows` rows per table (`smoke` shrinks
/// the workload for CI) and return the records written to
/// `BENCH_failover.json`.
pub fn run_failover(rows: u64, smoke: bool) -> Vec<BenchRecord> {
    let deltas: u64 = (if smoke { 24 } else { 96 }).min(rows / 2);
    let min_queries: u64 = if smoke { 16 } else { 120 };
    let restore_iters: u32 = if smoke { 2 } else { 6 };

    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(0xFA11, 1));
    let mut cluster: Cluster = ClusterCoordinator::new(
        VbScheme::new(acc.clone(), VbTreeConfig::default()),
        signer,
        ClusterConfig {
            edges: EDGES,
            retention: 8_192,
            ..ClusterConfig::default()
        },
    );
    let mut schemas = Vec::with_capacity(TABLES);
    for i in 0..TABLES {
        let spec = WorkloadSpec {
            table: format!("t{i}"),
            ..WorkloadSpec::new(rows, 3, 8)
        };
        let table = spec.build();
        schemas.push(table.schema().clone());
        cluster.create_table(table);
    }
    cluster.sync().expect("initial sync");

    let readers = reader_threads();
    println!(
        "# failover — {EDGES} edges × {TABLES} sharded tables, {readers} readers × \
         strict-verified routed queries vs 1 writer × {deltas} deltas, edge killed at \
         the midpoint ({rows} rows/table)"
    );

    // ---- verified restore throughput (the chunk-and-verify pipeline) ----
    let (restore_ns, restore_chunks, restore_bytes) = {
        let central = cluster.central();
        let scheme = central.scheme().clone();
        let store = central.store("t0").expect("t0 lives");
        let verifier = central.verifier();
        let chunks = scheme.sync_chunk_count(store);
        let bytes: usize = (0..chunks)
            .map(|i| scheme.encode_sync_chunk(store, i).expect("chunk").len())
            .sum();
        // Warm-up, then the timed loop: every iteration re-encodes the
        // stream and verifies every chunk before releasing the tree.
        let back =
            clone_verified(&scheme, store, verifier.clone()).expect("central restores cleanly");
        assert_eq!(back.root_digest(), store.root_digest(), "faithful restore");
        let t0 = Instant::now();
        for _ in 0..restore_iters {
            clone_verified(&scheme, store, verifier.clone()).expect("verified restore");
        }
        (
            t0.elapsed().as_nanos() as f64 / restore_iters as f64,
            chunks,
            bytes,
        )
    };
    let restore_rows_per_s = rows as f64 / (restore_ns / 1e9);

    // ---- closed loop with a mid-run edge kill + promotion ----
    let victim = cluster.route("t0").expect("t0 is sharded");
    let standby = (victim + 1) % EDGES;
    let kill_at = deltas / 2;

    let shared = RwLock::new(cluster);
    let stop = AtomicBool::new(false);
    let failures = AtomicU64::new(0);
    let wall = Instant::now();
    let (mut latencies, promotion) = std::thread::scope(|s| {
        let shared = &shared;
        let stop = &stop;
        let failures = &failures;
        let acc = &acc;
        let schemas = &schemas[..];

        let handles: Vec<_> = (0..readers as u64)
            .map(|r| {
                s.spawn(move || {
                    let spans = [(rows / 100).max(1), (rows / 20).max(1)];
                    let mut lat = Vec::with_capacity(4096);
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) || i < min_queries {
                        let t_idx = ((r + i) % TABLES as u64) as usize;
                        let span = spans[(i % 2) as usize];
                        let lo = (r * 131 + i * 17) % rows;
                        let q = RangeQuery::select_all(lo, lo + span);
                        let t0 = Instant::now();
                        let guard = shared.read();
                        // The writer drains every queue before releasing
                        // its lock, and the kill + promotion happen
                        // atomically under the write lock — a strict
                        // policy must always pass.
                        let ok = strict_routed_query(&guard, acc, schemas, t_idx, &q).is_ok();
                        drop(guard);
                        lat.push(t0.elapsed().as_nanos() as u64);
                        if !ok {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        i += 1;
                    }
                    lat
                })
            })
            .collect();

        let writer = s.spawn(move || {
            let mut promotion: Option<(f64, usize)> = None;
            for i in 0..deltas {
                let t_idx = (i % TABLES as u64) as usize;
                let table = format!("t{t_idx}");
                let mut guard = shared.write();
                if i % 2 == 0 {
                    let key = rows * 4 + i;
                    guard
                        .insert(&table, fresh_tuple(&schemas[t_idx], key))
                        .expect("insert + fan-out");
                } else {
                    guard.delete(&table, i).expect("delete + fan-out");
                }
                guard.sync().expect("drain all subscriptions");
                if i == kill_at {
                    // Kill the owner of t0 and promote the standby via
                    // the verified-sync path. The elapsed time is the
                    // cluster's write-unavailability window for the
                    // moved shards.
                    let t0 = Instant::now();
                    let moved = guard
                        .promote_replica(victim, standby)
                        .expect("promotion succeeds");
                    let downtime = t0.elapsed().as_nanos() as f64;
                    assert!(!moved.is_empty(), "the dead edge owned t0");
                    promotion = Some((downtime, moved.len()));
                }
                drop(guard);
            }
            stop.store(true, Ordering::Relaxed);
            promotion.expect("kill point inside the loop")
        });

        let lats: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader panicked"))
            .collect();
        (lats, writer.join().expect("writer panicked"))
    });
    let wall_ns = wall.elapsed().as_nanos() as f64;
    let cluster = shared.into_inner();
    let (promotion_ns, tables_moved) = promotion;

    let verify_failures = failures.load(Ordering::Relaxed);
    assert_eq!(
        verify_failures, 0,
        "a strict-verified routed query failed around the failover"
    );
    let new_owner = cluster.route("t0").expect("t0 still sharded");
    assert_eq!(new_owner, standby, "t0 moved to the promoted standby");
    let lags = cluster.lag_report();
    assert!(
        lags.iter().filter(|l| l.edge != victim).all(|l| l.lag == 0),
        "live edges must end fully drained: {lags:?}"
    );
    // The promoted replica serves fresh, verifiable state right now.
    let q = RangeQuery::select_all(0, rows / 4);
    let promoted_rows = strict_routed_query(&cluster, &acc, &schemas, 0, &q)
        .expect("promoted standby serves strictly-verified responses");

    // ---- report ----
    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let mean = latencies.iter().sum::<u64>() as f64 / total.max(1) as f64;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let qps = total as f64 / (wall_ns / 1e9);

    let mut recs = Vec::new();
    let mut rec = |op: &str, n: u64, ns: f64| {
        println!("{op:<28} {ns:>14.1} ns/op  (n = {n})");
        recs.push(BenchRecord {
            op: op.to_string(),
            n,
            ns_per_op: ns,
        });
    };
    rec("failover_edges", EDGES as u64, 0.0);
    rec("failover_tables", TABLES as u64, 0.0);
    rec("restore_verified", rows, restore_ns);
    rec("restore_rows_per_s", restore_rows_per_s as u64, 0.0);
    rec("restore_chunks", restore_chunks as u64, 0.0);
    rec("restore_stream_bytes", restore_bytes as u64, 0.0);
    rec("promotion_downtime", tables_moved as u64, promotion_ns);
    rec("failover_routed_mean", total, mean);
    rec("failover_routed_p50", total, p50);
    rec("failover_routed_p99", total, p99);
    rec("failover_verify_failures", verify_failures, 0.0);
    rec("failover_promoted_rows", promoted_rows as u64, 0.0);

    println!();
    println!("readers                : {readers} threads (+1 writer)");
    println!("reader throughput      : {qps:.0} strict-verified routed queries/s");
    println!(
        "verified restore       : {rows} rows in {:.1} ms ({:.0} rows/s, {} chunks, {} B)",
        restore_ns / 1e6,
        restore_rows_per_s,
        restore_chunks,
        restore_bytes
    );
    println!(
        "promotion              : edge {victim} killed, {tables_moved} table(s) moved to \
         edge {standby} in {:.1} ms — 0 unverified rows served",
        promotion_ns / 1e6
    );
    recs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_failover_promotes_without_unverified_reads() {
        let recs = run_failover(400, true);
        let get = |op: &str| {
            recs.iter()
                .find(|r| r.op == op)
                .unwrap_or_else(|| panic!("missing record {op}"))
        };
        assert_eq!(get("failover_verify_failures").n, 0);
        assert!(get("restore_verified").ns_per_op > 0.0);
        assert!(get("restore_chunks").n >= 2, "skeleton plus leaf runs");
        assert!(get("promotion_downtime").n >= 1, "t0 moved");
        assert!(get("failover_promoted_rows").n > 0);
        assert!(get("failover_routed_p99").ns_per_op >= get("failover_routed_p50").ns_per_op);
    }
}
