//! The `repro -- serve` section: a closed-loop multi-threaded benchmark
//! of the concurrent edge serving subsystem (snapshot replicas + VO
//! cache + Section 3.4 locks).
//!
//! N reader threads issue a verified query mix derived from
//! [`vbx_storage::workload::WorkloadSpec`] (a hot range plus rotating
//! windows at several selectivities) against one [`EdgeServer`] while a
//! writer thread applies signed deltas streamed from a
//! [`CentralServer`]. Every response is client-verified; a single
//! verification failure aborts the run. The report covers reader
//! throughput and latency (p50/p99), delta apply latency, and the
//! cache-hit vs cold-execution gap, and is written to
//! `BENCH_serve.json` in the same diffable shape as `BENCH_perf.json`.

use crate::perf::{percentile, reader_threads, BenchRecord};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use vbx_core::{RangeQuery, VbTreeConfig};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::{Acc256, KeyRegistry};
use vbx_edge::{CentralServer, EdgeServer, KeyFreshnessPolicy, SchemeClient, VbScheme};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Tuple, Value};

/// One reader's share of the closed loop: issue queries from the mix,
/// verify each response, record per-query latency, until the writer is
/// done (but at least `min_queries`).
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    reader: u64,
    rows: u64,
    min_queries: u64,
    edge: &EdgeServer<VbScheme<4>>,
    client: &SchemeClient<VbScheme<4>>,
    registry: &KeyRegistry,
    stop: &AtomicBool,
    failures: &AtomicU64,
) -> Vec<u64> {
    // Query mix: ~0.5 %, 2 % and 10 % selectivity windows (the paper's
    // selectivity sweep, shrunk), plus a fixed hot range that exercises
    // the cache.
    let spans: Vec<u64> = [0.005f64, 0.02, 0.10]
        .iter()
        .map(|s| ((rows as f64 * s) as u64).max(1))
        .collect();
    let hot = RangeQuery::select_all(rows / 4, rows / 4 + spans[2]);
    let mut lat = Vec::with_capacity(4096);
    let mut i = 0u64;
    while !stop.load(Ordering::Relaxed) || i < min_queries {
        let q = if i % 4 == 0 {
            hot.clone()
        } else {
            let span = spans[(i % spans.len() as u64) as usize];
            let lo = (reader * 131 + i * 17) % rows;
            RangeQuery::select_all(lo, lo + span)
        };
        let t0 = Instant::now();
        let resp = edge.query_range("items", &q).expect("replica exists");
        let ok = client
            .verify_range(
                "items",
                &q,
                &resp,
                registry,
                KeyFreshnessPolicy::RequireCurrent,
            )
            .is_ok();
        lat.push(t0.elapsed().as_nanos() as u64);
        if !ok {
            failures.fetch_add(1, Ordering::Relaxed);
        }
        i += 1;
    }
    lat
}

/// Run the serving benchmark at `rows` table rows (`smoke` shrinks the
/// workload for CI) and return the records written to
/// `BENCH_serve.json`. `write_batch` are the group-commit batch sizes
/// swept on the RSA-signed configuration (`write_batchN` records).
pub fn run_serve(rows: u64, smoke: bool, write_batch: &[usize]) -> Vec<BenchRecord> {
    // Deletes target the distinct keys 1, 3, 5, …, so the stream never
    // outruns the table.
    let deltas: u64 = (if smoke { 40 } else { 200 }).min(rows / 2);
    let min_queries: u64 = if smoke { 30 } else { 200 };

    let spec = WorkloadSpec {
        table: "items".into(),
        ..WorkloadSpec::new(rows, 4, 10)
    };
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(0xED6E, 1));
    let mut central = CentralServer::new(acc, signer, VbTreeConfig::default());
    central.create_table(spec.build());
    let schema = central.tree("items").expect("created").schema().clone();
    let edge = EdgeServer::from_bundle(central.bundle());
    let client = SchemeClient::new(edge.scheme().clone(), edge.schemas());
    let mut registry = KeyRegistry::new();
    registry.publish(MockSigner::with_version(0xED6E, 1).verifier(), 0);

    let readers = reader_threads();
    println!(
        "# serve — {readers} readers × verified query mix vs 1 writer × {deltas} signed deltas ({rows} rows)"
    );

    let stop = AtomicBool::new(false);
    let failures = AtomicU64::new(0);
    let wall = Instant::now();
    let (mut latencies, delta_ns) = std::thread::scope(|s| {
        let edge = &edge;
        let client = &client;
        let registry = &registry;
        let stop = &stop;
        let failures = &failures;
        let central = &mut central;
        let schema = &schema;

        let handles: Vec<_> = (0..readers as u64)
            .map(|r| {
                s.spawn(move || {
                    reader_loop(r, rows, min_queries, edge, client, registry, stop, failures)
                })
            })
            .collect();

        let writer = s.spawn(move || {
            let mut per_delta = Vec::with_capacity(deltas as usize);
            for i in 0..deltas {
                let t0 = Instant::now();
                let delta = if i % 2 == 0 {
                    let key = rows * 4 + i;
                    let t = Tuple::new(
                        schema,
                        key,
                        vec![
                            Value::from(format!("new{key}")),
                            Value::from("w"),
                            Value::from("x"),
                            Value::from((i % 97) as i64),
                        ],
                    )
                    .expect("schema-conformant tuple");
                    central.insert("items", t).expect("insert")
                } else {
                    central.delete("items", i).expect("delete")
                };
                edge.apply_delta(&delta).expect("replay");
                per_delta.push(t0.elapsed().as_nanos() as u64);
            }
            stop.store(true, Ordering::Relaxed);
            per_delta
        });

        let lats: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader panicked"))
            .collect();
        (lats, writer.join().expect("writer panicked"))
    });
    let wall_ns = wall.elapsed().as_nanos() as f64;

    let failures = failures.load(Ordering::Relaxed);
    assert_eq!(
        failures, 0,
        "a concurrently-served response failed verification"
    );
    assert_eq!(edge.applied_seq(), deltas);

    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let mean = latencies.iter().sum::<u64>() as f64 / total.max(1) as f64;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let qps = total as f64 / (wall_ns / 1e9);
    let delta_mean = delta_ns.iter().sum::<u64>() as f64 / delta_ns.len().max(1) as f64;
    let cache = edge.service().cache_stats();
    let locks = edge.service().lock_stats();

    // ---- cold vs cached, measured without the writer racing ----
    // One quiescing delta empties the table's cache (readers may have
    // repopulated it after the writer stopped), so the first pass over
    // the probe ranges is honestly cold and the second pass is all hits.
    {
        let key = rows * 4 + deltas;
        let t = Tuple::new(
            &schema,
            key,
            vec![
                Value::from("quiesce"),
                Value::from("w"),
                Value::from("x"),
                Value::from(0i64),
            ],
        )
        .expect("schema-conformant tuple");
        let delta = central.insert("items", t).expect("insert");
        edge.apply_delta(&delta).expect("replay");
    }
    let probe_span = ((rows as f64 * 0.02) as u64).max(1);
    let probes: Vec<RangeQuery> = (0..16u64)
        .map(|i| {
            let lo = (i * 53) % rows;
            RangeQuery::select_all(lo, lo + probe_span)
        })
        .collect();
    let time_pass = || -> f64 {
        let t0 = Instant::now();
        for q in &probes {
            let _ = edge.query_range("items", q).expect("probe");
        }
        t0.elapsed().as_nanos() as f64 / probes.len() as f64
    };
    let cold_ns = time_pass();
    let cached_ns = time_pass();

    let mut recs = Vec::new();
    let mut rec = |op: &str, n: u64, ns: f64| {
        println!("{op:<28} {ns:>14.1} ns/op  (n = {n})");
        recs.push(BenchRecord {
            op: op.to_string(),
            n,
            ns_per_op: ns,
        });
    };
    rec("serve_query_mean", total, mean);
    rec("serve_query_p50", total, p50);
    rec("serve_query_p99", total, p99);
    rec("serve_wall_per_query", total, wall_ns / total.max(1) as f64);
    rec("serve_delta_apply", deltas, delta_mean);
    rec("serve_query_cold", probes.len() as u64, cold_ns);
    rec("serve_query_cached", probes.len() as u64, cached_ns);
    rec("serve_verify_failures", failures, 0.0);

    println!();
    println!("readers                : {readers} threads (+1 writer)");
    println!("reader throughput      : {qps:.0} verified queries/s (closed loop)");
    println!(
        "cache                  : {} hits / {} misses / {} invalidated / {} evicted",
        cache.hits, cache.misses, cache.invalidated, cache.evicted
    );
    println!(
        "locks                  : {} acquired, {} conflicts (retried), {} released",
        locks.acquired, locks.conflicts, locks.released
    );
    println!(
        "cache speedup          : {:.2}x (cold {:.1} µs → cached {:.1} µs)",
        cold_ns / cached_ns,
        cold_ns / 1e3,
        cached_ns / 1e3
    );

    // ---- group-commit sweep on the RSA-signed configuration ----
    println!();
    recs.extend(crate::write_batch::sweep_serve(write_batch, smoke));

    // ---- flat vs compact VO comparison (RSA-1024) ----
    println!();
    recs.extend(crate::compact::sweep_compact_vo(smoke));
    recs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_serve_runs_verified_and_caches() {
        let recs = run_serve(400, true, &[1, 16]);
        let get = |op: &str| {
            recs.iter()
                .find(|r| r.op == op)
                .unwrap_or_else(|| panic!("missing record {op}"))
        };
        assert_eq!(get("serve_verify_failures").n, 0);
        assert!(get("serve_query_p99").ns_per_op >= get("serve_query_p50").ns_per_op);
        assert!(get("serve_query_cold").ns_per_op > 0.0);
        assert!(
            get("serve_query_cached").ns_per_op < get("serve_query_cold").ns_per_op,
            "cache hits must be faster than cold executions"
        );
        assert!(
            get("write_batch16").ns_per_op <= get("write_batch1").ns_per_op,
            "group commit must amortise the per-op write cost"
        );
    }
}
