//! The `--write-batch` sweep: amortised group-commit cost on the
//! **RSA-signed configuration**.
//!
//! The paper's Section 3.4 update protocol signs every mutated digest
//! per transaction; with RSA-1024 at ~286 µs per signature a single-op
//! commit burns two-plus signatures (path re-signs + freshness stamp)
//! before the edge pays its clone/replay/swap. The sweep drives the
//! same write mix — consecutive-key deletes with periodic inserts, the
//! shape of a hot ingest-and-expire table — through the full pipeline
//! at batch sizes `k ∈ {1, 4, 16}` and reports the **amortised ns per
//! op**, committed as `write_batchN` records in `BENCH_serve.json`
//! (central → single edge) and `BENCH_cluster.json` (coordinator
//! fan-out). CI gates on batched ≤ unbatched.

use crate::perf::BenchRecord;
use std::sync::Arc;
use std::time::Instant;
use vbx_core::{ClientVerifier, FreshnessPolicy, RangeQuery, VbTreeConfig};
use vbx_crypto::rsa;
use vbx_crypto::Acc256;
use vbx_edge::{CentralServer, ClusterConfig, ClusterCoordinator, EdgeServer, UpdateOp, VbScheme};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Schema, Table, Tuple, Value};

fn sweep_table(name: &str, rows: u64) -> Table {
    WorkloadSpec {
        table: name.into(),
        ..WorkloadSpec::new(rows, 3, 8)
    }
    .build()
}

fn fresh_tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("wb{key}")),
            Value::from("x"),
            Value::from((key % 97) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

/// The write mix, shared by every batch size so the amortisation
/// comparison is apples to apples: mostly deletes of consecutive keys
/// (shared root-to-leaf paths — where deferred signing shines), with
/// every 8th op an insert (whose per-tuple digests cannot be amortised
/// away, keeping the mix honest). Cursors persist across batches and
/// sizes, so every op touches fresh keys.
struct OpMix {
    del_cursor: u64,
    ins_cursor: u64,
    op_index: u64,
}

impl OpMix {
    fn new() -> Self {
        Self {
            del_cursor: 0,
            ins_cursor: 0,
            op_index: 0,
        }
    }

    fn next_op(&mut self, schema: &Schema) -> UpdateOp {
        let i = self.op_index;
        self.op_index += 1;
        if i % 8 == 4 {
            self.ins_cursor += 1;
            UpdateOp::Insert(fresh_tuple(schema, 1_000_000 + self.ins_cursor))
        } else {
            let key = self.del_cursor;
            self.del_cursor += 1;
            UpdateOp::Delete(key)
        }
    }

    fn batch(&mut self, schema: &Schema, k: usize) -> Vec<UpdateOp> {
        (0..k).map(|_| self.next_op(schema)).collect()
    }
}

fn record(recs: &mut Vec<BenchRecord>, k: usize, n: u64, ns: f64) {
    let op = format!("write_batch{k}");
    println!("{op:<28} {ns:>14.1} ns/op  (n = {n}, amortised)");
    recs.push(BenchRecord {
        op,
        n,
        ns_per_op: ns,
    });
}

fn print_ratio(recs: &[BenchRecord]) {
    let find = |k: usize| {
        recs.iter()
            .find(|r| r.op == format!("write_batch{k}"))
            .map(|r| r.ns_per_op)
    };
    if let (Some(one), Some(sixteen)) = (find(1), find(16)) {
        println!(
            "write-batch amortisation : {:.2}x (k=1 {:.1} µs/op → k=16 {:.1} µs/op, RSA-1024)",
            one / sixteen,
            one / 1e3,
            sixteen / 1e3
        );
    }
}

/// Serve-topology sweep: one RSA-signed central server streaming to one
/// edge replica. Measures commit (`execute_update_batch`) + edge apply
/// (`apply_delta_batch`) per op at each batch size.
pub fn sweep_serve(ks: &[usize], smoke: bool) -> Vec<BenchRecord> {
    let rows: u64 = if smoke { 200 } else { 800 };
    let ops_per_k: usize = if smoke { 16 } else { 32 };
    let signer = Arc::new(rsa::fixture_keypair_crt_1024());
    // Cluster-grade per-commit stamping: the freshness stamp is part of
    // the measured per-commit signature cost, exactly as in the
    // cluster's write pipeline.
    let mut central = CentralServer::new(Acc256::test_default(), signer, VbTreeConfig::default())
        .with_delta_retention(1 << 20);
    central.create_table(sweep_table("wb", rows));
    let schema = central.tree("wb").expect("created").schema().clone();
    let edge = EdgeServer::from_bundle(central.bundle());

    println!("# write-batch sweep (serve) — RSA-1024, {rows} rows, {ops_per_k} ops per size");
    let mut mix = OpMix::new();
    let mut recs = Vec::new();
    for &k in ks {
        let k = k.max(1);
        let rounds = ops_per_k.div_ceil(k);
        let total = (rounds * k) as u64;
        let t0 = Instant::now();
        for _ in 0..rounds {
            let ops = mix.batch(&schema, k);
            let batch = central
                .execute_update_batch("wb", ops)
                .expect("batched commit");
            edge.apply_delta_batch(&batch).expect("batch replay");
        }
        record(
            &mut recs,
            k,
            total,
            t0.elapsed().as_nanos() as f64 / total as f64,
        );
    }
    print_ratio(&recs);

    // The pipeline must stay sound at every size: replica converged…
    assert_eq!(
        edge.tree("wb").expect("replica").root_digest().exp,
        central.tree("wb").expect("master").root_digest().exp,
        "edge replica diverged from the master during the sweep"
    );
    // …and a freshness-verified read passes strictly (the last batch's
    // stamp attests the edge's exact position).
    let q = RangeQuery::select_all(mix.del_cursor, mix.del_cursor + 40);
    let resp = edge.query_range("wb", &q).expect("replica query");
    let (owner_seq, owner_clock) = central.owner_position();
    ClientVerifier::new(central.accumulator(), &schema)
        .with_freshness(FreshnessPolicy::strict(), owner_seq, owner_clock)
        .verify(
            central.registry().verifier(1).expect("published").as_ref(),
            &q,
            &resp,
        )
        .expect("strictly fresh verified read after the sweep");
    recs
}

/// Cluster-topology sweep: the coordinator's full write pipeline —
/// group commit, single-envelope fan-out to every subscription queue,
/// owner-edge batch replay, foreign-edge range skip — per op at each
/// batch size.
pub fn sweep_cluster(ks: &[usize], smoke: bool) -> Vec<BenchRecord> {
    let rows: u64 = if smoke { 200 } else { 800 };
    let ops_per_k: usize = if smoke { 16 } else { 32 };
    let signer = Arc::new(rsa::fixture_keypair_crt_1024());
    let mut cluster = ClusterCoordinator::new(
        VbScheme::<4>::new(Acc256::test_default(), VbTreeConfig::default()),
        signer,
        ClusterConfig {
            edges: 2,
            retention: 1 << 20,
            ..ClusterConfig::default()
        },
    );
    cluster.create_table(sweep_table("wbc", rows));
    let schema = cluster.central().schema("wbc").expect("created").clone();
    cluster.sync().expect("initial sync");

    println!(
        "# write-batch sweep (cluster) — RSA-1024, 2 edges, {rows} rows, {ops_per_k} ops per size"
    );
    let mut mix = OpMix::new();
    let mut recs = Vec::new();
    for &k in ks {
        let k = k.max(1);
        let rounds = ops_per_k.div_ceil(k);
        let total = (rounds * k) as u64;
        let t0 = Instant::now();
        for _ in 0..rounds {
            let ops = mix.batch(&schema, k);
            cluster.update_batch("wbc", ops).expect("batched commit");
            cluster.sync().expect("drain all subscriptions");
        }
        record(
            &mut recs,
            k,
            total,
            t0.elapsed().as_nanos() as f64 / total as f64,
        );
    }
    print_ratio(&recs);

    // Soundness: fully drained, and a strict freshness-verified routed
    // read passes after the batched stream.
    let lags = cluster.lag_report();
    assert!(lags.iter().all(|l| l.lag == 0), "undrained sweep: {lags:?}");
    let q = RangeQuery::select_all(mix.del_cursor, mix.del_cursor + 40);
    let routed = cluster.query("wbc", &q).expect("routed");
    let (owner_seq, owner_clock) = cluster.owner_position();
    let verifier = cluster
        .central()
        .registry()
        .verifier(routed.response.vo.key_version)
        .expect("published key");
    ClientVerifier::new(cluster.central().accumulator(), &schema)
        .with_freshness(FreshnessPolicy::strict(), owner_seq, owner_clock)
        .verify(verifier.as_ref(), &q, &routed.response)
        .expect("strictly fresh verified routed read after the sweep");
    recs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(recs: &[BenchRecord], op: &str) -> f64 {
        recs.iter()
            .find(|r| r.op == op)
            .unwrap_or_else(|| panic!("missing record {op}"))
            .ns_per_op
    }

    #[test]
    fn smoke_serve_sweep_amortises() {
        let recs = sweep_serve(&[1, 4, 16], true);
        assert!(
            get(&recs, "write_batch16") <= get(&recs, "write_batch1"),
            "batched writes must not be slower than per-op writes"
        );
        assert!(get(&recs, "write_batch4") > 0.0);
    }

    #[test]
    fn smoke_cluster_sweep_amortises() {
        let recs = sweep_cluster(&[1, 4, 16], true);
        assert!(
            get(&recs, "write_batch16") <= get(&recs, "write_batch1"),
            "batched writes must not be slower than per-op writes"
        );
    }
}
