//! The durability benchmark behind `repro -- recover`: measures what
//! crash safety costs on the write path (one WAL fsync per acked
//! commit, amortised by group commit) and what it buys on the read
//! path (checkpoint + WAL-suffix replay throughput), then proves the
//! recovered server byte-identical to a never-crashed control.
//!
//! Runs against a real directory ([`DiskVfs`]) so the fsyncs are real;
//! the directory is removed afterwards.

use crate::perf::BenchRecord;
use std::sync::Arc;
use std::time::Instant;
use vbx_core::{VbScheme, VbTreeConfig};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::{Acc256, Signer};
use vbx_edge::{CentralServer, DurabilityConfig, UpdateOp};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{DiskVfs, Schema, Tuple, Value, Vfs};

const TABLE: &str = "t0";
const BATCH_K: u64 = 16;

fn tuple(schema: &Schema, key: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("v{key:06}")),
            Value::from((key % 89) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

fn spec(rows: u64) -> WorkloadSpec {
    WorkloadSpec {
        table: TABLE.into(),
        ..WorkloadSpec::new(rows, 2, 8)
    }
}

fn durable_central(
    vfs: Arc<dyn Vfs>,
    rows: u64,
    config: DurabilityConfig,
) -> CentralServer<VbScheme<4>> {
    let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(0xD1));
    let mut central = CentralServer::with_scheme(
        VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(16)),
        signer,
    )
    .with_delta_retention(1 << 20)
    .with_durability(vfs, config)
    .expect("durability init");
    central.create_table(spec(rows).build());
    central
}

/// Run the durability benchmark. Returns the trajectory records for
/// `BENCH_recover.json`; panics if the recovered state diverges from
/// the never-crashed control (divergences are also reported as a
/// record so CI can gate on the committed file).
pub fn run_recover(rows: u64, smoke: bool) -> Vec<BenchRecord> {
    let root = std::env::temp_dir().join(format!("vbx-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let ops: u64 = if smoke { 64 } else { 512 };
    let mut records = Vec::new();

    // ---- write path: one fsync per acked commit (k = 1) ------------
    let dir_k1 = root.join("k1");
    let vfs: Arc<dyn Vfs> = Arc::new(DiskVfs::open(&dir_k1).expect("temp vfs"));
    let config = DurabilityConfig {
        checkpoint_every: 0, // DDL-only: keep every commit in the WAL
        retain_wal: false,
        page_size: 4096,
    };
    let mut central = durable_central(vfs, rows, config);
    let schema = central.schema(TABLE).expect("table").clone();
    let base = 1 << 20; // keys above the seeded rows
    let t0 = Instant::now();
    for i in 0..ops {
        central
            .insert(TABLE, tuple(&schema, base + i))
            .expect("durable insert");
    }
    let k1_ns = t0.elapsed().as_nanos() as f64 / ops as f64;
    records.push(BenchRecord {
        op: "recover_commit_k1".into(),
        n: ops,
        ns_per_op: k1_ns,
    });

    // ---- write path: group commit, one fsync per k = 16 ops --------
    let dir_k16 = root.join("k16");
    let vfs: Arc<dyn Vfs> = Arc::new(DiskVfs::open(&dir_k16).expect("temp vfs"));
    let mut batched = durable_central(vfs, rows, config);
    let t0 = Instant::now();
    for b in 0..ops / BATCH_K {
        let batch = (0..BATCH_K)
            .map(|i| UpdateOp::Insert(tuple(&schema, base + b * BATCH_K + i)))
            .collect();
        batched
            .execute_update_batch(TABLE, batch)
            .expect("durable batch");
    }
    let k16_ns = t0.elapsed().as_nanos() as f64 / ops as f64;
    records.push(BenchRecord {
        op: "recover_commit_k16".into(),
        n: ops,
        ns_per_op: k16_ns,
    });
    drop(batched);

    // ---- read path: recovery = checkpoint load + WAL replay --------
    let expected = central.encode_state();
    drop(central);
    let vfs: Arc<dyn Vfs> = Arc::new(DiskVfs::open(&dir_k1).expect("temp vfs"));
    let signer: Arc<dyn Signer> = Arc::new(MockSigner::new(0xD1));
    let t0 = Instant::now();
    let recovered = CentralServer::recover(
        VbScheme::<4>::new(Acc256::test_default(), VbTreeConfig::with_fanout(16)),
        signer,
        vfs,
        config,
    )
    .expect("recovery");
    let replay_ns = t0.elapsed().as_nanos() as f64 / ops as f64;
    records.push(BenchRecord {
        op: "recover_replay".into(),
        n: ops,
        ns_per_op: replay_ns,
    });

    // ---- correctness: recovered ≡ the server that never crashed ----
    let divergences = u64::from(recovered.encode_state() != expected);
    assert_eq!(divergences, 0, "recovered state diverged from control");
    records.push(BenchRecord {
        op: "recover_divergences".into(),
        n: divergences,
        ns_per_op: 0.0,
    });

    println!(
        "durable commit, fsync per op (k=1):   {:>10.0} ns/op",
        k1_ns
    );
    println!(
        "durable commit, group commit (k=16):  {:>10.0} ns/op",
        k16_ns
    );
    println!(
        "recovery replay: {ops} ops in {:.2} ms ({:.0} ops/s)",
        replay_ns * ops as f64 / 1e6,
        1e9 / replay_ns
    );
    println!("divergences: {divergences}");

    let _ = std::fs::remove_dir_all(&root);
    records
}
