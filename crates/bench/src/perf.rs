//! The `repro -- perf` section: measured speedups of the fast-path
//! crypto engine, with machine-readable JSON output.
//!
//! Every run rewrites `BENCH_perf.json` (op name, `n`, ns/op) in the
//! working directory so the perf trajectory is tracked across PRs —
//! diff the file between commits to see the hot paths drift. The
//! human-readable report prints the same numbers plus the fast-vs-naive
//! speedup ratios the acceptance gates care about:
//!
//! * `accum_lift` (fixed-base comb table) vs `accum_lift_naive`
//!   (square-and-multiply);
//! * `rsa*_sign` (CRT, two half-width exponentiations) vs
//!   `rsa*_sign_fullwidth` (one full-width exponentiation);
//! * `vbtree_build_par` (`bulk_load_parallel`) vs `vbtree_build_seq`.

use std::hint::black_box;
use std::time::Instant;
use vbx_core::{default_build_threads, VbTree, VbTreeConfig};
use vbx_crypto::accum::exp_from_seed;
use vbx_crypto::rsa;
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;

/// One measured operation: `ns_per_op` nanoseconds per execution, with
/// `n` executions behind the estimate (or the input size, for the bulk
/// builds — see each op's comment).
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Operation name (stable across PRs — the trajectory key).
    pub op: String,
    /// Iterations measured, or rows for whole-build ops.
    pub n: u64,
    /// Nanoseconds per operation.
    pub ns_per_op: f64,
}

/// Reader threads for the closed-loop benchmarks (`serve`, `cluster`):
/// at least 2 even on a single hardware thread, more cores add readers
/// up to 4.
pub fn reader_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(2, usize::from)
        .clamp(2, 4)
}

/// Nearest-rank percentile of an ascending-sorted latency list.
pub fn percentile(sorted: &[u64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * pct).round() as usize;
    sorted[idx] as f64
}

/// Mean wall time of `f` in nanoseconds over `iters` runs (after one
/// warm-up run).
fn time_ns<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn record(recs: &mut Vec<BenchRecord>, op: &str, n: u64, ns: f64) {
    println!("{op:<28} {ns:>14.1} ns/op  (n = {n})");
    recs.push(BenchRecord {
        op: op.to_string(),
        n,
        ns_per_op: ns,
    });
}

/// Run the perf suite at `rows` table rows (`smoke` shrinks iteration
/// counts for CI) and return the records written to `BENCH_perf.json`.
pub fn run_perf(rows: u64, smoke: bool) -> Vec<BenchRecord> {
    let mut recs = Vec::new();
    let scale: u64 = if smoke { 1 } else { 10 };

    // ---- accumulator lift: fixed-base table vs square-and-multiply ----
    let acc = Acc256::test_default();
    let exps: Vec<_> = (0..16u64).map(|i| exp_from_seed(&acc, i)).collect();
    let mut i = 0usize;
    let iters = 200 * scale;
    let lift_fast = time_ns(iters, || {
        i = (i + 1) % exps.len();
        black_box(acc.lift(&exps[i]));
    });
    record(&mut recs, "accum_lift", iters, lift_fast);
    let lift_naive = time_ns(iters, || {
        i = (i + 1) % exps.len();
        black_box(acc.lift_naive(&exps[i]));
    });
    record(&mut recs, "accum_lift_naive", iters, lift_naive);

    // ---- combine_all: Montgomery-chained exponent product ----
    let chain_iters = 200 * scale;
    let combine_all = time_ns(chain_iters, || {
        black_box(acc.combine_all(exps.iter()));
    });
    record(&mut recs, "accum_combine_all_16", chain_iters, combine_all);

    // ---- RSA sign: CRT vs full-width, same keys ----
    let msg = b"node digest payload for perf measurement";
    let kp512 = rsa::fixture_keypair_crt_512();
    let kp512_full = kp512.without_crt();
    let s_iters = 20 * scale;
    let crt512 = time_ns(s_iters, || {
        black_box(kp512.sign(msg));
    });
    record(&mut recs, "rsa512_sign", s_iters, crt512);
    let full512 = time_ns(s_iters, || {
        black_box(kp512_full.sign(msg));
    });
    record(&mut recs, "rsa512_sign_fullwidth", s_iters, full512);

    let kp1024 = rsa::fixture_keypair_crt_1024();
    let kp1024_full = kp1024.without_crt();
    let s_iters = (10 * scale).max(5);
    let crt1024 = time_ns(s_iters, || {
        black_box(kp1024.sign(msg));
    });
    record(&mut recs, "rsa1024_sign", s_iters, crt1024);
    let full1024 = time_ns(s_iters, || {
        black_box(kp1024_full.sign(msg));
    });
    record(&mut recs, "rsa1024_sign_fullwidth", s_iters, full1024);
    let v1024 = kp1024.verifier();
    let sig1024 = kp1024.sign(msg);
    let verify1024 = time_ns(50 * scale, || {
        black_box(v1024.verify(msg, &sig1024));
    });
    record(&mut recs, "rsa1024_verify", 50 * scale, verify1024);

    // ---- bulk tree build: sequential vs parallel, same fixture ----
    let table = WorkloadSpec::new(rows, 10, 20).build();
    let signer = MockSigner::new(0xBEEF);
    let build_iters = if smoke { 1 } else { 3 };
    let seq_ns = time_ns(build_iters, || {
        black_box(VbTree::<4>::bulk_load(
            &table,
            VbTreeConfig::default(),
            acc.clone(),
            &signer,
        ));
    });
    record(&mut recs, "vbtree_build_seq", rows, seq_ns);
    // Honest thread count: whatever the scheme layer would actually use
    // on this machine/table. On a single hardware thread (or below the
    // parallel threshold) that is 1 and `bulk_load_parallel` takes the
    // sequential path — forcing 2 here used to report a bogus
    // "parallel" build that was just spawn/join overhead.
    let threads = default_build_threads(rows as usize);
    let par_ns = time_ns(build_iters, || {
        black_box(VbTree::<4>::bulk_load_parallel(
            &table,
            VbTreeConfig::default(),
            acc.clone(),
            &signer,
            threads,
        ));
    });
    record(
        &mut recs,
        &format!("vbtree_build_par_t{threads}"),
        rows,
        par_ns,
    );

    // ---- end-to-end RSA-signed build: the deployment path where
    // signing dominates (the paper prices one signature at ~10⁴ hashes),
    // so the CRT fast path moves the whole build ----
    let rsa_rows = if smoke { 100 } else { 500 };
    let rsa_table = WorkloadSpec::new(rsa_rows, 4, 10).build();
    let kp = rsa::fixture_keypair_crt_512();
    let kp_full = kp.without_crt();
    let acc512 = vbx_crypto::Acc512::test_default_512();
    let rsa_build_crt = time_ns(1, || {
        black_box(VbTree::<8>::bulk_load(
            &rsa_table,
            VbTreeConfig::default(),
            acc512.clone(),
            &kp,
        ));
    });
    record(
        &mut recs,
        "vbtree_build_rsa512_crt",
        rsa_rows,
        rsa_build_crt,
    );
    let rsa_build_full = time_ns(1, || {
        black_box(VbTree::<8>::bulk_load(
            &rsa_table,
            VbTreeConfig::default(),
            acc512.clone(),
            &kp_full,
        ));
    });
    record(
        &mut recs,
        "vbtree_build_rsa512_fullwidth",
        rsa_rows,
        rsa_build_full,
    );

    println!();
    println!(
        "lift speedup (fixed-base vs naive)      : {:.2}x",
        lift_naive / lift_fast
    );
    println!(
        "rsa512 sign speedup (CRT vs full-width) : {:.2}x",
        full512 / crt512
    );
    println!(
        "rsa1024 sign speedup (CRT vs full-width): {:.2}x",
        full1024 / crt1024
    );
    if threads > 1 {
        println!(
            "build speedup ({threads} threads vs sequential, {rows} rows): {:.2}x",
            seq_ns / par_ns
        );
    } else {
        println!(
            "build parallelism: 1 effective thread on this machine/size — sequential fallback"
        );
    }
    println!(
        "RSA-signed build speedup (CRT vs full-width, {rsa_rows} rows): {:.2}x",
        rsa_build_full / rsa_build_crt
    );
    recs
}

/// Serialize records to a `BENCH_*.json` trajectory file (`bench` names
/// the section — "perf", "serve"). No serde in the workspace, so the
/// JSON is written by hand (flat structure, ASCII op names — nothing
/// needs escaping).
pub fn write_bench_json(
    path: &str,
    bench: &str,
    rows: u64,
    records: &[BenchRecord],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str(&format!("  \"rows\": {rows},\n"));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"n\": {}, \"ns_per_op\": {:.1}}}{}\n",
            r.op,
            r.n,
            r.ns_per_op,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid() {
        let recs = vec![
            BenchRecord {
                op: "a".into(),
                n: 1,
                ns_per_op: 1.5,
            },
            BenchRecord {
                op: "b".into(),
                n: 2,
                ns_per_op: 2.0,
            },
        ];
        let path = std::env::temp_dir().join("vbx_bench_test.json");
        let path = path.to_str().unwrap();
        write_bench_json(path, "perf", 100, &recs).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(body.contains("\"op\": \"a\""));
        assert!(body.contains("\"rows\": 100"));
        assert!(body.contains("\"ns_per_op\": 2.0"));
        // balanced braces/brackets, single trailing newline
        assert_eq!(body.matches('{').count(), body.matches('}').count());
        assert_eq!(body.matches('[').count(), body.matches(']').count());
    }

    #[test]
    fn smoke_perf_runs_and_measures() {
        let recs = run_perf(200, true);
        assert!(recs.iter().any(|r| r.op == "accum_lift"));
        assert!(recs.iter().any(|r| r.op.starts_with("vbtree_build_par")));
        assert!(recs.iter().all(|r| r.ns_per_op > 0.0));
    }
}
