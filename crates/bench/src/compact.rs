//! The compact-VO comparison: flat (`VBX2`) vs op-stream (`VBX4`)
//! encodings of the same k-range batch on the **RSA-1024-signed
//! configuration**.
//!
//! Flat serving answers k ranges with k independent VOs, each carrying
//! its own signed digests — the client pays one RSA verification per
//! shipped digest. The compact path merges the batch into one op
//! stream: shared digests are deduplicated through the dictionary,
//! every digest ships bare, and a single condensed signature (Mykletun
//! et al.'s aggregation — multiplicative for textbook RSA) covers them
//! all, so the client pays **one** modexp sweep for the whole batch.
//! The records land in `BENCH_serve.json` / `BENCH_cluster.json` and CI
//! gates on `vo_bytes_compact ≤ vo_bytes_flat` and
//! `sigs_per_query_batched ≤ sigs_per_query_single`.

use crate::perf::BenchRecord;
use std::time::Instant;
use vbx_core::{
    execute, execute_multi_compact, measure_compact, measure_response, ClientVerifier, RangeQuery,
    VbTree, VbTreeConfig,
};
use vbx_crypto::{rsa, Acc256};
use vbx_storage::workload::WorkloadSpec;

/// Measure the k-range batch on both encodings and return the four
/// gated records (plus verify-time observations). Used by both the
/// `serve` and `cluster` sections so both committed BENCH files carry
/// the comparison.
pub fn sweep_compact_vo(smoke: bool) -> Vec<BenchRecord> {
    let rows: u64 = if smoke { 240 } else { 2_000 };
    let signer = rsa::fixture_keypair_crt_1024();
    let verifier = signer.public_key();
    let table = WorkloadSpec {
        table: "cvo".into(),
        ..WorkloadSpec::new(rows, 3, 8)
    }
    .build();
    let tree = VbTree::bulk_load(
        &table,
        VbTreeConfig::default(),
        Acc256::test_default(),
        &signer,
    );
    let schema = table.schema().clone();

    // Three overlapping windows — the multi-query batch a planner emits
    // for an OR-of-ranges predicate; overlap feeds the dictionary.
    let span = (rows / 10).max(4);
    let queries: Vec<RangeQuery> = (0..3u64)
        .map(|i| {
            let lo = rows / 4 + i * span / 2;
            RangeQuery::select_all(lo, lo + span)
        })
        .collect();
    let k = queries.len() as u64;

    println!("# compact-VO comparison — RSA-1024, {rows} rows, {k} overlapping ranges");

    // Flat path: k independent responses, each independently verified.
    let client = ClientVerifier::new(tree.accumulator(), &schema);
    let mut flat_vo_bytes = 0usize;
    let mut flat_sigs = 0u64;
    let t0 = Instant::now();
    for q in &queries {
        let resp = execute(&tree, q, None);
        flat_vo_bytes += measure_response(&resp).vo_bytes;
        let report = client
            .verify(&verifier, q, &resp)
            .expect("honest flat response verifies");
        flat_sigs += report.signatures_checked as u64;
    }
    let flat_ns = t0.elapsed().as_nanos() as f64;

    // Compact path: one merged op stream, one condensed signature.
    let compact = execute_multi_compact(&tree, &queries, None, Some(&verifier));
    let compact_vo_bytes = measure_compact(&compact).vo_bytes;
    let t0 = Instant::now();
    let report = client
        .verify_compact(&verifier, &queries, &compact)
        .expect("honest compact response verifies");
    let compact_ns = t0.elapsed().as_nanos() as f64;
    let compact_sigs = report.signatures_checked;

    let mut recs = Vec::new();
    let mut rec = |op: &str, n: u64, value: f64| {
        println!("{op:<28} {value:>14.1}  (n = {n})");
        recs.push(BenchRecord {
            op: op.to_string(),
            n,
            ns_per_op: value,
        });
    };
    rec("vo_bytes_flat", k, flat_vo_bytes as f64);
    rec("vo_bytes_compact", k, compact_vo_bytes as f64);
    rec("sigs_per_query_single", k, flat_sigs as f64 / k as f64);
    rec("sigs_per_query_batched", k, compact_sigs as f64 / k as f64);
    rec("verify_flat_per_query", k, flat_ns / k as f64);
    rec("verify_batched_per_query", k, compact_ns / k as f64);

    println!(
        "compact VO             : {:.2}x smaller ({flat_vo_bytes} B → {compact_vo_bytes} B), \
         {flat_sigs} sigs → {compact_sigs} (peak stack {})",
        flat_vo_bytes as f64 / compact_vo_bytes.max(1) as f64,
        report.peak_stack_depth,
    );
    recs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(recs: &[BenchRecord], op: &str) -> f64 {
        recs.iter()
            .find(|r| r.op == op)
            .unwrap_or_else(|| panic!("missing record {op}"))
            .ns_per_op
    }

    #[test]
    fn smoke_compact_beats_flat_on_bytes_and_signatures() {
        let recs = sweep_compact_vo(true);
        assert!(get(&recs, "vo_bytes_compact") <= get(&recs, "vo_bytes_flat"));
        assert!(
            get(&recs, "sigs_per_query_batched") < get(&recs, "sigs_per_query_single"),
            "one condensed sweep must beat per-digest verification"
        );
        assert!(get(&recs, "sigs_per_query_batched") <= 1.0);
    }
}
