//! Cryptographic primitive costs — the basis of the paper's `X` ratio
//! (`Cost_s / Cost_h1`) and its claim, citing [15], that hashing is
//! ~100× faster than signature verification and ~10000× faster than
//! signing. Compare `sha256_64B` with `rsa1024_verify` / `rsa1024_sign`
//! in the report to see the measured ratios on this machine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vbx_crypto::accum::exp_from_seed;
use vbx_crypto::rsa;
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::{md5, sha1, sha256, Acc256};

fn bench_hashes(c: &mut Criterion) {
    let data = vec![0xABu8; 64];
    c.bench_function("sha256_64B", |b| b.iter(|| sha256(black_box(&data))));
    c.bench_function("sha1_64B", |b| b.iter(|| sha1(black_box(&data))));
    c.bench_function("md5_64B", |b| b.iter(|| md5(black_box(&data))));
    let big = vec![0xCDu8; 4096];
    c.bench_function("sha256_4KB", |b| b.iter(|| sha256(black_box(&big))));
}

fn bench_accumulator(c: &mut Criterion) {
    let acc = Acc256::test_default();
    let x = exp_from_seed(&acc, 1);
    let y = exp_from_seed(&acc, 2);
    c.bench_function("accum_exp_from_bytes", |b| {
        b.iter(|| acc.exp_from_bytes(black_box(b"attribute digest input")))
    });
    c.bench_function("accum_combine", |b| {
        b.iter(|| acc.combine(black_box(&x), black_box(&y)))
    });
    c.bench_function("accum_lift_g_pow_e", |b| b.iter(|| acc.lift(black_box(&x))));
    c.bench_function("accum_lift_naive", |b| {
        b.iter(|| acc.lift_naive(black_box(&x)))
    });
    let chain: Vec<_> = (0..16).map(|i| exp_from_seed(&acc, i)).collect();
    c.bench_function("accum_combine_all_16", |b| {
        b.iter(|| acc.combine_all(black_box(&chain).iter()))
    });
    c.bench_function("accum_uncombine", |b| {
        b.iter(|| acc.uncombine(black_box(&x), black_box(&y)))
    });
}

fn bench_signatures(c: &mut Criterion) {
    let msg = b"node digest payload for signing benchmarks";
    let rsa512 = rsa::fixture_keypair_512();
    let rsa1024 = rsa::fixture_keypair_1024();
    let mock = MockSigner::new(7);

    c.bench_function("rsa512_sign", |b| b.iter(|| rsa512.sign(black_box(msg))));
    let sig512 = rsa512.sign(msg);
    let v512 = rsa512.verifier();
    c.bench_function("rsa512_verify", |b| {
        b.iter(|| v512.verify(black_box(msg), black_box(&sig512)))
    });

    c.bench_function("rsa1024_sign", |b| b.iter(|| rsa1024.sign(black_box(msg))));
    let sig1024 = rsa1024.sign(msg);
    let v1024 = rsa1024.verifier();
    c.bench_function("rsa1024_verify", |b| {
        b.iter(|| v1024.verify(black_box(msg), black_box(&sig1024)))
    });

    // CRT fast path vs the same key signing over the full modulus.
    let crt512 = rsa::fixture_keypair_crt_512();
    let full512 = crt512.without_crt();
    c.bench_function("rsa512_sign_crt", |b| {
        b.iter(|| crt512.sign(black_box(msg)))
    });
    c.bench_function("rsa512_sign_fullwidth", |b| {
        b.iter(|| full512.sign(black_box(msg)))
    });
    let crt1024 = rsa::fixture_keypair_crt_1024();
    let full1024 = crt1024.without_crt();
    c.bench_function("rsa1024_sign_crt", |b| {
        b.iter(|| crt1024.sign(black_box(msg)))
    });
    c.bench_function("rsa1024_sign_fullwidth", |b| {
        b.iter(|| full1024.sign(black_box(msg)))
    });

    c.bench_function("mock_sign", |b| b.iter(|| mock.sign(black_box(msg))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hashes, bench_accumulator, bench_signatures
}
criterion_main!(benches);
