//! Update transactions (Section 3.4 / 4.4): incremental insert, point
//! delete (recompute vs the uncombine extension), and batch range
//! delete. Mock signer isolates the tree machinery; one RSA variant
//! shows the end-to-end cost with real signatures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use vbx_bench::fixture;
use vbx_core::{VbTree, VbTreeConfig};
use vbx_crypto::rsa;
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert");
    g.sample_size(20);
    let spec = WorkloadSpec::new(5_000, 10, 20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    g.bench_function("mock_signer", |b| {
        let fix = fixture(5_000, 10, 20, None);
        let schema = fix.table.schema().clone();
        let mut next_key = 1_000_000u64;
        b.iter_batched(
            || {
                next_key += 1;
                (
                    fix.tree.clone(),
                    spec.make_tuple(&schema, next_key, &mut rng),
                )
            },
            |(mut tree, tuple)| tree.insert(tuple, &fix.signer).unwrap(),
            BatchSize::SmallInput,
        )
    });

    g.bench_function("rsa512_signer", |b| {
        let table = WorkloadSpec::new(500, 10, 20).build();
        let signer = rsa::fixture_keypair_512();
        let tree: VbTree<4> = VbTree::bulk_load(
            &table,
            VbTreeConfig::default(),
            Acc256::test_default(),
            &signer,
        );
        let schema = table.schema().clone();
        let mut next_key = 1_000_000u64;
        b.iter_batched(
            || {
                next_key += 1;
                (tree.clone(), spec.make_tuple(&schema, next_key, &mut rng))
            },
            |(mut tree, tuple)| tree.insert(tuple, &signer).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_batch_insert(c: &mut Criterion) {
    // Ablation: signature amortisation of insert_batch vs 100 single
    // inserts (signing dominates update cost per equation (11)).
    let mut g = c.benchmark_group("batch_insert");
    g.sample_size(10);
    let spec = WorkloadSpec::new(2_000, 10, 20);
    let fix = fixture(2_000, 10, 20, None);
    let schema = fix.table.schema().clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let batch: Vec<_> = (1_000_000..1_000_100u64)
        .map(|k| spec.make_tuple(&schema, k, &mut rng))
        .collect();

    g.bench_function("batch_100_rsa512", |b| {
        let signer = rsa::fixture_keypair_512();
        let tree: VbTree<4> = VbTree::bulk_load(
            &WorkloadSpec::new(500, 10, 20).build(),
            VbTreeConfig::default(),
            Acc256::test_default(),
            &fix.signer,
        );
        b.iter_batched(
            || (tree.clone(), batch.clone()),
            |(mut tree, batch)| tree.insert_batch(batch, &signer).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("pointwise_100_rsa512", |b| {
        let signer = rsa::fixture_keypair_512();
        let tree: VbTree<4> = VbTree::bulk_load(
            &WorkloadSpec::new(500, 10, 20).build(),
            VbTreeConfig::default(),
            Acc256::test_default(),
            &fix.signer,
        );
        b.iter_batched(
            || (tree.clone(), batch.clone()),
            |(mut tree, batch)| {
                for t in batch {
                    tree.insert(t, &signer).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_delete(c: &mut Criterion) {
    let mut g = c.benchmark_group("delete");
    g.sample_size(20);
    let fix = fixture(5_000, 10, 20, None);

    g.bench_function("recompute", |b| {
        b.iter_batched(
            || fix.tree.clone(),
            |mut tree| tree.delete(2_500, &fix.signer).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("uncombine_extension", |b| {
        b.iter_batched(
            || fix.tree.clone(),
            |mut tree| tree.delete_uncombine(2_500, &fix.signer).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("range_100", |b| {
        b.iter_batched(
            || fix.tree.clone(),
            |mut tree| tree.delete_range(1_000, 1_099, &fix.signer).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("range_1000", |b| {
        b.iter_batched(
            || fix.tree.clone(),
            |mut tree| tree.delete_range(1_000, 1_999, &fix.signer).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_insert, bench_batch_insert, bench_delete
}
criterion_main!(benches);
