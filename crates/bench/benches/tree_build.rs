//! Central-server build costs: bulk-loading VB-trees and the baselines
//! over growing tables (the one-off cost the paper's Section 4.1 storage
//! analysis amortises).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vbx_baselines::{MerkleAuthStore, NaiveAuthStore};
use vbx_core::{VbTree, VbTreeConfig};
use vbx_crypto::signer::MockSigner;
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("bulk_load");
    g.sample_size(10);
    for rows in [1_000u64, 4_000] {
        let table = WorkloadSpec::new(rows, 10, 20).build();
        let signer = MockSigner::new(3);
        g.throughput(Throughput::Elements(rows));
        g.bench_with_input(BenchmarkId::new("vbtree", rows), &table, |b, t| {
            b.iter(|| {
                VbTree::<4>::bulk_load(t, VbTreeConfig::default(), Acc256::test_default(), &signer)
            })
        });
        let threads = std::thread::available_parallelism()
            .map_or(2, usize::from)
            .max(2);
        g.bench_with_input(
            BenchmarkId::new(&format!("vbtree_par_t{threads}"), rows),
            &table,
            |b, t| {
                b.iter(|| {
                    VbTree::<4>::bulk_load_parallel(
                        t,
                        VbTreeConfig::default(),
                        Acc256::test_default(),
                        &signer,
                        threads,
                    )
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("naive", rows), &table, |b, t| {
            b.iter(|| NaiveAuthStore::<4>::build(t, Acc256::test_default(), &signer))
        });
        g.bench_with_input(BenchmarkId::new("merkle", rows), &table, |b, t| {
            b.iter(|| MerkleAuthStore::build(t, &signer))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build
}
criterion_main!(benches);
