//! The query path end-to-end: VO construction at the edge (Figures
//! 10/11's server side) and client verification (Figures 12/13), for the
//! VB-tree against both baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vbx_baselines::{MerkleAuthStore, NaiveAuthStore};
use vbx_bench::fixture;
use vbx_core::{execute, ClientVerifier, RangeQuery};
use vbx_crypto::Signer;

fn bench_vo_construction(c: &mut Criterion) {
    let fix = fixture(10_000, 10, 20, None);
    let mut g = c.benchmark_group("vo_construction");
    for sel_pct in [1u64, 10, 50] {
        let hi = fix.table.len() as u64 * sel_pct / 100 - 1;
        let q = RangeQuery::select_all(0, hi);
        g.bench_with_input(BenchmarkId::new("vbtree", sel_pct), &q, |b, q| {
            b.iter(|| execute(black_box(&fix.tree), black_box(q), None))
        });
        g.bench_with_input(BenchmarkId::new("naive", sel_pct), &hi, |b, &hi| {
            b.iter(|| fix.naive.query(0, black_box(hi), None, None))
        });
        g.bench_with_input(BenchmarkId::new("merkle", sel_pct), &hi, |b, &hi| {
            b.iter(|| fix.merkle.query(0, black_box(hi)))
        });
    }
    g.finish();
}

fn bench_verification(c: &mut Criterion) {
    let fix = fixture(10_000, 10, 20, None);
    let verifier = fix.signer.verifier();
    let mut g = c.benchmark_group("client_verify");
    g.sample_size(10);
    for sel_pct in [1u64, 10] {
        let hi = fix.table.len() as u64 * sel_pct / 100 - 1;
        let q = RangeQuery::select_all(0, hi);
        let resp = execute(&fix.tree, &q, None);
        g.bench_with_input(BenchmarkId::new("vbtree", sel_pct), &resp, |b, resp| {
            let client = ClientVerifier::new(&fix.acc, fix.table.schema());
            b.iter(|| {
                client
                    .verify(verifier.as_ref(), black_box(&q), black_box(resp))
                    .unwrap()
            })
        });
        let naive_resp = fix.naive.query(0, hi, None, None);
        g.bench_with_input(
            BenchmarkId::new("naive", sel_pct),
            &naive_resp,
            |b, resp| {
                b.iter(|| {
                    NaiveAuthStore::verify(
                        &fix.acc,
                        fix.table.schema(),
                        verifier.as_ref(),
                        0,
                        hi,
                        None,
                        black_box(resp),
                    )
                    .unwrap()
                })
            },
        );
        let merkle_resp = fix.merkle.query(0, hi);
        g.bench_with_input(
            BenchmarkId::new("merkle", sel_pct),
            &merkle_resp,
            |b, resp| {
                b.iter(|| {
                    MerkleAuthStore::verify(
                        fix.table.schema(),
                        verifier.as_ref(),
                        0,
                        hi,
                        black_box(resp),
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_projection(c: &mut Criterion) {
    // Projection trades result bytes for D_P verification work.
    let fix = fixture(10_000, 10, 20, None);
    let verifier = fix.signer.verifier();
    let mut g = c.benchmark_group("projection_verify");
    g.sample_size(10);
    for q_c in [2usize, 5, 10] {
        let q = RangeQuery {
            lo: 0,
            hi: 499,
            projection: vbx_bench::projection(10, q_c),
        };
        let resp = execute(&fix.tree, &q, None);
        g.bench_with_input(BenchmarkId::new("vbtree", q_c), &resp, |b, resp| {
            let client = ClientVerifier::new(&fix.acc, fix.table.schema());
            b.iter(|| {
                client
                    .verify(verifier.as_ref(), black_box(&q), black_box(resp))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_vo_construction, bench_verification, bench_projection
}
criterion_main!(benches);
