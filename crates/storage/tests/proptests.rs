//! Property tests for the storage substrate: codecs round-trip for
//! arbitrary data, the slotted page matches a model, and workloads are
//! reproducible.

use proptest::prelude::*;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{ColumnDef, ColumnType, Schema, SlottedPage, StorageError, Tuple, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("NaN breaks equality", |f| !f.is_nan())
            .prop_map(Value::Float),
        ".{0,40}".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ]
}

fn schema_for(values: &[Value]) -> Schema {
    let columns = values
        .iter()
        .enumerate()
        .map(|(i, v)| ColumnDef::new(format!("c{i}"), v.column_type()))
        .collect();
    Schema::new("db", "t", "id", columns)
}

proptest! {
    #[test]
    fn value_codec_roundtrip(v in arb_value()) {
        let enc = v.encode();
        prop_assert_eq!(enc.len(), v.wire_len());
        let mut slice = enc.as_slice();
        prop_assert_eq!(Value::decode(&mut slice).unwrap(), v);
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn tuple_codec_roundtrip(
        key in any::<u64>(),
        values in proptest::collection::vec(arb_value(), 1..8),
    ) {
        let schema = schema_for(&values);
        let t = Tuple::new(&schema, key, values).unwrap();
        let enc = t.encode();
        prop_assert_eq!(enc.len(), t.wire_len());
        let mut slice = enc.as_slice();
        prop_assert_eq!(Tuple::decode(&mut slice).unwrap(), t);
    }

    #[test]
    fn schema_codec_roundtrip(
        n_cols in 1usize..10,
        names in proptest::collection::vec("[a-z]{1,8}", 10..11),
    ) {
        // Unique names: suffix with the index.
        let columns: Vec<ColumnDef> = (0..n_cols)
            .map(|i| {
                let ty = match i % 4 {
                    0 => ColumnType::Int,
                    1 => ColumnType::Float,
                    2 => ColumnType::Text,
                    _ => ColumnType::Bytes,
                };
                ColumnDef::new(format!("{}_{i}", names[i]), ty)
            })
            .collect();
        let schema = Schema::new("mydb", "mytable", "pk", columns);
        let mut bytes = Vec::new();
        schema.encode_into(&mut bytes);
        let mut slice = bytes.as_slice();
        let back = Schema::decode(&mut slice).unwrap();
        prop_assert!(slice.is_empty());
        prop_assert_eq!(back, schema);
    }

    /// Slotted page vs a Vec<Vec<u8>> model: every accepted push is
    /// readable, order preserved, rejected pushes leave state intact.
    #[test]
    fn slotted_page_model(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..40),
    ) {
        let mut page = SlottedPage::new(1024);
        let mut model: Vec<Vec<u8>> = Vec::new();
        for r in &records {
            match page.push(r) {
                Ok(idx) => {
                    prop_assert_eq!(idx, model.len());
                    model.push(r.clone());
                }
                Err(StorageError::PageFull { .. }) => {
                    // full: everything already stored must be unchanged
                }
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
        }
        prop_assert_eq!(page.len(), model.len());
        for (i, r) in model.iter().enumerate() {
            prop_assert_eq!(page.get(i), Some(r.as_slice()));
        }
        // Serialization round-trip preserves the records.
        let back = SlottedPage::from_bytes(page.as_bytes().to_vec()).unwrap();
        for (i, r) in model.iter().enumerate() {
            prop_assert_eq!(back.get(i), Some(r.as_slice()));
        }
    }

    /// Corrupt page bytes never panic: either a clean error or a page
    /// whose reads stay in bounds.
    #[test]
    fn slotted_page_fuzzed_decode(bytes in proptest::collection::vec(any::<u8>(), 16..256)) {
        if let Ok(page) = SlottedPage::from_bytes(bytes) {
            for i in 0..page.len() {
                let _ = page.get(i);
            }
        }
    }

    /// Workload generation is a pure function of the spec.
    #[test]
    fn workload_reproducible(rows in 1u64..200, cols in 1usize..6, seed in any::<u64>()) {
        let spec = WorkloadSpec {
            seed,
            ..WorkloadSpec::new(rows, cols, 8)
        };
        let a = spec.build();
        let b = spec.build();
        prop_assert_eq!(a.len() as u64, rows);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x, y);
        }
    }

    /// Selectivity ranges touch exactly the requested fraction.
    #[test]
    fn selectivity_counts(rows in 1u64..500, pct in 1u32..=100) {
        let spec = WorkloadSpec::new(rows, 2, 8);
        let table = spec.build();
        let sel = pct as f64 / 100.0;
        let (lo, hi) = spec.range_for_selectivity(sel);
        let expect = ((rows as f64) * sel).ceil() as usize;
        prop_assert_eq!(table.range(lo, hi).count(), expect.clamp(1, rows as usize));
    }
}
