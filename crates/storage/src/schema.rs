//! Table schemas.
//!
//! Formula (1) derives every attribute digest from
//! `h(database ‖ table ‖ attribute ‖ key ‖ value)`, so the schema — not
//! just the data — is part of what is authenticated. [`Schema`] owns those
//! names and produces the canonical digest input.

use crate::value::{ColumnType, Value};
use crate::StorageError;

/// One column definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Attribute name (part of the digest input).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// A table schema. The primary key is a dedicated `u64` column (named
/// separately) and the remaining attributes are listed in `columns`; this
/// mirrors the paper's model of a B-tree keyed on the primary key with
/// `N_C` payload attributes per tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Database name (digest namespace component).
    pub database: String,
    /// Table name (digest namespace component).
    pub table: String,
    /// Name of the primary-key column.
    pub key_name: String,
    /// Payload attribute definitions (the paper's `N_C` columns).
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    /// Create a schema.
    pub fn new(
        database: impl Into<String>,
        table: impl Into<String>,
        key_name: impl Into<String>,
        columns: Vec<ColumnDef>,
    ) -> Self {
        let schema = Self {
            database: database.into(),
            table: table.into(),
            key_name: key_name.into(),
            columns,
        };
        let mut names: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
        names.push(&schema.key_name);
        names.sort_unstable();
        assert!(
            names.windows(2).all(|w| w[0] != w[1]),
            "column names must be unique"
        );
        schema
    }

    /// Number of payload attributes (the paper's `N_C`).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate that a row of values matches this schema.
    pub fn check_row(&self, values: &[Value]) -> Result<(), StorageError> {
        if values.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "expected {} values, got {}",
                self.columns.len(),
                values.len()
            )));
        }
        for (col, v) in self.columns.iter().zip(values) {
            if v.column_type() != col.ty {
                return Err(StorageError::SchemaMismatch(format!(
                    "column {} expects {:?}, got {:?}",
                    col.name,
                    col.ty,
                    v.column_type()
                )));
            }
        }
        Ok(())
    }

    /// The canonical digest input of formula (1):
    /// `db ‖ table ‖ attr ‖ key ‖ value`, with each component
    /// length-prefixed so that no two distinct inputs concatenate to the
    /// same byte string.
    pub fn attribute_digest_input(&self, column: usize, key: u64, value: &Value) -> Vec<u8> {
        let attr = &self.columns[column].name;
        let mut out = Vec::with_capacity(
            self.database.len() + self.table.len() + attr.len() + 32 + value.wire_len(),
        );
        for part in [
            self.database.as_bytes(),
            self.table.as_bytes(),
            attr.as_bytes(),
        ] {
            out.extend_from_slice(&(part.len() as u32).to_be_bytes());
            out.extend_from_slice(part);
        }
        out.extend_from_slice(&key.to_be_bytes());
        value.encode_into(&mut out);
        out
    }

    /// Serialize the schema (distribution bundles carry schemas so edge
    /// servers and clients can be bootstrapped from bytes).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        put_str(out, &self.database);
        put_str(out, &self.table);
        put_str(out, &self.key_name);
        out.extend_from_slice(&(self.columns.len() as u32).to_be_bytes());
        for c in &self.columns {
            put_str(out, &c.name);
            out.push(match c.ty {
                ColumnType::Int => 1,
                ColumnType::Float => 2,
                ColumnType::Text => 3,
                ColumnType::Bytes => 4,
            });
        }
    }

    /// Decode a schema, advancing `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        fn get_str(buf: &mut &[u8]) -> Result<String, StorageError> {
            if buf.len() < 4 {
                return Err(StorageError::Corrupt("schema string truncated".into()));
            }
            let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
            *buf = &buf[4..];
            if buf.len() < len {
                return Err(StorageError::Corrupt("schema string truncated".into()));
            }
            let s = String::from_utf8(buf[..len].to_vec())
                .map_err(|_| StorageError::Corrupt("schema string not UTF-8".into()))?;
            *buf = &buf[len..];
            Ok(s)
        }
        let database = get_str(buf)?;
        let table = get_str(buf)?;
        let key_name = get_str(buf)?;
        if buf.len() < 4 {
            return Err(StorageError::Corrupt(
                "schema column count truncated".into(),
            ));
        }
        let n = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
        *buf = &buf[4..];
        let mut columns = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let name = get_str(buf)?;
            if buf.is_empty() {
                return Err(StorageError::Corrupt("schema column type truncated".into()));
            }
            let ty = match buf[0] {
                1 => ColumnType::Int,
                2 => ColumnType::Float,
                3 => ColumnType::Text,
                4 => ColumnType::Bytes,
                t => {
                    return Err(StorageError::Corrupt(format!("bad column type tag {t}")));
                }
            };
            *buf = &buf[1..];
            columns.push(ColumnDef { name, ty });
        }
        Ok(Schema::new(database, table, key_name, columns))
    }

    /// A compact fingerprint of the schema itself, mixed into tree
    /// metadata signatures so that a VB-tree cannot be replayed against a
    /// different schema.
    pub fn fingerprint_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for part in [&self.database, &self.table, &self.key_name] {
            out.extend_from_slice(&(part.len() as u32).to_be_bytes());
            out.extend_from_slice(part.as_bytes());
        }
        out.extend_from_slice(&(self.columns.len() as u32).to_be_bytes());
        for c in &self.columns {
            out.extend_from_slice(&(c.name.len() as u32).to_be_bytes());
            out.extend_from_slice(c.name.as_bytes());
            out.push(match c.ty {
                ColumnType::Int => 1,
                ColumnType::Float => 2,
                ColumnType::Text => 3,
                ColumnType::Bytes => 4,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            "bank",
            "accounts",
            "id",
            vec![
                ColumnDef::new("owner", ColumnType::Text),
                ColumnDef::new("balance", ColumnType::Int),
            ],
        )
    }

    #[test]
    fn check_row_accepts_matching() {
        let s = schema();
        assert!(s
            .check_row(&[Value::from("alice"), Value::from(100i64)])
            .is_ok());
    }

    #[test]
    fn check_row_rejects_arity() {
        let s = schema();
        assert!(s.check_row(&[Value::from("alice")]).is_err());
    }

    #[test]
    fn check_row_rejects_type() {
        let s = schema();
        assert!(s
            .check_row(&[Value::from(5i64), Value::from(100i64)])
            .is_err());
    }

    #[test]
    fn digest_input_namespaced() {
        let s = schema();
        let a = s.attribute_digest_input(0, 1, &Value::from("alice"));
        let b = s.attribute_digest_input(1, 1, &Value::from("alice"));
        assert_ne!(a, b, "different attributes must hash differently");
        let c = s.attribute_digest_input(0, 2, &Value::from("alice"));
        assert_ne!(a, c, "different keys must hash differently");

        let other = Schema::new("bank2", "accounts", "id", s.columns.clone());
        let d = other.attribute_digest_input(0, 1, &Value::from("alice"));
        assert_ne!(a, d, "different databases must hash differently");
    }

    #[test]
    fn digest_input_no_concatenation_ambiguity() {
        // ("ab","c") vs ("a","bc") as db/table must differ thanks to
        // length prefixes.
        let s1 = Schema::new("ab", "c", "id", vec![ColumnDef::new("x", ColumnType::Int)]);
        let s2 = Schema::new("a", "bc", "id", vec![ColumnDef::new("x", ColumnType::Int)]);
        assert_ne!(
            s1.attribute_digest_input(0, 1, &Value::from(1i64)),
            s2.attribute_digest_input(0, 1, &Value::from(1i64))
        );
    }

    #[test]
    fn column_index_lookup() {
        let s = schema();
        assert_eq!(s.column_index("owner"), Some(0));
        assert_eq!(s.column_index("balance"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_columns_rejected() {
        Schema::new(
            "d",
            "t",
            "id",
            vec![
                ColumnDef::new("a", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Text),
            ],
        );
    }

    #[test]
    fn fingerprint_distinguishes_schemas() {
        let s = schema();
        let mut other = schema();
        other.columns[1].ty = ColumnType::Float;
        assert_ne!(s.fingerprint_bytes(), other.fingerprint_bytes());
    }
}
