//! Tuples: a primary key plus payload values, with an exact wire format.

use crate::schema::Schema;
use crate::value::Value;
use crate::StorageError;
use bytes::{Buf, BufMut};

/// A row: primary key plus payload attributes, ordered as in the schema.
#[derive(Clone, Debug, PartialEq)]
pub struct Tuple {
    /// Primary key.
    pub key: u64,
    /// Payload values (same order/arity as `schema.columns`).
    pub values: Vec<Value>,
}

impl Tuple {
    /// Construct, validating against the schema.
    pub fn new(schema: &Schema, key: u64, values: Vec<Value>) -> Result<Self, StorageError> {
        schema.check_row(&values)?;
        Ok(Self { key, values })
    }

    /// Serialized length in bytes: `8 (key) ‖ u16 arity ‖ values…`.
    pub fn wire_len(&self) -> usize {
        10 + self.values.iter().map(Value::wire_len).sum::<usize>()
    }

    /// Wire length of a projection of this tuple to `columns`.
    pub fn projected_wire_len(&self, columns: &[usize]) -> usize {
        10 + columns
            .iter()
            .map(|&c| self.values[c].wire_len())
            .sum::<usize>()
    }

    /// Serialize into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u64(self.key);
        out.put_u16(self.values.len() as u16);
        for v in &self.values {
            v.encode_into(out);
        }
    }

    /// Serialize to a fresh vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }

    /// Decode, advancing `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        if buf.remaining() < 10 {
            return Err(StorageError::Corrupt("tuple header truncated".into()));
        }
        let key = buf.get_u64();
        let arity = buf.get_u16() as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(Value::decode(buf)?);
        }
        Ok(Self { key, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    fn schema() -> Schema {
        Schema::new(
            "db",
            "t",
            "id",
            vec![
                ColumnDef::new("a", ColumnType::Text),
                ColumnDef::new("b", ColumnType::Int),
                ColumnDef::new("c", ColumnType::Bytes),
            ],
        )
    }

    fn tuple() -> Tuple {
        Tuple::new(
            &schema(),
            42,
            vec![
                Value::from("hello"),
                Value::from(-5i64),
                Value::from(vec![9u8, 9, 9]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let t = tuple();
        let enc = t.encode();
        assert_eq!(enc.len(), t.wire_len());
        let mut slice = enc.as_slice();
        assert_eq!(Tuple::decode(&mut slice).unwrap(), t);
        assert!(slice.is_empty());
    }

    #[test]
    fn schema_validation_on_construction() {
        let s = schema();
        assert!(Tuple::new(&s, 1, vec![Value::from("x")]).is_err());
        assert!(Tuple::new(
            &s,
            1,
            vec![Value::from(1i64), Value::from(2i64), Value::from(vec![])]
        )
        .is_err());
    }

    #[test]
    fn projected_wire_len() {
        let t = tuple();
        let full = t.wire_len();
        let proj = t.projected_wire_len(&[0, 1]);
        assert!(proj < full);
        assert_eq!(proj, 10 + t.values[0].wire_len() + t.values[1].wire_len());
        assert_eq!(t.projected_wire_len(&[0, 1, 2]), full);
    }

    #[test]
    fn truncated_rejected() {
        let enc = tuple().encode();
        let mut slice = &enc[..enc.len() - 1];
        assert!(Tuple::decode(&mut slice).is_err());
        let mut empty: &[u8] = &[];
        assert!(Tuple::decode(&mut empty).is_err());
    }
}
