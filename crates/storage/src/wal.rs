//! Write-ahead log: length-prefixed, checksummed, append-only records.
//!
//! One WAL record = one committed write (a single op or a whole
//! group-commit batch — the batch amortises the fsync the same way it
//! amortises the signing sweep). The commit path appends **and syncs**
//! the record *before* acknowledging the commit, so every acked write is
//! replayable after a crash.
//!
//! ## On-disk format
//!
//! ```text
//! file   := header record*
//! header := "VWAL1" 0x00 0x00 0x00                      (8 bytes)
//! record := [u32 len][u32 crc32(payload)][payload]      (big-endian)
//! ```
//!
//! The payload is an opaque byte string to this module; `vbx-core`
//! defines the record codec (`durable::encode_wal_*`).
//!
//! ## Torn tails
//!
//! A crash can leave a partial record at the end of the file (torn
//! write) or garbage (a checksum mismatch). [`Wal::scan`] reads the
//! longest valid prefix and reports how the tail ended; recovery keeps
//! the valid records and discards the tail — by the append-before-ack
//! rule a torn record was never acknowledged, so dropping it is safe.

use crate::vfs::Vfs;
use crate::StorageError;
use std::sync::Arc;

/// Default WAL file name inside a [`Vfs`].
pub const WAL_FILE: &str = "wal.log";

const MAGIC: &[u8; 8] = b"VWAL1\x00\x00\x00";

/// Records larger than this are rejected as corrupt length prefixes
/// (a "length lie" can otherwise ask for gigabytes).
pub const MAX_RECORD_LEN: u32 = 1 << 28;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
/// Implemented locally — the workspace builds offline with no
/// checksum crate available.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small 16-entry nibble table: 64 bytes of table, ~2 lookups/byte.
    const TABLE: [u32; 16] = {
        let mut t = [0u32; 16];
        let mut i = 0;
        while i < 16 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 4 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0x0F) as usize] ^ (crc >> 4);
        crc = TABLE[((crc ^ (b as u32 >> 4)) & 0x0F) as usize] ^ (crc >> 4);
    }
    !crc
}

/// How a [`Wal::scan`] pass over the file ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// The file ended exactly on a record boundary.
    Clean,
    /// A partial or corrupt record was found at `offset` and discarded:
    /// either fewer than 8 header bytes remained, the length prefix
    /// pointed past the end of the file (torn write), the length was
    /// absurd, or the checksum did not match.
    Torn {
        /// Byte offset of the first invalid record.
        offset: usize,
        /// Human-readable reason the tail was rejected.
        reason: String,
    },
}

/// Result of scanning a WAL file: the valid record payloads plus how
/// the tail ended.
#[derive(Debug, Clone)]
pub struct WalScan {
    /// Payloads of every valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether the file ended cleanly or with a discarded torn tail.
    pub tail: WalTail,
}

/// Append-side handle for a write-ahead log inside a [`Vfs`].
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    file: String,
}

impl Wal {
    /// Open (creating and writing the header if absent) the WAL named
    /// `file` inside `vfs`.
    pub fn open(vfs: Arc<dyn Vfs>, file: &str) -> Result<Self, StorageError> {
        match vfs.read(file)? {
            Some(bytes) if !bytes.is_empty() => {
                if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
                    return Err(StorageError::Corrupt("bad WAL magic".into()));
                }
            }
            _ => {
                vfs.append(file, MAGIC)?;
                vfs.sync(file)?;
            }
        }
        Ok(Self {
            vfs,
            file: file.to_string(),
        })
    }

    /// The file name this WAL writes to.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Append one record and fsync it (append-before-ack: the caller
    /// must not acknowledge the commit until this returns `Ok`).
    pub fn append_sync(&self, payload: &[u8]) -> Result<(), StorageError> {
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        framed.extend_from_slice(&crc32(payload).to_be_bytes());
        framed.extend_from_slice(payload);
        self.vfs.append(&self.file, &framed)?;
        self.vfs.sync(&self.file)
    }

    /// Durably reset the log to just its header (after a checkpoint has
    /// made the logged records redundant).
    pub fn reset(&self) -> Result<(), StorageError> {
        self.vfs.truncate(&self.file)?;
        self.vfs.append(&self.file, MAGIC)?;
        self.vfs.sync(&self.file)
    }

    /// Scan the longest valid prefix of the log (see [`scan_bytes`]).
    pub fn scan(&self) -> Result<WalScan, StorageError> {
        let bytes = self.vfs.read(&self.file)?.unwrap_or_default();
        scan_bytes(&bytes)
    }
}

/// Scan raw WAL bytes: validate the header, then read records until the
/// clean end of file or the first invalid record (torn tail). Never
/// panics on arbitrary input — corruption before any valid record is an
/// error; corruption after valid records truncates to them.
pub fn scan_bytes(bytes: &[u8]) -> Result<WalScan, StorageError> {
    if bytes.is_empty() {
        // Never created / never synced: an empty log.
        return Ok(WalScan {
            records: Vec::new(),
            tail: WalTail::Clean,
        });
    }
    if bytes.len() < MAGIC.len() {
        return Ok(WalScan {
            records: Vec::new(),
            tail: WalTail::Torn {
                offset: 0,
                reason: "torn header".into(),
            },
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(StorageError::Corrupt("bad WAL magic".into()));
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    let tail = loop {
        if pos == bytes.len() {
            break WalTail::Clean;
        }
        if bytes.len() - pos < 8 {
            break WalTail::Torn {
                offset: pos,
                reason: "torn record header".into(),
            };
        }
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break WalTail::Torn {
                offset: pos,
                reason: format!("record length {len} exceeds cap"),
            };
        }
        let len = len as usize;
        if bytes.len() - pos - 8 < len {
            break WalTail::Torn {
                offset: pos,
                reason: "torn record payload".into(),
            };
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break WalTail::Torn {
                offset: pos,
                reason: "checksum mismatch".into(),
            };
        }
        records.push(payload.to_vec());
        pos += 8 + len;
    };
    Ok(WalScan { records, tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32 (IEEE) check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    fn mem_wal() -> (Arc<MemVfs>, Wal) {
        let vfs = Arc::new(MemVfs::new());
        let wal = Wal::open(vfs.clone(), WAL_FILE).unwrap();
        (vfs, wal)
    }

    #[test]
    fn append_scan_roundtrip() {
        let (_vfs, wal) = mem_wal();
        wal.append_sync(b"alpha").unwrap();
        wal.append_sync(b"").unwrap();
        wal.append_sync(&[7u8; 300]).unwrap();
        let scan = wal.scan().unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0], b"alpha");
        assert_eq!(scan.records[1], b"");
        assert_eq!(scan.records[2], vec![7u8; 300]);
    }

    #[test]
    fn torn_tail_discarded() {
        let (vfs, wal) = mem_wal();
        wal.append_sync(b"good").unwrap();
        // Append half a record by hand and "crash".
        let mut torn = Vec::new();
        torn.extend_from_slice(&100u32.to_be_bytes());
        torn.extend_from_slice(&0u32.to_be_bytes());
        torn.extend_from_slice(b"only-a-little");
        vfs.append(WAL_FILE, &torn).unwrap();
        vfs.sync(WAL_FILE).unwrap();
        let scan = wal.scan().unwrap();
        assert_eq!(scan.records, vec![b"good".to_vec()]);
        assert!(matches!(scan.tail, WalTail::Torn { .. }));
    }

    #[test]
    fn checksum_mismatch_truncates() {
        let (vfs, wal) = mem_wal();
        wal.append_sync(b"first").unwrap();
        wal.append_sync(b"second").unwrap();
        let mut bytes = vfs.read(WAL_FILE).unwrap().unwrap();
        // Flip a bit in the second record's payload.
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        vfs.set_durable(WAL_FILE, bytes);
        let scan = wal.scan().unwrap();
        assert_eq!(scan.records, vec![b"first".to_vec()]);
        assert!(matches!(scan.tail, WalTail::Torn { .. }));
    }

    #[test]
    fn length_lie_bounded() {
        let (vfs, wal) = mem_wal();
        wal.append_sync(b"ok").unwrap();
        let mut lie = Vec::new();
        lie.extend_from_slice(&u32::MAX.to_be_bytes());
        lie.extend_from_slice(&0u32.to_be_bytes());
        vfs.append(WAL_FILE, &lie).unwrap();
        vfs.sync(WAL_FILE).unwrap();
        let scan = wal.scan().unwrap();
        assert_eq!(scan.records, vec![b"ok".to_vec()]);
        assert!(matches!(scan.tail, WalTail::Torn { .. }));
    }

    #[test]
    fn reset_empties_log() {
        let (_vfs, wal) = mem_wal();
        wal.append_sync(b"gone").unwrap();
        wal.reset().unwrap();
        let scan = wal.scan().unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.tail, WalTail::Clean);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(scan_bytes(b"NOTWAL00rest").is_err());
        // Shorter than a header: treated as torn, not panic.
        let scan = scan_bytes(b"VW").unwrap();
        assert!(scan.records.is_empty());
        assert!(matches!(scan.tail, WalTail::Torn { .. }));
    }
}
