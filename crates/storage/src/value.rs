//! Column types and values.
//!
//! Values carry a *canonical encoding* — the exact bytes that formula (1)
//! hashes (`h(db ‖ table ‖ attr ‖ key ‖ value)`) and that the wire format
//! ships to clients. Two equal values always encode identically, so
//! digests are reproducible on the client side.

use crate::StorageError;
use bytes::{Buf, BufMut};

/// Supported column types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (totally ordered via `to_bits` in encodings).
    Float,
    /// UTF-8 text.
    Text,
    /// Raw bytes (BLOBs — the paper's motivating case for edge-side
    /// projection).
    Bytes,
}

impl ColumnType {
    fn tag(self) -> u8 {
        match self {
            ColumnType::Int => 1,
            ColumnType::Float => 2,
            ColumnType::Text => 3,
            ColumnType::Bytes => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            1 => ColumnType::Int,
            2 => ColumnType::Float,
            3 => ColumnType::Text,
            4 => ColumnType::Bytes,
            _ => return None,
        })
    }
}

/// A single attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// The type of this value.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Float(_) => ColumnType::Float,
            Value::Text(_) => ColumnType::Text,
            Value::Bytes(_) => ColumnType::Bytes,
        }
    }

    /// Canonical encoding: `type_tag ‖ u32 payload length ‖ payload`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.column_type().tag());
        match self {
            Value::Int(v) => {
                out.put_u32(8);
                out.put_i64(*v);
            }
            Value::Float(v) => {
                out.put_u32(8);
                out.put_u64(v.to_bits());
            }
            Value::Text(s) => {
                out.put_u32(s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.put_u32(b.len() as u32);
                out.extend_from_slice(b);
            }
        }
    }

    /// Canonical encoding as a fresh vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }

    /// Decode a canonical encoding, advancing `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        if buf.remaining() < 5 {
            return Err(StorageError::Corrupt("value header truncated".into()));
        }
        let tag = buf.get_u8();
        let ty = ColumnType::from_tag(tag)
            .ok_or_else(|| StorageError::Corrupt(format!("bad value tag {tag}")))?;
        let len = buf.get_u32() as usize;
        if buf.remaining() < len {
            return Err(StorageError::Corrupt("value payload truncated".into()));
        }
        let v = match ty {
            ColumnType::Int => {
                if len != 8 {
                    return Err(StorageError::Corrupt("int payload must be 8 bytes".into()));
                }
                Value::Int(buf.get_i64())
            }
            ColumnType::Float => {
                if len != 8 {
                    return Err(StorageError::Corrupt(
                        "float payload must be 8 bytes".into(),
                    ));
                }
                Value::Float(f64::from_bits(buf.get_u64()))
            }
            ColumnType::Text => {
                let bytes = buf[..len].to_vec();
                buf.advance(len);
                Value::Text(
                    String::from_utf8(bytes)
                        .map_err(|_| StorageError::Corrupt("text payload is not UTF-8".into()))?,
                )
            }
            ColumnType::Bytes => {
                let bytes = buf[..len].to_vec();
                buf.advance(len);
                Value::Bytes(bytes)
            }
        };
        Ok(v)
    }

    /// Exact serialized length in bytes (tag + length prefix + payload).
    /// This is the size charged to the communication-cost model for a
    /// transmitted attribute.
    pub fn wire_len(&self) -> usize {
        5 + match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Text(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let enc = v.encode();
        assert_eq!(enc.len(), v.wire_len());
        let mut slice = enc.as_slice();
        let back = Value::decode(&mut slice).unwrap();
        assert!(slice.is_empty(), "decode must consume everything");
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrips() {
        roundtrip(Value::Int(-42));
        roundtrip(Value::Int(i64::MAX));
        roundtrip(Value::Float(3.25));
        roundtrip(Value::Float(-0.0));
        roundtrip(Value::Text("hello world".into()));
        roundtrip(Value::Text(String::new()));
        roundtrip(Value::Bytes(vec![0, 1, 2, 255]));
        roundtrip(Value::Bytes(vec![]));
    }

    #[test]
    fn canonical_encoding_is_stable() {
        // Equal values encode identically — required for digest
        // reproducibility on the client.
        assert_eq!(Value::Int(7).encode(), Value::Int(7).encode());
        assert_eq!(
            Value::Text("a".into()).encode(),
            Value::Text("a".into()).encode()
        );
    }

    #[test]
    fn distinct_types_distinct_encodings() {
        // Int(0) and Float(+0.0) must not collide.
        assert_ne!(Value::Int(0).encode(), Value::Float(0.0).encode());
        // Text "ab" vs Bytes b"ab"
        assert_ne!(
            Value::Text("ab".into()).encode(),
            Value::Bytes(b"ab".to_vec()).encode()
        );
    }

    #[test]
    fn truncated_input_rejected() {
        let enc = Value::Text("hello".into()).encode();
        for cut in 0..enc.len() {
            let mut slice = &enc[..cut];
            assert!(Value::decode(&mut slice).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut enc = Value::Int(1).encode();
        enc[0] = 99;
        let mut slice = enc.as_slice();
        assert!(Value::decode(&mut slice).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = Value::Text("ab".into()).encode();
        let n = enc.len();
        enc[n - 1] = 0xFF;
        let mut slice = enc.as_slice();
        assert!(Value::decode(&mut slice).is_err());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(vec![1u8]), Value::Bytes(vec![1]));
    }
}
