//! # vbx-storage — the database substrate
//!
//! The paper assumes a relational DBMS underneath the VB-tree. This crate
//! provides that substrate, built from scratch:
//!
//! * [`value`] — column types and values with a canonical byte encoding
//!   (the encoding hashed by formula (1));
//! * [`schema`] — schemas carrying database/table/attribute names, which
//!   namespace every attribute digest;
//! * [`tuple`] — tuples with exact wire sizes (communication-cost
//!   accounting);
//! * [`table`] — primary-key-ordered heap tables and a catalog;
//! * [`page`] — 4 KB slotted pages, used to materialise tree nodes and
//!   measure the storage overheads of Section 4.1;
//! * [`geometry`] — the `|B|/|K|/|P|/|D|` node-capacity parameters of
//!   Table 1 and the fan-out arithmetic of formulas (6)–(7);
//! * [`workload`] — the synthetic tables and selectivity-driven range
//!   queries used throughout the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod geometry;
pub mod page;
pub mod schema;
pub mod table;
pub mod tuple;
pub mod value;
pub mod vfs;
pub mod wal;
pub mod workload;

pub use checkpoint::{CheckpointBuilder, CheckpointReader};
pub use geometry::Geometry;
pub use page::SlottedPage;
pub use schema::{ColumnDef, Schema};
pub use table::{Catalog, Table};
pub use tuple::Tuple;
pub use value::{ColumnType, Value};
pub use vfs::{DiskVfs, FailPoint, FailpointFs, MemVfs, Vfs};
pub use wal::{crc32, Wal, WalScan, WalTail};

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple's shape does not match its schema.
    SchemaMismatch(String),
    /// Duplicate primary key on insert.
    DuplicateKey(u64),
    /// Primary key not present.
    KeyNotFound(u64),
    /// Page capacity exceeded.
    PageFull {
        /// Bytes that were requested.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Malformed serialized data.
    Corrupt(String),
    /// A filesystem operation failed (or the process was killed by a
    /// fault-injection point — see [`vfs::FailpointFs`]).
    Io(String),
}

impl core::fmt::Display for StorageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::DuplicateKey(k) => write!(f, "duplicate primary key {k}"),
            StorageError::KeyNotFound(k) => write!(f, "primary key {k} not found"),
            StorageError::PageFull { needed, available } => {
                write!(f, "page full: need {needed} bytes, {available} available")
            }
            StorageError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            StorageError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}
