//! Synthetic workloads matching the paper's evaluation setup.
//!
//! Section 4.2 fixes "the size of tuples at 200 bytes with an average of
//! 20 bytes per attribute" (10 attributes) and sweeps the **selectivity
//! factor** `N_Q / N_R` from 0–100 %. Figure 11 scales the attribute size
//! as `2^a · |D|`. [`WorkloadSpec`] captures those knobs; the generator is
//! fully deterministic given a seed.

use crate::schema::{ColumnDef, Schema};
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::{ColumnType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for a synthetic table.
///
/// ```
/// use vbx_storage::workload::WorkloadSpec;
/// let spec = WorkloadSpec::new(100, 10, 20); // the paper's 200-byte tuples
/// let table = spec.build();
/// assert_eq!(table.len(), 100);
/// let (lo, hi) = spec.range_for_selectivity(0.2);
/// assert_eq!(table.range(lo, hi).count(), 20);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Database name.
    pub database: String,
    /// Table name.
    pub table: String,
    /// Number of rows (`N_R`).
    pub rows: u64,
    /// Number of payload attributes (`N_C`, Table 1 default 10).
    pub columns: usize,
    /// Bytes per attribute value (paper default 20).
    pub attr_bytes: usize,
    /// Key stride: keys are `0, stride, 2·stride, …`. A stride above 1
    /// leaves gaps so point-miss and non-contiguous cases are exercised.
    pub key_stride: u64,
    /// RNG seed — everything is reproducible.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            database: "edgedb".into(),
            table: "items".into(),
            rows: 1_000,
            columns: 10,
            attr_bytes: 20,
            key_stride: 1,
            seed: 0xB7EE,
        }
    }
}

impl WorkloadSpec {
    /// Small helper: named constructor for the common case.
    pub fn new(rows: u64, columns: usize, attr_bytes: usize) -> Self {
        Self {
            rows,
            columns,
            attr_bytes,
            ..Self::default()
        }
    }

    /// The schema this spec generates: one Text column per attribute
    /// (fixed width = `attr_bytes`), except the last column which is Int
    /// when `columns > 1` so non-key predicates have something numeric to
    /// filter on.
    pub fn schema(&self) -> Schema {
        let mut cols = Vec::with_capacity(self.columns);
        for i in 0..self.columns {
            if i + 1 == self.columns && self.columns > 1 {
                cols.push(ColumnDef::new(format!("a{i}"), ColumnType::Int));
            } else {
                cols.push(ColumnDef::new(format!("a{i}"), ColumnType::Text));
            }
        }
        Schema::new(self.database.clone(), self.table.clone(), "id", cols)
    }

    /// Generate the table.
    pub fn build(&self) -> Table {
        let schema = self.schema();
        let mut table = Table::new(schema);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for i in 0..self.rows {
            let key = i * self.key_stride.max(1);
            let tuple = self.make_tuple(table.schema(), key, &mut rng);
            table.insert(tuple).expect("generated keys are unique");
        }
        table
    }

    /// Generate a single tuple with the spec's shape (used by insert
    /// workloads).
    pub fn make_tuple(&self, schema: &Schema, key: u64, rng: &mut StdRng) -> Tuple {
        let mut values = Vec::with_capacity(self.columns);
        for i in 0..self.columns {
            if i + 1 == self.columns && self.columns > 1 {
                // Numeric column in [0, 100) — selectivity-friendly.
                values.push(Value::Int(rng.gen_range(0..100)));
            } else {
                values.push(Value::Text(random_text(rng, self.attr_bytes)));
            }
        }
        Tuple::new(schema, key, values).expect("spec generates schema-conformant rows")
    }

    /// The key range `[lo, hi]` whose scan touches
    /// `⌈selectivity · rows⌉` tuples, anchored at the table's start (the
    /// paper varies the *number* of answer tuples via the selectivity
    /// factor; the anchor is irrelevant to the costs).
    pub fn range_for_selectivity(&self, selectivity: f64) -> (u64, u64) {
        assert!((0.0..=1.0).contains(&selectivity));
        let n = ((self.rows as f64) * selectivity).ceil() as u64;
        let n = n.clamp(1, self.rows);
        let stride = self.key_stride.max(1);
        (0, (n - 1) * stride)
    }
}

fn random_text(rng: &mut StdRng, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let spec = WorkloadSpec::new(50, 4, 8);
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = WorkloadSpec::new(10, 3, 8);
        let mut s2 = WorkloadSpec::new(10, 3, 8);
        s1.seed = 1;
        s2.seed = 2;
        let a = s1.build();
        let b = s2.build();
        let same = a.iter().zip(b.iter()).all(|(x, y)| x == y);
        assert!(!same);
    }

    #[test]
    fn schema_shape() {
        let spec = WorkloadSpec::new(1, 10, 20);
        let schema = spec.schema();
        assert_eq!(schema.num_columns(), 10);
        assert_eq!(schema.columns[9].ty, ColumnType::Int);
        assert_eq!(schema.columns[0].ty, ColumnType::Text);
    }

    #[test]
    fn tuple_bytes_close_to_paper_default() {
        // 10 attributes × 20 bytes: the paper says 200-byte tuples. Our
        // wire format adds tag/length framing; the *payload* must match.
        let spec = WorkloadSpec::new(5, 10, 20);
        let t = spec.build();
        let row = t.iter().next().unwrap();
        let payload: usize = row
            .values
            .iter()
            .map(|v| match v {
                Value::Text(s) => s.len(),
                Value::Int(_) => 8,
                _ => unreachable!(),
            })
            .sum();
        assert_eq!(payload, 9 * 20 + 8);
    }

    #[test]
    fn selectivity_ranges() {
        let spec = WorkloadSpec::new(100, 2, 8);
        assert_eq!(spec.range_for_selectivity(0.0), (0, 0));
        assert_eq!(spec.range_for_selectivity(0.2), (0, 19));
        assert_eq!(spec.range_for_selectivity(1.0), (0, 99));
        let built = spec.build();
        let (lo, hi) = spec.range_for_selectivity(0.2);
        assert_eq!(built.range(lo, hi).count(), 20);
    }

    #[test]
    fn stride_leaves_gaps() {
        let spec = WorkloadSpec {
            key_stride: 10,
            ..WorkloadSpec::new(10, 2, 4)
        };
        let t = spec.build();
        assert!(t.get(0).is_some());
        assert!(t.get(5).is_none());
        assert!(t.get(90).is_some());
        let (lo, hi) = spec.range_for_selectivity(0.5);
        assert_eq!(t.range(lo, hi).count(), 5);
    }
}
