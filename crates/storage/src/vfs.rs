//! Virtual file system for the durability subsystem.
//!
//! The write-ahead log and checkpoint files (see [`crate::wal`] and
//! [`crate::checkpoint`]) talk to storage through the small [`Vfs`]
//! trait so the same recovery code runs against three backends:
//!
//! * [`DiskVfs`] — real files in a directory, `fsync` via
//!   `File::sync_all`, atomic replace via write-temp-then-rename;
//! * [`MemVfs`] — an in-memory filesystem with **faithful fsync
//!   semantics**: appended bytes sit in a volatile buffer until
//!   [`sync`](Vfs::sync) moves them to the durable image, and
//!   [`MemVfs::crash_image`] drops everything volatile — exactly what a
//!   process kill does to the page cache;
//! * [`FailpointFs`] — a wrapper that injects a scripted failure
//!   ([`FailPoint`]) at one boundary (before/after/torn append, failed
//!   sync, torn atomic write, failed truncate) and then behaves like a
//!   dead process: every later call fails, and the surviving bytes are
//!   whatever the wrapped [`MemVfs`] had made durable.
//!
//! The crash-matrix tests in `vbx-edge` drive every failpoint and assert
//! the recovered central state is byte-identical to a never-crashed
//! control.

use crate::StorageError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Minimal file-system surface the durability layer needs. All methods
/// take `&self` (backends use interior mutability) so a single
/// `Arc<dyn Vfs>` can be shared by the WAL writer and the checkpointer.
pub trait Vfs: Send + Sync {
    /// Full current contents of `name` (durable + not-yet-synced), or
    /// `None` if the file does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError>;

    /// Append bytes to `name`, creating it if missing. Appended bytes
    /// are *not* guaranteed durable until [`sync`](Self::sync).
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;

    /// Make every appended byte of `name` durable (`fsync`).
    fn sync(&self, name: &str) -> Result<(), StorageError>;

    /// Atomically replace `name` with `bytes` (write temp + fsync +
    /// rename): after the call either the old or the new content is on
    /// disk in full, never a mix.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;

    /// Truncate `name` to empty (durably).
    fn truncate(&self, name: &str) -> Result<(), StorageError>;

    /// Remove `name` if it exists.
    fn remove(&self, name: &str) -> Result<(), StorageError>;

    /// Names of all existing files, sorted.
    fn list(&self) -> Result<Vec<String>, StorageError>;
}

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{ctx}: {e}"))
}

// ---------------------------------------------------------------------
// DiskVfs
// ---------------------------------------------------------------------

/// [`Vfs`] over a real directory. File names map to direct children of
/// the root (no subdirectories).
pub struct DiskVfs {
    root: std::path::PathBuf,
}

impl DiskVfs {
    /// Open (creating if needed) a directory-backed VFS.
    pub fn open(root: impl Into<std::path::PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err("create vfs dir", e))?;
        Ok(Self { root })
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.root.join(name)
    }
}

impl Vfs for DiskVfs {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", e)),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| io_err("open for append", e))?;
        f.write_all(bytes).map_err(|e| io_err("append", e))
    }

    fn sync(&self, name: &str) -> Result<(), StorageError> {
        std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))
            .and_then(|f| f.sync_all())
            .map_err(|e| io_err("sync", e))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create temp", e))?;
            f.write_all(bytes).map_err(|e| io_err("write temp", e))?;
            f.sync_all().map_err(|e| io_err("sync temp", e))?;
        }
        std::fs::rename(&tmp, self.path(name)).map_err(|e| io_err("rename", e))
    }

    fn truncate(&self, name: &str) -> Result<(), StorageError> {
        let f = std::fs::File::create(self.path(name)).map_err(|e| io_err("truncate", e))?;
        f.sync_all().map_err(|e| io_err("sync truncate", e))
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(|e| io_err("list", e))? {
            let entry = entry.map_err(|e| io_err("list entry", e))?;
            if entry
                .file_type()
                .map_err(|e| io_err("file type", e))?
                .is_file()
            {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }
}

// ---------------------------------------------------------------------
// MemVfs
// ---------------------------------------------------------------------

#[derive(Clone, Default)]
struct MemFile {
    /// Bytes that survived an `fsync` (or an atomic replace).
    durable: Vec<u8>,
    /// Appended bytes not yet synced — lost on [`MemVfs::crash_image`].
    pending: Vec<u8>,
}

/// In-memory [`Vfs`] with page-cache-faithful fsync semantics (see the
/// module docs). The crash tests read a consistent "what was actually
/// on disk" image via [`crash_image`](Self::crash_image).
#[derive(Default)]
pub struct MemVfs {
    files: Mutex<BTreeMap<String, MemFile>>,
}

impl MemVfs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// The filesystem as it would look after a process kill: only
    /// durable (synced) bytes survive; pending appends are dropped.
    pub fn crash_image(&self) -> MemVfs {
        let files = self.files.lock().unwrap();
        let survived = files
            .iter()
            .map(|(name, f)| {
                (
                    name.clone(),
                    MemFile {
                        durable: f.durable.clone(),
                        pending: Vec::new(),
                    },
                )
            })
            .collect();
        MemVfs {
            files: Mutex::new(survived),
        }
    }

    /// Durable bytes of one file (test inspection).
    pub fn durable_bytes(&self, name: &str) -> Option<Vec<u8>> {
        self.files
            .lock()
            .unwrap()
            .get(name)
            .map(|f| f.durable.clone())
    }

    /// Overwrite a file's durable image directly (tests splice crafted
    /// or corrupted bytes into a crash image).
    pub fn set_durable(&self, name: &str, bytes: Vec<u8>) {
        let mut files = self.files.lock().unwrap();
        let f = files.entry(name.to_string()).or_default();
        f.durable = bytes;
        f.pending.clear();
    }
}

impl Vfs for MemVfs {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(self.files.lock().unwrap().get(name).map(|f| {
            let mut all = f.durable.clone();
            all.extend_from_slice(&f.pending);
            all
        }))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let mut files = self.files.lock().unwrap();
        files
            .entry(name.to_string())
            .or_default()
            .pending
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, name: &str) -> Result<(), StorageError> {
        let mut files = self.files.lock().unwrap();
        if let Some(f) = files.get_mut(name) {
            let pending = std::mem::take(&mut f.pending);
            f.durable.extend_from_slice(&pending);
        }
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let mut files = self.files.lock().unwrap();
        let f = files.entry(name.to_string()).or_default();
        f.durable = bytes.to_vec();
        f.pending.clear();
        Ok(())
    }

    fn truncate(&self, name: &str) -> Result<(), StorageError> {
        let mut files = self.files.lock().unwrap();
        let f = files.entry(name.to_string()).or_default();
        f.durable.clear();
        f.pending.clear();
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        self.files.lock().unwrap().remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.files.lock().unwrap().keys().cloned().collect())
    }
}

// ---------------------------------------------------------------------
// FailpointFs
// ---------------------------------------------------------------------

/// One scripted failure. Every variant names the file (substring match,
/// so `"wal"` matches `"wal.log"`) whose **next** matching operation
/// trips the point; after tripping, the whole filesystem acts dead (see
/// [`FailpointFs`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailPoint {
    /// Crash before any byte of the next append reaches the file.
    BeforeAppend {
        /// File-name substring to match.
        file: String,
    },
    /// The next append writes only its first `keep` bytes — and those
    /// bytes are made durable, modelling a torn write that partially
    /// reached the platter.
    TornAppend {
        /// File-name substring to match.
        file: String,
        /// Bytes of the append that survive.
        keep: usize,
    },
    /// The next append **and its sync** succeed, then the process dies
    /// — the record is durable but the caller never saw the ack.
    AfterAppend {
        /// File-name substring to match.
        file: String,
    },
    /// The next sync fails and nothing pending becomes durable.
    BeforeSync {
        /// File-name substring to match.
        file: String,
    },
    /// The next atomic write tears: on an atomic backend the target
    /// keeps its old content (`replace_with_garbage = false`); with
    /// `replace_with_garbage = true` the target is replaced by only the
    /// first `keep` bytes, modelling a non-atomic filesystem — recovery
    /// must detect the invalid checkpoint and fall back.
    TornAtomicWrite {
        /// File-name substring to match.
        file: String,
        /// Bytes of the new content that land when tearing the target.
        keep: usize,
        /// Whether the torn prefix replaces the target file.
        replace_with_garbage: bool,
    },
    /// The next truncate fails before taking effect.
    BeforeTruncate {
        /// File-name substring to match.
        file: String,
    },
}

impl FailPoint {
    fn file(&self) -> &str {
        match self {
            FailPoint::BeforeAppend { file }
            | FailPoint::TornAppend { file, .. }
            | FailPoint::AfterAppend { file }
            | FailPoint::BeforeSync { file }
            | FailPoint::TornAtomicWrite { file, .. }
            | FailPoint::BeforeTruncate { file } => file,
        }
    }
}

/// A fault-injecting [`Vfs`] wrapper around a [`MemVfs`]. Arm one
/// [`FailPoint`]; when it trips, the operation fails as scripted and the
/// filesystem transitions to *crashed*: every subsequent call returns
/// [`StorageError::Io`] (the process is dead). The surviving disk image
/// — durable bytes only — is then available via
/// [`crash_image`](Self::crash_image) for recovery.
pub struct FailpointFs {
    inner: MemVfs,
    armed: Mutex<Option<FailPoint>>,
    crashed: AtomicBool,
}

impl FailpointFs {
    /// Wrap a fresh in-memory filesystem with no failpoint armed.
    pub fn new() -> Self {
        Self {
            inner: MemVfs::new(),
            armed: Mutex::new(None),
            crashed: AtomicBool::new(false),
        }
    }

    /// Arm a failpoint (replacing any previously armed one).
    pub fn arm(&self, point: FailPoint) {
        *self.armed.lock().unwrap() = Some(point);
    }

    /// True once a failpoint has tripped (or [`kill`](Self::kill) ran).
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Kill the process unconditionally (the "between commit and
    /// fan-out" crash needs no fs-op trigger — the caller just stops).
    pub fn kill(&self) {
        self.crashed.store(true, Ordering::SeqCst);
    }

    /// The surviving disk image: durable bytes only, failpoint cleared.
    pub fn crash_image(&self) -> MemVfs {
        self.inner.crash_image()
    }

    fn check_alive(&self) -> Result<(), StorageError> {
        if self.is_crashed() {
            Err(StorageError::Io("process crashed (failpoint)".into()))
        } else {
            Ok(())
        }
    }

    /// Take the armed failpoint if it matches `file` and `want`.
    fn take_if(&self, file: &str, want: fn(&FailPoint) -> bool) -> Option<FailPoint> {
        let mut armed = self.armed.lock().unwrap();
        match armed.as_ref() {
            Some(p) if want(p) && file.contains(p.file()) => armed.take(),
            _ => None,
        }
    }

    fn die(&self) -> StorageError {
        self.crashed.store(true, Ordering::SeqCst);
        StorageError::Io("process crashed (failpoint)".into())
    }
}

impl Default for FailpointFs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs for FailpointFs {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        self.check_alive()?;
        self.inner.read(name)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.check_alive()?;
        if let Some(p) = self.take_if(name, |p| {
            matches!(
                p,
                FailPoint::BeforeAppend { .. }
                    | FailPoint::TornAppend { .. }
                    | FailPoint::AfterAppend { .. }
            )
        }) {
            return match p {
                FailPoint::BeforeAppend { .. } => Err(self.die()),
                FailPoint::TornAppend { keep, .. } => {
                    let torn = &bytes[..keep.min(bytes.len())];
                    self.inner.append(name, torn)?;
                    self.inner.sync(name)?;
                    Err(self.die())
                }
                FailPoint::AfterAppend { .. } => {
                    self.inner.append(name, bytes)?;
                    self.inner.sync(name)?;
                    Err(self.die())
                }
                _ => unreachable!(),
            };
        }
        self.inner.append(name, bytes)
    }

    fn sync(&self, name: &str) -> Result<(), StorageError> {
        self.check_alive()?;
        if self
            .take_if(name, |p| matches!(p, FailPoint::BeforeSync { .. }))
            .is_some()
        {
            return Err(self.die());
        }
        self.inner.sync(name)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.check_alive()?;
        if let Some(FailPoint::TornAtomicWrite {
            keep,
            replace_with_garbage,
            ..
        }) = self.take_if(name, |p| matches!(p, FailPoint::TornAtomicWrite { .. }))
        {
            if replace_with_garbage {
                let torn = bytes[..keep.min(bytes.len())].to_vec();
                self.inner.set_durable(name, torn);
            }
            // Otherwise the rename never happened: target unchanged.
            return Err(self.die());
        }
        self.inner.write_atomic(name, bytes)
    }

    fn truncate(&self, name: &str) -> Result<(), StorageError> {
        self.check_alive()?;
        if self
            .take_if(name, |p| matches!(p, FailPoint::BeforeTruncate { .. }))
            .is_some()
        {
            return Err(self.die());
        }
        self.inner.truncate(name)
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        self.check_alive()?;
        if self
            .take_if(name, |p| matches!(p, FailPoint::BeforeTruncate { .. }))
            .is_some()
        {
            return Err(self.die());
        }
        self.inner.remove(name)
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        self.check_alive()?;
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_sync_semantics() {
        let fs = MemVfs::new();
        fs.append("f", b"abc").unwrap();
        assert_eq!(fs.read("f").unwrap().unwrap(), b"abc");
        // Not yet synced: a crash loses it.
        assert_eq!(fs.crash_image().read("f").unwrap().unwrap(), b"");
        fs.sync("f").unwrap();
        assert_eq!(fs.crash_image().read("f").unwrap().unwrap(), b"abc");
    }

    #[test]
    fn failpoint_torn_append() {
        let fs = FailpointFs::new();
        fs.append("wal.log", b"first").unwrap();
        fs.sync("wal.log").unwrap();
        fs.arm(FailPoint::TornAppend {
            file: "wal".into(),
            keep: 3,
        });
        assert!(fs.append("wal.log", b"second").is_err());
        assert!(fs.is_crashed());
        assert!(fs.append("wal.log", b"more").is_err(), "dead after crash");
        let image = fs.crash_image();
        assert_eq!(image.read("wal.log").unwrap().unwrap(), b"firstsec");
    }

    #[test]
    fn failpoint_before_append_keeps_old_bytes() {
        let fs = FailpointFs::new();
        fs.append("wal.log", b"keep").unwrap();
        fs.sync("wal.log").unwrap();
        fs.arm(FailPoint::BeforeAppend { file: "wal".into() });
        assert!(fs.append("wal.log", b"lost").is_err());
        assert_eq!(fs.crash_image().read("wal.log").unwrap().unwrap(), b"keep");
    }

    #[test]
    fn failpoint_torn_atomic_write() {
        let fs = FailpointFs::new();
        fs.write_atomic("ckpt", b"old-valid").unwrap();
        fs.arm(FailPoint::TornAtomicWrite {
            file: "ckpt".into(),
            keep: 2,
            replace_with_garbage: false,
        });
        assert!(fs.write_atomic("ckpt", b"new-content").is_err());
        // Atomic backend: old content intact.
        assert_eq!(
            fs.crash_image().read("ckpt").unwrap().unwrap(),
            b"old-valid"
        );
    }

    #[test]
    fn disk_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("vbx-vfs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = DiskVfs::open(&dir).unwrap();
        assert_eq!(fs.read("x").unwrap(), None);
        fs.append("x", b"ab").unwrap();
        fs.append("x", b"cd").unwrap();
        fs.sync("x").unwrap();
        assert_eq!(fs.read("x").unwrap().unwrap(), b"abcd");
        fs.write_atomic("y", b"whole").unwrap();
        assert_eq!(fs.read("y").unwrap().unwrap(), b"whole");
        assert_eq!(fs.list().unwrap(), vec!["x".to_string(), "y".to_string()]);
        fs.truncate("x").unwrap();
        assert_eq!(fs.read("x").unwrap().unwrap(), b"");
        fs.remove("y").unwrap();
        assert_eq!(fs.read("y").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
