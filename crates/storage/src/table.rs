//! Primary-key-ordered tables and the catalog.

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::StorageError;
use std::collections::BTreeMap;

/// A heap table ordered by primary key. This is the "base table" that the
/// central server owns and distributes to edge servers alongside its
/// VB-tree.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    rows: BTreeMap<u64, Tuple>,
}

impl Table {
    /// Empty table.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: BTreeMap::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (the paper's `N_R`).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple; rejects duplicate keys and schema mismatches.
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), StorageError> {
        self.schema.check_row(&tuple.values)?;
        if self.rows.contains_key(&tuple.key) {
            return Err(StorageError::DuplicateKey(tuple.key));
        }
        self.rows.insert(tuple.key, tuple);
        Ok(())
    }

    /// Remove a tuple by key, returning it.
    pub fn delete(&mut self, key: u64) -> Result<Tuple, StorageError> {
        self.rows.remove(&key).ok_or(StorageError::KeyNotFound(key))
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<&Tuple> {
        self.rows.get(&key)
    }

    /// Inclusive range scan in key order.
    pub fn range(&self, lo: u64, hi: u64) -> impl Iterator<Item = &Tuple> {
        self.rows.range(lo..=hi).map(|(_, t)| t)
    }

    /// All tuples in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.values()
    }

    /// Smallest and largest keys, if any rows exist.
    pub fn key_bounds(&self) -> Option<(u64, u64)> {
        let lo = self.rows.keys().next()?;
        let hi = self.rows.keys().next_back()?;
        Some((*lo, *hi))
    }

    /// Total serialized size of all rows — the base-table storage cost of
    /// Section 4.1.
    pub fn data_bytes(&self) -> usize {
        self.rows.values().map(Tuple::wire_len).sum()
    }

    /// Serialise schema + rows (checkpoints persist the catalog).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.schema.encode_into(out);
        out.extend_from_slice(&(self.rows.len() as u32).to_be_bytes());
        for row in self.rows.values() {
            row.encode_into(out);
        }
    }

    /// Decode a table, advancing `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        let schema = Schema::decode(buf)?;
        if buf.len() < 4 {
            return Err(StorageError::Corrupt("table row count truncated".into()));
        }
        let n = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
        *buf = &buf[4..];
        let mut table = Table::new(schema);
        for _ in 0..n {
            let tuple = Tuple::decode(buf)?;
            table.insert(tuple)?;
        }
        Ok(table)
    }
}

/// A named collection of tables — the central server's master database.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table under its schema's table name. Replaces any
    /// previous table of the same name.
    pub fn put(&mut self, table: Table) {
        self.tables.insert(table.schema().table.clone(), table);
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Drop a table, returning it if it was registered.
    pub fn remove(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Iterate over tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::{ColumnType, Value};

    fn table() -> Table {
        let schema = Schema::new("db", "t", "id", vec![ColumnDef::new("v", ColumnType::Int)]);
        let mut t = Table::new(schema);
        for k in [5u64, 1, 9, 3] {
            let tuple = Tuple::new(t.schema(), k, vec![Value::from(k as i64 * 10)]).unwrap();
            t.insert(tuple).unwrap();
        }
        t
    }

    #[test]
    fn insert_get_delete() {
        let mut t = table();
        assert_eq!(t.len(), 4);
        assert!(t.get(5).is_some());
        assert!(t.get(6).is_none());
        let removed = t.delete(5).unwrap();
        assert_eq!(removed.key, 5);
        assert!(t.get(5).is_none());
        assert!(matches!(t.delete(5), Err(StorageError::KeyNotFound(5))));
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = table();
        let dup = Tuple::new(t.schema(), 1, vec![Value::from(0i64)]).unwrap();
        assert!(matches!(t.insert(dup), Err(StorageError::DuplicateKey(1))));
    }

    #[test]
    fn range_in_key_order() {
        let t = table();
        let keys: Vec<u64> = t.range(2, 9).map(|r| r.key).collect();
        assert_eq!(keys, vec![3, 5, 9]);
        let all: Vec<u64> = t.iter().map(|r| r.key).collect();
        assert_eq!(all, vec![1, 3, 5, 9]);
    }

    #[test]
    fn key_bounds() {
        let t = table();
        assert_eq!(t.key_bounds(), Some((1, 9)));
        let empty = Table::new(t.schema().clone());
        assert_eq!(empty.key_bounds(), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn data_bytes_counts_rows() {
        let t = table();
        let per_row = t.get(1).unwrap().wire_len();
        assert_eq!(t.data_bytes(), 4 * per_row);
    }

    #[test]
    fn catalog_roundtrip() {
        let mut cat = Catalog::new();
        cat.put(table());
        assert_eq!(cat.len(), 1);
        assert!(cat.get("t").is_some());
        assert!(cat.get("missing").is_none());
        cat.get_mut("t").unwrap().delete(1).unwrap();
        assert_eq!(cat.get("t").unwrap().len(), 3);
    }
}
