//! Node geometry: the `|B| / |K| / |P| / |D|` parameters of Table 1.
//!
//! The VB-tree's fan-out is determined by how many
//! `(key, pointer, digest)` entries fit in one disk block; a plain
//! B+-tree omits the digest. These are formulas (6) and (7) of the paper,
//! reproduced here so that the *real* tree built by `vbx-core` and the
//! *analytical* model in `vbx-analysis` share one definition.

/// Byte-level layout parameters for tree nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    /// Block/node size in bytes (Table 1: 4 KB).
    pub block_size: usize,
    /// Search-key length in bytes (Table 1: 16).
    pub key_len: usize,
    /// Node-pointer length in bytes (Table 1: 4).
    pub ptr_len: usize,
    /// Signed-digest length in bytes (Table 1: 16).
    pub digest_len: usize,
}

impl Default for Geometry {
    /// The defaults of Table 1.
    fn default() -> Self {
        Self {
            block_size: 4096,
            key_len: 16,
            ptr_len: 4,
            digest_len: 16,
        }
    }
}

impl Geometry {
    /// Fan-out of a plain B+-tree node: the largest `f` with
    /// `f·|P| + (f-1)·|K| ≤ |B|`, i.e. `⌊(|B| + |K|) / (|K| + |P|)⌋`
    /// (formula (6)'s baseline).
    ///
    /// ```
    /// use vbx_storage::Geometry;
    /// let g = Geometry::default(); // Table 1 defaults
    /// assert_eq!(g.btree_fanout(), 205);
    /// assert_eq!(g.vbtree_fanout(), 114);
    /// ```
    pub fn btree_fanout(&self) -> usize {
        ((self.block_size + self.key_len) / (self.key_len + self.ptr_len)).max(2)
    }

    /// Fan-out of a VB-tree node: every pointer additionally carries the
    /// child's signed digest, so
    /// `f·(|P| + |D|) + (f-1)·|K| ≤ |B|` ⇒
    /// `⌊(|B| + |K|) / (|K| + |P| + |D|)⌋` (formula (6)).
    pub fn vbtree_fanout(&self) -> usize {
        ((self.block_size + self.key_len) / (self.key_len + self.ptr_len + self.digest_len)).max(2)
    }

    /// Per-node space overhead of the VB-tree relative to the B+-tree:
    /// `f_vb · |D|` bytes of digests per node.
    pub fn node_digest_overhead(&self) -> usize {
        self.vbtree_fanout() * self.digest_len
    }

    /// Height of a fully-packed tree with fan-out `f` over `n` tuples:
    /// `⌈log_f n⌉` (formula (7)). A single-node tree has height 1.
    pub fn packed_height(fanout: usize, n: u64) -> u32 {
        assert!(fanout >= 2);
        if n <= 1 {
            return 1;
        }
        let mut h = 0u32;
        let mut capacity = 1u128;
        let f = fanout as u128;
        while capacity < n as u128 {
            capacity = capacity.saturating_mul(f);
            h += 1;
        }
        h
    }

    /// Height of a fully-packed B+-tree over `n` tuples.
    pub fn btree_height(&self, n: u64) -> u32 {
        Self::packed_height(self.btree_fanout(), n)
    }

    /// Height of a fully-packed VB-tree over `n` tuples.
    pub fn vbtree_height(&self, n: u64) -> u32 {
        Self::packed_height(self.vbtree_fanout(), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let g = Geometry::default();
        assert_eq!(g.block_size, 4096);
        assert_eq!(g.key_len, 16);
        assert_eq!(g.ptr_len, 4);
        assert_eq!(g.digest_len, 16);
    }

    #[test]
    fn default_fanouts_match_paper_ballpark() {
        // Figure 8 at |K| = 16: B-tree ≈ 205, VB-tree ≈ 114.
        let g = Geometry::default();
        assert_eq!(g.btree_fanout(), 205);
        assert_eq!(g.vbtree_fanout(), 114);
    }

    #[test]
    fn vb_fanout_never_exceeds_btree() {
        for log_k in 0..=8 {
            let g = Geometry {
                key_len: 1 << log_k,
                ..Geometry::default()
            };
            assert!(
                g.vbtree_fanout() <= g.btree_fanout(),
                "|K| = {}",
                1 << log_k
            );
        }
    }

    #[test]
    fn heights_for_a_million_rows() {
        // Figure 9 at |K| = 16, N_R = 1M: both trees land at height 3.
        let g = Geometry::default();
        assert_eq!(g.btree_height(1_000_000), 3);
        assert_eq!(g.vbtree_height(1_000_000), 3);
    }

    #[test]
    fn packed_height_edge_cases() {
        assert_eq!(Geometry::packed_height(100, 0), 1);
        assert_eq!(Geometry::packed_height(100, 1), 1);
        assert_eq!(Geometry::packed_height(100, 100), 1);
        assert_eq!(Geometry::packed_height(100, 101), 2);
        assert_eq!(Geometry::packed_height(2, 8), 3);
    }

    #[test]
    fn fanout_lower_bound() {
        // Even absurd geometry yields a valid tree (fan-out >= 2).
        let g = Geometry {
            block_size: 8,
            key_len: 256,
            ptr_len: 8,
            digest_len: 64,
        };
        assert_eq!(g.vbtree_fanout(), 2);
        assert_eq!(g.btree_fanout(), 2);
    }

    #[test]
    fn digest_overhead_scales_with_fanout() {
        let g = Geometry::default();
        assert_eq!(g.node_digest_overhead(), g.vbtree_fanout() * 16);
    }
}
