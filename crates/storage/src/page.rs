//! Fixed-size slotted pages.
//!
//! The paper sizes tree nodes as 4 KB disk blocks. [`SlottedPage`] is the
//! classic slotted layout: a slot directory growing from the front, record
//! payloads growing from the back. `vbx-core` serialises tree nodes into
//! pages to measure real storage overheads (Section 4.1); the layout is
//! also reused by anyone persisting tables.
//!
//! Layout:
//!
//! ```text
//! [u16 n_slots][u16 free_end]  [slot0: u16 off, u16 len] … | free … | recN … rec0]
//! ```

use crate::StorageError;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// A fixed-capacity page with slot-directory record management.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlottedPage {
    buf: Vec<u8>,
}

impl SlottedPage {
    /// Create an empty page of `size` bytes (≥ 16).
    pub fn new(size: usize) -> Self {
        assert!(size >= 16, "page too small");
        assert!(size <= u16::MAX as usize, "page too large for u16 offsets");
        let mut buf = vec![0u8; size];
        let free_end = size as u16;
        buf[2..4].copy_from_slice(&free_end.to_be_bytes());
        Self { buf }
    }

    /// Page capacity in bytes.
    pub fn size(&self) -> usize {
        self.buf.len()
    }

    fn n_slots(&self) -> usize {
        u16::from_be_bytes([self.buf[0], self.buf[1]]) as usize
    }

    fn free_end(&self) -> usize {
        u16::from_be_bytes([self.buf[2], self.buf[3]]) as usize
    }

    fn set_n_slots(&mut self, n: usize) {
        self.buf[0..2].copy_from_slice(&(n as u16).to_be_bytes());
    }

    fn set_free_end(&mut self, off: usize) {
        self.buf[2..4].copy_from_slice(&(off as u16).to_be_bytes());
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let base = HEADER + i * SLOT;
        let off = u16::from_be_bytes([self.buf[base], self.buf[base + 1]]) as usize;
        let len = u16::from_be_bytes([self.buf[base + 2], self.buf[base + 3]]) as usize;
        (off, len)
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.n_slots()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.n_slots() == 0
    }

    /// Bytes still available for one more record's payload, after
    /// reserving its slot entry. `None` when not even the slot fits.
    fn payload_capacity(&self) -> Option<usize> {
        let used_front = HEADER + self.n_slots() * SLOT;
        self.free_end().checked_sub(used_front + SLOT)
    }

    /// Bytes still available for one more record (slot included).
    pub fn free_space(&self) -> usize {
        self.payload_capacity().unwrap_or(0)
    }

    /// Append a record, returning its slot index.
    pub fn push(&mut self, record: &[u8]) -> Result<usize, StorageError> {
        // The slot entry itself must fit below `free_end` — comparing
        // against the saturated `free_space()` alone would let a
        // zero-length record squeeze its slot over record data when
        // fewer than `SLOT` bytes remain (found by the model-based
        // property test).
        match self.payload_capacity() {
            Some(available) if record.len() <= available => {}
            _ => {
                return Err(StorageError::PageFull {
                    needed: record.len(),
                    available: self.free_space(),
                });
            }
        }
        let n = self.n_slots();
        let new_end = self.free_end() - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        let base = HEADER + n * SLOT;
        self.buf[base..base + 2].copy_from_slice(&(new_end as u16).to_be_bytes());
        self.buf[base + 2..base + 4].copy_from_slice(&(record.len() as u16).to_be_bytes());
        self.set_n_slots(n + 1);
        self.set_free_end(new_end);
        Ok(n)
    }

    /// Read a record by slot index.
    pub fn get(&self, i: usize) -> Option<&[u8]> {
        if i >= self.n_slots() {
            return None;
        }
        let (off, len) = self.slot(i);
        Some(&self.buf[off..off + len])
    }

    /// Iterate records in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.n_slots()).map(move |i| self.get(i).unwrap())
    }

    /// Raw bytes (e.g. to write to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Rehydrate from raw bytes, validating the directory.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, StorageError> {
        if buf.len() < 16 || buf.len() > u16::MAX as usize {
            return Err(StorageError::Corrupt("bad page size".into()));
        }
        let page = Self { buf };
        let n = page.n_slots();
        let free_end = page.free_end();
        if HEADER + n * SLOT > free_end || free_end > page.buf.len() {
            return Err(StorageError::Corrupt("slot directory overlaps data".into()));
        }
        for i in 0..n {
            let (off, len) = page.slot(i);
            if off < free_end || off + len > page.buf.len() {
                return Err(StorageError::Corrupt(format!("slot {i} out of bounds")));
            }
        }
        Ok(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut p = SlottedPage::new(128);
        let a = p.push(b"alpha").unwrap();
        let b = p.push(b"beta").unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(p.get(0), Some(&b"alpha"[..]));
        assert_eq!(p.get(1), Some(&b"beta"[..]));
        assert_eq!(p.get(2), None);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn fills_up() {
        let mut p = SlottedPage::new(64);
        let mut pushed = 0;
        loop {
            match p.push(&[7u8; 10]) {
                Ok(_) => pushed += 1,
                Err(StorageError::PageFull { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        // 64 - 4 header = 60; each record needs 10 + 4 slot = 14 → 4 fit.
        assert_eq!(pushed, 4);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn zero_length_records_ok() {
        let mut p = SlottedPage::new(32);
        p.push(b"").unwrap();
        p.push(b"").unwrap();
        assert_eq!(p.get(0), Some(&b""[..]));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn roundtrip_bytes() {
        let mut p = SlottedPage::new(128);
        p.push(b"one").unwrap();
        p.push(b"two").unwrap();
        let bytes = p.as_bytes().to_vec();
        let back = SlottedPage::from_bytes(bytes).unwrap();
        assert_eq!(back, p);
        let records: Vec<&[u8]> = back.iter().collect();
        assert_eq!(records, vec![&b"one"[..], &b"two"[..]]);
    }

    #[test]
    fn corrupt_directory_rejected() {
        let mut p = SlottedPage::new(64);
        p.push(b"data").unwrap();
        let mut bytes = p.as_bytes().to_vec();
        bytes[0..2].copy_from_slice(&100u16.to_be_bytes()); // absurd n_slots
        assert!(SlottedPage::from_bytes(bytes).is_err());
        assert!(SlottedPage::from_bytes(vec![0; 4]).is_err());
    }

    #[test]
    fn zero_length_push_rejected_when_slot_cannot_fit() {
        // Regression (found by proptest): with fewer than SLOT bytes
        // between the directory and the data, a zero-length record's
        // slot entry used to overwrite the first byte of the most
        // recently pushed record.
        let mut p = SlottedPage::new(32);
        // header 4 + 3 slots × 4 = 16 front; fill the back to byte 18:
        p.push(&[0xAA; 7]).unwrap(); // free_end 25
        p.push(&[0xBB; 4]).unwrap(); // free_end 21
        p.push(&[0xCC; 3]).unwrap(); // free_end 18, used_front 16
                                     // Only 2 bytes between directory and data: even an empty record
                                     // must be rejected (its slot needs 4).
        assert!(matches!(
            p.push(b""),
            Err(StorageError::PageFull { needed: 0, .. })
        ));
        // Existing records unharmed.
        assert_eq!(p.get(0), Some(&[0xAA; 7][..]));
        assert_eq!(p.get(1), Some(&[0xBB; 4][..]));
        assert_eq!(p.get(2), Some(&[0xCC; 3][..]));
    }

    #[test]
    fn free_space_accounting() {
        let mut p = SlottedPage::new(100);
        let before = p.free_space();
        p.push(b"12345").unwrap();
        assert_eq!(p.free_space(), before - 5 - 4);
    }
}
