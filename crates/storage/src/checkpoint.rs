//! Checkpoint files: named byte sections chunked across [`SlottedPage`]s.
//!
//! A checkpoint is a point-in-time snapshot of the central's durable
//! state — table stores, the `DeltaLog` tail, the freshness-stamp
//! history, clock counters — written as one file so the WAL can be
//! truncated. Sections are opaque `(key, bytes)` pairs; the layer above
//! (`vbx-edge::durability`) decides what goes in them.
//!
//! ## On-disk format
//!
//! ```text
//! file  := "VCKP1" 0x00 [u32 page_size][u32 n_pages][u32 crc32(pages)] page*
//! page  := SlottedPage bytes (page_size each)
//! slot  := chunk
//! chunk := 0x01 [u16 key_len][key][u32 value_len] data   (first chunk)
//!        | 0x00 data                                     (continuation)
//! ```
//!
//! Sections larger than a page are split across as many chunks (and
//! pages) as needed; chunks of different sections never interleave. The
//! whole-file CRC makes a torn checkpoint (non-atomic filesystem)
//! detectable, so recovery can fall back to the previous checkpoint —
//! the writer keeps the prior file until the new one is durable.

use crate::page::SlottedPage;
use crate::StorageError;

const MAGIC: &[u8; 6] = b"VCKP1\x00";
const HEADER_LEN: usize = MAGIC.len() + 12;

/// Default page size for checkpoint files (the paper's 4 KB block).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Per-chunk header overhead of a first chunk with `key_len` key bytes.
fn first_chunk_header(key_len: usize) -> usize {
    1 + 2 + key_len + 4
}

/// Streaming writer: feed `(key, bytes)` sections, then
/// [`finish`](Self::finish) into a single validated byte image.
pub struct CheckpointBuilder {
    page_size: usize,
    pages: Vec<SlottedPage>,
}

impl CheckpointBuilder {
    /// A builder emitting pages of `page_size` bytes (≥ 64).
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "checkpoint page too small");
        Self {
            page_size,
            pages: vec![SlottedPage::new(page_size)],
        }
    }

    fn free_space(&self) -> usize {
        self.pages.last().unwrap().free_space()
    }

    fn fresh_page(&mut self) {
        self.pages.push(SlottedPage::new(self.page_size));
    }

    fn push_chunk(&mut self, chunk: &[u8]) {
        if self.pages.last_mut().unwrap().push(chunk).is_err() {
            self.fresh_page();
            self.pages
                .last_mut()
                .unwrap()
                .push(chunk)
                .expect("chunk sized to fit an empty page");
        }
    }

    /// Append one section. Keys must be unique and ≤ `u16::MAX` bytes.
    pub fn add(&mut self, key: &str, value: &[u8]) {
        let key = key.as_bytes();
        let header = first_chunk_header(key.len());
        assert!(
            header + 16 < self.page_size - 8,
            "section key too long for page size"
        );
        // Make sure the first chunk has room for its header plus at
        // least one data byte (or the whole value when empty).
        if self.free_space() < header + usize::from(!value.is_empty()) {
            self.fresh_page();
        }
        let mut first_cap = self.free_space().saturating_sub(header);
        if first_cap == 0 && !value.is_empty() {
            self.fresh_page();
            first_cap = self.free_space() - header;
        }
        let take = value.len().min(first_cap);
        let mut chunk = Vec::with_capacity(header + take);
        chunk.push(1u8);
        chunk.extend_from_slice(&(key.len() as u16).to_be_bytes());
        chunk.extend_from_slice(key);
        chunk.extend_from_slice(&(value.len() as u32).to_be_bytes());
        chunk.extend_from_slice(&value[..take]);
        self.push_chunk(&chunk);
        let mut rest = &value[take..];
        while !rest.is_empty() {
            if self.free_space() <= 1 {
                self.fresh_page();
            }
            let take = rest.len().min(self.free_space() - 1);
            let mut chunk = Vec::with_capacity(1 + take);
            chunk.push(0u8);
            chunk.extend_from_slice(&rest[..take]);
            self.push_chunk(&chunk);
            rest = &rest[take..];
        }
    }

    /// Serialise header + pages into the final checkpoint image.
    pub fn finish(self) -> Vec<u8> {
        let mut pages_bytes = Vec::with_capacity(self.pages.len() * self.page_size);
        for p in &self.pages {
            pages_bytes.extend_from_slice(p.as_bytes());
        }
        let mut out = Vec::with_capacity(HEADER_LEN + pages_bytes.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.page_size as u32).to_be_bytes());
        out.extend_from_slice(&(self.pages.len() as u32).to_be_bytes());
        out.extend_from_slice(&crate::wal::crc32(&pages_bytes).to_be_bytes());
        out.extend_from_slice(&pages_bytes);
        out
    }
}

/// Parsed checkpoint: ordered `(key, bytes)` sections.
pub struct CheckpointReader {
    sections: Vec<(String, Vec<u8>)>,
}

impl CheckpointReader {
    /// Parse and validate a checkpoint image. Any framing damage —
    /// short header, wrong magic, size mismatch, CRC mismatch, chunk
    /// stream errors — returns [`StorageError::Corrupt`]; this is how a
    /// torn checkpoint on a non-atomic filesystem is detected.
    pub fn parse(bytes: &[u8]) -> Result<Self, StorageError> {
        let corrupt = |m: &str| StorageError::Corrupt(format!("checkpoint: {m}"));
        if bytes.len() < HEADER_LEN {
            return Err(corrupt("short header"));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let at = MAGIC.len();
        let page_size = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let n_pages = u32::from_be_bytes(bytes[at + 4..at + 8].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(bytes[at + 8..at + 12].try_into().unwrap());
        if page_size < 64 || page_size > u16::MAX as usize {
            return Err(corrupt("bad page size"));
        }
        let pages_bytes = &bytes[HEADER_LEN..];
        if pages_bytes.len() != n_pages * page_size {
            return Err(corrupt("page area size mismatch"));
        }
        if crate::wal::crc32(pages_bytes) != crc {
            return Err(corrupt("crc mismatch"));
        }
        let mut sections: Vec<(String, Vec<u8>)> = Vec::new();
        // (key, total_len, bytes so far) of the section being reassembled.
        let mut open: Option<(String, usize, Vec<u8>)> = None;
        for i in 0..n_pages {
            let page =
                SlottedPage::from_bytes(pages_bytes[i * page_size..(i + 1) * page_size].to_vec())?;
            for chunk in page.iter() {
                if chunk.is_empty() {
                    return Err(corrupt("empty chunk"));
                }
                match chunk[0] {
                    1 => {
                        if let Some((key, total, data)) = open.take() {
                            if data.len() != total {
                                return Err(corrupt(&format!("section {key} truncated")));
                            }
                            sections.push((key, data));
                        }
                        if chunk.len() < 3 {
                            return Err(corrupt("short first chunk"));
                        }
                        let key_len = u16::from_be_bytes(chunk[1..3].try_into().unwrap()) as usize;
                        if chunk.len() < 3 + key_len + 4 {
                            return Err(corrupt("short first chunk key"));
                        }
                        let key = String::from_utf8(chunk[3..3 + key_len].to_vec())
                            .map_err(|_| corrupt("non-utf8 key"))?;
                        let total = u32::from_be_bytes(
                            chunk[3 + key_len..3 + key_len + 4].try_into().unwrap(),
                        ) as usize;
                        let data = chunk[3 + key_len + 4..].to_vec();
                        if data.len() > total {
                            return Err(corrupt("chunk overflows section"));
                        }
                        open = Some((key, total, data));
                    }
                    0 => match open.as_mut() {
                        Some((_, total, data)) => {
                            data.extend_from_slice(&chunk[1..]);
                            if data.len() > *total {
                                return Err(corrupt("chunk overflows section"));
                            }
                        }
                        None => return Err(corrupt("continuation without section")),
                    },
                    _ => return Err(corrupt("bad chunk flag")),
                }
            }
        }
        if let Some((key, total, data)) = open.take() {
            if data.len() != total {
                return Err(corrupt(&format!("section {key} truncated")));
            }
            sections.push((key, data));
        }
        Ok(Self { sections })
    }

    /// All sections in write order.
    pub fn sections(&self) -> &[(String, Vec<u8>)] {
        &self.sections
    }

    /// The first section named `key`, if present.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(page_size: usize, sections: &[(&str, Vec<u8>)]) {
        let mut b = CheckpointBuilder::new(page_size);
        for (k, v) in sections {
            b.add(k, v);
        }
        let image = b.finish();
        let r = CheckpointReader::parse(&image).unwrap();
        assert_eq!(r.sections().len(), sections.len());
        for ((k, v), (rk, rv)) in sections.iter().zip(r.sections()) {
            assert_eq!(k, rk);
            assert_eq!(v, rv);
        }
    }

    #[test]
    fn empty_checkpoint() {
        roundtrip(256, &[]);
    }

    #[test]
    fn small_sections_share_a_page() {
        let mut b = CheckpointBuilder::new(4096);
        b.add("meta", b"abc");
        b.add("log", b"defgh");
        let image = b.finish();
        // Header + exactly one page.
        assert_eq!(image.len(), HEADER_LEN + 4096);
        let r = CheckpointReader::parse(&image).unwrap();
        assert_eq!(r.get("meta").unwrap(), b"abc");
        assert_eq!(r.get("log").unwrap(), b"defgh");
        assert_eq!(r.get("nope"), None);
    }

    #[test]
    fn large_section_spans_pages() {
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        roundtrip(256, &[("big", big.clone()), ("after", b"tail".to_vec())]);
        // Empty values and values exactly at boundaries.
        roundtrip(128, &[("empty", vec![]), ("one", vec![42])]);
        for n in [0usize, 1, 63, 64, 65, 107, 108, 109, 200, 500] {
            roundtrip(128, &[("k", vec![7u8; n])]);
        }
    }

    #[test]
    fn crc_detects_torn_checkpoint() {
        let mut b = CheckpointBuilder::new(256);
        b.add("meta", &[9u8; 300]);
        let image = b.finish();
        // Truncation at every length must error, never panic.
        for cut in 0..image.len() {
            assert!(CheckpointReader::parse(&image[..cut]).is_err());
        }
        // A single bit flip in the page area must be caught by the CRC.
        let mut flipped = image.clone();
        let n = flipped.len();
        flipped[n - 1] ^= 0x80;
        assert!(CheckpointReader::parse(&flipped).is_err());
    }
}
