//! Predicate expressions, binding, evaluation, and key-range extraction.
//!
//! Selections on the primary key become key ranges (served by the
//! enveloping subtree); everything else becomes a *residual predicate*
//! whose filtered-out tuples are covered by signed tuple digests in
//! `D_S` (the paper's non-key selection case).

use vbx_storage::{Schema, Tuple, Value};

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Literal values in predicates.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// Integer literal (also matches the key column).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

/// A predicate expression over column names.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// `column op literal`
    Cmp {
        /// Column name (unqualified, or the key column).
        column: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        lo: Literal,
        /// Inclusive upper bound.
        hi: Literal,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl core::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl core::fmt::Display for Literal {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v:?}"),
            Literal::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl core::fmt::Display for Expr {
    /// Renders with explicit parentheses so that re-parsing yields an
    /// equivalent tree (used by the round-trip property tests).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Expr::Cmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Expr::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
        }
    }
}

/// Inclusive key interval extracted from a predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl Default for KeyRange {
    fn default() -> Self {
        Self {
            lo: 0,
            hi: u64::MAX,
        }
    }
}

impl KeyRange {
    /// Intersect with another range.
    pub fn intersect(self, other: KeyRange) -> KeyRange {
        KeyRange {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// True when no key satisfies the range.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }
}

/// A predicate bound to a schema (column names resolved to indices; the
/// key column resolved specially).
#[derive(Clone, Debug)]
pub enum BoundPredicate {
    /// Comparison on the primary key.
    KeyCmp(CmpOp, u64),
    /// Comparison on a payload column.
    ColCmp(usize, CmpOp, Literal),
    /// Conjunction.
    And(Box<BoundPredicate>, Box<BoundPredicate>),
    /// Disjunction.
    Or(Box<BoundPredicate>, Box<BoundPredicate>),
    /// Negation.
    Not(Box<BoundPredicate>),
}

/// Binding / planning errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindError {
    /// Column name not found in the schema.
    UnknownColumn(String),
    /// Key compared against a non-integer literal.
    KeyType,
}

impl core::fmt::Display for BindError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BindError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            BindError::KeyType => write!(f, "key compared against non-integer literal"),
        }
    }
}

impl std::error::Error for BindError {}

impl Expr {
    /// Bind column names against a schema.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate, BindError> {
        match self {
            Expr::Cmp { column, op, value } => {
                if *column == schema.key_name {
                    let Literal::Int(v) = value else {
                        return Err(BindError::KeyType);
                    };
                    if *v < 0 {
                        return Err(BindError::KeyType);
                    }
                    Ok(BoundPredicate::KeyCmp(*op, *v as u64))
                } else {
                    let idx = schema
                        .column_index(column)
                        .ok_or_else(|| BindError::UnknownColumn(column.clone()))?;
                    Ok(BoundPredicate::ColCmp(idx, *op, value.clone()))
                }
            }
            Expr::Between { column, lo, hi } => {
                let lo_expr = Expr::Cmp {
                    column: column.clone(),
                    op: CmpOp::Ge,
                    value: lo.clone(),
                };
                let hi_expr = Expr::Cmp {
                    column: column.clone(),
                    op: CmpOp::Le,
                    value: hi.clone(),
                };
                Ok(BoundPredicate::And(
                    Box::new(lo_expr.bind(schema)?),
                    Box::new(hi_expr.bind(schema)?),
                ))
            }
            Expr::And(a, b) => Ok(BoundPredicate::And(
                Box::new(a.bind(schema)?),
                Box::new(b.bind(schema)?),
            )),
            Expr::Or(a, b) => Ok(BoundPredicate::Or(
                Box::new(a.bind(schema)?),
                Box::new(b.bind(schema)?),
            )),
            Expr::Not(e) => Ok(BoundPredicate::Not(Box::new(e.bind(schema)?))),
        }
    }
}

fn cmp_values(op: CmpOp, ord: core::cmp::Ordering) -> bool {
    use core::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

fn value_matches(v: &Value, op: CmpOp, lit: &Literal) -> bool {
    let ord = match (v, lit) {
        (Value::Int(a), Literal::Int(b)) => a.partial_cmp(b),
        (Value::Float(a), Literal::Float(b)) => a.partial_cmp(b),
        (Value::Float(a), Literal::Int(b)) => a.partial_cmp(&(*b as f64)),
        (Value::Int(a), Literal::Float(b)) => (*a as f64).partial_cmp(b),
        (Value::Text(a), Literal::Str(b)) => Some(a.as_str().cmp(b.as_str())),
        _ => None, // type mismatch: never matches
    };
    ord.is_some_and(|o| cmp_values(op, o))
}

impl BoundPredicate {
    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            BoundPredicate::KeyCmp(op, v) => cmp_values(*op, tuple.key.cmp(v)),
            BoundPredicate::ColCmp(idx, op, lit) => value_matches(&tuple.values[*idx], *op, lit),
            BoundPredicate::And(a, b) => a.eval(tuple) && b.eval(tuple),
            BoundPredicate::Or(a, b) => a.eval(tuple) || b.eval(tuple),
            BoundPredicate::Not(e) => !e.eval(tuple),
        }
    }

    /// Extract an inclusive key range implied by this predicate (a sound
    /// over-approximation: every satisfying tuple lies in the range).
    /// Conjunctions intersect; disjunctions/negations fall back to the
    /// full range on the affected side.
    pub fn key_range(&self) -> KeyRange {
        match self {
            BoundPredicate::KeyCmp(op, v) => match op {
                CmpOp::Eq => KeyRange { lo: *v, hi: *v },
                CmpOp::Le => KeyRange { lo: 0, hi: *v },
                CmpOp::Lt => KeyRange {
                    lo: 0,
                    hi: v.saturating_sub(1),
                },
                CmpOp::Ge => KeyRange {
                    lo: *v,
                    hi: u64::MAX,
                },
                CmpOp::Gt => KeyRange {
                    lo: v.saturating_add(1),
                    hi: u64::MAX,
                },
                CmpOp::Ne => KeyRange::default(),
            },
            BoundPredicate::And(a, b) => a.key_range().intersect(b.key_range()),
            // A disjunction covers the union; stay sound with the hull.
            BoundPredicate::Or(a, b) => {
                let (ra, rb) = (a.key_range(), b.key_range());
                KeyRange {
                    lo: ra.lo.min(rb.lo),
                    hi: ra.hi.max(rb.hi),
                }
            }
            _ => KeyRange::default(),
        }
    }

    /// True when the predicate is fully captured by its key range (no
    /// residual filtering needed). Conservative: any non-key comparison
    /// or disjunction/negation keeps the residual.
    pub fn is_pure_key_range(&self) -> bool {
        match self {
            BoundPredicate::KeyCmp(op, _) => !matches!(op, CmpOp::Ne),
            BoundPredicate::And(a, b) => a.is_pure_key_range() && b.is_pure_key_range(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_storage::{ColumnDef, ColumnType};

    fn schema() -> Schema {
        Schema::new(
            "db",
            "t",
            "id",
            vec![
                ColumnDef::new("name", ColumnType::Text),
                ColumnDef::new("qty", ColumnType::Int),
            ],
        )
    }

    fn tuple(key: u64, name: &str, qty: i64) -> Tuple {
        Tuple::new(&schema(), key, vec![Value::from(name), Value::from(qty)]).unwrap()
    }

    #[test]
    fn bind_and_eval_column_cmp() {
        let e = Expr::Cmp {
            column: "qty".into(),
            op: CmpOp::Gt,
            value: Literal::Int(5),
        };
        let b = e.bind(&schema()).unwrap();
        assert!(b.eval(&tuple(1, "a", 6)));
        assert!(!b.eval(&tuple(1, "a", 5)));
    }

    #[test]
    fn bind_key_cmp_and_range() {
        let e = Expr::Between {
            column: "id".into(),
            lo: Literal::Int(10),
            hi: Literal::Int(20),
        };
        let b = e.bind(&schema()).unwrap();
        assert_eq!(b.key_range(), KeyRange { lo: 10, hi: 20 });
        assert!(b.is_pure_key_range());
        assert!(b.eval(&tuple(15, "x", 0)));
        assert!(!b.eval(&tuple(21, "x", 0)));
    }

    #[test]
    fn conjunction_intersects_ranges() {
        let e = Expr::And(
            Box::new(Expr::Cmp {
                column: "id".into(),
                op: CmpOp::Ge,
                value: Literal::Int(5),
            }),
            Box::new(Expr::And(
                Box::new(Expr::Cmp {
                    column: "id".into(),
                    op: CmpOp::Lt,
                    value: Literal::Int(30),
                }),
                Box::new(Expr::Cmp {
                    column: "qty".into(),
                    op: CmpOp::Eq,
                    value: Literal::Int(1),
                }),
            )),
        );
        let b = e.bind(&schema()).unwrap();
        assert_eq!(b.key_range(), KeyRange { lo: 5, hi: 29 });
        assert!(!b.is_pure_key_range()); // qty residual remains
    }

    #[test]
    fn disjunction_takes_hull() {
        let e = Expr::Or(
            Box::new(Expr::Cmp {
                column: "id".into(),
                op: CmpOp::Le,
                value: Literal::Int(3),
            }),
            Box::new(Expr::Cmp {
                column: "id".into(),
                op: CmpOp::Eq,
                value: Literal::Int(10),
            }),
        );
        let b = e.bind(&schema()).unwrap();
        assert_eq!(b.key_range(), KeyRange { lo: 0, hi: 10 });
        assert!(!b.is_pure_key_range());
    }

    #[test]
    fn text_comparison() {
        let e = Expr::Cmp {
            column: "name".into(),
            op: CmpOp::Eq,
            value: Literal::Str("bob".into()),
        };
        let b = e.bind(&schema()).unwrap();
        assert!(b.eval(&tuple(1, "bob", 0)));
        assert!(!b.eval(&tuple(1, "alice", 0)));
    }

    #[test]
    fn type_mismatch_never_matches() {
        let e = Expr::Cmp {
            column: "name".into(),
            op: CmpOp::Eq,
            value: Literal::Int(1),
        };
        let b = e.bind(&schema()).unwrap();
        assert!(!b.eval(&tuple(1, "1", 0)));
        // …and its negation matches.
        let not = BoundPredicate::Not(Box::new(b));
        assert!(not.eval(&tuple(1, "1", 0)));
    }

    #[test]
    fn unknown_column_rejected() {
        let e = Expr::Cmp {
            column: "nope".into(),
            op: CmpOp::Eq,
            value: Literal::Int(1),
        };
        assert!(matches!(
            e.bind(&schema()),
            Err(BindError::UnknownColumn(c)) if c == "nope"
        ));
    }

    #[test]
    fn key_type_enforced() {
        let e = Expr::Cmp {
            column: "id".into(),
            op: CmpOp::Eq,
            value: Literal::Str("x".into()),
        };
        assert!(matches!(e.bind(&schema()), Err(BindError::KeyType)));
    }

    #[test]
    fn empty_range_detected() {
        let r = KeyRange { lo: 10, hi: 5 };
        assert!(r.is_empty());
        assert!(KeyRange::default()
            .intersect(KeyRange { lo: 3, hi: 9 })
            .intersect(KeyRange { lo: 11, hi: 20 })
            .is_empty());
    }
}
