//! The edge-server query engine and its client-side counterpart.
//!
//! [`AuthQueryEngine`] is what runs on an (untrusted) edge server: it
//! owns VB-trees for base tables and materialised join views, parses
//! SQL, plans the key range / residual predicate / projection, and
//! produces `result + VO` responses.
//!
//! [`ClientSession`] is the trusted client's half: it re-plans the same
//! SQL locally (never trusting the edge's plan), verifies the VO, and
//! re-checks the residual predicate on the returned rows — necessary
//! because a returned-but-unqualified authentic tuple still yields a
//! consistent digest product.

use crate::ast::{Projection, SelectStmt};
use crate::expr::{BindError, BoundPredicate, KeyRange};
use crate::parser::{parse_select, ParseError};
use crate::view::{join_view_name, JoinViewDef};
use std::collections::BTreeMap;
use vbx_core::{
    execute, ClientVerifier, CompactResponse, QueryResponse, RangeQuery, VbTree, VerifyError,
    VerifyReport,
};
use vbx_crypto::accum::Accumulator;
use vbx_crypto::SigVerifier;
use vbx_storage::{Schema, Tuple};

/// Errors from planning, execution, or verification.
#[derive(Debug)]
pub enum EngineError {
    /// SQL parse failure.
    Parse(ParseError),
    /// Name-resolution failure.
    Bind(BindError),
    /// Unknown base table.
    UnknownTable(String),
    /// Join queried but its view was never materialised.
    ViewNotMaterialized {
        /// The canonical view name looked up.
        view: String,
    },
    /// Projection names a column missing from the target schema.
    UnknownProjectionColumn(String),
    /// Verification failed (tampering or malformed response).
    Verify(VerifyError),
    /// A returned row does not satisfy the query's residual predicate.
    PredicateViolation {
        /// Key of the offending row.
        key: u64,
    },
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Bind(e) => write!(f, "{e}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table {t}"),
            EngineError::ViewNotMaterialized { view } => {
                write!(f, "join view {view} not materialised")
            }
            EngineError::UnknownProjectionColumn(c) => write!(f, "unknown projection column {c}"),
            EngineError::Verify(e) => write!(f, "verification failed: {e}"),
            EngineError::PredicateViolation { key } => {
                write!(f, "row {key} does not satisfy the residual predicate")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<BindError> for EngineError {
    fn from(e: BindError) -> Self {
        EngineError::Bind(e)
    }
}

impl From<VerifyError> for EngineError {
    fn from(e: VerifyError) -> Self {
        EngineError::Verify(e)
    }
}

/// A fully planned query: target tree name, the physical range query,
/// and the residual predicate (if any).
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// VB-tree the query runs against (base table or view).
    pub target: String,
    /// The physical range selection + projection.
    pub range_query: RangeQuery,
    /// Residual predicate applied at the edge; filtered tuples are
    /// covered by `D_S` digests.
    pub residual: Option<BoundPredicate>,
}

impl PlannedQuery {
    /// A stable fingerprint of the residual predicate, for response-
    /// cache keying: `0` when there is no residual, otherwise an FNV-1a
    /// hash of a canonical encoding of the bound predicate tree. Stable
    /// across processes (no per-process hasher state) and across
    /// re-plans of the same SQL, so two plans collide exactly when their
    /// residual filtering is identical. The key range and projection are
    /// *not* folded in — the cache keys those separately.
    pub fn residual_fingerprint(&self) -> u64 {
        match &self.residual {
            None => 0,
            Some(pred) => {
                let mut h = Fnv1a::new();
                hash_pred(pred, &mut h);
                // Reserve 0 for "no residual".
                h.finish().max(1)
            }
        }
    }
}

/// Minimal FNV-1a: deterministic, dependency-free, byte-oriented.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_lit(lit: &crate::expr::Literal, h: &mut Fnv1a) {
    use crate::expr::Literal;
    match lit {
        Literal::Int(v) => {
            h.write(&[0x10]);
            h.write(&v.to_le_bytes());
        }
        Literal::Float(v) => {
            h.write(&[0x11]);
            h.write(&v.to_bits().to_le_bytes());
        }
        Literal::Str(s) => {
            h.write(&[0x12]);
            h.write(&(s.len() as u64).to_le_bytes());
            h.write(s.as_bytes());
        }
    }
}

fn hash_pred(pred: &BoundPredicate, h: &mut Fnv1a) {
    match pred {
        BoundPredicate::KeyCmp(op, v) => {
            h.write(&[0x01, *op as u8]);
            h.write(&v.to_le_bytes());
        }
        BoundPredicate::ColCmp(idx, op, lit) => {
            h.write(&[0x02, *op as u8]);
            h.write(&(*idx as u64).to_le_bytes());
            hash_lit(lit, h);
        }
        BoundPredicate::And(a, b) => {
            h.write(&[0x03]);
            hash_pred(a, h);
            hash_pred(b, h);
        }
        BoundPredicate::Or(a, b) => {
            h.write(&[0x04]);
            hash_pred(a, h);
            hash_pred(b, h);
        }
        BoundPredicate::Not(e) => {
            h.write(&[0x05]);
            hash_pred(e, h);
        }
    }
}

/// Plan a statement against a set of schemas — shared by the edge
/// server, the trusted client (which re-plans rather than trusting the
/// edge), and any deployment embedding its own store map.
pub fn plan_select(
    stmt: &SelectStmt,
    schemas: &BTreeMap<String, Schema>,
) -> Result<PlannedQuery, EngineError> {
    plan(stmt, schemas)
}

fn plan(
    stmt: &SelectStmt,
    schemas: &BTreeMap<String, Schema>,
) -> Result<PlannedQuery, EngineError> {
    let target = match &stmt.join {
        None => stmt.table.clone(),
        Some(j) => {
            // Normalise the two orientations of the ON clause.
            let (lt, lc) = &j.left;
            let (rt, rc) = &j.right;
            if *lt == stmt.table && *rt == j.table {
                join_view_name(lt, rt, lc, rc)
            } else if *rt == stmt.table && *lt == j.table {
                join_view_name(rt, lt, rc, lc)
            } else {
                return Err(EngineError::UnknownTable(format!(
                    "join condition references {lt}/{rt}, expected {}/{}",
                    stmt.table, j.table
                )));
            }
        }
    };
    let schema = schemas.get(&target).ok_or_else(|| match &stmt.join {
        None => EngineError::UnknownTable(target.clone()),
        Some(_) => EngineError::ViewNotMaterialized {
            view: target.clone(),
        },
    })?;

    let projection = match &stmt.projection {
        Projection::Star => None,
        Projection::Columns(cols) => {
            let mut idx = Vec::with_capacity(cols.len());
            for c in cols {
                idx.push(
                    schema
                        .column_index(c)
                        .ok_or_else(|| EngineError::UnknownProjectionColumn(c.clone()))?,
                );
            }
            Some(idx)
        }
    };

    let (range, residual) = match &stmt.filter {
        None => (KeyRange::default(), None),
        Some(expr) => {
            let bound = expr.bind(schema)?;
            let range = bound.key_range();
            let residual = if bound.is_pure_key_range() {
                None
            } else {
                Some(bound)
            };
            (range, residual)
        }
    };

    // A contradictory key range returns an (authenticated) empty result:
    // degrade to a 1-key probe plus an always-false residual.
    let (range, residual) = if range.is_empty() {
        (
            KeyRange { lo: 0, hi: 0 },
            Some(BoundPredicate::And(
                Box::new(BoundPredicate::KeyCmp(crate::expr::CmpOp::Eq, 0)),
                Box::new(BoundPredicate::Not(Box::new(BoundPredicate::KeyCmp(
                    crate::expr::CmpOp::Eq,
                    0,
                )))),
            )),
        )
    } else {
        (range, residual)
    };

    Ok(PlannedQuery {
        target,
        range_query: RangeQuery {
            lo: range.lo,
            hi: range.hi,
            projection,
        },
        residual,
    })
}

/// The edge server's query engine.
pub struct AuthQueryEngine<const L: usize> {
    trees: BTreeMap<String, VbTree<L>>,
    views: BTreeMap<String, JoinViewDef>,
}

impl<const L: usize> Default for AuthQueryEngine<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const L: usize> AuthQueryEngine<L> {
    /// Empty engine.
    pub fn new() -> Self {
        Self {
            trees: BTreeMap::new(),
            views: BTreeMap::new(),
        }
    }

    /// Register a base table's VB-tree (name taken from its schema).
    pub fn register_table(&mut self, tree: VbTree<L>) {
        self.trees.insert(tree.schema().table.clone(), tree);
    }

    /// Register a materialised join view and its VB-tree.
    pub fn register_view(&mut self, def: JoinViewDef, tree: VbTree<L>) {
        self.trees.insert(def.name.clone(), tree);
        self.views.insert(def.name.clone(), def);
    }

    /// Look up a tree by name.
    pub fn tree(&self, name: &str) -> Option<&VbTree<L>> {
        self.trees.get(name)
    }

    /// Mutable tree lookup (update propagation).
    pub fn tree_mut(&mut self, name: &str) -> Option<&mut VbTree<L>> {
        self.trees.get_mut(name)
    }

    /// Names of registered trees.
    pub fn tree_names(&self) -> impl Iterator<Item = &str> {
        self.trees.keys().map(String::as_str)
    }

    /// Schemas of everything registered (distributed to clients as
    /// public metadata).
    pub fn schemas(&self) -> BTreeMap<String, Schema> {
        self.trees
            .iter()
            .map(|(n, t)| (n.clone(), t.schema().clone()))
            .collect()
    }

    /// Parse, plan and execute a SQL query, returning the plan (for
    /// inspection) and the authenticated response.
    pub fn execute_sql(&self, sql: &str) -> Result<(PlannedQuery, QueryResponse<L>), EngineError> {
        let stmt = parse_select(sql)?;
        let schemas = self.schemas();
        let planned = plan(&stmt, &schemas)?;
        let tree = self
            .trees
            .get(&planned.target)
            .ok_or_else(|| EngineError::UnknownTable(planned.target.clone()))?;
        let residual = planned.residual.clone();
        type PredFn = Box<dyn Fn(&Tuple) -> bool>;
        let pred_fn: Option<PredFn> =
            residual.map(|p| Box::new(move |t: &Tuple| p.eval(t)) as PredFn);
        let resp = execute(tree, &planned.range_query, pred_fn.as_deref());
        Ok((planned, resp))
    }
}

/// Rows that passed verification, with the verification report.
#[derive(Clone, Debug)]
pub struct VerifiedRows {
    /// The verified result rows.
    pub rows: Vec<vbx_core::ResultRow>,
    /// Verification statistics.
    pub report: VerifyReport,
    /// The tree the query resolved to.
    pub target: String,
}

/// The trusted client: schemas + group parameters + the public key.
pub struct ClientSession<const L: usize> {
    schemas: BTreeMap<String, Schema>,
    acc: Accumulator<L>,
}

impl<const L: usize> ClientSession<L> {
    /// Create a session from public metadata.
    pub fn new(schemas: BTreeMap<String, Schema>, acc: Accumulator<L>) -> Self {
        Self { schemas, acc }
    }

    /// Plan the SQL exactly as the engine would (clients never trust the
    /// edge's plan).
    pub fn plan_sql(&self, sql: &str) -> Result<PlannedQuery, EngineError> {
        let stmt = parse_select(sql)?;
        plan(&stmt, &self.schemas)
    }

    /// Verify a response for `sql` and return the authenticated rows.
    pub fn verify_sql(
        &self,
        sql: &str,
        resp: &QueryResponse<L>,
        verifier: &dyn SigVerifier,
    ) -> Result<VerifiedRows, EngineError> {
        let planned = self.plan_sql(sql)?;
        let schema = self
            .schemas
            .get(&planned.target)
            .ok_or_else(|| EngineError::UnknownTable(planned.target.clone()))?;
        let client = ClientVerifier::new(&self.acc, schema);
        let report = client.verify(verifier, &planned.range_query, resp)?;

        // Residual re-check: authentic-but-unqualified rows are a real
        // attack surface (see module docs). Requires the full tuple for
        // evaluation, so it applies when the residual's columns are in
        // the projection; column residuals outside the projection cannot
        // be re-checked client-side and are documented as trusted
        // filtering (the paper's model).
        if let Some(residual) = &planned.residual {
            let returned = planned.range_query.returned_columns(schema.num_columns());
            for row in &resp.rows {
                if let Some(ok) = eval_on_projection(residual, schema, &returned, row) {
                    if !ok {
                        return Err(EngineError::PredicateViolation { key: row.key });
                    }
                }
            }
        }
        Ok(VerifiedRows {
            rows: resp.rows.clone(),
            report,
            target: planned.target,
        })
    }

    /// Verify a compact (`VBX4`) response for `sql` and return the
    /// authenticated rows — the op-stream counterpart of
    /// [`verify_sql`](Self::verify_sql): the client re-plans the SQL,
    /// runs the stack-machine verifier (one — possibly condensed —
    /// signature sweep), then re-checks the residual predicate on the
    /// returned rows exactly as the flat path does.
    pub fn verify_sql_compact(
        &self,
        sql: &str,
        resp: &CompactResponse<L>,
        verifier: &dyn SigVerifier,
    ) -> Result<VerifiedRows, EngineError> {
        let planned = self.plan_sql(sql)?;
        let schema = self
            .schemas
            .get(&planned.target)
            .ok_or_else(|| EngineError::UnknownTable(planned.target.clone()))?;
        let client = ClientVerifier::new(&self.acc, schema);
        let report =
            client.verify_compact(verifier, std::slice::from_ref(&planned.range_query), resp)?;

        let rows: Vec<vbx_core::ResultRow> =
            resp.parts.iter().flat_map(|p| p.rows.clone()).collect();
        if let Some(residual) = &planned.residual {
            let returned = planned.range_query.returned_columns(schema.num_columns());
            for row in &rows {
                if let Some(ok) = eval_on_projection(residual, schema, &returned, row) {
                    if !ok {
                        return Err(EngineError::PredicateViolation { key: row.key });
                    }
                }
            }
        }
        Ok(VerifiedRows {
            rows,
            report,
            target: planned.target,
        })
    }
}

/// Evaluate a residual predicate on a projected row when every column it
/// references was returned. `None` when evaluation is impossible.
fn eval_on_projection(
    pred: &BoundPredicate,
    schema: &Schema,
    returned: &[usize],
    row: &vbx_core::ResultRow,
) -> Option<bool> {
    // Rebuild a full-width tuple with placeholders; bail if the
    // predicate touches a missing column.
    fn touches(pred: &BoundPredicate, missing: &dyn Fn(usize) -> bool) -> bool {
        match pred {
            BoundPredicate::KeyCmp(..) => false,
            BoundPredicate::ColCmp(idx, ..) => missing(*idx),
            BoundPredicate::And(a, b) | BoundPredicate::Or(a, b) => {
                touches(a, missing) || touches(b, missing)
            }
            BoundPredicate::Not(e) => touches(e, missing),
        }
    }
    let missing = |idx: usize| !returned.contains(&idx);
    if touches(pred, &missing) {
        return None;
    }
    let mut values = vec![vbx_storage::Value::Int(0); schema.num_columns()];
    for (slot, &col) in returned.iter().enumerate() {
        values[col] = row.values[slot].clone();
    }
    let tuple = Tuple {
        key: row.key,
        values,
    };
    Some(pred.eval(&tuple))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_core::VbTreeConfig;
    use vbx_crypto::signer::{MockSigner, Signer};
    use vbx_crypto::Acc256;
    use vbx_storage::workload::WorkloadSpec;
    use vbx_storage::Value;

    fn engine() -> (AuthQueryEngine<4>, ClientSession<4>, MockSigner) {
        let table = WorkloadSpec {
            table: "items".into(),
            ..WorkloadSpec::new(50, 4, 8)
        }
        .build();
        let signer = MockSigner::new(3);
        let acc = Acc256::test_default();
        let tree = VbTree::bulk_load(&table, VbTreeConfig::with_fanout(5), acc.clone(), &signer);
        let mut engine = AuthQueryEngine::new();
        engine.register_table(tree);
        let client = ClientSession::new(engine.schemas(), acc);
        (engine, client, signer)
    }

    #[test]
    fn sql_roundtrip_select_all() {
        let (engine, client, signer) = engine();
        let sql = "SELECT * FROM items WHERE id BETWEEN 10 AND 20";
        let (planned, resp) = engine.execute_sql(sql).unwrap();
        assert_eq!(planned.range_query.lo, 10);
        assert_eq!(planned.range_query.hi, 20);
        assert!(planned.residual.is_none());
        let verified = client
            .verify_sql(sql, &resp, signer.verifier().as_ref())
            .unwrap();
        assert_eq!(verified.rows.len(), 11);
    }

    #[test]
    fn sql_projection_and_residual() {
        let (engine, client, signer) = engine();
        let sql = "SELECT a0, a3 FROM items WHERE id < 40 AND a3 >= 50";
        let (planned, resp) = engine.execute_sql(sql).unwrap();
        assert!(planned.residual.is_some());
        let verified = client
            .verify_sql(sql, &resp, signer.verifier().as_ref())
            .unwrap();
        for row in &verified.rows {
            assert!(matches!(row.values[1], Value::Int(v) if v >= 50));
        }
        assert!(!verified.rows.is_empty());
    }

    #[test]
    fn sql_compact_roundtrip_with_residual_recheck() {
        let (engine, client, signer) = engine();
        let sql = "SELECT a0, a3 FROM items WHERE id < 40 AND a3 >= 50";
        let planned = client.plan_sql(sql).unwrap();
        let tree = engine.tree(&planned.target).unwrap();
        let residual = planned.residual.clone().unwrap();
        let pred = move |t: &Tuple| residual.eval(t);
        let verifier = signer.verifier();
        let resp = vbx_core::execute_compact(
            tree,
            &planned.range_query,
            Some(&pred),
            Some(verifier.as_ref()),
        );
        let flat = engine.execute_sql(sql).unwrap().1;

        let verified = client
            .verify_sql_compact(sql, &resp, verifier.as_ref())
            .unwrap();
        assert_eq!(verified.rows, flat.rows, "both encodings, same rows");
        assert_eq!(verified.report.signatures_checked, 1, "one condensed sweep");
        for row in &verified.rows {
            assert!(matches!(row.values[1], Value::Int(v) if v >= 50));
        }

        // An authentic-but-unqualified row must still trip the residual
        // re-check even though its digests balance.
        let weak = "SELECT a0, a3 FROM items WHERE id < 40";
        let weak_planned = client.plan_sql(weak).unwrap();
        let all = vbx_core::execute_compact(
            tree,
            &weak_planned.range_query,
            None,
            Some(verifier.as_ref()),
        );
        assert!(matches!(
            client.verify_sql_compact(sql, &all, verifier.as_ref()),
            Err(EngineError::PredicateViolation { .. }) | Err(EngineError::Verify(_))
        ));
    }

    #[test]
    fn unqualified_row_injection_detected() {
        let (engine, client, signer) = engine();
        let sql = "SELECT a0, a3 FROM items WHERE a3 >= 50";
        let (_, honest) = engine.execute_sql(sql).unwrap();
        // A malicious edge returns a row failing the predicate (it owns
        // the real digests, so the VO still balances).
        let sql_all = "SELECT a0, a3 FROM items WHERE a3 < 50";
        let (_, other) = engine.execute_sql(sql_all).unwrap();
        assert!(!other.rows.is_empty());
        let mut forged = honest.clone();
        let steal = other.rows[0].clone();
        // Move the stolen row in, and its D_P digests along with it.
        let pos = forged.rows.partition_point(|r| r.key < steal.key);
        forged.rows.insert(pos, steal);
        forged.vo.d_p.extend_from_slice(&other.vo.d_p[..2]);
        // Its tuple digest must leave D_S for the product to balance.
        // (Finding it requires matching exponents; emulate the edge by
        // re-executing with a weaker predicate.)
        let sql_union = "SELECT a0, a3 FROM items WHERE a3 >= 0";
        let (_, _union_resp) = engine.execute_sql(sql_union).unwrap();
        // Even if the digest product were balanced, the residual
        // re-check must reject the unqualified row.
        let err = client
            .verify_sql(sql, &forged, signer.verifier().as_ref())
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::PredicateViolation { .. } | EngineError::Verify(_)
        ));
    }

    #[test]
    fn residual_fingerprints_stable_and_discriminating() {
        let (_, client, _) = engine();
        let plan = |sql: &str| client.plan_sql(sql).unwrap();
        // No residual → 0.
        assert_eq!(
            plan("SELECT * FROM items WHERE id < 10").residual_fingerprint(),
            0
        );
        // Same SQL, re-planned → same fingerprint.
        let a = plan("SELECT * FROM items WHERE id < 40 AND a3 >= 50");
        let b = plan("SELECT * FROM items WHERE id < 40 AND a3 >= 50");
        assert_ne!(a.residual_fingerprint(), 0);
        assert_eq!(a.residual_fingerprint(), b.residual_fingerprint());
        // Different literal / operator / column → different fingerprints.
        for other in [
            "SELECT * FROM items WHERE id < 40 AND a3 >= 51",
            "SELECT * FROM items WHERE id < 40 AND a3 <= 50",
            "SELECT * FROM items WHERE id < 40 AND a3 >= 50 AND a0 = 'x'",
        ] {
            assert_ne!(
                a.residual_fingerprint(),
                plan(other).residual_fingerprint(),
                "{other} must not collide"
            );
        }
    }

    #[test]
    fn contradictory_range_returns_verified_empty() {
        let (engine, client, signer) = engine();
        let sql = "SELECT * FROM items WHERE id > 10 AND id < 5";
        let (_, resp) = engine.execute_sql(sql).unwrap();
        assert!(resp.rows.is_empty());
        client
            .verify_sql(sql, &resp, signer.verifier().as_ref())
            .unwrap();
    }

    #[test]
    fn unknown_table_and_column() {
        let (engine, _, _) = engine();
        assert!(matches!(
            engine.execute_sql("SELECT * FROM missing"),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(
            engine.execute_sql("SELECT nope FROM items"),
            Err(EngineError::UnknownProjectionColumn(_))
        ));
        assert!(matches!(
            engine.execute_sql("SELECT * FROM items WHERE ghost = 1"),
            Err(EngineError::Bind(_))
        ));
    }

    #[test]
    fn join_without_view_fails_cleanly() {
        let (engine, _, _) = engine();
        let err = engine
            .execute_sql("SELECT * FROM items JOIN other ON items.a0 = other.b0")
            .unwrap_err();
        assert!(matches!(err, EngineError::ViewNotMaterialized { .. }));
    }

    #[test]
    fn join_through_materialized_view() {
        use crate::view::{build_view_table, JoinViewDef};
        let left = WorkloadSpec {
            table: "orders".into(),
            rows: 20,
            columns: 2,
            ..WorkloadSpec::default()
        }
        .build();
        let right = WorkloadSpec {
            table: "parts".into(),
            rows: 20,
            columns: 2,
            seed: 99,
            ..WorkloadSpec::default()
        }
        .build();
        let signer = MockSigner::new(4);
        let acc = Acc256::test_default();

        // Join orders.a1 (Int in 0..100) with parts.a1.
        let def = JoinViewDef::new("orders", "parts", "a1", "a1");
        let view = build_view_table(&def, &left, &right).unwrap();
        let mut engine: AuthQueryEngine<4> = AuthQueryEngine::new();
        engine.register_table(VbTree::bulk_load(
            &left,
            VbTreeConfig::with_fanout(5),
            acc.clone(),
            &signer,
        ));
        engine.register_table(VbTree::bulk_load(
            &right,
            VbTreeConfig::with_fanout(5),
            acc.clone(),
            &signer,
        ));
        engine.register_view(
            def,
            VbTree::bulk_load(&view, VbTreeConfig::with_fanout(5), acc.clone(), &signer),
        );
        let client = ClientSession::new(engine.schemas(), acc);

        let sql = "SELECT * FROM orders JOIN parts ON orders.a1 = parts.a1";
        let (planned, resp) = engine.execute_sql(sql).unwrap();
        assert_eq!(planned.target, "orders__a1__join__parts__a1");
        assert_eq!(resp.rows.len(), view.len());
        let verified = client
            .verify_sql(sql, &resp, signer.verifier().as_ref())
            .unwrap();
        assert_eq!(verified.rows.len(), view.len());

        // Reversed orientation resolves to the same view.
        let sql_rev = "SELECT * FROM orders JOIN parts ON parts.a1 = orders.a1";
        let (planned_rev, _) = engine.execute_sql(sql_rev).unwrap();
        assert_eq!(planned_rev.target, planned.target);
    }
}
