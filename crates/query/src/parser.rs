//! A hand-written tokenizer and recursive-descent parser for the SQL
//! subset:
//!
//! ```sql
//! SELECT * | col [, col]* FROM table
//!   [JOIN table2 ON table.col = table2.col]
//!   [WHERE predicate]
//! ```
//!
//! Predicates support `=, <>, !=, <, <=, >, >=`, `BETWEEN … AND …`,
//! `AND`, `OR`, `NOT`, parentheses, integer/float/single-quoted string
//! literals.

use crate::ast::{JoinClause, Projection, SelectStmt};
use crate::expr::{CmpOp, Expr, Literal};

/// Parse failure with position information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn tokenize(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let start = self.pos;
            let c = bytes[self.pos] as char;
            if c.is_whitespace() {
                self.pos += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let mut end = self.pos;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                out.push((Tok::Ident(self.src[self.pos..end].to_string()), start));
                self.pos = end;
                continue;
            }
            if c.is_ascii_digit() {
                let mut end = self.pos;
                let mut is_float = false;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_digit() || bytes[end] == b'.')
                {
                    if bytes[end] == b'.' {
                        if is_float {
                            break;
                        }
                        is_float = true;
                    }
                    end += 1;
                }
                let text = &self.src[self.pos..end];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| self.error("bad float literal"))?)
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| self.error("bad integer literal"))?,
                    )
                };
                out.push((tok, start));
                self.pos = end;
                continue;
            }
            if c == '\'' {
                let mut end = self.pos + 1;
                while end < bytes.len() && bytes[end] != b'\'' {
                    end += 1;
                }
                if end >= bytes.len() {
                    return Err(self.error("unterminated string literal"));
                }
                out.push((Tok::Str(self.src[self.pos + 1..end].to_string()), start));
                self.pos = end + 1;
                continue;
            }
            let two = self.src.get(self.pos..self.pos + 2);
            let sym: &'static str = match (c, two) {
                (_, Some("<=")) => "<=",
                (_, Some(">=")) => ">=",
                (_, Some("<>")) => "<>",
                (_, Some("!=")) => "!=",
                ('<', _) => "<",
                ('>', _) => ">",
                ('=', _) => "=",
                ('*', _) => "*",
                (',', _) => ",",
                ('(', _) => "(",
                (')', _) => ")",
                ('.', _) => ".",
                _ => return Err(self.error(format!("unexpected character {c:?}"))),
            };
            out.push((Tok::Symbol(sym), start));
            self.pos += sym.len();
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(t, _)| t)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.idx)
            .or_else(|| self.toks.last())
            .map(|(_, p)| *p)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(t, _)| t.clone());
        self.idx += 1;
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.idx += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}")))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if let Some(Tok::Symbol(s)) = self.peek() {
            if *s == sym {
                self.idx += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(w)) => Ok(w),
            _ => {
                self.idx -= 1;
                Err(self.error("expected identifier"))
            }
        }
    }

    fn qualified_column(&mut self) -> Result<(String, String), ParseError> {
        let first = self.expect_ident()?;
        if self.eat_symbol(".") {
            let second = self.expect_ident()?;
            Ok((first, second))
        } else {
            Err(self.error("expected table.column"))
        }
    }

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_keyword("select")?;
        let projection = if self.eat_symbol("*") {
            Projection::Star
        } else {
            let mut cols = vec![self.expect_ident()?];
            while self.eat_symbol(",") {
                cols.push(self.expect_ident()?);
            }
            Projection::Columns(cols)
        };
        self.expect_keyword("from")?;
        let table = self.expect_ident()?;

        let join = if self.eat_keyword("join") {
            let right_table = self.expect_ident()?;
            self.expect_keyword("on")?;
            let left = self.qualified_column()?;
            if !self.eat_symbol("=") {
                return Err(self.error("expected = in join condition"));
            }
            let right = self.qualified_column()?;
            Some(JoinClause {
                table: right_table,
                left,
                right,
            })
        } else {
            None
        };

        let filter = if self.eat_keyword("where") {
            Some(self.or_expr()?)
        } else {
            None
        };
        if self.peek().is_some() {
            return Err(self.error("unexpected trailing tokens"));
        }
        Ok(SelectStmt {
            projection,
            table,
            join,
            filter,
        })
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        while self.eat_keyword("and") {
            let right = self.unary_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("not") {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.eat_symbol("(") {
            let e = self.or_expr()?;
            if !self.eat_symbol(")") {
                return Err(self.error("expected )"));
            }
            return Ok(e);
        }
        self.comparison()
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Literal::Int(v)),
            Some(Tok::Float(v)) => Ok(Literal::Float(v)),
            Some(Tok::Str(s)) => Ok(Literal::Str(s)),
            _ => {
                self.idx -= 1;
                Err(self.error("expected literal"))
            }
        }
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let column = self.expect_ident()?;
        if self.eat_keyword("between") {
            let lo = self.literal()?;
            self.expect_keyword("and")?;
            let hi = self.literal()?;
            return Ok(Expr::Between { column, lo, hi });
        }
        let op = match self.next() {
            Some(Tok::Symbol("=")) => CmpOp::Eq,
            Some(Tok::Symbol("<>")) | Some(Tok::Symbol("!=")) => CmpOp::Ne,
            Some(Tok::Symbol("<")) => CmpOp::Lt,
            Some(Tok::Symbol("<=")) => CmpOp::Le,
            Some(Tok::Symbol(">")) => CmpOp::Gt,
            Some(Tok::Symbol(">=")) => CmpOp::Ge,
            _ => {
                self.idx -= 1;
                return Err(self.error("expected comparison operator"));
            }
        };
        let value = self.literal()?;
        Ok(Expr::Cmp { column, op, value })
    }
}

/// Parse a `SELECT` statement.
///
/// ```
/// use vbx_query::{parse_select, Projection};
/// let stmt = parse_select("SELECT a, b FROM items WHERE id BETWEEN 3 AND 9").unwrap();
/// assert_eq!(stmt.table, "items");
/// assert_eq!(stmt.projection, Projection::Columns(vec!["a".into(), "b".into()]));
/// ```
pub fn parse_select(sql: &str) -> Result<SelectStmt, ParseError> {
    let toks = Lexer::new(sql).tokenize()?;
    Parser { toks, idx: 0 }.select()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_star() {
        let s = parse_select("SELECT * FROM items").unwrap();
        assert_eq!(s.projection, Projection::Star);
        assert_eq!(s.table, "items");
        assert!(s.join.is_none());
        assert!(s.filter.is_none());
    }

    #[test]
    fn select_columns_where_range() {
        let s = parse_select("select a0, a2 from items where id between 10 and 20 and a3 >= 5")
            .unwrap();
        assert_eq!(
            s.projection,
            Projection::Columns(vec!["a0".into(), "a2".into()])
        );
        let f = s.filter.unwrap();
        match f {
            Expr::And(l, r) => {
                assert!(matches!(*l, Expr::Between { .. }));
                assert!(matches!(*r, Expr::Cmp { op: CmpOp::Ge, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn string_and_float_literals() {
        let s = parse_select("SELECT * FROM t WHERE name = 'bob' OR score < 1.5").unwrap();
        match s.filter.unwrap() {
            Expr::Or(l, r) => {
                assert!(matches!(
                    *l,
                    Expr::Cmp {
                        value: Literal::Str(ref v),
                        ..
                    } if v == "bob"
                ));
                assert!(matches!(
                    *r,
                    Expr::Cmp {
                        value: Literal::Float(v),
                        ..
                    } if (v - 1.5).abs() < f64::EPSILON
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parentheses_and_not() {
        let s = parse_select("SELECT * FROM t WHERE NOT (a = 1 AND b = 2)").unwrap();
        assert!(matches!(s.filter.unwrap(), Expr::Not(_)));
    }

    #[test]
    fn join_clause() {
        let s = parse_select(
            "SELECT * FROM orders JOIN customers ON orders.cust_id = customers.ref_id \
             WHERE id < 100",
        )
        .unwrap();
        let j = s.join.unwrap();
        assert_eq!(j.table, "customers");
        assert_eq!(j.left, ("orders".into(), "cust_id".into()));
        assert_eq!(j.right, ("customers".into(), "ref_id".into()));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let s = parse_select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match s.filter.unwrap() {
            Expr::Or(_, r) => assert!(matches!(*r, Expr::And(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_have_positions() {
        let cases = [
            "SELECT",
            "SELECT * items",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a ==",
            "SELECT * FROM t WHERE a = 'unterminated",
            "SELECT * FROM t trailing",
            "SELECT * FROM t WHERE a # 1",
            "",
        ];
        for sql in cases {
            let err = parse_select(sql).unwrap_err();
            assert!(!err.message.is_empty(), "{sql}");
        }
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse_select("select * from t where id > 1").is_ok());
        assert!(parse_select("SELECT * FROM t WHERE id > 1").is_ok());
        assert!(parse_select("SeLeCt * FrOm t").is_ok());
    }

    #[test]
    fn keywords_not_taken_as_columns() {
        // `between` as the column of a comparison still parses as BETWEEN
        // syntax; identifier columns named like keywords are out of
        // scope for this subset.
        let err = parse_select("SELECT * FROM t WHERE between 1 and 2");
        assert!(err.is_err());
    }
}
