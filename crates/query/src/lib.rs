//! # vbx-query — authenticated query processing
//!
//! The relational surface over the VB-tree:
//!
//! * [`ast`] / [`parser`] — a small SQL subset
//!   (`SELECT cols FROM t [JOIN u ON t.a = u.b] [WHERE …]`) parsed by a
//!   hand-written recursive-descent parser;
//! * [`expr`] — predicate expressions, evaluation, and extraction of
//!   primary-key ranges (so selections on the key become enveloping-
//!   subtree range scans, Section 3.3);
//! * [`secondary`] — **secondary VB-trees** (one per sort order, per
//!   Section 3.1), turning non-key selections back into contiguous
//!   ranges;
//! * [`view`] — **materialised join views**: Section 3.3's answer to
//!   joins ("materialize each join operation, and construct a VB-tree on
//!   the materialized view");
//! * [`engine`] — the edge-server query engine tying it together, plus
//!   the client-side counterpart that re-plans the query and verifies
//!   the response.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod expr;
pub mod parser;
pub mod secondary;
pub mod view;

pub use ast::{JoinClause, Projection, SelectStmt};
pub use engine::{
    plan_select, AuthQueryEngine, ClientSession, EngineError, PlannedQuery, VerifiedRows,
};
pub use expr::{BoundPredicate, CmpOp, Expr, KeyRange, Literal};
pub use parser::{parse_select, ParseError};
pub use secondary::{build_index_table, secondary_index_name, SecondaryIndexDef};
pub use view::{build_view_table, join_view_name, JoinViewDef};
