//! Secondary VB-trees — "one or more veriﬁable B-trees per base table".
//!
//! Section 3.1: the central server "maintains on each base table *one or
//! more* verifiable B-trees", i.e. one per sort order, because a
//! selection on a non-key attribute over the primary tree produces
//! non-contiguous results whose gaps inflate `D_S` (Section 3.3's
//! non-key-selection case). A secondary VB-tree sorted on that attribute
//! makes the same selection contiguous again.
//!
//! The secondary tree is an ordinary [`vbx_core::VbTree`] over a
//! *derived table*: keys are the composite
//! `(attribute value << 32) | primary_key` (value order with primary-key
//! tiebreak, so duplicate values are allowed), and each row carries the
//! original columns plus an explicit `pk` column. Digest namespacing
//! comes for free because the derived schema has its own table name.

use vbx_core::RangeQuery;
use vbx_storage::{ColumnDef, ColumnType, Schema, StorageError, Table, Tuple, Value};

/// Definition of a secondary index over an `Int` column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecondaryIndexDef {
    /// Derived table / tree name.
    pub name: String,
    /// Base table name.
    pub base_table: String,
    /// Indexed column name (must be `Int` with values in `[0, 2^31)`).
    pub column: String,
}

/// Canonical name of the secondary index tree.
pub fn secondary_index_name(base: &str, column: &str) -> String {
    format!("{base}__idx__{column}")
}

impl SecondaryIndexDef {
    /// Create a definition with the canonical name.
    pub fn new(base_table: impl Into<String>, column: impl Into<String>) -> Self {
        let base_table = base_table.into();
        let column = column.into();
        Self {
            name: secondary_index_name(&base_table, &column),
            base_table,
            column,
        }
    }
}

/// Composite key: attribute value in the high 32 bits, primary key in
/// the low 32 bits.
pub fn composite_key(value: i64, pk: u64) -> Result<u64, StorageError> {
    if !(0..1 << 31).contains(&value) {
        return Err(StorageError::SchemaMismatch(format!(
            "indexed value {value} outside [0, 2^31)"
        )));
    }
    if pk >= 1 << 32 {
        return Err(StorageError::SchemaMismatch(format!(
            "primary key {pk} too large for composite keys"
        )));
    }
    Ok(((value as u64) << 32) | pk)
}

/// The key range covering all composite keys with attribute values in
/// `[lo, hi]` (inclusive), as a [`RangeQuery`] selecting all columns.
pub fn value_range_query(lo: i64, hi: i64) -> RangeQuery {
    let lo_k = (lo.max(0) as u64) << 32;
    let hi_k = if hi < 0 {
        0
    } else {
        ((hi as u64) << 32) | 0xFFFF_FFFF
    };
    RangeQuery::select_all(lo_k, hi_k)
}

/// Build the derived index table for `column` over `base`.
///
/// The derived schema is the base schema plus a trailing `pk` column,
/// under the canonical index table name.
pub fn build_index_table(def: &SecondaryIndexDef, base: &Table) -> Result<Table, StorageError> {
    let base_schema = base.schema();
    let col_idx = base_schema.column_index(&def.column).ok_or_else(|| {
        StorageError::SchemaMismatch(format!("no column {} to index", def.column))
    })?;
    if base_schema.columns[col_idx].ty != ColumnType::Int {
        return Err(StorageError::SchemaMismatch(format!(
            "secondary indexes require an Int column, {} is {:?}",
            def.column, base_schema.columns[col_idx].ty
        )));
    }
    let mut columns = base_schema.columns.clone();
    columns.push(ColumnDef::new("pk", ColumnType::Int));
    let schema = Schema::new(
        base_schema.database.clone(),
        def.name.clone(),
        "ck",
        columns,
    );
    let mut out = Table::new(schema);
    for row in base.iter() {
        let Value::Int(v) = row.values[col_idx] else {
            unreachable!("type checked above");
        };
        let ck = composite_key(v, row.key)?;
        let mut values = row.values.clone();
        values.push(Value::Int(row.key as i64));
        out.insert(Tuple::new(out.schema(), ck, values)?)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_storage::workload::WorkloadSpec;

    fn base() -> Table {
        WorkloadSpec::new(100, 4, 8).build() // column a3 is Int in 0..100
    }

    #[test]
    fn composite_key_orders_by_value_then_pk() {
        let a = composite_key(5, 100).unwrap();
        let b = composite_key(5, 101).unwrap();
        let c = composite_key(6, 0).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn composite_key_bounds() {
        assert!(composite_key(-1, 0).is_err());
        assert!(composite_key(1 << 31, 0).is_err());
        assert!(composite_key(0, 1 << 32).is_err());
        assert!(composite_key((1 << 31) - 1, (1 << 32) - 1).is_ok());
    }

    #[test]
    fn index_table_sorted_by_value() {
        let base = base();
        let def = SecondaryIndexDef::new("items", "a3");
        let idx = build_index_table(&def, &base).unwrap();
        assert_eq!(idx.len(), base.len());
        let mut prev = None;
        for row in idx.iter() {
            let Value::Int(v) = row.values[3] else {
                panic!()
            };
            if let Some(p) = prev {
                assert!(v >= p, "index must be value-ordered");
            }
            prev = Some(v);
            // pk column recovers the base row.
            let Value::Int(pk) = row.values[4] else {
                panic!()
            };
            let orig = base.get(pk as u64).unwrap();
            assert_eq!(&orig.values[..], &row.values[..4]);
        }
    }

    #[test]
    fn value_range_query_covers_exactly() {
        let base = base();
        let def = SecondaryIndexDef::new("items", "a3");
        let idx = build_index_table(&def, &base).unwrap();
        let q = value_range_query(20, 40);
        let expected = base
            .iter()
            .filter(|r| matches!(r.values[3], Value::Int(v) if (20..=40).contains(&v)))
            .count();
        let got = idx.range(q.lo, q.hi).count();
        assert_eq!(got, expected);
    }

    #[test]
    fn non_int_column_rejected() {
        let def = SecondaryIndexDef::new("items", "a0"); // Text column
        assert!(build_index_table(&def, &base()).is_err());
    }

    #[test]
    fn missing_column_rejected() {
        let def = SecondaryIndexDef::new("items", "nope");
        assert!(build_index_table(&def, &base()).is_err());
    }
}
