//! Materialised join views (Section 3.3, "Join").
//!
//! "In edge computing most of the database queries are not likely to be
//! ad-hoc, but are embedded in application programs and hence known in
//! advance. It is thus possible to materialize each join operation, and
//! construct a VB-tree on the materialized view."
//!
//! A [`JoinViewDef`] names the equijoin; [`build_view_table`] computes
//! the view as an ordinary [`Table`] whose schema carries both sides'
//! columns (prefixed with their table names), over which the central
//! server builds a VB-tree like any base table.

use std::collections::BTreeMap;
use vbx_storage::{ColumnDef, ColumnType, Schema, StorageError, Table, Tuple, Value};

/// Definition of a single-equijoin materialised view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinViewDef {
    /// View (and VB-tree) name.
    pub name: String,
    /// Left base table.
    pub left_table: String,
    /// Right base table.
    pub right_table: String,
    /// Join column on the left table (payload column name, or the key).
    pub left_col: String,
    /// Join column on the right table.
    pub right_col: String,
}

/// Canonical view name for an equijoin — both the central server and
/// clients derive it identically so queries route without coordination.
pub fn join_view_name(left: &str, right: &str, left_col: &str, right_col: &str) -> String {
    format!("{left}__{left_col}__join__{right}__{right_col}")
}

impl JoinViewDef {
    /// Create a definition with the canonical name.
    pub fn new(
        left_table: impl Into<String>,
        right_table: impl Into<String>,
        left_col: impl Into<String>,
        right_col: impl Into<String>,
    ) -> Self {
        let left_table = left_table.into();
        let right_table = right_table.into();
        let left_col = left_col.into();
        let right_col = right_col.into();
        Self {
            name: join_view_name(&left_table, &right_table, &left_col, &right_col),
            left_table,
            right_table,
            left_col,
            right_col,
        }
    }

    /// The view's schema: both sides' keys and payload columns, prefixed
    /// with their table names (`left_id`, `left_a0`, …, `right_id`, …).
    pub fn view_schema(&self, left: &Schema, right: &Schema) -> Schema {
        let mut columns = Vec::new();
        columns.push(ColumnDef::new(
            format!("{}_{}", self.left_table, left.key_name),
            ColumnType::Int,
        ));
        for c in &left.columns {
            columns.push(ColumnDef::new(
                format!("{}_{}", self.left_table, c.name),
                c.ty,
            ));
        }
        columns.push(ColumnDef::new(
            format!("{}_{}", self.right_table, right.key_name),
            ColumnType::Int,
        ));
        for c in &right.columns {
            columns.push(ColumnDef::new(
                format!("{}_{}", self.right_table, c.name),
                c.ty,
            ));
        }
        Schema::new(left.database.clone(), self.name.clone(), "rowid", columns)
    }

    /// Resolve a view column name for one side's column.
    pub fn qualified(&self, table: &str, column: &str) -> String {
        format!("{table}_{column}")
    }
}

/// Join value of a tuple on `col` (the key column is permitted).
fn join_key_bytes(schema: &Schema, tuple: &Tuple, col: &str) -> Result<Vec<u8>, StorageError> {
    if col == schema.key_name {
        return Ok(Value::Int(tuple.key as i64).encode());
    }
    let idx = schema
        .column_index(col)
        .ok_or_else(|| StorageError::SchemaMismatch(format!("no join column {col}")))?;
    Ok(tuple.values[idx].encode())
}

/// Materialise the equijoin as a table. Row keys are sequential rowids
/// assigned in `(left.key, right.key)` order, so rebuilds are
/// deterministic and digests reproducible.
pub fn build_view_table(
    def: &JoinViewDef,
    left: &Table,
    right: &Table,
) -> Result<Table, StorageError> {
    let schema = def.view_schema(left.schema(), right.schema());
    let mut out = Table::new(schema);

    // Hash join: index the right side by join value.
    let mut right_index: BTreeMap<Vec<u8>, Vec<&Tuple>> = BTreeMap::new();
    for r in right.iter() {
        let k = join_key_bytes(right.schema(), r, &def.right_col)?;
        right_index.entry(k).or_default().push(r);
    }

    let mut rowid = 0u64;
    for l in left.iter() {
        let k = join_key_bytes(left.schema(), l, &def.left_col)?;
        if let Some(matches) = right_index.get(&k) {
            for r in matches {
                let mut values = Vec::with_capacity(2 + l.values.len() + r.values.len());
                values.push(Value::Int(l.key as i64));
                values.extend(l.values.iter().cloned());
                values.push(Value::Int(r.key as i64));
                values.extend(r.values.iter().cloned());
                let tuple = Tuple::new(out.schema(), rowid, values)?;
                out.insert(tuple)?;
                rowid += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> Table {
        let schema = Schema::new(
            "shop",
            "orders",
            "id",
            vec![
                ColumnDef::new("cust", ColumnType::Int),
                ColumnDef::new("amount", ColumnType::Int),
            ],
        );
        let mut t = Table::new(schema);
        for (id, cust, amount) in [
            (1u64, 10i64, 100i64),
            (2, 20, 200),
            (3, 10, 300),
            (4, 30, 50),
        ] {
            let tuple =
                Tuple::new(t.schema(), id, vec![Value::Int(cust), Value::Int(amount)]).unwrap();
            t.insert(tuple).unwrap();
        }
        t
    }

    fn customers() -> Table {
        let schema = Schema::new(
            "shop",
            "customers",
            "id",
            vec![ColumnDef::new("name", ColumnType::Text)],
        );
        let mut t = Table::new(schema);
        for (id, name) in [(10u64, "alice"), (20, "bob"), (40, "carol")] {
            let tuple = Tuple::new(t.schema(), id, vec![Value::from(name)]).unwrap();
            t.insert(tuple).unwrap();
        }
        t
    }

    #[test]
    fn equijoin_on_key() {
        // orders.cust = customers.id
        let def = JoinViewDef::new("orders", "customers", "cust", "id");
        let view = build_view_table(&def, &orders(), &customers()).unwrap();
        // orders 1,3 match alice; order 2 matches bob; order 4 unmatched.
        assert_eq!(view.len(), 3);
        let rows: Vec<&Tuple> = view.iter().collect();
        assert_eq!(rows[0].values[0], Value::Int(1)); // orders_id
        assert_eq!(rows[0].values[4], Value::Text("alice".into()));
        assert_eq!(rows[1].values[0], Value::Int(2));
        assert_eq!(rows[1].values[4], Value::Text("bob".into()));
        assert_eq!(rows[2].values[0], Value::Int(3));
    }

    #[test]
    fn view_schema_prefixes() {
        let def = JoinViewDef::new("orders", "customers", "cust", "id");
        let schema = def.view_schema(orders().schema(), customers().schema());
        let names: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "orders_id",
                "orders_cust",
                "orders_amount",
                "customers_id",
                "customers_name"
            ]
        );
        assert_eq!(schema.table, def.name);
    }

    #[test]
    fn canonical_name_stable() {
        assert_eq!(
            join_view_name("a", "b", "x", "y"),
            "a__x__join__b__y".to_string()
        );
    }

    #[test]
    fn rebuild_is_deterministic() {
        let def = JoinViewDef::new("orders", "customers", "cust", "id");
        let v1 = build_view_table(&def, &orders(), &customers()).unwrap();
        let v2 = build_view_table(&def, &orders(), &customers()).unwrap();
        for (a, b) in v1.iter().zip(v2.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn missing_join_column_rejected() {
        let def = JoinViewDef::new("orders", "customers", "nope", "id");
        assert!(build_view_table(&def, &orders(), &customers()).is_err());
    }

    #[test]
    fn empty_join_result() {
        let def = JoinViewDef::new("orders", "customers", "amount", "id");
        let view = build_view_table(&def, &orders(), &customers()).unwrap();
        assert_eq!(view.len(), 0);
    }
}
