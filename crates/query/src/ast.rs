//! Abstract syntax for the SQL subset.

use crate::expr::Expr;

/// Projection list.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// `SELECT a, b, …` (names resolved against the schema at plan time).
    Columns(Vec<String>),
}

/// `JOIN right ON left_table.left_col = right_table.right_col`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinClause {
    /// Right-hand table name.
    pub table: String,
    /// Qualified left join column `(table, column)`.
    pub left: (String, String),
    /// Qualified right join column `(table, column)`.
    pub right: (String, String),
}

/// A parsed `SELECT` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub projection: Projection,
    /// Base table.
    pub table: String,
    /// Optional single equijoin.
    pub join: Option<JoinClause>,
    /// Optional `WHERE` expression.
    pub filter: Option<Expr>,
}

impl core::fmt::Display for Projection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Projection::Star => write!(f, "*"),
            Projection::Columns(cols) => write!(f, "{}", cols.join(", ")),
        }
    }
}

impl core::fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SELECT {} FROM {}", self.projection, self.table)?;
        if let Some(j) = &self.join {
            write!(
                f,
                " JOIN {} ON {}.{} = {}.{}",
                j.table, j.left.0, j.left.1, j.right.0, j.right.1
            )?;
        }
        if let Some(e) = &self.filter {
            write!(f, " WHERE {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let stmt = SelectStmt {
            projection: Projection::Star,
            table: "t".into(),
            join: None,
            filter: None,
        };
        assert_eq!(stmt.projection, Projection::Star);
    }
}
