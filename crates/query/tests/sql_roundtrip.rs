//! SQL printer/parser round-trip: any AST printed and re-parsed yields
//! an equivalent AST, so plans derived on the edge and the client from
//! the same statement can never diverge.

use proptest::prelude::*;
use vbx_query::{parse_select, CmpOp, Expr, JoinClause, Literal, Projection, SelectStmt};

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "select" | "from" | "where" | "join" | "on" | "and" | "or" | "not" | "between"
        )
    })
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i64>()
            .prop_filter("parser reads unsigned", |v| *v >= 0)
            .prop_map(Literal::Int),
        (0u32..100_000, 1u32..1000).prop_map(|(a, b)| Literal::Float(a as f64 + 1.0 / b as f64)),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Literal::Str),
    ]
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (arb_ident(), arb_cmp_op(), arb_literal()).prop_map(|(column, op, value)| Expr::Cmp {
            column,
            op,
            value
        }),
        (arb_ident(), 0i64..1000, 0i64..1000).prop_map(|(column, a, b)| Expr::Between {
            column,
            lo: Literal::Int(a.min(b)),
            hi: Literal::Int(a.max(b)),
        }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = SelectStmt> {
    (
        prop_oneof![
            Just(Projection::Star),
            proptest::collection::vec(arb_ident(), 1..4).prop_map(Projection::Columns),
        ],
        arb_ident(),
        proptest::option::of((
            arb_ident(),
            arb_ident(),
            arb_ident(),
            arb_ident(),
            arb_ident(),
        )),
        proptest::option::of(arb_expr()),
    )
        .prop_map(|(projection, table, join, filter)| {
            let join = join.map(|(jt, lt, lc, rt, rc)| JoinClause {
                table: jt,
                left: (lt, lc),
                right: (rt, rc),
            });
            SelectStmt {
                projection,
                table,
                join,
                filter,
            }
        })
}

/// Floats print with enough precision to round-trip; everything else is
/// structurally exact.
fn exprs_equivalent(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (
            Expr::Cmp {
                column: c1,
                op: o1,
                value: v1,
            },
            Expr::Cmp {
                column: c2,
                op: o2,
                value: v2,
            },
        ) => c1 == c2 && o1 == o2 && lits_equivalent(v1, v2),
        (
            Expr::Between {
                column: c1,
                lo: l1,
                hi: h1,
            },
            Expr::Between {
                column: c2,
                lo: l2,
                hi: h2,
            },
        ) => c1 == c2 && lits_equivalent(l1, l2) && lits_equivalent(h1, h2),
        (Expr::And(a1, b1), Expr::And(a2, b2)) | (Expr::Or(a1, b1), Expr::Or(a2, b2)) => {
            exprs_equivalent(a1, a2) && exprs_equivalent(b1, b2)
        }
        (Expr::Not(e1), Expr::Not(e2)) => exprs_equivalent(e1, e2),
        _ => false,
    }
}

fn lits_equivalent(a: &Literal, b: &Literal) -> bool {
    match (a, b) {
        (Literal::Float(x), Literal::Float(y)) => (x - y).abs() < 1e-9,
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(stmt in arb_stmt()) {
        let sql = stmt.to_string();
        let back = parse_select(&sql)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {sql:?}: {e}"));
        prop_assert_eq!(&back.projection, &stmt.projection, "{}", sql);
        prop_assert_eq!(&back.table, &stmt.table);
        prop_assert_eq!(&back.join, &stmt.join);
        match (&back.filter, &stmt.filter) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!(exprs_equivalent(a, b), "{}", sql),
            _ => return Err(TestCaseError::fail(format!("filter presence mismatch: {sql}"))),
        }
    }
}

#[test]
fn display_examples() {
    let stmt = parse_select("SELECT a, b FROM t WHERE x < 5 AND y = 'z'").unwrap();
    let printed = stmt.to_string();
    assert!(printed.starts_with("SELECT a, b FROM t WHERE"));
    // Round-trips.
    parse_select(&printed).unwrap();
}
