//! Property tests for the cryptographic substrate: accumulator algebra
//! laws (the foundation of the paper's commutative VOs), hash streaming
//! consistency, and signature round-trips.

use proptest::prelude::*;
use vbx_crypto::accum::DigestRole;
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::{rsa, Acc256, Sha256};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Combination is commutative and associative for arbitrary inputs —
    /// Section 3.2's h(d1|d2) = h(d2|d1).
    #[test]
    fn combine_laws(a in any::<Vec<u8>>(), b in any::<Vec<u8>>(), c in any::<Vec<u8>>()) {
        let acc = Acc256::test_default();
        let x = acc.exp_from_bytes(&a);
        let y = acc.exp_from_bytes(&b);
        let z = acc.exp_from_bytes(&c);
        prop_assert_eq!(acc.combine(&x, &y), acc.combine(&y, &x));
        prop_assert_eq!(
            acc.combine(&acc.combine(&x, &y), &z),
            acc.combine(&x, &acc.combine(&y, &z))
        );
    }

    /// Any permutation of a digest set combines to the same value —
    /// the property that lets D_S/D_P be unordered sets.
    #[test]
    fn combine_all_permutation_invariant(
        seeds in proptest::collection::vec(any::<u64>(), 1..12),
        rotate in any::<usize>(),
    ) {
        let acc = Acc256::test_default();
        let exps: Vec<_> = seeds
            .iter()
            .map(|s| acc.exp_from_bytes(&s.to_le_bytes()))
            .collect();
        let mut rotated = exps.clone();
        let r = rotate % rotated.len().max(1);
        rotated.rotate_left(r);
        rotated.reverse();
        prop_assert_eq!(acc.combine_all(exps.iter()), acc.combine_all(rotated.iter()));
    }

    /// uncombine inverts combine for any operands.
    #[test]
    fn uncombine_inverts(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        let acc = Acc256::test_default();
        let x = acc.exp_from_bytes(&a);
        let y = acc.exp_from_bytes(&b);
        prop_assert_eq!(acc.uncombine(&acc.combine(&x, &y), &y), x);
    }

    /// The lifted (value-domain) identity of Lemma 1:
    /// g^(x·y) == (g^x)^y == (g^y)^x.
    #[test]
    fn lift_commutes(a in any::<u64>(), b in any::<u64>()) {
        let acc = Acc256::test_default();
        let x = acc.exp_from_bytes(&a.to_le_bytes());
        let y = acc.exp_from_bytes(&b.to_le_bytes());
        let direct = acc.lift(&acc.combine(&x, &y));
        prop_assert_eq!(acc.lift_pow(&acc.lift(&x), &y), direct);
        prop_assert_eq!(acc.lift_pow(&acc.lift(&y), &x), direct);
    }

    /// Exponents always land in (0, q) and the canonical codec
    /// round-trips.
    #[test]
    fn exponents_well_formed(data in any::<Vec<u8>>()) {
        let acc = Acc256::test_default();
        let e = acc.exp_from_bytes(&data);
        prop_assert!(!e.is_zero());
        prop_assert!(e < acc.group().q);
        let bytes = acc.exp_to_bytes(&e);
        prop_assert_eq!(acc.exp_from_canonical(&bytes), Some(e));
    }

    /// Streaming SHA-256 equals one-shot for any split points.
    #[test]
    fn sha256_streaming(data in proptest::collection::vec(any::<u8>(), 0..2048), cut in any::<usize>()) {
        let split = if data.is_empty() { 0 } else { cut % data.len() };
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), vbx_crypto::sha256(&data));
    }

    /// Mock signatures verify and reject any modified message.
    #[test]
    fn mock_signer_roundtrip(msg in any::<Vec<u8>>(), flip in any::<u8>(), pos in any::<usize>()) {
        let s = MockSigner::new(5);
        let v = s.verifier();
        let sig = s.sign(&msg);
        prop_assert!(v.verify(&msg, &sig));
        if !msg.is_empty() && flip != 0 {
            let mut bad = msg.clone();
            let p = pos % bad.len();
            bad[p] ^= flip;
            prop_assert!(!v.verify(&bad, &sig));
        }
    }

    /// Signed digests bind role and exponent.
    #[test]
    fn signed_digest_binding(a in any::<u64>(), b in any::<u64>()) {
        let acc = Acc256::test_default();
        let signer = MockSigner::new(9);
        let verifier = signer.verifier();
        let x = acc.exp_from_bytes(&a.to_le_bytes());
        let d = acc.sign_digest(&signer, DigestRole::Node, &x);
        prop_assert!(acc.verify_digest(verifier.as_ref(), &d));
        let y = acc.exp_from_bytes(&b.to_le_bytes());
        if y != x {
            let mut forged = d.clone();
            forged.exp = y;
            prop_assert!(!acc.verify_digest(verifier.as_ref(), &forged));
        }
        let mut wrong_role = d;
        wrong_role.role = DigestRole::Tuple;
        prop_assert!(!acc.verify_digest(verifier.as_ref(), &wrong_role));
    }
}

proptest! {
    // RSA is slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rsa_roundtrip(msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let kp = rsa::fixture_keypair_512();
        let v = kp.verifier();
        let sig = kp.sign(&msg);
        prop_assert!(v.verify(&msg, &sig));
        let mut other = msg.clone();
        other.push(0x55);
        prop_assert!(!v.verify(&other, &sig));
    }

    #[test]
    fn rsa_signature_malleability_rejected(
        msg in proptest::collection::vec(any::<u8>(), 1..64),
        pos in any::<usize>(),
        flip in 1u8..,
    ) {
        let kp = rsa::fixture_keypair_512();
        let v = kp.verifier();
        let mut sig = kp.sign(&msg);
        let p = pos % sig.0.len();
        sig.0[p] ^= flip;
        prop_assert!(!v.verify(&msg, &sig));
    }

    /// CRT signatures are bit-identical to full-width signatures under
    /// the same key, for arbitrary messages (the half-width fast path
    /// must be observationally invisible).
    #[test]
    fn crt_signature_matches_full_width(msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let kp = rsa::fixture_keypair_crt_512();
        let full = kp.without_crt();
        let crt_sig = kp.sign(&msg);
        prop_assert_eq!(crt_sig.as_bytes(), full.sign(&msg).as_bytes());
        prop_assert!(kp.verifier().verify(&msg, &crt_sig));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fixed-base lift is bit-identical to naive square-and-multiply
    /// for hashed exponents and for the edge cases outside `Z_q*` (zero,
    /// one, `q`, `q + 1`, max width).
    #[test]
    fn lift_matches_naive(data in any::<Vec<u8>>()) {
        let acc = Acc256::test_default();
        let e = acc.exp_from_bytes(&data);
        prop_assert_eq!(acc.lift(&e), acc.lift_naive(&e));
        let q = acc.group().q;
        for edge in [
            vbx_mathx::U256::ZERO,
            vbx_mathx::U256::ONE,
            q, // exponent == group order
            q.wrapping_add(&vbx_mathx::U256::ONE),
            vbx_mathx::U256::MAX,
        ] {
            prop_assert_eq!(acc.lift(&edge), acc.lift_naive(&edge));
        }
    }

    /// The Montgomery-chained `combine_all` equals a left fold of
    /// `combine` for any chain (including the empty chain).
    #[test]
    fn combine_all_matches_fold(seeds in proptest::collection::vec(any::<u64>(), 0..20)) {
        let acc = Acc256::test_default();
        let exps: Vec<_> = seeds
            .iter()
            .map(|s| acc.exp_from_bytes(&s.to_le_bytes()))
            .collect();
        let mut fold = acc.identity();
        for e in &exps {
            fold = acc.combine(&fold, e);
        }
        prop_assert_eq!(acc.combine_all(exps.iter()), fold);
    }
}
