//! Textbook RSA signatures over `vbx-mathx`.
//!
//! This is the paper's digital signature scheme: the central DBMS signs
//! digests with its private key (`s(·)`), anyone with the public key can
//! recover/verify them (`s^{-1}(·)`). Signing is hash-then-pad-then-
//! exponentiate:
//!
//! ```text
//! EM  = 0x01 ‖ 0xFF…FF ‖ 0x00 ‖ SHA-256(msg)     (modulus_len - 1 bytes)
//! sig = EM^d mod n,     verify: sig^e mod n == EM
//! ```
//!
//! The padding is a deterministic PKCS#1 v1.5-style encoding (without the
//! ASN.1 `DigestInfo`, which adds nothing in a closed system). Key
//! generation uses two random primes of half the modulus width and
//! `d = e^{-1} mod λ(n)`.
//!
//! ## CRT fast path
//!
//! Keys that know their prime factors (generated keys, or fixtures built
//! with [`RsaKeyPair::from_primes`]) sign via the Chinese Remainder
//! Theorem: two half-width exponentiations `m^{d_p} mod p`,
//! `m^{d_q} mod q` recombined with Garner's formula — ~4× less limb work
//! than one full-width `m^d mod n`. Keys built from `(n, d)` alone
//! ([`RsaKeyPair::from_parts`]) keep signing over the full modulus, so
//! the deterministic `(n, d)` fixtures stay byte-compatible.

use crate::hash::sha256;
use crate::signer::{AggregateVerify, SigVerifier, Signature, Signer};
use rand::Rng;
use std::sync::Arc;
use vbx_mathx::{modular, prime, MontCtx, Uint};

/// Object-safe CRT signing engine. The half-width arithmetic runs at a
/// *different* const width than the key (`H = L/2`), which Rust's const
/// generics cannot express in a field type — so the engine is built by a
/// width-dispatching factory ([`make_crt`]) and held behind `dyn`.
trait CrtSign<const L: usize>: Send + Sync {
    /// `em^d mod n` via the two half-width exponentiations.
    fn sign_em(&self, em: &Uint<L>) -> Uint<L>;
}

/// CRT components at half the modulus width: `p`, `q`,
/// `d_p = d mod (p-1)`, `d_q = d mod (q-1)`, `q_inv = q^{-1} mod p`.
struct CrtParts<const H: usize> {
    p: Uint<H>,
    q: Uint<H>,
    d_p: Uint<H>,
    d_q: Uint<H>,
    q_inv: Uint<H>,
    mont_p: MontCtx<H>,
    mont_q: MontCtx<H>,
}

impl<const H: usize, const L: usize> CrtSign<L> for CrtParts<H> {
    fn sign_em(&self, em: &Uint<L>) -> Uint<L> {
        debug_assert!(2 * H == L);
        let p_wide: Uint<L> = self.p.resize().expect("p is half-width");
        let q_wide: Uint<L> = self.q.resize().expect("q is half-width");
        let m_p: Uint<H> = em.rem(&p_wide).resize().expect("reduced mod p");
        let m_q: Uint<H> = em.rem(&q_wide).resize().expect("reduced mod q");
        let s_p = self.mont_p.pow_mod(&m_p, &self.d_p);
        let s_q = self.mont_q.pow_mod(&m_q, &self.d_q);
        // Garner recombination: sig = s_q + q · (q_inv · (s_p - s_q) mod p).
        let s_q_mod_p = if s_q < self.p { s_q } else { s_q.rem(&self.p) };
        let diff = modular::sub_mod(&s_p, &s_q_mod_p, &self.p);
        let h = self.mont_p.mul_mod(&self.q_inv, &diff);
        let (lo, hi) = self.q.mul_wide(&h);
        let mut limbs = [0u64; L];
        limbs[..H].copy_from_slice(&lo.limbs()[..]);
        limbs[H..2 * H].copy_from_slice(&hi.limbs()[..]);
        // s_q + q·h ≤ (q-1) + q·(p-1) = n - 1: never wraps.
        Uint::<L>::from_limbs(limbs).wrapping_add(&s_q.resize().expect("half-width"))
    }
}

/// Build the half-width CRT state for primes `p, q` and private exponent
/// `d` (all at the full key width). Returns `None` when the width has no
/// registered half (odd limb counts) or the inputs are degenerate.
fn crt_parts<const H: usize, const L: usize>(
    p: &Uint<L>,
    q: &Uint<L>,
    d: &Uint<L>,
) -> Option<Arc<dyn CrtSign<L>>> {
    if 2 * H != L {
        return None;
    }
    let p_h: Uint<H> = p.resize()?;
    let q_h: Uint<H> = q.resize()?;
    if p_h.is_even() || q_h.is_even() || p_h.is_one() || q_h.is_one() {
        return None;
    }
    let one = Uint::<H>::ONE;
    let p1 = p_h.wrapping_sub(&one);
    let q1 = q_h.wrapping_sub(&one);
    let d_p: Uint<H> = d.rem(&p1.resize::<L>()?).resize()?;
    let d_q: Uint<H> = d.rem(&q1.resize::<L>()?).resize()?;
    let q_inv = modular::inv_mod(&q_h.rem(&p_h), &p_h)?;
    Some(Arc::new(CrtParts {
        mont_p: MontCtx::new(p_h),
        mont_q: MontCtx::new(q_h),
        p: p_h,
        q: q_h,
        d_p,
        d_q,
        q_inv,
    }))
}

/// Width-dispatching CRT factory: maps each even limb count to its half.
fn make_crt<const L: usize>(p: &Uint<L>, q: &Uint<L>, d: &Uint<L>) -> Option<Arc<dyn CrtSign<L>>> {
    match L {
        2 => crt_parts::<1, L>(p, q, d),
        4 => crt_parts::<2, L>(p, q, d),
        8 => crt_parts::<4, L>(p, q, d),
        16 => crt_parts::<8, L>(p, q, d),
        32 => crt_parts::<16, L>(p, q, d),
        64 => crt_parts::<32, L>(p, q, d),
        _ => None,
    }
}

/// RSA public key: `(n, e)` plus a Montgomery context for fast verify.
#[derive(Clone)]
pub struct RsaPublicKey<const L: usize> {
    n: Uint<L>,
    e: Uint<L>,
    mont: MontCtx<L>,
    version: u32,
}

/// RSA key pair. The private exponent never leaves this struct.
#[derive(Clone)]
pub struct RsaKeyPair<const L: usize> {
    public: RsaPublicKey<L>,
    d: Uint<L>,
    /// CRT fast path; present when the prime factors are known.
    crt: Option<Arc<dyn CrtSign<L>>>,
}

/// Standard public exponent.
pub const RSA_E: u64 = 65_537;

impl<const L: usize> RsaPublicKey<L> {
    fn new(n: Uint<L>, version: u32) -> Self {
        Self {
            n,
            e: Uint::from_u64(RSA_E),
            mont: MontCtx::new(n),
            version,
        }
    }

    /// Modulus length in bytes == signature length.
    pub fn modulus_len(&self) -> usize {
        L * 8
    }

    /// The modulus.
    pub fn n(&self) -> &Uint<L> {
        &self.n
    }

    fn encode(&self, msg: &[u8]) -> Uint<L> {
        // EM has modulus_len - 1 bytes so the integer is < n. For small
        // (test-sized) moduli the hash is truncated; we insist on at
        // least 16 hash bytes, so moduli must be >= 192 bits.
        let em_len = self.modulus_len() - 1;
        let digest = sha256(msg);
        let hash_len = digest.len().min(em_len - 2);
        assert!(hash_len >= 16, "modulus too small for padding");
        let mut em = vec![0xFFu8; em_len];
        em[0] = 0x01;
        let ps_end = em_len - hash_len;
        em[ps_end - 1] = 0x00;
        em[ps_end..].copy_from_slice(&digest[..hash_len]);
        Uint::from_be_bytes(&em).expect("EM fits the modulus width")
    }
}

impl<const L: usize> RsaKeyPair<L> {
    /// Generate a fresh key with a modulus of exactly `L*64` bits.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, version: u32) -> Self {
        let half_bits = L * 32;
        loop {
            let p: Uint<L> = prime::random_prime(half_bits, rng);
            let q: Uint<L> = prime::random_prime(half_bits, rng);
            if p == q {
                continue;
            }
            let n = match p.checked_mul(&q) {
                Some(n) if n.bits() == L * 64 => n,
                _ => continue,
            };
            let one = Uint::<L>::ONE;
            let p1 = p.wrapping_sub(&one);
            let q1 = q.wrapping_sub(&one);
            let g = modular::gcd(&p1, &q1);
            let (lam, _) = p1
                .checked_mul(&q1)
                .expect("fits: (p-1)(q-1) < n")
                .div_rem(&g);
            let e = Uint::from_u64(RSA_E);
            let Some(d) = modular::inv_mod(&e, &lam) else {
                continue;
            };
            let crt = make_crt(&p, &q, &d);
            return Self {
                public: RsaPublicKey::new(n, version),
                d,
                crt,
            };
        }
    }

    /// Build from known `(n, d)` values (used for the deterministic test
    /// fixtures in [`vbx_mathx::groups::rsa_fixtures`]). Without the
    /// prime factors the key signs over the full modulus — byte-identical
    /// to the CRT path, just slower.
    pub fn from_parts(n: Uint<L>, d: Uint<L>, version: u32) -> Self {
        Self {
            public: RsaPublicKey::new(n, version),
            d,
            crt: None,
        }
    }

    /// Build from known prime factors, deriving `n = p·q`,
    /// `d = e^{-1} mod λ(n)` and the CRT components. Returns `None` when
    /// the primes are degenerate (equal, even, or `e` not invertible).
    pub fn from_primes(p: Uint<L>, q: Uint<L>, version: u32) -> Option<Self> {
        let two = Uint::<L>::from_u64(2);
        if p == q || p.is_even() || q.is_even() || p <= two || q <= two {
            return None;
        }
        let n = p.checked_mul(&q)?;
        let one = Uint::<L>::ONE;
        let p1 = p.wrapping_sub(&one);
        let q1 = q.wrapping_sub(&one);
        let g = modular::gcd(&p1, &q1);
        let (lam, _) = p1.checked_mul(&q1)?.div_rem(&g);
        let e = Uint::from_u64(RSA_E);
        let d = modular::inv_mod(&e, &lam)?;
        let crt = make_crt(&p, &q, &d);
        Some(Self {
            public: RsaPublicKey::new(n, version),
            d,
            crt,
        })
    }

    /// True when this key signs through the half-width CRT fast path.
    pub fn has_crt(&self) -> bool {
        self.crt.is_some()
    }

    /// A copy of this key with the CRT state dropped, signing via one
    /// full-width exponentiation — the reference path the CRT signatures
    /// are proven bit-identical to (property tests), and the baseline
    /// for the `repro -- perf` speedup report.
    pub fn without_crt(&self) -> Self {
        Self {
            public: self.public.clone(),
            d: self.d,
            crt: None,
        }
    }

    /// The public half.
    pub fn public_key(&self) -> RsaPublicKey<L> {
        self.public.clone()
    }
}

impl<const L: usize> Signer for RsaKeyPair<L> {
    fn sign(&self, msg: &[u8]) -> Signature {
        let em = self.public.encode(msg);
        let sig = match &self.crt {
            Some(crt) => crt.sign_em(&em),
            None => self.public.mont.pow_mod(&em, &self.d),
        };
        Signature(sig.to_be_bytes())
    }

    fn signature_len(&self) -> usize {
        self.public.modulus_len()
    }

    fn key_version(&self) -> u32 {
        self.public.version
    }

    fn verifier(&self) -> Arc<dyn SigVerifier> {
        Arc::new(self.public.clone())
    }
}

/// Incremental condensed-RSA verification: a running product of the
/// encoded messages, `∏ EM_i mod n`, closed with a single
/// exponentiation of the aggregate. O(1) state in the batch size.
struct RsaAggregate<const L: usize> {
    key: RsaPublicKey<L>,
    /// `∏ encode(msg_i) mod n` over the absorbed messages.
    prod: Uint<L>,
}

impl<const L: usize> AggregateVerify for RsaAggregate<L> {
    fn absorb(&mut self, msg: &[u8]) {
        let em = self.key.encode(msg);
        self.prod = self.key.mont.mul_mod(&self.prod, &em);
    }

    fn finish(self: Box<Self>, agg: &Signature) -> bool {
        let Some(s) = Uint::<L>::from_be_bytes(agg.as_bytes()) else {
            return false;
        };
        if s >= self.key.n {
            return false;
        }
        // (∏ s_i)^e = ∏ s_i^e = ∏ EM_i (mod n): one modular
        // exponentiation verifies the whole batch.
        self.key.mont.pow_mod(&s, &self.key.e) == self.prod
    }
}

impl<const L: usize> SigVerifier for RsaPublicKey<L> {
    fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let Some(s) = Uint::<L>::from_be_bytes(sig.as_bytes()) else {
            return false;
        };
        if s >= self.n {
            return false;
        }
        let recovered = self.mont.pow_mod(&s, &self.e);
        recovered == self.encode(msg)
    }

    fn signature_len(&self) -> usize {
        self.modulus_len()
    }

    fn key_version(&self) -> u32 {
        self.version
    }

    /// Condensed RSA (Mykletun et al.): the aggregate of single-signer
    /// signatures is their product mod `n` — computable from public
    /// material alone, so an edge can condense the stored signatures it
    /// relays without holding any signing key.
    fn aggregate_signatures(&self, sigs: &[Signature]) -> Option<Signature> {
        let mut prod = Uint::<L>::ONE;
        for sig in sigs {
            let s = Uint::<L>::from_be_bytes(sig.as_bytes())?;
            if s >= self.n || s.is_zero() {
                return None;
            }
            prod = self.mont.mul_mod(&prod, &s);
        }
        Some(Signature(prod.to_be_bytes()))
    }

    fn begin_aggregate(&self) -> Option<Box<dyn AggregateVerify>> {
        Some(Box::new(RsaAggregate {
            key: self.clone(),
            prod: Uint::ONE,
        }))
    }
}

/// The deterministic 512-bit fixture key (fast; tests only).
pub fn fixture_keypair_512() -> RsaKeyPair<8> {
    use vbx_mathx::groups::rsa_fixtures as fx;
    RsaKeyPair::from_parts(fx::n_512(), fx::d_512(), 1)
}

/// The deterministic 1024-bit fixture key.
pub fn fixture_keypair_1024() -> RsaKeyPair<16> {
    use vbx_mathx::groups::rsa_fixtures as fx;
    RsaKeyPair::from_parts(fx::n_1024(), fx::d_1024(), 1)
}

/// The deterministic 2048-bit fixture key.
pub fn fixture_keypair_2048() -> RsaKeyPair<32> {
    use vbx_mathx::groups::rsa_fixtures as fx;
    RsaKeyPair::from_parts(fx::n_2048(), fx::d_2048(), 1)
}

/// Deterministic 512-bit fixture key with known primes — signs through
/// the CRT fast path.
pub fn fixture_keypair_crt_512() -> RsaKeyPair<8> {
    let (p, q) = vbx_mathx::groups::rsa_fixtures::crt_primes_512();
    RsaKeyPair::from_primes(p, q, 1).expect("fixture primes are valid")
}

/// Deterministic 1024-bit CRT fixture key.
pub fn fixture_keypair_crt_1024() -> RsaKeyPair<16> {
    let (p, q) = vbx_mathx::groups::rsa_fixtures::crt_primes_1024();
    RsaKeyPair::from_primes(p, q, 1).expect("fixture primes are valid")
}

/// Deterministic 2048-bit CRT fixture key.
pub fn fixture_keypair_crt_2048() -> RsaKeyPair<32> {
    let (p, q) = vbx_mathx::groups::rsa_fixtures::crt_primes_2048();
    RsaKeyPair::from_primes(p, q, 1).expect("fixture primes are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_sign_verify_512() {
        let kp = fixture_keypair_512();
        let v = kp.verifier();
        let sig = kp.sign(b"attribute digest payload");
        assert_eq!(sig.len(), 64);
        assert!(v.verify(b"attribute digest payload", &sig));
        assert!(!v.verify(b"attribute digest payloaD", &sig));
    }

    #[test]
    fn fixture_sign_verify_1024() {
        let kp = fixture_keypair_1024();
        let v = kp.verifier();
        let sig = kp.sign(b"m");
        assert_eq!(sig.len(), 128);
        assert!(v.verify(b"m", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = fixture_keypair_512();
        let v = kp.verifier();
        let mut sig = kp.sign(b"m");
        sig.0[10] ^= 0x40;
        assert!(!v.verify(b"m", &sig));
    }

    #[test]
    fn oversized_signature_rejected() {
        let kp = fixture_keypair_512();
        let v = kp.verifier();
        assert!(!v.verify(b"m", &Signature(vec![0xFF; 65])));
        assert!(!v.verify(b"m", &Signature(vec![])));
    }

    #[test]
    fn generated_key_roundtrip() {
        let mut rng = rand::thread_rng();
        // 256-bit modulus: fast enough for debug-mode tests.
        let kp: RsaKeyPair<4> = RsaKeyPair::generate(&mut rng, 7);
        let v = kp.verifier();
        let sig = kp.sign(b"fresh key");
        assert!(v.verify(b"fresh key", &sig));
        assert_eq!(kp.key_version(), 7);
        assert_eq!(v.key_version(), 7);
    }

    #[test]
    fn crt_fixture_sign_verify() {
        for msg in [b"m".as_slice(), b"node digest payload"] {
            let kp = fixture_keypair_crt_512();
            assert!(kp.has_crt());
            let v = kp.verifier();
            assert!(v.verify(msg, &kp.sign(msg)));
            let kp = fixture_keypair_crt_1024();
            assert!(kp.verifier().verify(msg, &kp.sign(msg)));
        }
    }

    #[test]
    fn crt_signature_bit_identical_to_full_width() {
        let kp = fixture_keypair_crt_512();
        let plain = kp.without_crt();
        assert!(!plain.has_crt());
        for msg in [b"a".as_slice(), b"attribute digest", &[0xFF; 100]] {
            assert_eq!(kp.sign(msg).as_bytes(), plain.sign(msg).as_bytes());
        }
        let kp = fixture_keypair_crt_2048();
        let plain = kp.without_crt();
        assert_eq!(kp.sign(b"x").as_bytes(), plain.sign(b"x").as_bytes());
    }

    #[test]
    fn generated_key_uses_crt_and_matches_full_width() {
        let mut rng = rand::thread_rng();
        let kp: RsaKeyPair<4> = RsaKeyPair::generate(&mut rng, 1);
        assert!(kp.has_crt());
        let plain = kp.without_crt();
        assert_eq!(
            kp.sign(b"fresh").as_bytes(),
            plain.sign(b"fresh").as_bytes()
        );
        assert!(kp.verifier().verify(b"fresh", &kp.sign(b"fresh")));
    }

    #[test]
    fn from_primes_rejects_degenerate_inputs() {
        let (p, q) = vbx_mathx::groups::rsa_fixtures::crt_primes_512();
        assert!(RsaKeyPair::from_primes(p, p, 1).is_none()); // p == q
        let even = p.wrapping_add(&vbx_mathx::Uint::ONE);
        assert!(RsaKeyPair::from_primes(even, q, 1).is_none()); // even p
        assert!(RsaKeyPair::from_primes(p, vbx_mathx::Uint::ONE, 1).is_none()); // q = 1
        assert!(RsaKeyPair::from_primes(p, vbx_mathx::Uint::ZERO, 1).is_none());
        // q = 0
    }

    #[test]
    fn signatures_are_deterministic() {
        let kp = fixture_keypair_512();
        assert_eq!(kp.sign(b"x").as_bytes(), kp.sign(b"x").as_bytes());
    }

    #[test]
    fn distinct_messages_distinct_signatures() {
        let kp = fixture_keypair_512();
        assert_ne!(kp.sign(b"x").as_bytes(), kp.sign(b"y").as_bytes());
    }

    #[test]
    fn condensed_rsa_roundtrip() {
        let kp = fixture_keypair_crt_512();
        let v = kp.verifier();
        let msgs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![b'm', i]).collect();
        let sigs: Vec<Signature> = msgs.iter().map(|m| kp.sign(m)).collect();
        let agg = v.aggregate_signatures(&sigs).expect("rsa condenses");
        let mut st = v.begin_aggregate().expect("rsa condenses");
        for m in &msgs {
            st.absorb(m);
        }
        assert!(st.finish(&agg));
    }

    #[test]
    fn condensed_rsa_rejects_tampered_batch() {
        let kp = fixture_keypair_crt_512();
        let v = kp.verifier();
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![b'm', i]).collect();
        let sigs: Vec<Signature> = msgs.iter().map(|m| kp.sign(m)).collect();
        let agg = v.aggregate_signatures(&sigs).unwrap();

        // Substituted message.
        let mut st = v.begin_aggregate().unwrap();
        for (i, m) in msgs.iter().enumerate() {
            if i == 2 {
                st.absorb(b"evil");
            } else {
                st.absorb(m);
            }
        }
        assert!(!st.finish(&agg));

        // Dropped message.
        let mut st = v.begin_aggregate().unwrap();
        for m in &msgs[..3] {
            st.absorb(m);
        }
        assert!(!st.finish(&agg));

        // Forged aggregate: flip a byte of the condensed signature.
        let mut bad = agg.clone();
        bad.0[10] ^= 0x40;
        let mut st = v.begin_aggregate().unwrap();
        for m in &msgs {
            st.absorb(m);
        }
        assert!(!st.finish(&bad));

        // Aggregate of a *different* valid batch does not transfer.
        let other_sigs: Vec<Signature> = msgs.iter().map(|m| kp.sign(m)).rev().collect();
        let other = v.aggregate_signatures(&other_sigs[..3]).unwrap();
        let mut st = v.begin_aggregate().unwrap();
        for m in &msgs {
            st.absorb(m);
        }
        assert!(!st.finish(&other));
    }

    #[test]
    fn condensed_rsa_rejects_out_of_range_inputs() {
        let kp = fixture_keypair_crt_512();
        let v = kp.verifier();
        let good = kp.sign(b"ok");
        // An all-0xFF "signature" is ≥ n: the condenser refuses it.
        let huge = Signature(vec![0xFF; good.len()]);
        assert!(v.aggregate_signatures(&[good.clone(), huge]).is_none());
        // A zero factor would annihilate the product: refused too.
        let zero = Signature(vec![0x00; good.len()]);
        assert!(v.aggregate_signatures(&[good, zero]).is_none());
    }
}
