//! Textbook RSA signatures over `vbx-mathx`.
//!
//! This is the paper's digital signature scheme: the central DBMS signs
//! digests with its private key (`s(·)`), anyone with the public key can
//! recover/verify them (`s^{-1}(·)`). Signing is hash-then-pad-then-
//! exponentiate:
//!
//! ```text
//! EM  = 0x01 ‖ 0xFF…FF ‖ 0x00 ‖ SHA-256(msg)     (modulus_len - 1 bytes)
//! sig = EM^d mod n,     verify: sig^e mod n == EM
//! ```
//!
//! The padding is a deterministic PKCS#1 v1.5-style encoding (without the
//! ASN.1 `DigestInfo`, which adds nothing in a closed system). Key
//! generation uses two random primes of half the modulus width and
//! `d = e^{-1} mod λ(n)`.

use crate::hash::sha256;
use crate::signer::{SigVerifier, Signature, Signer};
use rand::Rng;
use std::sync::Arc;
use vbx_mathx::{modular, prime, MontCtx, Uint};

/// RSA public key: `(n, e)` plus a Montgomery context for fast verify.
#[derive(Clone)]
pub struct RsaPublicKey<const L: usize> {
    n: Uint<L>,
    e: Uint<L>,
    mont: MontCtx<L>,
    version: u32,
}

/// RSA key pair. The private exponent never leaves this struct.
#[derive(Clone)]
pub struct RsaKeyPair<const L: usize> {
    public: RsaPublicKey<L>,
    d: Uint<L>,
}

/// Standard public exponent.
pub const RSA_E: u64 = 65_537;

impl<const L: usize> RsaPublicKey<L> {
    fn new(n: Uint<L>, version: u32) -> Self {
        Self {
            n,
            e: Uint::from_u64(RSA_E),
            mont: MontCtx::new(n),
            version,
        }
    }

    /// Modulus length in bytes == signature length.
    pub fn modulus_len(&self) -> usize {
        L * 8
    }

    /// The modulus.
    pub fn n(&self) -> &Uint<L> {
        &self.n
    }

    fn encode(&self, msg: &[u8]) -> Uint<L> {
        // EM has modulus_len - 1 bytes so the integer is < n. For small
        // (test-sized) moduli the hash is truncated; we insist on at
        // least 16 hash bytes, so moduli must be >= 192 bits.
        let em_len = self.modulus_len() - 1;
        let digest = sha256(msg);
        let hash_len = digest.len().min(em_len - 2);
        assert!(hash_len >= 16, "modulus too small for padding");
        let mut em = vec![0xFFu8; em_len];
        em[0] = 0x01;
        let ps_end = em_len - hash_len;
        em[ps_end - 1] = 0x00;
        em[ps_end..].copy_from_slice(&digest[..hash_len]);
        Uint::from_be_bytes(&em).expect("EM fits the modulus width")
    }
}

impl<const L: usize> RsaKeyPair<L> {
    /// Generate a fresh key with a modulus of exactly `L*64` bits.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, version: u32) -> Self {
        let half_bits = L * 32;
        loop {
            let p: Uint<L> = prime::random_prime(half_bits, rng);
            let q: Uint<L> = prime::random_prime(half_bits, rng);
            if p == q {
                continue;
            }
            let n = match p.checked_mul(&q) {
                Some(n) if n.bits() == L * 64 => n,
                _ => continue,
            };
            let one = Uint::<L>::ONE;
            let p1 = p.wrapping_sub(&one);
            let q1 = q.wrapping_sub(&one);
            let g = modular::gcd(&p1, &q1);
            let (lam, _) = p1
                .checked_mul(&q1)
                .expect("fits: (p-1)(q-1) < n")
                .div_rem(&g);
            let e = Uint::from_u64(RSA_E);
            let Some(d) = modular::inv_mod(&e, &lam) else {
                continue;
            };
            return Self {
                public: RsaPublicKey::new(n, version),
                d,
            };
        }
    }

    /// Build from known `(n, d)` values (used for the deterministic test
    /// fixtures in [`vbx_mathx::groups::rsa_fixtures`]).
    pub fn from_parts(n: Uint<L>, d: Uint<L>, version: u32) -> Self {
        Self {
            public: RsaPublicKey::new(n, version),
            d,
        }
    }

    /// The public half.
    pub fn public_key(&self) -> RsaPublicKey<L> {
        self.public.clone()
    }
}

impl<const L: usize> Signer for RsaKeyPair<L> {
    fn sign(&self, msg: &[u8]) -> Signature {
        let em = self.public.encode(msg);
        let sig = self.public.mont.pow_mod(&em, &self.d);
        Signature(sig.to_be_bytes())
    }

    fn signature_len(&self) -> usize {
        self.public.modulus_len()
    }

    fn key_version(&self) -> u32 {
        self.public.version
    }

    fn verifier(&self) -> Arc<dyn SigVerifier> {
        Arc::new(self.public.clone())
    }
}

impl<const L: usize> SigVerifier for RsaPublicKey<L> {
    fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let Some(s) = Uint::<L>::from_be_bytes(sig.as_bytes()) else {
            return false;
        };
        if s >= self.n {
            return false;
        }
        let recovered = self.mont.pow_mod(&s, &self.e);
        recovered == self.encode(msg)
    }

    fn signature_len(&self) -> usize {
        self.modulus_len()
    }

    fn key_version(&self) -> u32 {
        self.version
    }
}

/// The deterministic 512-bit fixture key (fast; tests only).
pub fn fixture_keypair_512() -> RsaKeyPair<8> {
    use vbx_mathx::groups::rsa_fixtures as fx;
    RsaKeyPair::from_parts(fx::n_512(), fx::d_512(), 1)
}

/// The deterministic 1024-bit fixture key.
pub fn fixture_keypair_1024() -> RsaKeyPair<16> {
    use vbx_mathx::groups::rsa_fixtures as fx;
    RsaKeyPair::from_parts(fx::n_1024(), fx::d_1024(), 1)
}

/// The deterministic 2048-bit fixture key.
pub fn fixture_keypair_2048() -> RsaKeyPair<32> {
    use vbx_mathx::groups::rsa_fixtures as fx;
    RsaKeyPair::from_parts(fx::n_2048(), fx::d_2048(), 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_sign_verify_512() {
        let kp = fixture_keypair_512();
        let v = kp.verifier();
        let sig = kp.sign(b"attribute digest payload");
        assert_eq!(sig.len(), 64);
        assert!(v.verify(b"attribute digest payload", &sig));
        assert!(!v.verify(b"attribute digest payloaD", &sig));
    }

    #[test]
    fn fixture_sign_verify_1024() {
        let kp = fixture_keypair_1024();
        let v = kp.verifier();
        let sig = kp.sign(b"m");
        assert_eq!(sig.len(), 128);
        assert!(v.verify(b"m", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = fixture_keypair_512();
        let v = kp.verifier();
        let mut sig = kp.sign(b"m");
        sig.0[10] ^= 0x40;
        assert!(!v.verify(b"m", &sig));
    }

    #[test]
    fn oversized_signature_rejected() {
        let kp = fixture_keypair_512();
        let v = kp.verifier();
        assert!(!v.verify(b"m", &Signature(vec![0xFF; 65])));
        assert!(!v.verify(b"m", &Signature(vec![])));
    }

    #[test]
    fn generated_key_roundtrip() {
        let mut rng = rand::thread_rng();
        // 256-bit modulus: fast enough for debug-mode tests.
        let kp: RsaKeyPair<4> = RsaKeyPair::generate(&mut rng, 7);
        let v = kp.verifier();
        let sig = kp.sign(b"fresh key");
        assert!(v.verify(b"fresh key", &sig));
        assert_eq!(kp.key_version(), 7);
        assert_eq!(v.key_version(), 7);
    }

    #[test]
    fn signatures_are_deterministic() {
        let kp = fixture_keypair_512();
        assert_eq!(kp.sign(b"x").as_bytes(), kp.sign(b"x").as_bytes());
    }

    #[test]
    fn distinct_messages_distinct_signatures() {
        let kp = fixture_keypair_512();
        assert_ne!(kp.sign(b"x").as_bytes(), kp.sign(b"y").as_bytes());
    }
}
