//! Object-safe signing traits.
//!
//! The paper's `s(·)` encrypts a digest with the central DBMS's private
//! key and `s^{-1}(·)` decrypts with the public key (Section 3.2). We
//! model this as conventional sign/verify so the upper layers do not care
//! about key sizes or algorithms: the central server holds a [`Signer`],
//! clients hold a [`SigVerifier`].

use crate::hash::sha256;
use std::fmt;
use std::sync::Arc;

/// A detached signature (opaque bytes; length depends on the scheme).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature(pub Vec<u8>);

impl Signature {
    /// Signature length in bytes (the paper's `|D|` for signed digests).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty (never produced by a real signer).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0.iter().take(8).map(|b| format!("{b:02x}")).collect();
        write!(f, "Signature({hex}…, {} bytes)", self.0.len())
    }
}

/// Produces signatures over byte messages. Held only by the trusted
/// central DBMS.
pub trait Signer: Send + Sync {
    /// Sign a message.
    fn sign(&self, msg: &[u8]) -> Signature;
    /// Length in bytes of signatures this signer produces.
    fn signature_len(&self) -> usize;
    /// Key version identifier (see [`crate::keyreg`]).
    fn key_version(&self) -> u32;
    /// The matching verifier, distributable to clients.
    fn verifier(&self) -> Arc<dyn SigVerifier>;
}

/// Verifies signatures. Distributed to clients through an authenticated
/// channel (the paper assumes a PKI).
pub trait SigVerifier: Send + Sync {
    /// Check a signature over a message.
    fn verify(&self, msg: &[u8], sig: &Signature) -> bool;
    /// Length in bytes of signatures this verifier accepts.
    fn signature_len(&self) -> usize;
    /// Key version identifier.
    fn key_version(&self) -> u32;
}

/// A fast symmetric test double: `sign = SHA-256(secret ‖ len ‖ msg)`.
///
/// **Not a public-key scheme** — the verifier shares the secret, so a
/// "verifier" could forge. It exists so that large structural tests and
/// benchmarks of the tree machinery are not dominated by RSA time. All
/// security-facing tests use [`crate::rsa`].
#[derive(Clone)]
pub struct MockSigner {
    secret: [u8; 32],
    version: u32,
}

impl MockSigner {
    /// Create from an arbitrary seed.
    pub fn new(seed: u64) -> Self {
        Self::with_version(seed, 1)
    }

    /// Create with an explicit key version.
    pub fn with_version(seed: u64, version: u32) -> Self {
        let mut secret = [0u8; 32];
        secret[..8].copy_from_slice(&seed.to_le_bytes());
        secret[8..12].copy_from_slice(&version.to_le_bytes());
        Self { secret, version }
    }

    fn mac(&self, msg: &[u8]) -> Signature {
        let mut h = crate::hash::Sha256::new();
        h.update(&self.secret);
        h.update(&(msg.len() as u64).to_le_bytes());
        h.update(msg);
        Signature(h.finalize().to_vec())
    }
}

impl Signer for MockSigner {
    fn sign(&self, msg: &[u8]) -> Signature {
        self.mac(msg)
    }

    fn signature_len(&self) -> usize {
        32
    }

    fn key_version(&self) -> u32 {
        self.version
    }

    fn verifier(&self) -> Arc<dyn SigVerifier> {
        Arc::new(MockVerifier {
            inner: self.clone(),
        })
    }
}

/// Verifier half of [`MockSigner`].
#[derive(Clone)]
pub struct MockVerifier {
    inner: MockSigner,
}

impl SigVerifier for MockVerifier {
    fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        // Constant-time-ish comparison via hashing both sides.
        sha256(self.inner.mac(msg).as_bytes()) == sha256(sig.as_bytes())
    }

    fn signature_len(&self) -> usize {
        32
    }

    fn key_version(&self) -> u32 {
        self.inner.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_roundtrip() {
        let s = MockSigner::new(42);
        let v = s.verifier();
        let sig = s.sign(b"hello");
        assert!(v.verify(b"hello", &sig));
        assert!(!v.verify(b"hellO", &sig));
        assert!(!v.verify(b"hello", &Signature(vec![0; 32])));
    }

    #[test]
    fn mock_seed_separation() {
        let a = MockSigner::new(1);
        let b = MockSigner::new(2);
        let sig = a.sign(b"msg");
        assert!(!b.verifier().verify(b"msg", &sig));
    }

    #[test]
    fn version_separates_keys() {
        let a = MockSigner::with_version(1, 1);
        let b = MockSigner::with_version(1, 2);
        assert_ne!(a.sign(b"m").as_bytes(), b.sign(b"m").as_bytes());
        assert_eq!(b.key_version(), 2);
    }

    #[test]
    fn length_prefix_prevents_extension_confusion() {
        let s = MockSigner::new(9);
        assert_ne!(s.sign(b"ab").as_bytes(), s.sign(b"a").as_bytes());
    }
}
