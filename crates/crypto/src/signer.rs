//! Object-safe signing traits.
//!
//! The paper's `s(·)` encrypts a digest with the central DBMS's private
//! key and `s^{-1}(·)` decrypts with the public key (Section 3.2). We
//! model this as conventional sign/verify so the upper layers do not care
//! about key sizes or algorithms: the central server holds a [`Signer`],
//! clients hold a [`SigVerifier`].

use crate::hash::sha256;
use std::fmt;
use std::sync::Arc;

/// A detached signature (opaque bytes; length depends on the scheme).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature(pub Vec<u8>);

impl Signature {
    /// Signature length in bytes (the paper's `|D|` for signed digests).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty (never produced by a real signer).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0.iter().take(8).map(|b| format!("{b:02x}")).collect();
        write!(f, "Signature({hex}…, {} bytes)", self.0.len())
    }
}

/// Produces signatures over byte messages. Held only by the trusted
/// central DBMS.
pub trait Signer: Send + Sync {
    /// Sign a message.
    fn sign(&self, msg: &[u8]) -> Signature;
    /// Length in bytes of signatures this signer produces.
    fn signature_len(&self) -> usize;
    /// Key version identifier (see [`crate::keyreg`]).
    fn key_version(&self) -> u32;
    /// The matching verifier, distributable to clients.
    fn verifier(&self) -> Arc<dyn SigVerifier>;
}

/// Incremental verification of an *aggregate* signature: one compact
/// signature standing in for a whole batch of individually-signed
/// messages (Mykletun-style "condensed" signatures for RSA, a keyed
/// hash chain for the mock scheme).
///
/// Usage: obtain via [`SigVerifier::begin_aggregate`], [`absorb`]
/// every signed message **in the same order the aggregator condensed
/// them**, then [`finish`] against the aggregate signature. The state
/// is O(1) in the number of messages, so a streaming verifier can
/// absorb digests as they arrive off the wire.
///
/// [`absorb`]: AggregateVerify::absorb
/// [`finish`]: AggregateVerify::finish
pub trait AggregateVerify {
    /// Absorb the next signed message of the batch.
    fn absorb(&mut self, msg: &[u8]);
    /// Check the aggregate signature over every absorbed message.
    fn finish(self: Box<Self>, agg: &Signature) -> bool;
}

/// Verifies signatures. Distributed to clients through an authenticated
/// channel (the paper assumes a PKI).
pub trait SigVerifier: Send + Sync {
    /// Check a signature over a message.
    fn verify(&self, msg: &[u8], sig: &Signature) -> bool;
    /// Length in bytes of signatures this verifier accepts.
    fn signature_len(&self) -> usize;
    /// Key version identifier.
    fn key_version(&self) -> u32;

    /// Condense individual signatures into one aggregate signature
    /// (server side — needs only public material). Returns `None` when
    /// the scheme does not support aggregation, or when any input
    /// signature is malformed for the scheme.
    ///
    /// The aggregate is order-sensitive: the verifier must absorb the
    /// signed messages in exactly this order.
    fn aggregate_signatures(&self, sigs: &[Signature]) -> Option<Signature> {
        let _ = sigs;
        None
    }

    /// Begin an incremental aggregate verification (client side).
    /// Returns `None` when the scheme does not support aggregation.
    fn begin_aggregate(&self) -> Option<Box<dyn AggregateVerify>> {
        None
    }
}

/// A fast symmetric test double: `sign = SHA-256(secret ‖ len ‖ msg)`.
///
/// **Not a public-key scheme** — the verifier shares the secret, so a
/// "verifier" could forge. It exists so that large structural tests and
/// benchmarks of the tree machinery are not dominated by RSA time. All
/// security-facing tests use [`crate::rsa`].
#[derive(Clone)]
pub struct MockSigner {
    secret: [u8; 32],
    version: u32,
}

impl MockSigner {
    /// Create from an arbitrary seed.
    pub fn new(seed: u64) -> Self {
        Self::with_version(seed, 1)
    }

    /// Create with an explicit key version.
    pub fn with_version(seed: u64, version: u32) -> Self {
        let mut secret = [0u8; 32];
        secret[..8].copy_from_slice(&seed.to_le_bytes());
        secret[8..12].copy_from_slice(&version.to_le_bytes());
        Self { secret, version }
    }

    fn mac(&self, msg: &[u8]) -> Signature {
        let mut h = crate::hash::Sha256::new();
        h.update(&self.secret);
        h.update(&(msg.len() as u64).to_le_bytes());
        h.update(msg);
        Signature(h.finalize().to_vec())
    }
}

impl Signer for MockSigner {
    fn sign(&self, msg: &[u8]) -> Signature {
        self.mac(msg)
    }

    fn signature_len(&self) -> usize {
        32
    }

    fn key_version(&self) -> u32 {
        self.version
    }

    fn verifier(&self) -> Arc<dyn SigVerifier> {
        Arc::new(MockVerifier {
            inner: self.clone(),
        })
    }
}

/// Verifier half of [`MockSigner`].
#[derive(Clone)]
pub struct MockVerifier {
    inner: MockSigner,
}

/// Domain-separation prefix for the mock aggregate hash chain.
const MOCK_AGG_DOMAIN: &[u8] = b"vbx-agg-mock";

/// Fold one signature into the mock aggregate chain:
/// `h' = SHA-256(h ‖ sig)`. Binds count and order.
fn mock_chain_step(chain: &[u8; 32], sig: &Signature) -> [u8; 32] {
    let mut h = crate::hash::Sha256::new();
    h.update(chain);
    h.update(sig.as_bytes());
    h.finalize()
}

fn mock_chain_init() -> [u8; 32] {
    sha256(MOCK_AGG_DOMAIN)
}

/// Incremental mock aggregate: recomputes each MAC (the mock verifier
/// shares the secret) and folds it into the same chain the aggregator
/// built from the raw signature bytes.
struct MockAggregate {
    inner: MockSigner,
    chain: [u8; 32],
}

impl AggregateVerify for MockAggregate {
    fn absorb(&mut self, msg: &[u8]) {
        let sig = self.inner.mac(msg);
        self.chain = mock_chain_step(&self.chain, &sig);
    }

    fn finish(self: Box<Self>, agg: &Signature) -> bool {
        // Constant-time-ish comparison via hashing both sides.
        sha256(&self.chain) == sha256(agg.as_bytes())
    }
}

impl SigVerifier for MockVerifier {
    fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        // Constant-time-ish comparison via hashing both sides.
        sha256(self.inner.mac(msg).as_bytes()) == sha256(sig.as_bytes())
    }

    fn signature_len(&self) -> usize {
        32
    }

    fn key_version(&self) -> u32 {
        self.inner.version
    }

    fn aggregate_signatures(&self, sigs: &[Signature]) -> Option<Signature> {
        let mut chain = mock_chain_init();
        for sig in sigs {
            if sig.len() != 32 {
                return None;
            }
            chain = mock_chain_step(&chain, sig);
        }
        Some(Signature(chain.to_vec()))
    }

    fn begin_aggregate(&self) -> Option<Box<dyn AggregateVerify>> {
        Some(Box::new(MockAggregate {
            inner: self.inner.clone(),
            chain: mock_chain_init(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_roundtrip() {
        let s = MockSigner::new(42);
        let v = s.verifier();
        let sig = s.sign(b"hello");
        assert!(v.verify(b"hello", &sig));
        assert!(!v.verify(b"hellO", &sig));
        assert!(!v.verify(b"hello", &Signature(vec![0; 32])));
    }

    #[test]
    fn mock_seed_separation() {
        let a = MockSigner::new(1);
        let b = MockSigner::new(2);
        let sig = a.sign(b"msg");
        assert!(!b.verifier().verify(b"msg", &sig));
    }

    #[test]
    fn version_separates_keys() {
        let a = MockSigner::with_version(1, 1);
        let b = MockSigner::with_version(1, 2);
        assert_ne!(a.sign(b"m").as_bytes(), b.sign(b"m").as_bytes());
        assert_eq!(b.key_version(), 2);
    }

    #[test]
    fn length_prefix_prevents_extension_confusion() {
        let s = MockSigner::new(9);
        assert_ne!(s.sign(b"ab").as_bytes(), s.sign(b"a").as_bytes());
    }

    #[test]
    fn mock_aggregate_roundtrip() {
        let s = MockSigner::new(7);
        let v = s.verifier();
        let msgs: Vec<&[u8]> = vec![b"alpha", b"beta", b"gamma"];
        let sigs: Vec<Signature> = msgs.iter().map(|m| s.sign(m)).collect();
        let agg = v.aggregate_signatures(&sigs).expect("mock aggregates");
        let mut st = v.begin_aggregate().expect("mock aggregates");
        for m in &msgs {
            st.absorb(m);
        }
        assert!(st.finish(&agg));
    }

    #[test]
    fn mock_aggregate_rejects_reorder_drop_and_forgery() {
        let s = MockSigner::new(7);
        let v = s.verifier();
        let msgs: Vec<&[u8]> = vec![b"alpha", b"beta", b"gamma"];
        let sigs: Vec<Signature> = msgs.iter().map(|m| s.sign(m)).collect();
        let agg = v.aggregate_signatures(&sigs).unwrap();

        // Reordered absorbs fail.
        let mut st = v.begin_aggregate().unwrap();
        for m in [b"beta".as_slice(), b"alpha", b"gamma"] {
            st.absorb(m);
        }
        assert!(!st.finish(&agg));

        // A dropped message fails.
        let mut st = v.begin_aggregate().unwrap();
        st.absorb(b"alpha");
        st.absorb(b"beta");
        assert!(!st.finish(&agg));

        // A substituted message fails.
        let mut st = v.begin_aggregate().unwrap();
        for m in [b"alpha".as_slice(), b"beta", b"gamm4"] {
            st.absorb(m);
        }
        assert!(!st.finish(&agg));

        // A flipped aggregate fails.
        let mut bad = agg.clone();
        bad.0[0] ^= 1;
        let mut st = v.begin_aggregate().unwrap();
        for m in &msgs {
            st.absorb(m);
        }
        assert!(!st.finish(&bad));
    }

    #[test]
    fn empty_aggregate_is_consistent() {
        let v = MockSigner::new(3).verifier();
        let agg = v.aggregate_signatures(&[]).unwrap();
        let st = v.begin_aggregate().unwrap();
        assert!(st.finish(&agg));
    }
}
