//! The commutative digest accumulator — the paper's `h(x) = g^x mod p`.
//!
//! Section 3.2 chooses a one-way hash whose combination operator is
//! *commutative*:
//!
//! ```text
//! h(d1 | d2) = g^(d1 · d2) = (g^d1)^d2 = (g^d2)^d1   (mod p)
//! ```
//!
//! We realise this in the order-`q` subgroup of `Z_p*` for a safe prime
//! `p = 2q + 1`. A digest is the pair:
//!
//! * **exponent** `E ∈ Z_q*` — the accumulator; combination is
//!   `E1 · E2 mod q`, which is commutative and associative, so digest
//!   sets need no ordering (the flat `D_S`/`D_P` sets of Section 3.3),
//! * **value** `V = g^E mod p` — the paper's digest value, recomputed by
//!   the verifier at the top of the enveloping subtree (Lemma 1/2).
//!
//! Incremental insert (Section 3.4) falls out as
//! `E' = E · E_T mod q`, `V' = V^{E_T} mod p`, and deletions can even be
//! *reversed out* (`E' = E · E_T^{-1} mod q`) because `Z_q` is a field —
//! see [`Accumulator::uncombine`].

use crate::hash::{sha256, HashAlgo};
use crate::signer::{SigVerifier, Signature, Signer};
use std::cell::RefCell;
use vbx_mathx::groups::SafePrimeGroup;
use vbx_mathx::{modular, FixedBaseTable, MontCtx, Uint};

/// The digest algebra for a fixed group width of `L` limbs.
///
/// Holds Montgomery contexts plus a precomputed [`FixedBaseTable`] for
/// the generator `g`, so lifts (`g^E mod p`) skip the squaring chain
/// entirely. Cheap to clone conceptually but the table is tens of
/// kilobytes; share it via reference or `Arc` in hot paths.
#[derive(Clone)]
pub struct Accumulator<const L: usize> {
    group: SafePrimeGroup<L>,
    mont_p: MontCtx<L>,
    mont_q: MontCtx<L>,
    /// Comb table for the fixed generator `g` over `p`.
    fixed_g: FixedBaseTable<L>,
    hash: HashAlgo,
}

/// Accumulator over the deterministic 256-bit test group.
pub type Acc256 = Accumulator<4>;
/// Accumulator over the deterministic 512-bit test group.
pub type Acc512 = Accumulator<8>;

impl Acc256 {
    /// Accumulator over the built-in 256-bit test group.
    pub fn test_default() -> Self {
        Accumulator::new(vbx_mathx::groups::test_group_256())
    }
}

impl Acc512 {
    /// Accumulator over the built-in 512-bit test group.
    pub fn test_default_512() -> Self {
        Accumulator::new(vbx_mathx::groups::test_group_512())
    }
}

impl<const L: usize> Accumulator<L> {
    /// Build the algebra for a safe-prime group (SHA-256 base hash).
    pub fn new(group: SafePrimeGroup<L>) -> Self {
        Self::with_hash(group, HashAlgo::Sha256)
    }

    /// Build the algebra with an explicit base hash — the paper names
    /// MD5 and SHA as candidate one-way functions for formula (1).
    pub fn with_hash(group: SafePrimeGroup<L>, hash: HashAlgo) -> Self {
        let mont_p = MontCtx::new(group.p);
        let fixed_g = FixedBaseTable::new(&mont_p, &group.g);
        Self {
            mont_p,
            mont_q: MontCtx::new(group.q),
            fixed_g,
            group,
            hash,
        }
    }

    /// The base hash algorithm deriving attribute digests.
    pub fn hash_algo(&self) -> HashAlgo {
        self.hash
    }

    /// The underlying group parameters.
    pub fn group(&self) -> &SafePrimeGroup<L> {
        &self.group
    }

    /// Byte length of a serialized exponent.
    pub fn exp_len(&self) -> usize {
        L * 8
    }

    /// The multiplicative identity exponent (combining with it is a
    /// no-op).
    pub fn identity(&self) -> Uint<L> {
        Uint::ONE
    }

    /// Hash arbitrary bytes into `Z_q*` — the base digest of formula (1).
    ///
    /// Counter-prefixed hash blocks (of the configured [`HashAlgo`]) are
    /// concatenated until the group width is covered, then reduced mod
    /// `q`; zero maps to 1 so the result is always invertible.
    pub fn exp_from_bytes(&self, data: &[u8]) -> Uint<L> {
        // Thread-local scratch: this runs once per attribute of every
        // tuple (the build/verify hot loop), so the hash material and
        // counter-prefixed block buffers are reused across calls instead
        // of allocated per call. Thread-local (not a field) keeps the
        // accumulator shareable across the parallel-build workers.
        thread_local! {
            static SCRATCH: RefCell<(Vec<u8>, Vec<u8>)> =
                const { RefCell::new((Vec::new(), Vec::new())) };
        }
        SCRATCH.with(|cell| {
            let (material, block) = &mut *cell.borrow_mut();
            material.clear();
            let mut counter = 0u32;
            while material.len() < L * 8 {
                block.clear();
                block.extend_from_slice(&counter.to_be_bytes());
                block.extend_from_slice(data);
                material.extend_from_slice(&self.hash.digest(block));
                counter += 1;
            }
            material.truncate(L * 8);
            let wide = Uint::<L>::from_be_bytes(material).expect("exact width");
            let e = wide.rem(&self.group.q);
            if e.is_zero() {
                Uint::ONE
            } else {
                e
            }
        })
    }

    /// Commutative combination: `a · b mod q` — the paper's
    /// `h(d_a | d_b)` in exponent space.
    ///
    /// ```
    /// use vbx_crypto::Acc256;
    /// let acc = Acc256::test_default();
    /// let x = acc.exp_from_bytes(b"alpha");
    /// let y = acc.exp_from_bytes(b"beta");
    /// assert_eq!(acc.combine(&x, &y), acc.combine(&y, &x)); // h(x|y) = h(y|x)
    /// ```
    pub fn combine(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        self.mont_q.mul_mod(a, b)
    }

    /// Combine an iterator of exponents (in any order — commutativity is
    /// exercised by the property tests).
    ///
    /// The running product stays in Montgomery form for the whole chain:
    /// one conversion out at the end instead of a Montgomery round-trip
    /// per element, halving the modular multiplications of a
    /// [`combine`](Self::combine) fold while producing identical values.
    pub fn combine_all<'a, I: IntoIterator<Item = &'a Uint<L>>>(&self, iter: I) -> Uint<L> {
        let mut acc_m: Option<Uint<L>> = None;
        for e in iter {
            let e_m = self.mont_q.to_mont(e);
            acc_m = Some(match acc_m {
                Some(a) => self.mont_q.mont_mul(&a, &e_m),
                None => e_m,
            });
        }
        match acc_m {
            Some(a) => self.mont_q.from_mont(&a),
            None => self.identity(),
        }
    }

    /// Reverse a combination: `a · b^{-1} mod q`. Used by the extension
    /// that reverses deleted tuples out of node digests instead of
    /// recomputing them (the paper recomputes; see DESIGN.md §6).
    pub fn uncombine(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let inv = modular::inv_mod(b, &self.group.q)
            .expect("exponents are non-zero elements of the prime field Z_q");
        self.combine(a, &inv)
    }

    /// Lift an exponent to the group: `g^E mod p` — the paper's digest
    /// value `h(…)`. Served from the precomputed fixed-base table for
    /// `g`: at most one multiplication per exponent nibble, no
    /// squarings.
    pub fn lift(&self, e: &Uint<L>) -> Uint<L> {
        self.fixed_g.pow(&self.mont_p, e)
    }

    /// Reference lift via plain square-and-multiply — the baseline
    /// [`lift`](Self::lift) is proven bit-identical to (property tests)
    /// and measured against (`repro -- perf`).
    pub fn lift_naive(&self, e: &Uint<L>) -> Uint<L> {
        self.mont_p.pow_mod_naive(&self.group.g, e)
    }

    /// Incremental lift: `V^E mod p`, i.e. combine a new exponent into an
    /// already-lifted digest value (Section 3.4's insert update).
    pub fn lift_pow(&self, v: &Uint<L>, e: &Uint<L>) -> Uint<L> {
        self.mont_p.pow_mod(v, e)
    }

    /// Canonical byte encoding of an exponent (fixed width, big-endian).
    pub fn exp_to_bytes(&self, e: &Uint<L>) -> Vec<u8> {
        e.to_be_bytes()
    }

    /// Parse a canonical exponent encoding. Rejects values outside
    /// `[1, q)`.
    pub fn exp_from_canonical(&self, bytes: &[u8]) -> Option<Uint<L>> {
        if bytes.len() != L * 8 {
            return None;
        }
        let e = Uint::<L>::from_be_bytes(bytes)?;
        if e.is_zero() || e >= self.group.q {
            return None;
        }
        Some(e)
    }

    /// Sign an exponent digest under a domain tag (see [`DigestRole`]).
    pub fn sign_digest(
        &self,
        signer: &dyn Signer,
        role: DigestRole,
        e: &Uint<L>,
    ) -> SignedDigest<L> {
        let msg = signed_payload(role, &self.exp_to_bytes(e));
        SignedDigest {
            exp: *e,
            role,
            sig: signer.sign(&msg),
        }
    }

    /// Verify a signed digest.
    pub fn verify_digest(&self, verifier: &dyn SigVerifier, d: &SignedDigest<L>) -> bool {
        if d.exp.is_zero() || d.exp >= self.group.q {
            return false;
        }
        let msg = signed_payload(d.role, &self.exp_to_bytes(&d.exp));
        verifier.verify(&msg, &d.sig)
    }
}

/// Domain tag distinguishing what a signed digest authenticates.
///
/// The paper's formula (1) already namespaces attribute digests with
/// database/table/attribute names; the role tag additionally prevents a
/// digest signed as (say) an attribute from being replayed as a node
/// digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DigestRole {
    /// Per-attribute digest (formula (1)).
    Attribute,
    /// Per-tuple digest (formula (2)).
    Tuple,
    /// B-tree node digest (formula (3)).
    Node,
    /// Root digest stored in the VB-tree metadata.
    Root,
}

impl DigestRole {
    fn tag(self) -> u8 {
        match self {
            DigestRole::Attribute => 0xA1,
            DigestRole::Tuple => 0xA2,
            DigestRole::Node => 0xA3,
            DigestRole::Root => 0xA4,
        }
    }

    /// Decode from the wire tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0xA1 => DigestRole::Attribute,
            0xA2 => DigestRole::Tuple,
            0xA3 => DigestRole::Node,
            0xA4 => DigestRole::Root,
            _ => return None,
        })
    }

    /// Encode to the wire tag.
    pub fn to_tag(self) -> u8 {
        self.tag()
    }
}

/// The exact message a [`SignedDigest`]'s signature covers:
/// `"vbx-dgst" ‖ role ‖ exp`. Public so aggregate verification
/// ([`crate::signer::AggregateVerify`]) can absorb the same bytes the
/// central server signed.
pub fn signed_payload(role: DigestRole, exp_bytes: &[u8]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(exp_bytes.len() + 9);
    msg.extend_from_slice(b"vbx-dgst");
    msg.push(role.tag());
    msg.extend_from_slice(exp_bytes);
    msg
}

/// A digest exponent together with the central server's signature over
/// its canonical encoding — the unit that verification objects carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedDigest<const L: usize> {
    /// Exponent in `Z_q*`.
    pub exp: Uint<L>,
    /// What this digest authenticates.
    pub role: DigestRole,
    /// Signature over `"vbx-dgst" ‖ role ‖ exp`.
    pub sig: Signature,
}

impl<const L: usize> SignedDigest<L> {
    /// Serialized size in bytes (exponent + role byte + signature).
    pub fn wire_len(&self) -> usize {
        L * 8 + 1 + self.sig.len()
    }

    /// A quick content fingerprint for hashing/dedup in tests.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut h = crate::hash::Sha256::new();
        h.update(&self.exp.to_be_bytes());
        h.update(&[self.role.to_tag()]);
        h.update(self.sig.as_bytes());
        h.finalize()
    }
}

/// Convenience: derive a deterministic-but-distinct exponent from a seed,
/// for tests and synthetic workloads.
pub fn exp_from_seed<const L: usize>(acc: &Accumulator<L>, seed: u64) -> Uint<L> {
    acc.exp_from_bytes(&sha256(&seed.to_le_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::MockSigner;

    fn acc() -> Acc256 {
        Acc256::test_default()
    }

    #[test]
    fn exp_from_bytes_in_range() {
        let a = acc();
        for s in 0..50u64 {
            let e = a.exp_from_bytes(&s.to_le_bytes());
            assert!(!e.is_zero());
            assert!(e < a.group().q);
        }
    }

    #[test]
    fn combine_commutative_and_associative() {
        let a = acc();
        let x = exp_from_seed(&a, 1);
        let y = exp_from_seed(&a, 2);
        let z = exp_from_seed(&a, 3);
        assert_eq!(a.combine(&x, &y), a.combine(&y, &x));
        assert_eq!(
            a.combine(&a.combine(&x, &y), &z),
            a.combine(&x, &a.combine(&y, &z))
        );
    }

    #[test]
    fn identity_is_neutral() {
        let a = acc();
        let x = exp_from_seed(&a, 9);
        assert_eq!(a.combine(&x, &a.identity()), x);
    }

    #[test]
    fn uncombine_reverses_combine() {
        let a = acc();
        let x = exp_from_seed(&a, 4);
        let y = exp_from_seed(&a, 5);
        let xy = a.combine(&x, &y);
        assert_eq!(a.uncombine(&xy, &y), x);
        assert_eq!(a.uncombine(&xy, &x), y);
    }

    #[test]
    fn lift_respects_combination() {
        // g^(x·y) == (g^x)^y == (g^y)^x — the paper's commutativity claim
        // in the value domain.
        let a = acc();
        let x = exp_from_seed(&a, 6);
        let y = exp_from_seed(&a, 7);
        let lhs = a.lift(&a.combine(&x, &y));
        let via_x = a.lift_pow(&a.lift(&x), &y);
        let via_y = a.lift_pow(&a.lift(&y), &x);
        assert_eq!(lhs, via_x);
        assert_eq!(lhs, via_y);
    }

    #[test]
    fn combine_all_order_independent() {
        let a = acc();
        let exps: Vec<_> = (0..10).map(|i| exp_from_seed(&a, i)).collect();
        let forward = a.combine_all(exps.iter());
        let backward = a.combine_all(exps.iter().rev());
        assert_eq!(forward, backward);
    }

    #[test]
    fn signed_digest_roundtrip() {
        let a = acc();
        let signer = MockSigner::new(11);
        let verifier = signer.verifier();
        let e = exp_from_seed(&a, 20);
        let d = a.sign_digest(&signer, DigestRole::Tuple, &e);
        assert!(a.verify_digest(verifier.as_ref(), &d));
    }

    #[test]
    fn role_confusion_rejected() {
        let a = acc();
        let signer = MockSigner::new(11);
        let verifier = signer.verifier();
        let e = exp_from_seed(&a, 20);
        let mut d = a.sign_digest(&signer, DigestRole::Tuple, &e);
        d.role = DigestRole::Node; // replay under a different role
        assert!(!a.verify_digest(verifier.as_ref(), &d));
    }

    #[test]
    fn tampered_exponent_rejected() {
        let a = acc();
        let signer = MockSigner::new(11);
        let verifier = signer.verifier();
        let e = exp_from_seed(&a, 21);
        let mut d = a.sign_digest(&signer, DigestRole::Attribute, &e);
        d.exp = exp_from_seed(&a, 22);
        assert!(!a.verify_digest(verifier.as_ref(), &d));
    }

    #[test]
    fn canonical_encoding_roundtrip() {
        let a = acc();
        let e = exp_from_seed(&a, 33);
        let bytes = a.exp_to_bytes(&e);
        assert_eq!(bytes.len(), a.exp_len());
        assert_eq!(a.exp_from_canonical(&bytes).unwrap(), e);
        assert!(a.exp_from_canonical(&bytes[1..]).is_none());
        // out-of-range value rejected
        let q_bytes = a.exp_to_bytes(&a.group().q);
        assert!(a.exp_from_canonical(&q_bytes).is_none());
        let zero = a.exp_to_bytes(&Uint::ZERO);
        assert!(a.exp_from_canonical(&zero).is_none());
    }

    #[test]
    fn hash_algo_changes_digests() {
        let g = vbx_mathx::groups::test_group_256();
        let sha = Accumulator::with_hash(g, crate::hash::HashAlgo::Sha256);
        let md5 = Accumulator::with_hash(g, crate::hash::HashAlgo::Md5);
        let sha1 = Accumulator::with_hash(g, crate::hash::HashAlgo::Sha1);
        let x_sha = sha.exp_from_bytes(b"same input");
        let x_md5 = md5.exp_from_bytes(b"same input");
        let x_sha1 = sha1.exp_from_bytes(b"same input");
        assert_ne!(x_sha, x_md5);
        assert_ne!(x_sha, x_sha1);
        assert_ne!(x_md5, x_sha1);
        // All still in range and algebra still works.
        for (acc, x) in [(&md5, x_md5), (&sha1, x_sha1)] {
            assert!(x < acc.group().q);
            let y = acc.exp_from_bytes(b"other");
            assert_eq!(acc.combine(&x, &y), acc.combine(&y, &x));
        }
        assert_eq!(md5.hash_algo(), crate::hash::HashAlgo::Md5);
    }

    #[test]
    fn role_tags_roundtrip() {
        for role in [
            DigestRole::Attribute,
            DigestRole::Tuple,
            DigestRole::Node,
            DigestRole::Root,
        ] {
            assert_eq!(DigestRole::from_tag(role.to_tag()), Some(role));
        }
        assert_eq!(DigestRole::from_tag(0x00), None);
    }
}
