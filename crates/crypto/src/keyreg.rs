//! Versioned public keys with validity windows.
//!
//! Section 3.4: when updates are propagated to edge servers with a delay,
//! "the central server can include the timestamp or version number in its
//! public key, and make available to users the validity period of each
//! public key at a well-known location. This would ensure that edge
//! servers cannot masquerade out-of-date data, signed with an old private
//! key, as the latest data without being detected."
//!
//! [`KeyRegistry`] is that well-known location: an append-only map from
//! key version to `(verifier, validity window)`. Clients consult it to
//! decide whether a VO signed under version `v` is acceptable *now*.

use crate::signer::SigVerifier;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Logical timestamps (the reproduction uses update sequence numbers
/// rather than wall-clock time; the mechanism is identical).
pub type Timestamp = u64;

/// A key version identifier.
pub type KeyVersion = u32;

/// Inclusive-start, exclusive-end validity period of a key version.
/// `end == None` means "current".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValidityWindow {
    /// First timestamp at which the key is valid.
    pub start: Timestamp,
    /// Timestamp at which the key was retired, if any.
    pub end: Option<Timestamp>,
}

impl ValidityWindow {
    /// Does the window contain `t`?
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && self.end.is_none_or(|e| t < e)
    }
}

struct Entry {
    verifier: Arc<dyn SigVerifier>,
    window: ValidityWindow,
}

/// The authenticated directory of public-key versions.
///
/// In a deployment this would live behind a PKI; here it is an in-memory
/// structure owned by the trusted side and handed to clients by value.
#[derive(Default)]
pub struct KeyRegistry {
    entries: BTreeMap<KeyVersion, Entry>,
}

impl KeyRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a new key version starting at `start`, retiring the
    /// previous current version at the same instant.
    ///
    /// # Panics
    /// Panics if the version is not strictly greater than all published
    /// versions (the registry is append-only).
    pub fn publish(&mut self, verifier: Arc<dyn SigVerifier>, start: Timestamp) {
        let version = verifier.key_version();
        if let Some((&last, _)) = self.entries.iter().next_back() {
            assert!(version > last, "key versions must increase");
        }
        if let Some(entry) = self.entries.values_mut().next_back() {
            if entry.window.end.is_none() {
                entry.window.end = Some(start);
            }
        }
        self.entries.insert(
            version,
            Entry {
                verifier,
                window: ValidityWindow { start, end: None },
            },
        );
    }

    /// Verifier for a version, if published.
    pub fn verifier(&self, version: KeyVersion) -> Option<Arc<dyn SigVerifier>> {
        self.entries.get(&version).map(|e| Arc::clone(&e.verifier))
    }

    /// Validity window of a version, if published.
    pub fn window(&self, version: KeyVersion) -> Option<ValidityWindow> {
        self.entries.get(&version).map(|e| e.window)
    }

    /// The currently-valid version, if any.
    pub fn current(&self) -> Option<KeyVersion> {
        self.entries
            .iter()
            .rev()
            .find(|(_, e)| e.window.end.is_none())
            .map(|(&v, _)| v)
    }

    /// Is `version` acceptable for data observed at time `now`?
    ///
    /// A client enforcing freshness accepts only the current key; a
    /// client replaying history may accept any version whose window
    /// contains the data's timestamp.
    pub fn is_acceptable(&self, version: KeyVersion, now: Timestamp) -> bool {
        self.entries
            .get(&version)
            .map(|e| e.window.contains(now))
            .unwrap_or(false)
    }

    /// Number of published versions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no key has been published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::{MockSigner, Signer};

    #[test]
    fn publish_and_rotate() {
        let mut reg = KeyRegistry::new();
        let k1 = MockSigner::with_version(1, 1);
        let k2 = MockSigner::with_version(1, 2);
        reg.publish(k1.verifier(), 0);
        assert_eq!(reg.current(), Some(1));
        assert!(reg.is_acceptable(1, 5));

        reg.publish(k2.verifier(), 10);
        assert_eq!(reg.current(), Some(2));
        // old key valid only before the rotation instant
        assert!(reg.is_acceptable(1, 9));
        assert!(!reg.is_acceptable(1, 10));
        assert!(reg.is_acceptable(2, 10));
        assert_eq!(
            reg.window(1),
            Some(ValidityWindow {
                start: 0,
                end: Some(10)
            })
        );
    }

    #[test]
    fn unknown_version_rejected() {
        let reg = KeyRegistry::new();
        assert!(!reg.is_acceptable(7, 0));
        assert!(reg.verifier(7).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    #[should_panic(expected = "increase")]
    fn versions_must_increase() {
        let mut reg = KeyRegistry::new();
        reg.publish(MockSigner::with_version(1, 5).verifier(), 0);
        reg.publish(MockSigner::with_version(1, 5).verifier(), 1);
    }

    #[test]
    fn window_containment() {
        let w = ValidityWindow {
            start: 5,
            end: Some(10),
        };
        assert!(!w.contains(4));
        assert!(w.contains(5));
        assert!(w.contains(9));
        assert!(!w.contains(10));
        let open = ValidityWindow {
            start: 0,
            end: None,
        };
        assert!(open.contains(u64::MAX));
    }
}
