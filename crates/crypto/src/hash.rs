//! One-way hash functions implemented from their specifications.
//!
//! The paper (Section 3.2) names MD5 [RFC 1321] and SHA [FIPS 180] as the
//! conventional one-way hash functions used to derive attribute digests
//! (formula (1)). We implement MD5, SHA-1 and SHA-256; SHA-256 is the
//! workspace default.
//!
//! All three follow the same streaming structure: 512-bit blocks,
//! Merkle–Damgård padding with a 64-bit length suffix, and a per-block
//! compression function.

/// Supported hash algorithms, selectable at table-definition time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum HashAlgo {
    /// MD5 (16-byte digest). Fast but broken for collision resistance;
    /// provided for fidelity with the paper's era.
    Md5,
    /// SHA-1 (20-byte digest).
    Sha1,
    /// SHA-256 (32-byte digest) — default.
    #[default]
    Sha256,
}

impl HashAlgo {
    /// Digest length in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            HashAlgo::Md5 => 16,
            HashAlgo::Sha1 => 20,
            HashAlgo::Sha256 => 32,
        }
    }

    /// Hash `data` with the selected algorithm.
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlgo::Md5 => md5(data).to_vec(),
            HashAlgo::Sha1 => sha1(data).to_vec(),
            HashAlgo::Sha256 => sha256(data).to_vec(),
        }
    }
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-2)
// ---------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length counts only the original message, but `update` above
        // incremented total_len; that is fine because we captured bit_len
        // before padding.
        self.total_len = 0;
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// SHA-1 (FIPS 180-1)
// ---------------------------------------------------------------------------

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Self {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5A827999u32),
                1 => (b ^ c ^ d, 0x6ED9EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// MD5 (RFC 1321)
// ---------------------------------------------------------------------------

/// Per-round left-rotation amounts.
const MD5_S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// RFC 1321 sine-derived constants: `K[i] = floor(|sin(i + 1)| * 2^32)`.
fn md5_k() -> [u32; 64] {
    let mut k = [0u32; 64];
    for (i, ki) in k.iter_mut().enumerate() {
        *ki = ((i as f64 + 1.0).sin().abs() * 4294967296.0) as u32;
    }
    k
}

/// Streaming MD5 hasher.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    k: [u32; 64],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Fresh hasher with the RFC 1321 initial state.
    pub fn new() -> Self {
        Self {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            k: md5_k(),
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_le_bytes()); // MD5 length is little-endian
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    #[allow(clippy::needless_range_loop)]
    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for i in 0..16 {
            m[i] = u32::from_le_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(self.k[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(MD5_S[i]));
            a = tmp;
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot MD5.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_fips_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split {split}");
        }
    }

    #[test]
    fn sha1_fips_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn md5_rfc1321_vectors() {
        assert_eq!(hex(&md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(&md5(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(&md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            hex(&md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            hex(&md5(b"The quick brown fox jumps over the lazy dog")),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
    }

    #[test]
    fn algo_dispatch() {
        assert_eq!(HashAlgo::Md5.digest_len(), 16);
        assert_eq!(HashAlgo::Sha1.digest_len(), 20);
        assert_eq!(HashAlgo::Sha256.digest_len(), 32);
        for algo in [HashAlgo::Md5, HashAlgo::Sha1, HashAlgo::Sha256] {
            assert_eq!(algo.digest(b"x").len(), algo.digest_len());
        }
        assert_eq!(HashAlgo::default(), HashAlgo::Sha256);
    }

    #[test]
    fn different_inputs_different_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha1(b"a"), sha1(b"b"));
        assert_ne!(md5(b"a"), md5(b"b"));
    }
}
