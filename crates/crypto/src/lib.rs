//! # vbx-crypto — cryptographic substrate for the VB-tree
//!
//! Everything the paper's authentication mechanism needs, built from
//! scratch on [`vbx_mathx`]:
//!
//! * [`hash`] — MD5 (RFC 1321), SHA-1 (FIPS 180-1) and SHA-256
//!   (FIPS 180-2); the paper cites MD5 and SHA as candidate one-way hash
//!   functions for the attribute digests of formula (1).
//! * [`accum`] — the commutative digest algebra `h(x) = g^x mod p` of
//!   Section 3.2: exponents live in `Z_q` for a safe prime `p = 2q + 1`,
//!   combination is exponent multiplication (`h(d1|d2) = g^(d1·d2)`), and
//!   digests can be combined in any order — the property underpinning the
//!   flat-set verification objects, edge-side projection, and O(path)
//!   inserts.
//! * [`rsa`] — textbook RSA signing/verification (the paper's `s(·)` and
//!   `s^{-1}(·)`), plus key generation via Miller–Rabin.
//! * [`signer`] — object-safe [`Signer`]/[`SigVerifier`] traits so the
//!   upper layers are independent of key size, and a fast [`MockSigner`]
//!   test double for large-scale structural tests.
//! * [`keyreg`] — versioned public keys with validity periods
//!   (Section 3.4's defence against edge servers replaying stale data
//!   signed with an old private key).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accum;
pub mod hash;
pub mod keyreg;
pub mod rsa;
pub mod signer;

pub use accum::{Acc256, Acc512, Accumulator, SignedDigest};
pub use hash::{md5, sha1, sha256, HashAlgo, Md5, Sha1, Sha256};
pub use keyreg::{KeyRegistry, KeyVersion, ValidityWindow};
pub use rsa::{RsaKeyPair, RsaPublicKey};
pub use signer::{AggregateVerify, MockSigner, MockVerifier, SigVerifier, Signature, Signer};
