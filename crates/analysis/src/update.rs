//! Update costs — insert (equation (11)) and delete (equation (12)).
//!
//! Both run at the central server. Insert is incremental: hash the new
//! tuple's attributes, combine into the tuple digest, then combine once
//! into each node digest on the root-to-leaf path (plus re-signing).
//! Range deletion must *recompute* boundary-node digests and every
//! ancestor digest up to the root.

use crate::params::Params;
use crate::tree::{envelope_height, vbtree_fanout, vbtree_height};

/// Breakdown of an update's primitive operations (units of `Cost_h1`
/// when weighted via [`update_total`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpdateBreakdown {
    /// Attribute digests computed.
    pub hashes: f64,
    /// Digest combinations.
    pub combines: f64,
    /// Fresh signatures issued.
    pub signs: f64,
}

/// Weight a breakdown into `Cost_h1` units.
pub fn update_total(p: &Params, b: &UpdateBreakdown) -> f64 {
    b.hashes + b.combines * p.combine_ratio + b.signs * p.sign_ratio
}

/// Insert cost (equation (11)): `N_C` attribute hashes, `N_C` combines
/// into the tuple digest, one combine per path node
/// (`⌈log_f N_R⌉` of them), and a fresh signature for each changed
/// digest (attributes + tuple + path nodes).
pub fn insert_breakdown(p: &Params) -> UpdateBreakdown {
    let path = vbtree_height(p) as f64;
    UpdateBreakdown {
        hashes: p.n_c as f64,
        combines: p.n_c as f64 + path,
        signs: p.n_c as f64 + 1.0 + path,
    }
}

/// Range-delete cost for `n_d` contiguous tuples (equation (12)):
/// the `2·H_env + 1` boundary nodes of the enveloping subtree recompute
/// up to `f − 1` combines each, and every node from the subtree's top to
/// the root recomputes up to `f` combines; all recomputed digests are
/// re-signed.
pub fn delete_breakdown(p: &Params, n_d: u64) -> UpdateBreakdown {
    let f = vbtree_fanout(p) as f64;
    let h = vbtree_height(p) as f64;
    let h_env = envelope_height(p, n_d) as f64;
    let boundary = 2.0 * h_env + 1.0;
    let upper = (h - h_env).max(0.0);
    UpdateBreakdown {
        hashes: 0.0,
        combines: boundary * (f - 1.0) + upper * f,
        signs: boundary + upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_path_local() {
        // Insert cost is O(N_C + height) — independent of N_R except
        // through the logarithmic height.
        let small = Params {
            n_r: 10_000,
            ..Params::default()
        };
        let large = Params {
            n_r: 100_000_000,
            ..Params::default()
        };
        let bs = insert_breakdown(&small);
        let bl = insert_breakdown(&large);
        // Heights: 10^4 -> 2 levels, 10^8 -> 4 levels at fan-out 114.
        assert!(bl.combines - bs.combines <= 3.0);
        assert!(bl.signs - bs.signs <= 3.0);
    }

    #[test]
    fn delete_grows_with_envelope_not_range_size() {
        let p = Params::default();
        let d_small = delete_breakdown(&p, 100);
        let d_large = delete_breakdown(&p, 100_000);
        // Larger ranges have taller envelopes -> more boundary work, but
        // the cost is O(f · height), never O(n_d).
        assert!(d_large.combines >= d_small.combines);
        assert!(d_large.combines < 10_000.0);
    }

    #[test]
    fn signing_dominates_totals() {
        // The paper cites signing ≈ 10000 × hashing: the sign term must
        // dominate the weighted insert cost.
        let p = Params::default();
        let b = insert_breakdown(&p);
        let total = update_total(&p, &b);
        let sign_part = b.signs * p.sign_ratio;
        assert!(sign_part / total > 0.99);
    }

    #[test]
    fn delete_weighted_total_positive() {
        let p = Params::default();
        for n_d in [1u64, 10, 1_000, 500_000] {
            assert!(update_total(&p, &delete_breakdown(&p, n_d)) > 0.0);
        }
    }
}
