//! Client computation cost — equation (10) and the Naive counterpart
//! (A.2); Figures 12 and 13. Costs are expressed in units of `Cost_h1`
//! (one attribute-digest hash).

use crate::comm::{dp_count, ds_count};
use crate::params::Params;

/// Breakdown of a verification's primitive operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComputeBreakdown {
    /// Attribute digests recomputed from returned values (`Cost_h1`).
    pub hashes: f64,
    /// Digest combinations (`Cost_h2`).
    pub combines: f64,
    /// Signature verifications (`Cost_s = X · Cost_h1`).
    pub verifies: f64,
}

impl ComputeBreakdown {
    /// Total in units of `Cost_h1`.
    pub fn total(&self, p: &Params) -> f64 {
        self.hashes + self.combines * p.combine_ratio + self.verifies * p.x
    }
}

/// VB-tree verification cost (equation (10)): hash `N_Q · Q_C` returned
/// attributes, verify + combine every digest in `D_P` and `D_S`, verify
/// the top digest, combine everything once.
pub fn vbtree_breakdown(p: &Params, selectivity: f64) -> ComputeBreakdown {
    let n_q = p.result_size(selectivity);
    let dp = dp_count(p, n_q) as f64;
    let ds = ds_count(p, n_q) as f64;
    let hashed = n_q as f64 * p.q_c as f64;
    ComputeBreakdown {
        hashes: hashed,
        combines: hashed + dp + ds,
        verifies: dp + ds + 1.0,
    }
}

/// VB-tree total cost in units of `Cost_h1`.
pub fn vbtree_compute(p: &Params, selectivity: f64) -> f64 {
    vbtree_breakdown(p, selectivity).total(p)
}

/// Naive verification cost (equation (A.2)): per row, hash the returned
/// attributes, verify + combine the filtered-attribute digests, combine
/// into the tuple digest and verify it — one signature verification per
/// row minimum, the term that sinks Naive in Figure 12.
pub fn naive_breakdown(p: &Params, selectivity: f64) -> ComputeBreakdown {
    let n_q = p.result_size(selectivity) as f64;
    let filtered = p.filtered_cols() as f64;
    ComputeBreakdown {
        hashes: n_q * p.q_c as f64,
        combines: n_q * p.n_c as f64,
        verifies: n_q * (1.0 + filtered),
    }
}

/// Naive total cost in units of `Cost_h1`.
pub fn naive_compute(p: &Params, selectivity: f64) -> f64 {
    naive_breakdown(p, selectivity).total(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_reference_magnitudes() {
        // Defaults (Q_C = N_C = 10), 100% selectivity.
        // Naive: 10M hashes + 10M×0.5 combines + 1M×X verifies.
        // X = 10 → 25×10^6 (Figure 12(b)'s peak);
        // X = 5  → 20×10^6 (12(a)); X = 100 → 115×10^6 (12(c)).
        for (x, expected) in [(5.0, 20e6), (10.0, 25e6), (100.0, 115e6)] {
            let p = Params {
                x,
                ..Params::default()
            };
            let naive = naive_compute(&p, 1.0);
            assert!(
                (naive - expected).abs() / expected < 0.01,
                "X = {x}: naive = {naive}"
            );
            // VB-tree ≈ 15×10^6 for all X (verifications are O(D_S)).
            let vb = vbtree_compute(&p, 1.0);
            assert!((vb - 15e6).abs() / 15e6 < 0.01, "X = {x}: vb = {vb}");
            assert!(naive > vb);
        }
    }

    #[test]
    fn gap_widens_with_x() {
        let p5 = Params {
            x: 5.0,
            ..Params::default()
        };
        let p100 = Params {
            x: 100.0,
            ..Params::default()
        };
        let gap5 = naive_compute(&p5, 0.5) - vbtree_compute(&p5, 0.5);
        let gap100 = naive_compute(&p100, 0.5) - vbtree_compute(&p100, 0.5);
        assert!(gap100 > 10.0 * gap5);
    }

    #[test]
    fn figure13a_gap_constant_in_combine_ratio() {
        // Section 4.3: "the difference in the cost components comes
        // largely from the cost of decrypting the signatures which is
        // independent of Cost_h2 and Cost_h1".
        let gap_at = |r: f64, sel: f64| {
            let p = Params {
                combine_ratio: r,
                ..Params::default()
            };
            naive_compute(&p, sel) - vbtree_compute(&p, sel)
        };
        for sel in [0.2, 0.8] {
            let g0 = gap_at(0.0, sel);
            let g3 = gap_at(3.0, sel);
            // With Q_C = N_C both schemes do the same per-row combines;
            // only the VB-tree's O(f · height) boundary combines differ,
            // so the gap is constant to well under 1% ("almost
            // constant" in the paper's words).
            assert!((g0 - g3).abs() / g0 < 0.01, "sel {sel}: {g0} vs {g3}");
        }
    }

    #[test]
    fn figure13b_gap_constant_in_qc() {
        // Same argument for the Q_C sweep: the dominant N_Q × X term
        // never changes.
        let gap_at = |q_c: usize, sel: f64| {
            let p = Params {
                q_c,
                ..Params::default()
            };
            naive_compute(&p, sel) - vbtree_compute(&p, sel)
        };
        for sel in [0.2, 0.8] {
            let gaps: Vec<f64> = (1..=10).map(|q| gap_at(q, sel)).collect();
            let min = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = gaps.iter().cloned().fold(0.0, f64::max);
            assert!(
                (max - min) / max < 0.05,
                "sel {sel}: gap must stay within 5%: {gaps:?}"
            );
        }
    }

    #[test]
    fn vbtree_roughly_linear_in_result() {
        // Section 4.3: Cost_q = O(N_Q · Q_C) for large queries.
        let p = Params::default();
        let c1 = vbtree_compute(&p, 0.25);
        let c2 = vbtree_compute(&p, 0.5);
        let ratio = c2 / c1;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn projection_shifts_cost_to_verifies() {
        let p_all = Params::default();
        let p_proj = Params {
            q_c: 2,
            ..Params::default()
        };
        let b_all = vbtree_breakdown(&p_all, 0.5);
        let b_proj = vbtree_breakdown(&p_proj, 0.5);
        assert!(b_proj.hashes < b_all.hashes);
        assert!(b_proj.verifies > b_all.verifies);
    }
}
