//! Series generators for every figure in the paper's evaluation.
//!
//! Each function returns the exact x-axis sweep the paper plots, with
//! one [`SeriesPoint`] per x value carrying the curves of that figure.
//! The `repro` binary (`vbx-bench`) prints them side-by-side with
//! measurements from the real implementation.

use crate::comm::{naive_comm, vbtree_comm};
use crate::compute::{naive_compute, vbtree_compute};
use crate::params::Params;
use crate::tree;

/// One x-position of a figure, with named curves.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesPoint {
    /// X-axis value (meaning depends on the figure).
    pub x: f64,
    /// `(curve label, y value)` pairs.
    pub curves: Vec<(String, f64)>,
}

/// A complete figure: identifier, axis labels, and points.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureSeries {
    /// Figure identifier, e.g. `"fig8"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis label.
    pub y_label: &'static str,
    /// The data.
    pub points: Vec<SeriesPoint>,
}

/// Figure 8: index fan-out versus key length (`log2 |K| ∈ 0..=8`).
pub fn figure8(base: &Params) -> FigureSeries {
    let mut points = Vec::new();
    for log_k in 0..=8u32 {
        let p = Params {
            key_len: 1usize << log_k,
            ..base.clone()
        };
        points.push(SeriesPoint {
            x: log_k as f64,
            curves: vec![
                ("B-tree".into(), tree::btree_fanout(&p) as f64),
                ("VB-tree".into(), tree::vbtree_fanout(&p) as f64),
            ],
        });
    }
    FigureSeries {
        id: "fig8",
        title: "Index Tree Fan-Out versus Key Length",
        x_label: "log2 |K| (bytes)",
        y_label: "fan-out",
        points,
    }
}

/// Figure 9: index height versus key length.
pub fn figure9(base: &Params) -> FigureSeries {
    let mut points = Vec::new();
    for log_k in 0..=8u32 {
        let p = Params {
            key_len: 1usize << log_k,
            ..base.clone()
        };
        points.push(SeriesPoint {
            x: log_k as f64,
            curves: vec![
                ("B-tree".into(), tree::btree_height(&p) as f64),
                ("VB-tree".into(), tree::vbtree_height(&p) as f64),
            ],
        });
    }
    FigureSeries {
        id: "fig9",
        title: "Index Tree Height versus Key Length",
        x_label: "log2 |K| (bytes)",
        y_label: "tree height",
        points,
    }
}

/// Figure 10 (a–c): communication cost versus selectivity for
/// `Q_C ∈ {2, 5, 8}`.
pub fn figure10(base: &Params, q_c: usize) -> FigureSeries {
    let mut points = Vec::new();
    for pct in (0..=100).step_by(5) {
        let sel = pct as f64 / 100.0;
        let p = Params {
            q_c,
            ..base.clone()
        };
        points.push(SeriesPoint {
            x: pct as f64,
            curves: vec![
                ("Naive".into(), naive_comm(&p, sel)),
                ("VB-tree".into(), vbtree_comm(&p, sel)),
            ],
        });
    }
    FigureSeries {
        id: "fig10",
        title: "Query — Communication Cost",
        x_label: "selectivity (%)",
        y_label: "bytes",
        points,
    }
}

/// Figure 11: communication versus attribute size (`2^a · |D|`,
/// `a ∈ 0..=6`) at 20% and 80% selectivity.
pub fn figure11(base: &Params) -> FigureSeries {
    let mut points = Vec::new();
    for a in 0..=6u32 {
        let p = Params {
            attr_size: (1u64 << a) as f64 * base.digest_len as f64,
            q_c: base.n_c, // the paper keeps all attributes returned here
            ..base.clone()
        };
        points.push(SeriesPoint {
            x: a as f64,
            curves: vec![
                ("Naive(20%)".into(), naive_comm(&p, 0.2)),
                ("Naive(80%)".into(), naive_comm(&p, 0.8)),
                ("VB-tree(20%)".into(), vbtree_comm(&p, 0.2)),
                ("VB-tree(80%)".into(), vbtree_comm(&p, 0.8)),
            ],
        });
    }
    FigureSeries {
        id: "fig11",
        title: "Communication Cost versus Attribute Size (2^a · |D|)",
        x_label: "attrFactor a",
        y_label: "bytes",
        points,
    }
}

/// Figure 12 (a–c): computation cost versus selectivity for
/// `X ∈ {5, 10, 100}`.
pub fn figure12(base: &Params, x: f64) -> FigureSeries {
    let mut points = Vec::new();
    for pct in (0..=100).step_by(5) {
        let sel = pct as f64 / 100.0;
        let p = Params { x, ..base.clone() };
        points.push(SeriesPoint {
            x: pct as f64,
            curves: vec![
                ("Naive".into(), naive_compute(&p, sel)),
                ("VB-tree".into(), vbtree_compute(&p, sel)),
            ],
        });
    }
    FigureSeries {
        id: "fig12",
        title: "Query — Computation Cost",
        x_label: "selectivity (%)",
        y_label: "cost (units of Cost_h1)",
        points,
    }
}

/// Figure 13(a): effect of `Cost_h2/Cost_h1 ∈ [0, 3]` at 20% and 80%
/// selectivity.
pub fn figure13a(base: &Params) -> FigureSeries {
    let mut points = Vec::new();
    for step in 0..=12u32 {
        let ratio = step as f64 * 0.25;
        let p = Params {
            combine_ratio: ratio,
            ..base.clone()
        };
        points.push(SeriesPoint {
            x: ratio,
            curves: vec![
                ("Naive(20%)".into(), naive_compute(&p, 0.2)),
                ("Naive(80%)".into(), naive_compute(&p, 0.8)),
                ("VB-tree(20%)".into(), vbtree_compute(&p, 0.2)),
                ("VB-tree(80%)".into(), vbtree_compute(&p, 0.8)),
            ],
        });
    }
    FigureSeries {
        id: "fig13a",
        title: "Effect of Cost_h2 / Cost_h1",
        x_label: "Cost_h2 / Cost_h1",
        y_label: "cost (units of Cost_h1)",
        points,
    }
}

/// Figure 13(b): effect of `Q_C ∈ 0..=10` at 20% and 80% selectivity.
pub fn figure13b(base: &Params) -> FigureSeries {
    let mut points = Vec::new();
    for q_c in 0..=10usize {
        let p = Params {
            q_c: q_c.max(1), // zero returned columns degenerates; clamp
            ..base.clone()
        };
        points.push(SeriesPoint {
            x: q_c as f64,
            curves: vec![
                ("Naive(20%)".into(), naive_compute(&p, 0.2)),
                ("Naive(80%)".into(), naive_compute(&p, 0.8)),
                ("VB-tree(20%)".into(), vbtree_compute(&p, 0.2)),
                ("VB-tree(80%)".into(), vbtree_compute(&p, 0.8)),
            ],
        });
    }
    FigureSeries {
        id: "fig13b",
        title: "Effect of Q_C",
        x_label: "Q_C",
        y_label: "cost (units of Cost_h1)",
        points,
    }
}

/// Render a figure as an aligned text table (the repro binary's output).
pub fn render_table(fig: &FigureSeries) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} [{}]\n", fig.title, fig.id));
    let labels: Vec<&str> = fig.points[0]
        .curves
        .iter()
        .map(|(l, _)| l.as_str())
        .collect();
    out.push_str(&format!("{:>12}", fig.x_label));
    for l in &labels {
        out.push_str(&format!(" {l:>16}"));
    }
    out.push('\n');
    for pt in &fig.points {
        out.push_str(&format!("{:>12.2}", pt.x));
        for (_, y) in &pt.curves {
            out.push_str(&format!(" {y:>16.1}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_generate() {
        let p = Params::default();
        assert_eq!(figure8(&p).points.len(), 9);
        assert_eq!(figure9(&p).points.len(), 9);
        assert_eq!(figure10(&p, 5).points.len(), 21);
        assert_eq!(figure11(&p).points.len(), 7);
        assert_eq!(figure12(&p, 10.0).points.len(), 21);
        assert_eq!(figure13a(&p).points.len(), 13);
        assert_eq!(figure13b(&p).points.len(), 11);
    }

    #[test]
    fn curves_consistent_across_points() {
        let p = Params::default();
        for fig in [figure10(&p, 2), figure11(&p), figure13a(&p)] {
            let n = fig.points[0].curves.len();
            assert!(fig.points.iter().all(|pt| pt.curves.len() == n));
        }
    }

    #[test]
    fn fig8_fanouts_decrease_with_key_len() {
        let fig = figure8(&Params::default());
        for w in fig.points.windows(2) {
            let f0 = w[0].curves[1].1;
            let f1 = w[1].curves[1].1;
            assert!(f1 <= f0, "fan-out must fall as keys grow");
        }
    }

    #[test]
    fn fig9_heights_rise_with_key_len() {
        let fig = figure9(&Params::default());
        let first = fig.points.first().unwrap().curves[1].1;
        let last = fig.points.last().unwrap().curves[1].1;
        assert!(last > first);
    }

    #[test]
    fn render_table_contains_headers_and_rows() {
        let fig = figure8(&Params::default());
        let table = render_table(&fig);
        assert!(table.contains("B-tree"));
        assert!(table.contains("VB-tree"));
        assert!(table.lines().count() >= 11);
    }
}
