//! Table 1 — the parameters of the analysis, with the paper's defaults.

use vbx_storage::Geometry;

/// The cost-model parameters (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct Params {
    /// `|D|` — length of a signed digest, bytes (default 16).
    pub digest_len: usize,
    /// `|K|` — search-key length, bytes (default 16).
    pub key_len: usize,
    /// `|P|` — node-pointer length, bytes (default 4).
    pub ptr_len: usize,
    /// `|B|` — block/node size, bytes (default 4096).
    pub block_size: usize,
    /// `N_R` — rows in the table (default 1 million).
    pub n_r: u64,
    /// `N_C` — attributes per tuple (default 10).
    pub n_c: usize,
    /// `Q_C` — attributes in the query result (default 10).
    pub q_c: usize,
    /// `|A|` — bytes per attribute value (the evaluation fixes 200-byte
    /// tuples with 10 × 20-byte attributes).
    pub attr_size: f64,
    /// `X = Cost_s / Cost_h1` — signature verification relative to one
    /// attribute-digest hash (default 10; Figure 12 sweeps {5, 10, 100}).
    pub x: f64,
    /// `Cost_h2 / Cost_h1` — combining two digests relative to hashing
    /// one attribute (Figure 13(a)'s `Cost_k/Cost_h` sweep; default 0.5,
    /// which reproduces the peaks of Figure 12).
    pub combine_ratio: f64,
    /// `Cost_sign / Cost_h1` — signature *generation* cost. The paper
    /// cites [15]: signing ≈ 100× verification ≈ 10000× hashing.
    pub sign_ratio: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            digest_len: 16,
            key_len: 16,
            ptr_len: 4,
            block_size: 4096,
            n_r: 1_000_000,
            n_c: 10,
            q_c: 10,
            attr_size: 20.0,
            x: 10.0,
            combine_ratio: 0.5,
            sign_ratio: 10_000.0,
        }
    }
}

impl Params {
    /// The node geometry implied by these parameters.
    pub fn geometry(&self) -> Geometry {
        Geometry {
            block_size: self.block_size,
            key_len: self.key_len,
            ptr_len: self.ptr_len,
            digest_len: self.digest_len,
        }
    }

    /// Result size `N_Q` for a selectivity factor in `[0, 1]`.
    pub fn result_size(&self, selectivity: f64) -> u64 {
        assert!((0.0..=1.0).contains(&selectivity));
        ((self.n_r as f64) * selectivity).round() as u64
    }

    /// Number of filtered (projected-away) attributes per result tuple.
    pub fn filtered_cols(&self) -> usize {
        self.n_c.saturating_sub(self.q_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let p = Params::default();
        assert_eq!(p.digest_len, 16);
        assert_eq!(p.key_len, 16);
        assert_eq!(p.ptr_len, 4);
        assert_eq!(p.block_size, 4096);
        assert_eq!(p.n_r, 1_000_000);
        assert_eq!(p.n_c, 10);
        assert_eq!(p.q_c, 10);
        assert_eq!(p.x, 10.0);
    }

    #[test]
    fn result_size_rounds() {
        let p = Params::default();
        assert_eq!(p.result_size(0.0), 0);
        assert_eq!(p.result_size(0.2), 200_000);
        assert_eq!(p.result_size(1.0), 1_000_000);
    }

    #[test]
    fn filtered_cols_saturates() {
        let mut p = Params {
            q_c: 3,
            ..Params::default()
        };
        assert_eq!(p.filtered_cols(), 7);
        p.q_c = 12;
        assert_eq!(p.filtered_cols(), 0);
    }
}
