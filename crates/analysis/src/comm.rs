//! Communication cost — equation (9) and the Naive counterpart (A.1);
//! Figures 10 and 11.
//!
//! The VB-tree ships, per query: the returned attribute values, one
//! signed digest per filtered attribute (`D_P`), the boundary digests of
//! the enveloping subtree (`D_S` — independent of the table size!), and
//! the top digest. Naive instead ships a signed tuple digest per result
//! row plus the filtered-attribute digests.

use crate::params::Params;
use crate::tree::{envelope_height, vbtree_fanout};

/// Maximum number of digests in `D_S` for a contiguous range of `n_q`
/// tuples: up to `f − 1` digests in the top node and in the leftmost and
/// rightmost nodes of each level below it (Section 4.2).
pub fn ds_count(p: &Params, n_q: u64) -> u64 {
    if n_q == 0 {
        return vbtree_fanout(p) as u64 - 1; // proof of emptiness: one node
    }
    let h_env = envelope_height(p, n_q) as u64;
    let boundary_nodes = 2 * (h_env - 1) + 1;
    boundary_nodes * (vbtree_fanout(p) as u64 - 1)
}

/// Number of digests in `D_P`: one per filtered attribute per result
/// tuple.
pub fn dp_count(p: &Params, n_q: u64) -> u64 {
    n_q * p.filtered_cols() as u64
}

/// VB-tree communication cost in bytes (equation (9)):
/// result values + `D_P` + `D_S` + the top digest.
pub fn vbtree_comm(p: &Params, selectivity: f64) -> f64 {
    let n_q = p.result_size(selectivity);
    let values = n_q as f64 * p.q_c as f64 * p.attr_size;
    let d_p = dp_count(p, n_q) as f64 * p.digest_len as f64;
    let d_s = ds_count(p, n_q) as f64 * p.digest_len as f64;
    values + d_p + d_s + p.digest_len as f64
}

/// Naive communication cost in bytes (equation (A.1)): per result row,
/// a signed tuple digest + the returned values + one signed digest per
/// filtered attribute.
pub fn naive_comm(p: &Params, selectivity: f64) -> f64 {
    let n_q = p.result_size(selectivity) as f64;
    n_q * (p.digest_len as f64
        + p.q_c as f64 * p.attr_size
        + p.filtered_cols() as f64 * p.digest_len as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_shape() {
        // Naive always ships one more digest per row than the VB-tree's
        // amortised boundary digests -> Naive is strictly above VB-tree
        // for any non-trivial selectivity, and the gap grows linearly.
        for q_c in [2usize, 5, 8] {
            let p = Params {
                q_c,
                ..Params::default()
            };
            let mut prev_gap = 0.0;
            for sel in [0.2, 0.4, 0.6, 0.8, 1.0] {
                let naive = naive_comm(&p, sel);
                let vb = vbtree_comm(&p, sel);
                assert!(naive > vb, "q_c {q_c} sel {sel}");
                let gap = naive - vb;
                assert!(gap > prev_gap, "gap must grow with selectivity");
                prev_gap = gap;
            }
        }
    }

    #[test]
    fn figure10_reference_magnitudes() {
        // Q_C = 2, 100% selectivity, defaults: Naive = 1M×(16+40+128)
        // = 184 MB; the figure's y-axis tops out at 200×10^6.
        let p = Params {
            q_c: 2,
            ..Params::default()
        };
        let naive = naive_comm(&p, 1.0);
        assert!((naive - 184e6).abs() < 1e3);
        let vb = vbtree_comm(&p, 1.0);
        assert!((vb - 168e6).abs() < 1e5, "vb = {vb}");
    }

    #[test]
    fn vo_independent_of_table_size() {
        // The headline: D_S depends on N_Q, not N_R.
        let mk = |n_r: u64| Params {
            n_r,
            ..Params::default()
        };
        let n_q = 10_000u64;
        let a = ds_count(&mk(1_000_000), n_q);
        let b = ds_count(&mk(100_000_000), n_q);
        assert_eq!(a, b);
    }

    #[test]
    fn naive_grows_linearly() {
        let p = Params::default();
        let c1 = naive_comm(&p, 0.25);
        let c2 = naive_comm(&p, 0.5);
        let c4 = naive_comm(&p, 1.0);
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
        assert!((c4 / c2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn figure11_convergence() {
        // As attribute size grows (2^a × |D|), the two schemes converge
        // relatively but keep an absolute gap (Section 4.2's analysis).
        let sel = 0.2;
        let mut prev_ratio = f64::INFINITY;
        for a in 0..=6 {
            let p = Params {
                attr_size: (1u64 << a) as f64 * 16.0,
                q_c: 10,
                ..Params::default()
            };
            let naive = naive_comm(&p, sel);
            let vb = vbtree_comm(&p, sel);
            let ratio = naive / vb;
            assert!(ratio < prev_ratio, "relative gap must shrink");
            prev_ratio = ratio;
            // Absolute gap stays ≈ N_Q × |D| ≈ 3.2 MB (paper: "at least
            // 3 MB more for selectivity factor of 20%").
            assert!(naive - vb > 3.0e6, "a = {a}");
        }
    }

    #[test]
    fn empty_result_small_vo() {
        let p = Params::default();
        let c = vbtree_comm(&p, 0.0);
        assert!(c < 10_000.0, "empty result VO stays near one node: {c}");
    }
}
