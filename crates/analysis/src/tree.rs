//! Tree geometry (Section 4.1): fan-out (6), height (7), enveloping-
//! subtree height (8) — Figures 8 and 9.

use crate::params::Params;
use vbx_storage::Geometry;

/// B+-tree fan-out for the given parameters (formula (6)'s baseline).
pub fn btree_fanout(p: &Params) -> usize {
    p.geometry().btree_fanout()
}

/// VB-tree fan-out (formula (6)): each entry additionally carries a
/// signed digest.
pub fn vbtree_fanout(p: &Params) -> usize {
    p.geometry().vbtree_fanout()
}

/// Height of a fully-packed B+-tree over `N_R` tuples (formula (7)).
pub fn btree_height(p: &Params) -> u32 {
    Geometry::packed_height(btree_fanout(p), p.n_r)
}

/// Height of a fully-packed VB-tree over `N_R` tuples (formula (7)).
pub fn vbtree_height(p: &Params) -> u32 {
    Geometry::packed_height(vbtree_fanout(p), p.n_r)
}

/// Height of the enveloping subtree for `n_q` contiguous result tuples
/// (formula (8)): the smallest subtree of a fully-packed VB-tree whose
/// leaf span covers them.
pub fn envelope_height(p: &Params, n_q: u64) -> u32 {
    Geometry::packed_height(vbtree_fanout(p), n_q.max(1))
}

/// Per-table storage overhead of the signed attribute digests
/// (Section 4.1): `N_R · N_C · |D|` bytes.
pub fn base_table_overhead(p: &Params) -> u64 {
    p.n_r * p.n_c as u64 * p.digest_len as u64
}

/// Per-node storage overhead of the VB-tree over the plain B+-tree:
/// one digest per entry.
pub fn node_overhead(p: &Params) -> usize {
    p.geometry().node_digest_overhead()
}

/// Total node count of a fully-packed tree with fan-out `f` over `n`
/// leaf entries (used for index storage cost).
pub fn packed_node_count(fanout: usize, n: u64) -> u64 {
    assert!(fanout >= 2);
    if n == 0 {
        return 1;
    }
    let mut level = n.div_ceil(fanout as u64);
    let mut total = level;
    while level > 1 {
        level = level.div_ceil(fanout as u64);
        total += level;
    }
    total
}

/// Index storage in bytes for the VB-tree (nodes × block size).
pub fn vbtree_index_bytes(p: &Params) -> u64 {
    packed_node_count(vbtree_fanout(p), p.n_r) * p.block_size as u64
}

/// Index storage in bytes for the plain B+-tree.
pub fn btree_index_bytes(p: &Params) -> u64 {
    packed_node_count(btree_fanout(p), p.n_r) * p.block_size as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_reference_points() {
        // |K| = 16 (Table 1): B-tree 205, VB-tree 114.
        let p = Params::default();
        assert_eq!(btree_fanout(&p), 205);
        assert_eq!(vbtree_fanout(&p), 114);
        // |K| = 1: VB-tree fan-out ≈ (4096+1)/21 = 195.
        let p1 = Params {
            key_len: 1,
            ..Params::default()
        };
        assert_eq!(vbtree_fanout(&p1), 195);
        assert!(
            btree_fanout(&p1) > 500,
            "B-tree fan-out explodes for tiny keys"
        );
    }

    #[test]
    fn figure9_reference_points() {
        // 1M rows at default geometry: both heights are 3.
        let p = Params::default();
        assert_eq!(btree_height(&p), 3);
        assert_eq!(vbtree_height(&p), 3);
        // |K| = 256: fan-outs drop, heights rise — and VB-tree needs one
        // more level than the B-tree at this point (Figure 9's divergence).
        let p256 = Params {
            key_len: 256,
            ..Params::default()
        };
        assert!(vbtree_height(&p256) >= btree_height(&p256));
        assert!(vbtree_height(&p256) >= 4);
    }

    #[test]
    fn envelope_height_grows_with_result() {
        let p = Params::default();
        assert_eq!(envelope_height(&p, 1), 1);
        let h_small = envelope_height(&p, 1_000);
        let h_large = envelope_height(&p, 900_000);
        assert!(h_small <= h_large);
        assert!(h_large <= vbtree_height(&p));
    }

    #[test]
    fn storage_overheads() {
        let p = Params::default();
        // 1M × 10 × 16 bytes = 160 MB of attribute digests.
        assert_eq!(base_table_overhead(&p), 160_000_000);
        assert_eq!(node_overhead(&p), 114 * 16);
        assert!(vbtree_index_bytes(&p) > btree_index_bytes(&p));
    }

    #[test]
    fn packed_node_count_small_cases() {
        assert_eq!(packed_node_count(4, 0), 1);
        assert_eq!(packed_node_count(4, 4), 1);
        assert_eq!(packed_node_count(4, 16), 5); // 4 leaves + root
        assert_eq!(packed_node_count(4, 17), 8); // 5 leaves + 2 internal + root
    }
}
