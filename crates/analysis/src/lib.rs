//! # vbx-analysis — the paper's analytical cost model (Section 4)
//!
//! Every closed-form expression from the evaluation section as a
//! documented pure function over [`Params`] (Table 1), plus series
//! generators that regenerate each figure:
//!
//! | Module | Paper content |
//! |---|---|
//! | [`params`] | Table 1 parameter defaults |
//! | [`tree`] | fan-out (6), tree height (7), enveloping-subtree height (8), Figures 8–9 |
//! | [`comm`] | communication cost (9) and the Naive counterpart (A.1), Figures 10–11 |
//! | [`compute`] | computation cost (10) and (A.2), Figures 12–13 |
//! | [`update`] | insert (11) and delete (12) costs |
//! | [`figures`] | the exact x/y series of every figure |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod compute;
pub mod figures;
pub mod params;
pub mod tree;
pub mod update;

pub use figures::{FigureSeries, SeriesPoint};
pub use params::Params;
