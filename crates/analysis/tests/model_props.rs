//! Properties of the cost model: the dominance and monotonicity claims
//! the paper's figures depend on must hold across the whole parameter
//! space, not just at the plotted points.

use proptest::prelude::*;
use vbx_analysis::{comm, compute, tree, update, Params};

fn arb_params() -> impl Strategy<Value = Params> {
    (
        1u64..10_000_000, // n_r
        1usize..20,       // n_c
        8usize..4096,     // attr bytes (≥ digest length keeps Naive honest)
        1f64..200.0,      // x
        0f64..4.0,        // combine ratio
    )
        .prop_flat_map(|(n_r, n_c, attr, x, ratio)| {
            (1usize..=n_c).prop_map(move |q_c| Params {
                n_r,
                n_c,
                q_c,
                attr_size: attr as f64,
                x,
                combine_ratio: ratio,
                ..Params::default()
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline: the VB-tree never ships more verification bytes
    /// than Naive for non-trivial results (Naive pays |D| per row; the
    /// VB-tree's D_S boundary is sublinear).
    #[test]
    fn vbtree_comm_dominates(p in arb_params(), sel in 0.05f64..=1.0) {
        let naive = comm::naive_comm(&p, sel);
        let vb = comm::vbtree_comm(&p, sel);
        // For very small results the constant D_S boundary can exceed
        // Naive's per-row digest; the paper's claim is about sizeable
        // results.
        if p.result_size(sel) > 2 * comm::ds_count(&p, p.result_size(sel)) {
            prop_assert!(naive >= vb, "naive {naive} < vb {vb} at sel {sel} {p:?}");
        }
    }

    /// Verification cost: Naive is never cheaper (it strictly adds one
    /// signature verification per row).
    #[test]
    fn vbtree_compute_dominates(p in arb_params(), sel in 0.05f64..=1.0) {
        let naive = compute::naive_compute(&p, sel);
        let vb = compute::vbtree_compute(&p, sel);
        if p.result_size(sel) > 2 * comm::ds_count(&p, p.result_size(sel)) {
            prop_assert!(naive >= vb, "naive {naive} < vb {vb} at sel {sel} {p:?}");
        }
    }

    /// Costs are monotone in selectivity.
    #[test]
    fn monotone_in_selectivity(p in arb_params(), a in 0f64..=1.0, b in 0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(comm::naive_comm(&p, lo) <= comm::naive_comm(&p, hi));
        prop_assert!(comm::vbtree_comm(&p, lo) <= comm::vbtree_comm(&p, hi) + 1e-9);
        prop_assert!(compute::naive_compute(&p, lo) <= compute::naive_compute(&p, hi) + 1e-9);
        prop_assert!(compute::vbtree_compute(&p, lo) <= compute::vbtree_compute(&p, hi) + 1e-9);
    }

    /// D_S is independent of the table size — the VO-independence claim
    /// over the whole parameter space.
    #[test]
    fn ds_independent_of_table_size(
        n_q in 1u64..100_000,
        n_r1 in 100_000u64..1_000_000,
        n_r2 in 1_000_000u64..100_000_000,
    ) {
        let p1 = Params { n_r: n_r1, ..Params::default() };
        let p2 = Params { n_r: n_r2, ..Params::default() };
        prop_assert_eq!(comm::ds_count(&p1, n_q), comm::ds_count(&p2, n_q));
    }

    /// Geometry: the VB-tree fan-out never exceeds the B-tree's, and
    /// heights differ by at most a couple of levels (Figure 9's story).
    #[test]
    fn geometry_relations(key_log in 0u32..=8, n_r in 1_000u64..10_000_000) {
        let p = Params {
            key_len: 1usize << key_log,
            n_r,
            ..Params::default()
        };
        prop_assert!(tree::vbtree_fanout(&p) <= tree::btree_fanout(&p));
        let hb = tree::btree_height(&p);
        let hv = tree::vbtree_height(&p);
        prop_assert!(hv >= hb);
        prop_assert!(hv - hb <= 2, "heights {hb} vs {hv}");
    }

    /// Insert cost is logarithmic in N_R: doubling the table adds at
    /// most one sign/combine.
    #[test]
    fn insert_cost_logarithmic(n_r in 1_000u64..1_000_000) {
        let p1 = Params { n_r, ..Params::default() };
        let p2 = Params { n_r: n_r * 2, ..Params::default() };
        let b1 = update::insert_breakdown(&p1);
        let b2 = update::insert_breakdown(&p2);
        prop_assert!(b2.signs - b1.signs <= 1.0);
        prop_assert!(b2.combines - b1.combines <= 1.0);
        prop_assert_eq!(b1.hashes, b2.hashes);
    }

    /// Envelope height is monotone in the result size and bounded by the
    /// tree height.
    #[test]
    fn envelope_bounds(n_q1 in 1u64..500_000, n_q2 in 1u64..500_000) {
        let p = Params::default();
        let (lo, hi) = if n_q1 <= n_q2 { (n_q1, n_q2) } else { (n_q2, n_q1) };
        prop_assert!(tree::envelope_height(&p, lo) <= tree::envelope_height(&p, hi));
        prop_assert!(tree::envelope_height(&p, hi) <= tree::vbtree_height(&p));
    }
}
